"""Tests for the online placement policies."""

import math

import pytest
from hypothesis import given, settings

from repro.core.errors import InvalidInstanceError
from repro.core.instance import ReleaseInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.sim import simulate_instance
from repro.sim.policies import (
    POLICIES,
    BestFitColumn,
    FirstFit,
    ShelfOnline,
    make_policy,
    policy_names,
)

from .conftest import release_instances


def rel_inst(specs, K=4):
    rects = [
        Rect(rid=i, width=c / K, height=h, release=r)
        for i, (c, h, r) in enumerate(specs)
    ]
    return ReleaseInstance(rects, K)


class TestRegistry:
    def test_names_sorted_and_complete(self):
        assert policy_names() == sorted(POLICIES)
        assert {"first_fit", "best_fit_column", "shelf_online"} <= set(POLICIES)

    def test_make_policy_from_name_and_instance(self):
        assert isinstance(make_policy("first_fit"), FirstFit)
        pol = BestFitColumn()
        assert make_policy(pol) is pol

    def test_unknown_policy(self):
        with pytest.raises(InvalidInstanceError):
            make_policy("clairvoyant")


class TestFirstFit:
    def test_earliest_start_leftmost_tie(self):
        pol = FirstFit()
        pol.start(4)
        assert pol.place(Rect(rid=0, width=0.5, height=1.0)) == (0.0, 0.0)
        # Both remaining windows start at 0; leftmost of them is column 2.
        assert pol.place(Rect(rid=1, width=0.5, height=1.0)) == (0.5, 0.0)
        # Full: earliest start is 1.0 across the board, leftmost wins.
        assert pol.place(Rect(rid=2, width=0.25, height=1.0)) == (0.0, 1.0)

    def test_respects_release_floor(self):
        pol = FirstFit()
        pol.start(2)
        x, y = pol.place(Rect(rid=0, width=0.5, height=1.0, release=3.0))
        assert (x, y) == (0.0, 3.0)

    def test_off_grid_width_rejected(self):
        pol = FirstFit()
        pol.start(4)
        with pytest.raises(InvalidInstanceError):
            pol.place(Rect(rid=0, width=0.3, height=1.0))


class TestBestFitColumn:
    def test_prefers_level_window_over_leftmost(self):
        pol = BestFitColumn()
        pol.start(4)
        pol.place(Rect(rid=0, width=0.25, height=2.0))   # col 0 busy to 2
        pol.place(Rect(rid=1, width=0.5, height=2.0))    # cols 1-2 busy to 2
        pol.place(Rect(rid=2, width=0.25, height=1.0))   # col 3 busy to 1
        # A 1-col task: first fit would stack on col 3 (earliest start 1.0);
        # best fit agrees here (zero idle).  A 2-col task at start 2 wastes
        # nothing on cols 0-1 or 1-2 but one unit on cols 2-3; the leftmost
        # zero-idle window wins.
        x, y = pol.place(Rect(rid=3, width=0.5, height=1.0))
        assert (x, y) == (0.0, 2.0)

    def test_breaks_idle_ties_by_earliest_start(self):
        pol = BestFitColumn()
        pol.start(2)
        pol.place(Rect(rid=0, width=0.5, height=2.0))  # col 0 busy to 2
        # Col 1 is free: starting there at 0 has zero idle; col 0 at 2 also
        # has zero idle.  Earliest start breaks the tie.
        x, y = pol.place(Rect(rid=1, width=0.5, height=1.0))
        assert (x, y) == (0.5, 0.0)

    def test_differs_from_first_fit_when_first_fit_strands_columns(self):
        # Stream where first fit's leftmost choice strands a short column.
        inst = rel_inst(
            [(2, 2.0, 0.0), (2, 1.0, 0.0), (2, 1.0, 1.0)],
            K=4,
        )
        ff = simulate_instance(inst, "first_fit")
        bf = simulate_instance(inst, "best_fit_column")
        validate_placement(inst, ff.placement)
        validate_placement(inst, bf.placement)
        # Best fit reuses the column pair that frees at t=1 (zero idle);
        # first fit picks the same start but the leftmost window, stacking
        # on the 2-high block only at t=2.
        assert bf.makespan <= ff.makespan


class TestShelfOnline:
    def test_fills_shelf_then_opens_new(self):
        pol = ShelfOnline()
        pol.start(4)
        assert pol.place(Rect(rid=0, width=0.5, height=1.0)) == (0.0, 0.0)
        assert pol.place(Rect(rid=1, width=0.5, height=0.5)) == (0.5, 0.0)
        # Width exhausted: new shelf on top.
        assert pol.place(Rect(rid=2, width=0.5, height=1.0)) == (0.0, 1.0)

    def test_taller_task_opens_new_shelf(self):
        pol = ShelfOnline()
        pol.start(4)
        pol.place(Rect(rid=0, width=0.25, height=0.5))
        x, y = pol.place(Rect(rid=1, width=0.25, height=1.0))
        assert (x, y) == (0.0, 0.5)

    def test_release_gap_opens_shelf_at_release(self):
        pol = ShelfOnline()
        pol.start(4)
        pol.place(Rect(rid=0, width=0.25, height=0.5))
        # Released after the current shelf's base: must open a new shelf at
        # the release time, not squeeze onto the stale shelf.
        x, y = pol.place(Rect(rid=1, width=0.25, height=0.5, release=3.0))
        assert (x, y) == (0.0, 3.0)

    def test_accepts_off_grid_widths(self):
        pol = ShelfOnline()
        pol.start(4)
        x, y = pol.place(Rect(rid=0, width=0.3, height=1.0))
        assert (x, y) == (0.0, 0.0)


@settings(deadline=None)
@given(release_instances(K=4, max_size=12))
def test_every_policy_produces_valid_placements(inst):
    for policy in policy_names():
        trace = simulate_instance(inst, policy)
        validate_placement(inst, trace.placement)
        assert math.isclose(trace.makespan, trace.placement.height)
