"""Unit tests for the recursive bound F (repro.dag.critical_path)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidInstanceError
from repro.dag.critical_path import F_of_set, compute_F, critical_path, start_lower_bounds
from repro.dag.graph import TaskDAG

from .conftest import dags_over


class TestComputeF:
    def test_single_node(self):
        dag = TaskDAG.empty([0])
        assert compute_F(dag, {0: 2.0}) == {0: 2.0}

    def test_chain_cumulative(self):
        dag = TaskDAG.chain([0, 1, 2])
        F = compute_F(dag, {0: 1.0, 1: 2.0, 2: 3.0})
        assert F == {0: 1.0, 1: 3.0, 2: 6.0}

    def test_diamond_takes_max(self):
        dag = TaskDAG([0, 1, 2, 3], [(0, 1), (0, 2), (1, 3), (2, 3)])
        F = compute_F(dag, {0: 1.0, 1: 5.0, 2: 2.0, 3: 1.0})
        assert F[3] == 1.0 + max(6.0, 3.0)

    def test_missing_heights(self):
        dag = TaskDAG.empty([0, 1])
        with pytest.raises(InvalidInstanceError):
            compute_F(dag, {0: 1.0})

    def test_F_of_set_empty(self):
        assert F_of_set(TaskDAG.empty([]), {}) == 0.0

    def test_start_lower_bounds(self):
        dag = TaskDAG.chain([0, 1])
        lb = start_lower_bounds(dag, {0: 1.0, 1: 2.0})
        assert lb == {0: 0.0, 1: 1.0}


class TestCriticalPath:
    def test_empty(self):
        assert critical_path(TaskDAG.empty([]), {}) == []

    def test_chain(self):
        dag = TaskDAG.chain([0, 1, 2])
        assert critical_path(dag, {0: 1.0, 1: 1.0, 2: 1.0}) == [0, 1, 2]

    def test_path_weight_equals_F(self):
        dag = TaskDAG([0, 1, 2, 3], [(0, 1), (0, 2), (1, 3), (2, 3)])
        heights = {0: 1.0, 1: 5.0, 2: 2.0, 3: 1.5}
        path = critical_path(dag, heights)
        assert math.isclose(sum(heights[n] for n in path), F_of_set(dag, heights))

    def test_path_is_a_chain(self):
        dag = TaskDAG([0, 1, 2], [(0, 2), (1, 2)])
        heights = {0: 3.0, 1: 1.0, 2: 1.0}
        path = critical_path(dag, heights)
        for u, v in zip(path, path[1:]):
            assert v in dag.successors(u)


@given(dags_over(8), st.data())
def test_F_is_monotone_along_edges(dag, data):
    heights = {
        n: data.draw(st.floats(min_value=0.1, max_value=3.0), label=f"h{n}")
        for n in dag.nodes()
    }
    F = compute_F(dag, heights)
    for u, v in dag.edges():
        assert F[v] >= F[u] + heights[v] - 1e-9


@given(dags_over(8), st.data())
def test_F_at_least_height(dag, data):
    heights = {
        n: data.draw(st.floats(min_value=0.1, max_value=3.0), label=f"h{n}")
        for n in dag.nodes()
    }
    F = compute_F(dag, heights)
    for n in dag.nodes():
        assert F[n] >= heights[n] - 1e-12


@given(dags_over(8), st.data())
def test_critical_path_realises_F(dag, data):
    if len(dag) == 0:
        return
    heights = {
        n: data.draw(st.floats(min_value=0.1, max_value=3.0), label=f"h{n}")
        for n in dag.nodes()
    }
    path = critical_path(dag, heights)
    assert math.isclose(
        sum(heights[n] for n in path), F_of_set(dag, heights), rel_tol=1e-9
    )
    # Path must start at a source and follow edges.
    assert dag.in_degree(path[0]) == 0
    for u, v in zip(path, path[1:]):
        assert v in dag.successors(u)
