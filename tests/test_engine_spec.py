"""Tests for the declarative algorithm spec registry."""

import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.core.registry import available_algorithms
from repro.dag.graph import TaskDAG
from repro.engine import (
    VARIANTS,
    AlgorithmSpec,
    all_specs,
    default_algorithm,
    default_params,
    get_spec,
    spec_table_rows,
    specs_for_variant,
    variant_of,
)


def plain_inst():
    return StripPackingInstance([Rect(rid=i, width=0.25, height=1.0) for i in range(4)])


def release_inst():
    return ReleaseInstance([Rect(rid=0, width=0.5, height=1.0, release=1.0)], K=2)


class TestRegistryCompleteness:
    def test_every_algorithm_has_a_spec(self):
        for name in available_algorithms():
            spec = get_spec(name)
            assert spec.name == name
            assert spec.variants, name
            assert set(spec.variants) <= set(VARIANTS)
            assert spec.guarantee, f"{name} is missing guarantee metadata"

    def test_spec_count_matches_available(self):
        assert len(all_specs()) == len(available_algorithms()) == 13

    def test_unknown_name_raises_dispatcher_error(self):
        with pytest.raises(InvalidInstanceError, match="unknown algorithm"):
            get_spec("quantum_annealer")

    def test_table_rows_cover_all_specs(self):
        rows = spec_table_rows()
        assert {r[0] for r in rows} == set(available_algorithms())
        online = dict((r[0], r[3]) for r in rows)
        assert "online" in online["online_ff"]


class TestVariants:
    def test_variant_of(self):
        assert variant_of(plain_inst()) == "plain"
        assert variant_of(PrecedenceInstance.without_constraints(list(plain_inst().rects))) == "precedence"
        assert variant_of(release_inst()) == "release"

    def test_specs_for_variant(self):
        release_names = {s.name for s in specs_for_variant("release")}
        assert release_names == {
            "aptas", "release_shelf", "release_bl",
            "online_ff", "online_best_fit", "online_shelf",
        }
        assert all("precedence" in s.variants for s in specs_for_variant("precedence"))

    def test_specs_for_unknown_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            specs_for_variant("rotational")


class TestDefaults:
    def test_default_per_variant(self):
        assert default_algorithm(plain_inst()) == "nfdh"
        assert default_algorithm(release_inst()) == "aptas"
        prec = PrecedenceInstance(
            [Rect(rid=i, width=0.4, height=1.0) for i in range(4)],
            TaskDAG(range(4), [(0, 1)]),
        )
        assert default_algorithm(prec) == "shelf_next_fit"  # uniform heights
        mixed = PrecedenceInstance(
            [Rect(rid=i, width=0.4, height=1.0 + 0.1 * i) for i in range(4)],
            TaskDAG(range(4), [(0, 1)]),
        )
        assert default_algorithm(mixed) == "dc"

    def test_aptas_eps_single_source(self):
        """The CLI and the library must both read eps from the spec."""
        from repro.engine.specs import APTAS_DEFAULT_EPS

        assert default_params("aptas") == {"eps": APTAS_DEFAULT_EPS}
        spec = get_spec("aptas")
        assert spec.resolve_params() == {"eps": APTAS_DEFAULT_EPS}
        assert spec.resolve_params({"eps": 1.0}) == {"eps": 1.0}

    def test_default_params_returns_copy(self):
        d = default_params("aptas")
        d["eps"] = 99.0
        assert default_params("aptas")["eps"] != 99.0


class TestSpecValidation:
    def test_requires_enforced(self):
        spec = get_spec("aptas")
        assert spec.accepts(release_inst())
        assert not spec.accepts(plain_inst())
        with pytest.raises(InvalidInstanceError, match="requires a ReleaseInstance"):
            spec.check_instance(plain_inst())

    def test_bad_variants_rejected(self):
        with pytest.raises(ValueError, match="variants"):
            AlgorithmSpec(name="x", variants=("cubic",), guarantee="g", runner=lambda i: None)
        with pytest.raises(ValueError, match="variants"):
            AlgorithmSpec(name="x", variants=(), guarantee="g", runner=lambda i: None)

    def test_bad_requires_rejected(self):
        with pytest.raises(ValueError, match="requires"):
            AlgorithmSpec(
                name="x", variants=("plain",), guarantee="g",
                runner=lambda i: None, requires="cubic",
            )

    def test_duplicate_registration_rejected(self):
        from repro.engine.spec import register

        with pytest.raises(ValueError, match="registered twice"):
            register(get_spec("nfdh"))
