"""Unit tests for placements and the shared validator."""

import pytest
from hypothesis import given

from repro.core.errors import InvalidPlacementError
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.placement import PlacedRect, Placement, find_overlap, validate_placement
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG

from .conftest import rect_lists


def make_placement(pairs):
    p = Placement()
    for rect, x, y in pairs:
        p.place(rect, x, y)
    return p


class TestPlacedRect:
    def test_edges(self):
        pr = PlacedRect(Rect(rid=0, width=0.5, height=2.0), 0.25, 1.0)
        assert pr.x2 == 0.75 and pr.y2 == 3.0

    def test_overlap_detected(self):
        a = PlacedRect(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)
        b = PlacedRect(Rect(rid=1, width=0.5, height=1.0), 0.25, 0.5)
        assert a.overlaps(b) and b.overlaps(a)

    def test_shared_edge_not_overlap(self):
        a = PlacedRect(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)
        b = PlacedRect(Rect(rid=1, width=0.5, height=1.0), 0.5, 0.0)
        assert not a.overlaps(b)

    def test_stacked_not_overlap(self):
        a = PlacedRect(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)
        b = PlacedRect(Rect(rid=1, width=0.5, height=1.0), 0.0, 1.0)
        assert not a.overlaps(b)


class TestPlacement:
    def test_height_empty(self):
        assert Placement().height == 0.0

    def test_height(self):
        r = Rect(rid=0, width=0.5, height=2.0)
        p = make_placement([(r, 0.0, 1.0)])
        assert p.height == 3.0

    def test_double_place_rejected(self):
        r = Rect(rid=0, width=0.5, height=2.0)
        p = make_placement([(r, 0.0, 0.0)])
        with pytest.raises(InvalidPlacementError):
            p.place(r, 0.5, 0.0)

    def test_merge_disjoint(self):
        a = make_placement([(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)])
        b = make_placement([(Rect(rid=1, width=0.5, height=1.0), 0.5, 0.0)])
        a.merge(b)
        assert len(a) == 2

    def test_merge_conflict(self):
        a = make_placement([(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)])
        b = make_placement([(Rect(rid=0, width=0.5, height=1.0), 0.5, 0.0)])
        with pytest.raises(InvalidPlacementError):
            a.merge(b)

    def test_shifted(self):
        p = make_placement([(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)])
        q = p.shifted(2.0)
        assert q[0].y == 2.0 and p[0].y == 0.0

    def test_extent(self):
        p = make_placement(
            [
                (Rect(rid=0, width=0.5, height=1.0), 0.0, 1.0),
                (Rect(rid=1, width=0.5, height=1.0), 0.5, 2.0),
            ]
        )
        assert p.base == 1.0 and p.extent() == 2.0

    def test_non_finite_rejected(self):
        p = Placement()
        with pytest.raises(InvalidPlacementError):
            p.place(Rect(rid=0, width=0.5, height=1.0), float("nan"), 0.0)


class TestFindOverlap:
    def test_none_for_valid(self):
        prs = [
            PlacedRect(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0),
            PlacedRect(Rect(rid=1, width=0.5, height=1.0), 0.5, 0.0),
            PlacedRect(Rect(rid=2, width=1.0, height=1.0), 0.0, 1.0),
        ]
        assert find_overlap(prs) is None

    def test_detects_pair(self):
        prs = [
            PlacedRect(Rect(rid=0, width=0.6, height=1.0), 0.0, 0.0),
            PlacedRect(Rect(rid=1, width=0.6, height=1.0), 0.3, 0.5),
        ]
        found = find_overlap(prs)
        assert found is not None
        assert {found[0].rect.rid, found[1].rect.rid} == {0, 1}


class TestValidatePlacement:
    def test_valid(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.0), (rs[1], 0.5, 0.0)])
        validate_placement(inst, p)

    def test_missing_rect(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.0)])
        with pytest.raises(InvalidPlacementError, match="unplaced"):
            validate_placement(inst, p)

    def test_stray_rect(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.0), (Rect(rid=9, width=0.1, height=0.1), 0.5, 0.0)])
        with pytest.raises(InvalidPlacementError, match="unknown"):
            validate_placement(inst, p)

    def test_out_of_strip_right(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.6, 0.0)])
        with pytest.raises(InvalidPlacementError, match="horizontally"):
            validate_placement(inst, p)

    def test_below_base(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, -0.5)])
        with pytest.raises(InvalidPlacementError, match="below"):
            validate_placement(inst, p)

    def test_overlap(self):
        rs = [Rect(rid=0, width=0.6, height=1.0), Rect(rid=1, width=0.6, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.0), (rs[1], 0.2, 0.2)])
        with pytest.raises(InvalidPlacementError, match="overlap"):
            validate_placement(inst, p)

    def test_altered_dimensions_rejected(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(Rect(rid=0, width=0.4, height=1.0), 0.0, 0.0)])
        with pytest.raises(InvalidPlacementError, match="altered"):
            validate_placement(inst, p)

    def test_height_budget(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.5)])
        with pytest.raises(InvalidPlacementError, match="budget"):
            validate_placement(inst, p, max_height=1.0)

    def test_precedence_ok(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = PrecedenceInstance(rs, TaskDAG([0, 1], [(0, 1)]))
        p = make_placement([(rs[0], 0.0, 0.0), (rs[1], 0.0, 1.0)])
        validate_placement(inst, p)

    def test_precedence_violated(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = PrecedenceInstance(rs, TaskDAG([0, 1], [(0, 1)]))
        p = make_placement([(rs[0], 0.0, 0.0), (rs[1], 0.5, 0.5)])
        with pytest.raises(InvalidPlacementError, match="precedence"):
            validate_placement(inst, p)

    def test_release_ok(self):
        rs = [Rect(rid=0, width=0.5, height=1.0, release=1.0)]
        inst = ReleaseInstance(rs, K=2)
        p = make_placement([(rs[0], 0.0, 1.0)])
        validate_placement(inst, p)

    def test_release_violated(self):
        rs = [Rect(rid=0, width=0.5, height=1.0, release=1.0)]
        inst = ReleaseInstance(rs, K=2)
        p = make_placement([(rs[0], 0.0, 0.5)])
        with pytest.raises(InvalidPlacementError, match="release"):
            validate_placement(inst, p)


@given(rect_lists(min_size=1, max_size=12))
def test_vertical_stack_always_valid(rects):
    """Stacking everything vertically is a universally valid placement."""
    inst = StripPackingInstance(rects)
    p = Placement()
    y = 0.0
    for r in rects:
        p.place(r, 0.0, y)
        y += r.height
    validate_placement(inst, p)
    assert abs(p.height - sum(r.height for r in rects)) < 1e-9


class TestColumnarValidator:
    """The vectorized fast path (n >= 64) agrees with the scalar loops."""

    N = 80  # past the columnar threshold

    def stack(self, n=None, width=0.5):
        rects = [Rect(rid=i, width=width, height=1.0) for i in range(n or self.N)]
        p = make_placement([(r, 0.0, float(i)) for i, r in enumerate(rects)])
        return rects, p

    def test_large_valid_placement_passes(self):
        import numpy as np

        from repro.workloads.random_rects import uniform_rects
        from repro.packing import ffdh

        rects = uniform_rects(300, np.random.default_rng(11))
        validate_placement(StripPackingInstance(rects), ffdh(rects).placement)

    def test_overlap_detected_at_scale(self):
        rects, p = self.stack()
        bad = Rect(rid="bad", width=0.5, height=1.0)
        p.place(bad, 0.25, 0.5)  # overlaps rects 0 and 1
        inst = StripPackingInstance(rects + [bad])
        with pytest.raises(InvalidPlacementError, match="overlap"):
            validate_placement(inst, p)

    def test_containment_detected_at_scale(self):
        rects, p = self.stack(width=0.9)
        bad = Rect(rid="bad", width=0.9, height=1.0)
        p.place(bad, 0.2, float(self.N))  # sticks out on the right
        inst = StripPackingInstance(rects + [bad])
        with pytest.raises(InvalidPlacementError, match="sticks out"):
            validate_placement(inst, p)

    def test_below_base_detected_at_scale(self):
        rects, p = self.stack()
        bad = Rect(rid="bad", width=0.5, height=1.0)
        p.place(bad, 0.0, -0.5)
        inst = StripPackingInstance(rects + [bad])
        with pytest.raises(InvalidPlacementError, match="below the strip base"):
            validate_placement(inst, p)

    def test_height_budget_detected_at_scale(self):
        rects, p = self.stack()
        with pytest.raises(InvalidPlacementError, match="height budget"):
            validate_placement(StripPackingInstance(rects), p, max_height=self.N - 0.5)

    def test_precedence_detected_at_scale(self):
        rects, p = self.stack()
        # Edge demanding rect N-1 above rect 0 — violated (it is above, but
        # flip the edge: rect N-1 must precede rect 0).
        dag = TaskDAG(range(self.N), [(self.N - 1, 0)])
        inst = PrecedenceInstance(rects, dag)
        with pytest.raises(InvalidPlacementError, match="precedence violated"):
            validate_placement(inst, p)

    def test_release_detected_at_scale(self):
        rects = [
            Rect(rid=i, width=0.5, height=1.0, release=2.0 if i == 7 else 0.0)
            for i in range(self.N)
        ]
        p = make_placement([(r, 0.0, float(i)) for i, r in enumerate(rects)])
        # rid=7 sits at y=7 >= release 2 — valid; move its release up.
        inst = ReleaseInstance(
            [r.replace(release=50.0) if r.rid == 7 else r for r in rects], K=2
        )
        p7 = make_placement(
            [(inst.by_id()[r.rid], 0.0, float(i)) for i, r in enumerate(rects)]
        )
        with pytest.raises(InvalidPlacementError, match="release violated"):
            validate_placement(inst, p7)

    @given(rect_lists(min_size=64, max_size=96, max_h=1.5))
    def test_shelf_layouts_valid_both_paths(self, rects):
        """The columnar path accepts what the scalar path accepts."""
        from repro.packing import bfdh

        result = bfdh(rects)
        inst = StripPackingInstance(rects)
        validate_placement(inst, result.placement)  # columnar (n >= 64)
        for rid, pr in list(result.placement.items())[:8]:
            # spot-check the scalar predicates on a sample
            assert 0.0 <= pr.x <= 1.0 - pr.rect.width + 1e-9


def test_find_overlap_engines_agree():
    """Scalar sweep and columnar sweep agree on overlap existence."""
    import numpy as np

    from repro.core.placement import find_overlap_columns

    rng = np.random.default_rng(5)
    for trial in range(20):
        n = 120
        ws = rng.uniform(0.05, 0.4, n)
        xs = rng.uniform(0.0, 0.6, n)
        ys = rng.uniform(0.0, 6.0, n)
        hs = rng.uniform(0.05, 0.8, n)
        placed = [
            PlacedRect(Rect(rid=i, width=float(ws[i]), height=float(hs[i])),
                       float(xs[i]), float(ys[i]))
            for i in range(n)
        ]
        scalar = find_overlap((pr for pr in placed))
        x2 = np.array([pr.x + pr.rect.width for pr in placed])
        y2 = np.array([pr.y + pr.rect.height for pr in placed])
        columnar = find_overlap_columns(
            np.asarray(xs), np.asarray(ys), x2, y2
        )
        assert (scalar is None) == (columnar is None)
        if columnar is not None:
            i, j = columnar
            assert placed[i].overlaps(placed[j])


def test_find_overlap_columns_small_pair_budget():
    """Chunked candidate batches find the pair regardless of budget."""
    import numpy as np

    from repro.core.placement import find_overlap_columns

    n = 70
    xs = np.zeros(n)
    ys = np.arange(n, dtype=float)
    x2 = np.full(n, 0.5)
    y2 = ys + 1.0
    ys[-1] = 10.25  # drop the last rect into the middle of the stack
    y2[-1] = 11.25
    pair = find_overlap_columns(xs, ys, x2, y2, pair_budget=4)
    assert pair is not None
    assert n - 1 in pair and (pair[0] in (10, 11) or pair[1] in (10, 11))
