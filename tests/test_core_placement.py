"""Unit tests for placements and the shared validator."""

import pytest
from hypothesis import given

from repro.core.errors import InvalidPlacementError
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.placement import PlacedRect, Placement, find_overlap, validate_placement
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG

from .conftest import rect_lists


def make_placement(pairs):
    p = Placement()
    for rect, x, y in pairs:
        p.place(rect, x, y)
    return p


class TestPlacedRect:
    def test_edges(self):
        pr = PlacedRect(Rect(rid=0, width=0.5, height=2.0), 0.25, 1.0)
        assert pr.x2 == 0.75 and pr.y2 == 3.0

    def test_overlap_detected(self):
        a = PlacedRect(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)
        b = PlacedRect(Rect(rid=1, width=0.5, height=1.0), 0.25, 0.5)
        assert a.overlaps(b) and b.overlaps(a)

    def test_shared_edge_not_overlap(self):
        a = PlacedRect(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)
        b = PlacedRect(Rect(rid=1, width=0.5, height=1.0), 0.5, 0.0)
        assert not a.overlaps(b)

    def test_stacked_not_overlap(self):
        a = PlacedRect(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)
        b = PlacedRect(Rect(rid=1, width=0.5, height=1.0), 0.0, 1.0)
        assert not a.overlaps(b)


class TestPlacement:
    def test_height_empty(self):
        assert Placement().height == 0.0

    def test_height(self):
        r = Rect(rid=0, width=0.5, height=2.0)
        p = make_placement([(r, 0.0, 1.0)])
        assert p.height == 3.0

    def test_double_place_rejected(self):
        r = Rect(rid=0, width=0.5, height=2.0)
        p = make_placement([(r, 0.0, 0.0)])
        with pytest.raises(InvalidPlacementError):
            p.place(r, 0.5, 0.0)

    def test_merge_disjoint(self):
        a = make_placement([(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)])
        b = make_placement([(Rect(rid=1, width=0.5, height=1.0), 0.5, 0.0)])
        a.merge(b)
        assert len(a) == 2

    def test_merge_conflict(self):
        a = make_placement([(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)])
        b = make_placement([(Rect(rid=0, width=0.5, height=1.0), 0.5, 0.0)])
        with pytest.raises(InvalidPlacementError):
            a.merge(b)

    def test_shifted(self):
        p = make_placement([(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)])
        q = p.shifted(2.0)
        assert q[0].y == 2.0 and p[0].y == 0.0

    def test_extent(self):
        p = make_placement(
            [
                (Rect(rid=0, width=0.5, height=1.0), 0.0, 1.0),
                (Rect(rid=1, width=0.5, height=1.0), 0.5, 2.0),
            ]
        )
        assert p.base == 1.0 and p.extent() == 2.0

    def test_non_finite_rejected(self):
        p = Placement()
        with pytest.raises(InvalidPlacementError):
            p.place(Rect(rid=0, width=0.5, height=1.0), float("nan"), 0.0)


class TestFindOverlap:
    def test_none_for_valid(self):
        prs = [
            PlacedRect(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0),
            PlacedRect(Rect(rid=1, width=0.5, height=1.0), 0.5, 0.0),
            PlacedRect(Rect(rid=2, width=1.0, height=1.0), 0.0, 1.0),
        ]
        assert find_overlap(prs) is None

    def test_detects_pair(self):
        prs = [
            PlacedRect(Rect(rid=0, width=0.6, height=1.0), 0.0, 0.0),
            PlacedRect(Rect(rid=1, width=0.6, height=1.0), 0.3, 0.5),
        ]
        found = find_overlap(prs)
        assert found is not None
        assert {found[0].rect.rid, found[1].rect.rid} == {0, 1}


class TestValidatePlacement:
    def test_valid(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.0), (rs[1], 0.5, 0.0)])
        validate_placement(inst, p)

    def test_missing_rect(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.0)])
        with pytest.raises(InvalidPlacementError, match="unplaced"):
            validate_placement(inst, p)

    def test_stray_rect(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.0), (Rect(rid=9, width=0.1, height=0.1), 0.5, 0.0)])
        with pytest.raises(InvalidPlacementError, match="unknown"):
            validate_placement(inst, p)

    def test_out_of_strip_right(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.6, 0.0)])
        with pytest.raises(InvalidPlacementError, match="horizontally"):
            validate_placement(inst, p)

    def test_below_base(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, -0.5)])
        with pytest.raises(InvalidPlacementError, match="below"):
            validate_placement(inst, p)

    def test_overlap(self):
        rs = [Rect(rid=0, width=0.6, height=1.0), Rect(rid=1, width=0.6, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.0), (rs[1], 0.2, 0.2)])
        with pytest.raises(InvalidPlacementError, match="overlap"):
            validate_placement(inst, p)

    def test_altered_dimensions_rejected(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(Rect(rid=0, width=0.4, height=1.0), 0.0, 0.0)])
        with pytest.raises(InvalidPlacementError, match="altered"):
            validate_placement(inst, p)

    def test_height_budget(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = make_placement([(rs[0], 0.0, 0.5)])
        with pytest.raises(InvalidPlacementError, match="budget"):
            validate_placement(inst, p, max_height=1.0)

    def test_precedence_ok(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = PrecedenceInstance(rs, TaskDAG([0, 1], [(0, 1)]))
        p = make_placement([(rs[0], 0.0, 0.0), (rs[1], 0.0, 1.0)])
        validate_placement(inst, p)

    def test_precedence_violated(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = PrecedenceInstance(rs, TaskDAG([0, 1], [(0, 1)]))
        p = make_placement([(rs[0], 0.0, 0.0), (rs[1], 0.5, 0.5)])
        with pytest.raises(InvalidPlacementError, match="precedence"):
            validate_placement(inst, p)

    def test_release_ok(self):
        rs = [Rect(rid=0, width=0.5, height=1.0, release=1.0)]
        inst = ReleaseInstance(rs, K=2)
        p = make_placement([(rs[0], 0.0, 1.0)])
        validate_placement(inst, p)

    def test_release_violated(self):
        rs = [Rect(rid=0, width=0.5, height=1.0, release=1.0)]
        inst = ReleaseInstance(rs, K=2)
        p = make_placement([(rs[0], 0.0, 0.5)])
        with pytest.raises(InvalidPlacementError, match="release"):
            validate_placement(inst, p)


@given(rect_lists(min_size=1, max_size=12))
def test_vertical_stack_always_valid(rects):
    """Stacking everything vertically is a universally valid placement."""
    inst = StripPackingInstance(rects)
    p = Placement()
    y = 0.0
    for r in rects:
        p.place(r, 0.0, y)
        y += r.height
    validate_placement(inst, p)
    assert abs(p.height - sum(r.height for r in rects)) < 1e-9
