"""Unit tests for Rect and the rectangle helpers."""

import math

import pytest
from hypothesis import given

from repro.core.errors import InvalidInstanceError
from repro.core.rectangle import Rect, check_rects, max_height, max_width, total_area

from .conftest import rect_lists


class TestRectValidation:
    def test_valid_rect(self):
        r = Rect(rid=0, width=0.5, height=2.0)
        assert r.area == 1.0

    def test_zero_width_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Rect(rid=0, width=0.0, height=1.0)

    def test_negative_width_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Rect(rid=0, width=-0.5, height=1.0)

    def test_width_above_one_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Rect(rid=0, width=1.5, height=1.0)

    def test_width_exactly_one_allowed(self):
        assert Rect(rid=0, width=1.0, height=1.0).width == 1.0

    def test_zero_height_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Rect(rid=0, width=0.5, height=0.0)

    def test_negative_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Rect(rid=0, width=0.5, height=1.0, release=-1.0)

    def test_nan_width_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Rect(rid=0, width=float("nan"), height=1.0)

    def test_inf_height_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Rect(rid=0, width=0.5, height=float("inf"))

    def test_release_defaults_to_zero(self):
        assert Rect(rid=0, width=0.5, height=1.0).release == 0.0

    def test_frozen(self):
        r = Rect(rid=0, width=0.5, height=1.0)
        with pytest.raises(AttributeError):
            r.width = 0.7  # type: ignore[misc]


class TestReplace:
    def test_replace_keeps_rid(self):
        r = Rect(rid="a", width=0.5, height=1.0)
        r2 = r.replace(width=0.75)
        assert r2.rid == "a" and r2.width == 0.75 and r2.height == 1.0

    def test_replace_validates(self):
        r = Rect(rid="a", width=0.5, height=1.0)
        with pytest.raises(InvalidInstanceError):
            r.replace(width=2.0)

    def test_replace_release(self):
        r = Rect(rid="a", width=0.5, height=1.0, release=1.0)
        assert r.replace(release=2.0).release == 2.0


class TestAggregates:
    def test_total_area_empty(self):
        assert total_area([]) == 0.0

    def test_total_area(self):
        rs = [Rect(rid=i, width=0.5, height=1.0) for i in range(4)]
        assert math.isclose(total_area(rs), 2.0)

    def test_max_height_empty(self):
        assert max_height([]) == 0.0

    def test_max_width(self):
        rs = [Rect(rid=0, width=0.3, height=1.0), Rect(rid=1, width=0.9, height=0.1)]
        assert max_width(rs) == 0.9

    def test_check_rects_duplicates(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=0, width=0.4, height=1.0)]
        with pytest.raises(InvalidInstanceError):
            check_rects(rs)

    def test_check_rects_mapping(self):
        rs = [Rect(rid="x", width=0.5, height=1.0)]
        assert check_rects(rs)["x"] is rs[0]


@given(rect_lists(max_size=16))
def test_total_area_equals_sum_of_areas(rects):
    assert math.isclose(total_area(rects), sum(r.area for r in rects), abs_tol=1e-12)


@given(rect_lists(min_size=1, max_size=16))
def test_max_height_is_attained(rects):
    hm = max_height(rects)
    assert any(r.height == hm for r in rects)
    assert all(r.height <= hm for r in rects)
