"""Tests for Lemma 3.2 width grouping and the Fig. 3/4 containment chain."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.errors import InvalidInstanceError
from repro.core.instance import ReleaseInstance
from repro.core.rectangle import Rect
from repro.geometry.stacking import contains, stack
from repro.release.grouping import group_widths

from .conftest import release_instances


def inst_of(widths, K=8, releases=None):
    releases = releases or [0.0] * len(widths)
    rects = [
        Rect(rid=i, width=w, height=0.5, release=r)
        for i, (w, r) in enumerate(zip(widths, releases))
    ]
    return ReleaseInstance(rects, K)


class TestValidation:
    def test_W_not_multiple_rejected(self):
        inst = inst_of([0.5, 0.25], releases=[0.0, 1.0])
        with pytest.raises(InvalidInstanceError):
            group_widths(inst, 3)  # 2 classes, 3 not a multiple

    def test_W_nonpositive(self):
        with pytest.raises(InvalidInstanceError):
            group_widths(inst_of([0.5]), 0)


class TestGrouping:
    def test_widths_only_grow(self):
        inst = inst_of([0.5, 0.25, 0.125, 0.75])
        out = group_widths(inst, 2)
        for orig, new in zip(inst.rects, out.instance.rects):
            assert new.width >= orig.width - 1e-12
            assert new.rid == orig.rid

    def test_distinct_width_budget(self, rng):
        widths = [float(w) for w in rng.uniform(0.1, 1.0, size=40)]
        inst = inst_of(widths)
        out = group_widths(inst, 4)
        assert out.n_distinct_widths <= 4

    def test_single_group_rounds_to_max(self):
        inst = inst_of([0.3, 0.5, 0.7])
        out = group_widths(inst, 1)
        assert all(math.isclose(r.width, 0.7) for r in out.instance.rects)

    def test_more_groups_than_rects_noop(self):
        inst = inst_of([0.3, 0.5, 0.7])
        out = group_widths(inst, 8)
        assert sorted(r.width for r in out.instance.rects) == [0.3, 0.5, 0.7]

    def test_per_class_grouping(self):
        inst = inst_of([0.3, 0.9, 0.2, 0.8], releases=[0.0, 0.0, 1.0, 1.0])
        out = group_widths(inst, 2)  # one group per class
        by_id = {r.rid: r for r in out.instance.rects}
        assert math.isclose(by_id[0].width, 0.9)  # class 0 rounds to its max
        assert math.isclose(by_id[2].width, 0.8)  # class 1 rounds to its max

    def test_releases_unchanged(self):
        inst = inst_of([0.3, 0.9], releases=[0.0, 2.0])
        out = group_widths(inst, 2)
        assert [r.release for r in out.instance.rects] == [0.0, 2.0]


class TestContainmentChain:
    """The Lemma 3.2 proof chain P_inf ⊆ P(R) ⊆ P(R,W) ⊆ P_sup, checked
    per release class via stacking containment."""

    @pytest.mark.parametrize("seed", range(6))
    def test_chain_on_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        widths = [float(w) for w in rng.uniform(0.13, 1.0, size=25)]
        releases = [float(rng.choice([0.0, 1.0, 2.0])) for _ in widths]
        inst = inst_of(widths, releases=releases)
        n_classes = len({r.release for r in inst.rects})
        out = group_widths(inst, 4 * n_classes)

        orig_classes = inst.release_classes()
        new_classes = out.instance.release_classes()
        sup_by_release: dict[float, list[Rect]] = {}
        inf_by_release: dict[float, list[Rect]] = {}
        for r in out.sup_rects:
            sup_by_release.setdefault(r.release, []).append(r)
        for r in out.inf_rects:
            inf_by_release.setdefault(r.release, []).append(r)

        for release in orig_classes:
            orig_stack = stack(orig_classes[release])
            new_stack = stack(new_classes[release])
            sup_stack = stack(sup_by_release.get(release, []))
            inf_stack = stack(inf_by_release.get(release, []))
            assert contains(orig_stack, inf_stack), "P_inf ⊆ P(R) fails"
            assert contains(new_stack, orig_stack), "P(R) ⊆ P(R,W) fails"
            assert contains(sup_stack, new_stack), "P(R,W) ⊆ P_sup fails"

    def test_sup_exceeds_inf_by_one_slab_per_class(self, rng):
        widths = [float(w) for w in rng.uniform(0.2, 1.0, size=12)]
        inst = inst_of(widths)
        G = 3
        out = group_widths(inst, G)
        H = stack(inst.rects).height
        # sup has G slabs, inf at most G-1 (top slab has width 0).
        assert len(out.sup_rects) == G
        assert len(out.inf_rects) <= G - 1
        slab_h = H / G
        for r in out.sup_rects:
            assert math.isclose(r.height, slab_h, rel_tol=1e-9)


@settings(deadline=None)
@given(release_instances(K=4, max_size=12))
def test_grouped_instance_valid_and_wider(inst):
    n_classes = len({r.release for r in inst.rects})
    out = group_widths(inst, 2 * n_classes)
    assert len(out.instance.rects) == len(inst.rects)
    by_id = out.instance.by_id()
    for r in inst.rects:
        assert by_id[r.rid].width >= r.width - 1e-12
        assert by_id[r.rid].release == r.release
        assert by_id[r.rid].height == r.height
