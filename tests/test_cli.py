"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialize import dumps_instance
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfo:
    def test_info(self):
        code, text = run_cli(["info"])
        assert code == 0
        assert "repro" in text and "dc" in text and "aptas" in text


class TestDemo:
    def test_demo_runs(self):
        code, text = run_cli(["demo"])
        assert code == 0
        assert "DC height" in text and "APTAS height" in text


class TestSolve:
    @pytest.fixture
    def instance_file(self, tmp_path):
        inst = PrecedenceInstance(
            [Rect(rid=i, width=0.4, height=1.0) for i in range(4)],
            TaskDAG(range(4), [(0, 1), (1, 2)]),
        )
        path = tmp_path / "inst.json"
        path.write_text(dumps_instance(inst))
        return path

    def test_solve_default(self, instance_file):
        code, text = run_cli(["solve", str(instance_file)])
        assert code == 0
        assert "height" in text

    def test_solve_named_algorithm(self, instance_file):
        code, text = run_cli(["solve", str(instance_file), "--algorithm", "dc"])
        assert code == 0

    def test_solve_writes_output(self, instance_file, tmp_path):
        out_path = tmp_path / "placement.json"
        code, text = run_cli(["solve", str(instance_file), "--output", str(out_path)])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert len(data["placements"]) == 4

    def test_solve_render(self, instance_file):
        code, text = run_cli(["solve", str(instance_file), "--render"])
        assert code == 0
        assert "height =" in text

    def test_solve_release_instance_with_eps(self, tmp_path):
        inst = ReleaseInstance(
            [Rect(rid=0, width=0.5, height=1.0, release=1.0)], K=2
        )
        path = tmp_path / "rel.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["solve", str(path), "--eps", "1.0"])
        assert code == 0


class TestBounds:
    def test_bounds(self, tmp_path):
        inst = StripPackingInstance([Rect(rid=0, width=0.5, height=2.0)])
        path = tmp_path / "inst.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["bounds", str(path)])
        assert code == 0
        assert "area" in text and "combined" in text


class TestBatch:
    @pytest.fixture
    def instance_dir(self, tmp_path):
        import numpy as np

        from repro.workloads.suite import mixed_instance_suite, write_instance_dir

        d = tmp_path / "instances"
        write_instance_dir(d, mixed_instance_suite(4, np.random.default_rng(2)))
        return d

    def test_batch_serial(self, instance_dir):
        code, text = run_cli(["batch", str(instance_dir)])
        assert code == 0
        assert "solved 4/4 valid" in text
        assert "instance_000.json" in text

    def test_batch_parallel_jobs(self, instance_dir):
        code, text = run_cli(["batch", str(instance_dir), "--jobs", "3"])
        assert code == 0
        assert "jobs=3" in text

    def test_batch_named_algorithm_reports_invalid_rows(self, instance_dir):
        # dc ignores release times, so forcing it over a mixed directory must
        # surface INVALID rows and a non-zero exit instead of lying.
        code, text = run_cli(["batch", str(instance_dir), "--algorithm", "dc"])
        assert code == 1
        assert "INVALID" in text
        assert "solved" in text

    def test_batch_release_only_algorithm_reports_errors(self, instance_dir):
        # aptas hard-requires a ReleaseInstance; on a mixed directory the
        # incompatible instances must become error rows, not a traceback.
        code, text = run_cli(["batch", str(instance_dir), "--algorithm", "aptas"])
        assert code == 1
        assert "error: InvalidInstanceError" in text
        assert "solved" in text

    def test_batch_empty_dir(self, tmp_path):
        code, text = run_cli(["batch", str(tmp_path)])
        assert code == 2
        assert "no instances" in text

    def test_batch_missing_dir(self, tmp_path):
        code, text = run_cli(["batch", str(tmp_path / "nope")])
        assert code == 2


class TestPortfolio:
    @pytest.fixture
    def release_file(self, tmp_path):
        inst = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(4)], K=2
        )
        path = tmp_path / "rel.json"
        path.write_text(dumps_instance(inst))
        return path

    def test_portfolio_default_race(self, release_file):
        code, text = run_cli(["portfolio", str(release_file)])
        assert code == 0
        assert "winner:" in text and "aptas" in text and "height =" in text

    def test_portfolio_explicit_algorithms(self, release_file):
        code, text = run_cli(
            ["portfolio", str(release_file), "--algorithms", "release_bl,release_shelf"]
        )
        assert code == 0
        assert "release_bl" in text and "release_shelf" in text
        assert "aptas" not in text  # only the requested entrants race

    def test_portfolio_writes_winner(self, release_file, tmp_path):
        out_path = tmp_path / "best.json"
        code, text = run_cli(
            ["portfolio", str(release_file), "--jobs", "2", "--output", str(out_path)]
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert len(data["placements"]) == 4


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])
