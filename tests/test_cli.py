"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialize import dumps_instance
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfo:
    def test_info(self):
        code, text = run_cli(["info"])
        assert code == 0
        assert "repro" in text and "dc" in text and "aptas" in text


class TestDemo:
    def test_demo_runs(self):
        code, text = run_cli(["demo"])
        assert code == 0
        assert "DC height" in text and "APTAS height" in text


class TestSolve:
    @pytest.fixture
    def instance_file(self, tmp_path):
        inst = PrecedenceInstance(
            [Rect(rid=i, width=0.4, height=1.0) for i in range(4)],
            TaskDAG(range(4), [(0, 1), (1, 2)]),
        )
        path = tmp_path / "inst.json"
        path.write_text(dumps_instance(inst))
        return path

    def test_solve_default(self, instance_file):
        code, text = run_cli(["solve", str(instance_file)])
        assert code == 0
        assert "height" in text

    def test_solve_named_algorithm(self, instance_file):
        code, text = run_cli(["solve", str(instance_file), "--algorithm", "dc"])
        assert code == 0

    def test_solve_writes_output(self, instance_file, tmp_path):
        out_path = tmp_path / "placement.json"
        code, text = run_cli(["solve", str(instance_file), "--output", str(out_path)])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert len(data["placements"]) == 4

    def test_solve_render(self, instance_file):
        code, text = run_cli(["solve", str(instance_file), "--render"])
        assert code == 0
        assert "height =" in text

    def test_solve_release_instance_with_eps(self, tmp_path):
        inst = ReleaseInstance(
            [Rect(rid=0, width=0.5, height=1.0, release=1.0)], K=2
        )
        path = tmp_path / "rel.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["solve", str(path), "--eps", "1.0"])
        assert code == 0


class TestBounds:
    def test_bounds(self, tmp_path):
        inst = StripPackingInstance([Rect(rid=0, width=0.5, height=2.0)])
        path = tmp_path / "inst.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["bounds", str(path)])
        assert code == 0
        assert "area" in text and "combined" in text


class TestBatch:
    @pytest.fixture
    def instance_dir(self, tmp_path):
        import numpy as np

        from repro.workloads.suite import mixed_instance_suite, write_instance_dir

        d = tmp_path / "instances"
        write_instance_dir(d, mixed_instance_suite(4, np.random.default_rng(2)))
        return d

    def test_batch_serial(self, instance_dir):
        code, text = run_cli(["batch", str(instance_dir)])
        assert code == 0
        assert "solved 4/4 valid" in text
        assert "instance_000.json" in text

    def test_batch_parallel_jobs(self, instance_dir):
        code, text = run_cli(["batch", str(instance_dir), "--jobs", "3"])
        assert code == 0
        assert "jobs=3" in text

    def test_batch_named_algorithm_reports_invalid_rows(self, instance_dir):
        # dc ignores release times, so forcing it over a mixed directory must
        # surface INVALID rows and a non-zero exit instead of lying.
        code, text = run_cli(["batch", str(instance_dir), "--algorithm", "dc"])
        assert code == 1
        assert "INVALID" in text
        assert "solved" in text

    def test_batch_release_only_algorithm_reports_errors(self, instance_dir):
        # aptas hard-requires a ReleaseInstance; on a mixed directory the
        # incompatible instances must become error rows, not a traceback.
        code, text = run_cli(["batch", str(instance_dir), "--algorithm", "aptas"])
        assert code == 1
        assert "error: InvalidInstanceError" in text
        assert "solved" in text

    def test_batch_process_backend(self, instance_dir):
        code, text = run_cli(["batch", str(instance_dir), "--backend", "process", "--jobs", "2"])
        assert code == 0
        assert "backend=process" in text
        assert "solved 4/4 valid" in text

    @pytest.mark.parametrize("jobs", ["0", "-2"])
    def test_batch_non_positive_jobs_exits_2(self, instance_dir, jobs):
        code, text = run_cli(["batch", str(instance_dir), "--jobs", jobs])
        assert code == 2
        assert text.startswith("error:") and "--jobs" in text

    def test_batch_empty_dir(self, tmp_path):
        code, text = run_cli(["batch", str(tmp_path)])
        assert code == 2
        assert "no instances" in text

    def test_batch_missing_dir(self, tmp_path):
        code, text = run_cli(["batch", str(tmp_path / "nope")])
        assert code == 2


class TestPortfolio:
    @pytest.fixture
    def release_file(self, tmp_path):
        inst = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(4)], K=2
        )
        path = tmp_path / "rel.json"
        path.write_text(dumps_instance(inst))
        return path

    def test_portfolio_default_race(self, release_file):
        code, text = run_cli(["portfolio", str(release_file)])
        assert code == 0
        assert "winner:" in text and "aptas" in text and "height =" in text

    def test_portfolio_explicit_algorithms(self, release_file):
        code, text = run_cli(
            ["portfolio", str(release_file), "--algorithms", "release_bl,release_shelf"]
        )
        assert code == 0
        assert "release_bl" in text and "release_shelf" in text
        assert "aptas" not in text  # only the requested entrants race

    def test_portfolio_writes_winner(self, release_file, tmp_path):
        out_path = tmp_path / "best.json"
        code, text = run_cli(
            ["portfolio", str(release_file), "--jobs", "2", "--output", str(out_path)]
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert len(data["placements"]) == 4

    def test_portfolio_thread_backend_same_winner(self, release_file):
        code_a, text_a = run_cli(["portfolio", str(release_file)])
        code_b, text_b = run_cli(
            ["portfolio", str(release_file), "--backend", "thread", "--jobs", "3"]
        )
        assert code_a == code_b == 0

        def winner(text):  # strip wall time — the only nondeterministic bit
            lines = [ln for ln in text.splitlines() if ln.startswith("winner:")]
            return [ln.split(", wall time")[0] for ln in lines]

        assert winner(text_a) and winner(text_a) == winner(text_b)

    @pytest.mark.parametrize("jobs", ["0", "-1"])
    def test_portfolio_non_positive_jobs_exits_2(self, release_file, jobs):
        code, text = run_cli(["portfolio", str(release_file), "--jobs", jobs])
        assert code == 2
        assert text.startswith("error:") and "--jobs" in text


class TestSimulate:
    def test_poisson_stream_summary(self):
        code, text = run_cli(["simulate", "poisson", "--n", "20", "--K", "6",
                              "--rate", "2", "--seed", "3"])
        assert code == 0
        assert "policy = first_fit" in text and "makespan" in text
        assert "queue depth" in text and "valid = yes" in text

    def test_same_seed_reproduces_output(self):
        argv = ["simulate", "poisson", "--n", "15", "--seed", "9"]
        assert run_cli(argv) == run_cli(argv)

    def test_different_seed_changes_output(self):
        out_a = run_cli(["simulate", "bursty", "--n", "15", "--seed", "1"])[1]
        out_b = run_cli(["simulate", "bursty", "--n", "15", "--seed", "2"])[1]
        assert out_a != out_b

    def test_named_policy_and_events_log(self):
        code, text = run_cli(["simulate", "staircase", "--n", "8",
                              "--policy", "shelf_online", "--events"])
        assert code == 0
        assert "policy = shelf_online" in text and "== events" in text

    def test_replay_instance_file(self, tmp_path):
        inst = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(4)], K=2
        )
        path = tmp_path / "rel.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["simulate", str(path), "--policy", "best_fit_column"])
        assert code == 0
        assert "tasks = 4" in text

    def test_replay_directory(self, tmp_path):
        import numpy as np

        from repro.workloads.suite import mixed_instance_suite, write_instance_dir

        write_instance_dir(tmp_path, mixed_instance_suite(6, np.random.default_rng(4)))
        code, text = run_cli(["simulate", str(tmp_path)])
        assert code == 0 and "valid = yes" in text

    def test_writes_trace_json(self, tmp_path):
        out_path = tmp_path / "trace.json"
        code, text = run_cli(["simulate", "poisson", "--n", "10",
                              "--output", str(out_path)])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["n_tasks"] == 10 and len(data["events"]) == 10

    def test_unknown_policy_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "poisson", "--policy", "oracle"])


class TestSimulateErrors:
    def test_unknown_stream_name(self):
        code, text = run_cli(["simulate", "zipf"])
        assert code == 2 and "unknown stream" in text

    @pytest.mark.parametrize("flag,value", [("--n", "0"), ("--K", "-1"), ("--rate", "0")])
    def test_invalid_parameters(self, flag, value):
        code, text = run_cli(["simulate", "poisson", flag, value])
        assert code == 2 and "error:" in text

    def test_non_release_instance_file(self, tmp_path):
        inst = StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)])
        path = tmp_path / "plain.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["simulate", str(path)])
        assert code == 2 and "release instance" in text

    def test_directory_without_release_instances(self, tmp_path):
        inst = StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)])
        (tmp_path / "plain.json").write_text(dumps_instance(inst))
        code, text = run_cli(["simulate", str(tmp_path)])
        assert code == 2 and "no release instances" in text

    def test_malformed_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        code, text = run_cli(["simulate", str(path)])
        assert code == 2 and "malformed JSON" in text

    def test_off_grid_width_exits_2(self, tmp_path):
        inst = ReleaseInstance([Rect(rid=0, width=0.3, height=1.0)], K=8)
        path = tmp_path / "offgrid.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["simulate", str(path)])
        assert code == 2 and "whole-column widths" in text

    def test_directory_with_malformed_file_exits_2(self, tmp_path):
        inst = ReleaseInstance([Rect(rid=0, width=0.5, height=1.0)], K=2)
        (tmp_path / "good.json").write_text(dumps_instance(inst))
        (tmp_path / "broken.json").write_text("{not json")
        code, text = run_cli(["simulate", str(tmp_path)])
        assert code == 2 and "invalid trace file" in text

    def test_mixed_K_trace_directory_exits_2(self, tmp_path):
        for i, k in enumerate((2, 4)):
            inst = ReleaseInstance([Rect(rid=0, width=1.0 / k, height=1.0)], K=k)
            (tmp_path / f"t{i}.json").write_text(dumps_instance(inst))
        code, text = run_cli(["simulate", str(tmp_path)])
        assert code == 2 and "share one K" in text

    def test_replay_is_never_truncated_to_default_n(self, tmp_path):
        # 60 tasks > the synthetic-stream default of --n 40: replays must
        # run the whole trace.
        inst = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=float(i)) for i in range(60)],
            K=2,
        )
        path = tmp_path / "big.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["simulate", str(path)])
        assert code == 0 and "tasks = 60" in text


class TestInputErrors:
    """Bad instance files exit 2 with a message on every file-reading command."""

    @pytest.fixture
    def broken_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"type": "plain", "rects": [')
        return path

    @pytest.fixture
    def invalid_schema_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"type": "martian", "rects": []}))
        return path

    @pytest.mark.parametrize("command", ["solve", "bounds", "portfolio"])
    def test_malformed_json(self, command, broken_file):
        code, text = run_cli([command, str(broken_file)])
        assert code == 2 and "malformed JSON" in text

    @pytest.mark.parametrize("command", ["solve", "bounds", "portfolio"])
    def test_invalid_instance_schema(self, command, invalid_schema_file):
        code, text = run_cli([command, str(invalid_schema_file)])
        assert code == 2 and "invalid instance" in text

    def test_non_object_json(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        code, text = run_cli(["solve", str(path)])
        assert code == 2 and "invalid instance" in text

    @pytest.mark.parametrize("command", ["solve", "bounds", "portfolio"])
    def test_missing_file(self, command, tmp_path):
        code, text = run_cli([command, str(tmp_path / "nope.json")])
        assert code == 2 and "cannot read" in text

    def test_batch_dir_with_malformed_file(self, tmp_path):
        (tmp_path / "broken.json").write_text("{not json")
        code, text = run_cli(["batch", str(tmp_path)])
        assert code == 2 and "invalid instance file" in text


class TestVersion:
    """``repro --version`` is single-sourced from pyproject.toml."""

    @staticmethod
    def _pyproject_version():
        import re
        from pathlib import Path

        text = (Path(__file__).resolve().parent.parent / "pyproject.toml").read_text()
        return re.search(r'^version\s*=\s*"([^"]+)"', text, re.M).group(1)

    def test_version_flag_matches_pyproject(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {self._pyproject_version()}"

    def test_dunder_version_matches_pyproject(self):
        import repro

        assert repro.__version__ == self._pyproject_version()

    def test_info_reports_the_same_version(self):
        code, text = run_cli(["info"])
        assert code == 0
        assert f"repro {self._pyproject_version()}" in text

    def test_malformed_pyproject_falls_back_to_line_scan(self, monkeypatch):
        """A mid-edit TOML syntax error must not break `import repro`."""
        from repro import _version

        bad = 'garbage [ ===\nname = "repro-augustine-bi06"\nversion = "9.9.9"\n'
        monkeypatch.setattr(_version.Path, "read_text", lambda self, *a, **k: bad)
        assert _version._from_pyproject() == "9.9.9"


class TestServeErrors:
    """``repro serve`` bad input exits 2 with a one-line message."""

    def test_port_in_use_exits_2(self):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        port = sock.getsockname()[1]
        try:
            code, text = run_cli(["serve", "--port", str(port)])
        finally:
            sock.close()
        assert code == 2
        assert text.splitlines()[-1].startswith("error:") and "cannot bind" in text

    def test_out_of_range_port_exits_2(self):
        code, text = run_cli(["serve", "--port", "70000"])
        assert code == 2 and "--port" in text

    @pytest.mark.parametrize("argv, message", [
        (["serve", "--jobs", "0"], "--jobs"),
        (["serve", "--max-batch", "0"], "max_batch"),
        (["serve", "--max-wait-ms", "-1"], "max_wait"),
        (["serve", "--queue-size", "0"], "maxsize"),
        (["serve", "--cache-bytes", "-5"], "max_bytes"),
        (["serve", "--workers", "0"], "--workers"),
        (["serve", "--workers", "2", "--backend", "process"], "--backend process"),
    ])
    def test_bad_parameters_exit_2(self, argv, message):
        code, text = run_cli(argv)
        assert code == 2
        assert text.startswith("error:") and message in text


class TestLoadtest:
    def test_quick_in_process_run(self):
        code, text = run_cli(["loadtest", "--quick", "--algorithm", "nfdh"])
        assert code == 0
        assert "in-process server on http://" in text
        assert "req/s" in text and "latency histogram" in text

    def test_open_mode_and_output(self, tmp_path):
        out_path = tmp_path / "load.json"
        code, text = run_cli([
            "loadtest", "--mode", "open", "--requests", "20", "--rate", "500",
            "--distinct", "1", "--algorithm", "nfdh", "--output", str(out_path),
        ])
        assert code == 0
        assert "lateness" in text
        data = json.loads(out_path.read_text())
        assert data["mode"] == "open" and data["requests"] == 20

    def test_unreachable_url_exits_2(self):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        code, text = run_cli([
            "loadtest", "--url", f"http://127.0.0.1:{port}",
            "--requests", "2", "--quick",
        ])
        assert code == 2 and "cannot reach" in text

    @pytest.mark.parametrize("argv, message", [
        (["loadtest", "--requests", "0"], "--requests"),
        (["loadtest", "--concurrency", "0"], "--concurrency"),
        (["loadtest", "--mode", "open", "--rate", "0"], "--rate"),
        (["loadtest", "--algorithm", "oracle"], "unknown algorithm"),
        (["loadtest", "--rects", "0"], "n_rects"),
        (["loadtest", "--url", "ftp://bad", "--requests", "1"], "http"),
    ])
    def test_bad_parameters_exit_2(self, argv, message):
        code, text = run_cli(argv)
        assert code == 2
        assert text.splitlines()[-1].startswith("error:") and message in text

    def test_unknown_mode_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest", "--mode", "chaos"])


class TestWorkersSweep:
    """``repro loadtest --workers-sweep N,N``: the scaling-curve CLI."""

    def test_sweep_runs_and_writes_one_document(self, tmp_path):
        out_path = tmp_path / "sweep.json"
        code, text = run_cli([
            "loadtest", "--workers-sweep", "1,2", "--requests", "8",
            "--concurrency", "2", "--distinct", "2", "--rects", "8",
            "--algorithm", "nfdh", "--output", str(out_path),
        ])
        assert code == 0
        assert "workers sweep [1, 2]" in text
        assert "speedup" in text and "req/s" in text
        steps = json.loads(out_path.read_text())["sweep"]
        assert [step["workers"] for step in steps] == [1, 2]
        assert steps[0]["speedup"] == pytest.approx(1.0)
        for step in steps:
            assert step["errors"] == 0 and step["requests"] == 8

    @pytest.mark.parametrize("argv, message", [
        (["loadtest", "--workers-sweep", "1,x"], "comma-separated"),
        (["loadtest", "--workers-sweep", "0,2"], "positive"),
        (["loadtest", "--workers-sweep", ","], "positive"),
        (["loadtest", "--workers-sweep", "1",
          "--url", "http://127.0.0.1:1"], "drop --url"),
        (["loadtest", "--workers-sweep", "1", "--mode", "open"], "drop --mode open"),
    ])
    def test_bad_combinations_exit_2(self, argv, message):
        code, text = run_cli(argv)
        assert code == 2
        assert text.splitlines()[-1].startswith("error:") and message in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])
