"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialize import dumps_instance
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfo:
    def test_info(self):
        code, text = run_cli(["info"])
        assert code == 0
        assert "repro" in text and "dc" in text and "aptas" in text


class TestDemo:
    def test_demo_runs(self):
        code, text = run_cli(["demo"])
        assert code == 0
        assert "DC height" in text and "APTAS height" in text


class TestSolve:
    @pytest.fixture
    def instance_file(self, tmp_path):
        inst = PrecedenceInstance(
            [Rect(rid=i, width=0.4, height=1.0) for i in range(4)],
            TaskDAG(range(4), [(0, 1), (1, 2)]),
        )
        path = tmp_path / "inst.json"
        path.write_text(dumps_instance(inst))
        return path

    def test_solve_default(self, instance_file):
        code, text = run_cli(["solve", str(instance_file)])
        assert code == 0
        assert "height" in text

    def test_solve_named_algorithm(self, instance_file):
        code, text = run_cli(["solve", str(instance_file), "--algorithm", "dc"])
        assert code == 0

    def test_solve_writes_output(self, instance_file, tmp_path):
        out_path = tmp_path / "placement.json"
        code, text = run_cli(["solve", str(instance_file), "--output", str(out_path)])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert len(data["placements"]) == 4

    def test_solve_render(self, instance_file):
        code, text = run_cli(["solve", str(instance_file), "--render"])
        assert code == 0
        assert "height =" in text

    def test_solve_release_instance_with_eps(self, tmp_path):
        inst = ReleaseInstance(
            [Rect(rid=0, width=0.5, height=1.0, release=1.0)], K=2
        )
        path = tmp_path / "rel.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["solve", str(path), "--eps", "1.0"])
        assert code == 0


class TestBounds:
    def test_bounds(self, tmp_path):
        inst = StripPackingInstance([Rect(rid=0, width=0.5, height=2.0)])
        path = tmp_path / "inst.json"
        path.write_text(dumps_instance(inst))
        code, text = run_cli(["bounds", str(path)])
        assert code == 0
        assert "area" in text and "combined" in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])
