"""Tests for the online first-fit release scheduler."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.errors import InvalidInstanceError
from repro.core.instance import ReleaseInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.release.online import online_first_fit

from .conftest import release_instances


def inst_of(specs, K=4):
    rects = [
        Rect(rid=i, width=c / K, height=h, release=r)
        for i, (c, h, r) in enumerate(specs)
    ]
    return ReleaseInstance(rects, K)


class TestOnlineFirstFit:
    def test_empty(self):
        res = online_first_fit(inst_of([]))
        assert res.placement.height == 0.0

    def test_single(self):
        res = online_first_fit(inst_of([(2, 1.0, 3.0)]))
        assert math.isclose(res.placement.height, 4.0)

    def test_parallel_when_room(self):
        res = online_first_fit(inst_of([(2, 1.0, 0.0), (2, 1.0, 0.0)]))
        assert math.isclose(res.placement.height, 1.0)

    def test_stacks_when_full(self):
        res = online_first_fit(inst_of([(3, 1.0, 0.0), (3, 1.0, 0.0)]))
        assert math.isclose(res.placement.height, 2.0)

    def test_commit_in_release_order(self):
        res = online_first_fit(inst_of([(1, 1.0, 2.0), (1, 1.0, 0.0)]))
        assert res.commit_order == (1, 0)

    def test_respects_release(self):
        res = online_first_fit(inst_of([(4, 1.0, 0.0), (1, 0.5, 5.0)]))
        assert res.placement[1].y >= 5.0

    def test_fills_gap_left_by_release(self):
        # Full-width at 0, then a 1-col job released at 0.2 starts right
        # after the full-width job ends (columns busy until 1.0).
        res = online_first_fit(inst_of([(4, 1.0, 0.0), (1, 0.5, 0.2)]))
        assert math.isclose(res.placement[1].y, 1.0)

    def test_off_grid_width_rejected(self):
        rects = [Rect(rid=0, width=0.3, height=1.0)]
        with pytest.raises(InvalidInstanceError):
            online_first_fit(ReleaseInstance(rects, K=4))

    def test_valid_on_random(self, rng):
        from repro.workloads.releases import poisson_release_instance

        inst = poisson_release_instance(40, 6, rng, rate=2.0)
        res = online_first_fit(inst)
        validate_placement(inst, res.placement)

    def test_never_beats_fractional_optimum(self, rng):
        from repro.release.lp import optimal_fractional_height
        from repro.workloads.releases import bursty_release_instance

        inst = bursty_release_instance(15, 4, rng, n_bursts=3)
        res = online_first_fit(inst)
        assert res.placement.height >= optimal_fractional_height(inst) - 1e-6


@settings(deadline=None)
@given(release_instances(K=4, max_size=12))
def test_online_valid_under_hypothesis(inst):
    res = online_first_fit(inst)
    validate_placement(inst, res.placement)
    assert res.placement.height >= max(r.release + r.height for r in inst.rects) - 1e-9
