"""Tests for the instrumented runner and SolveReport field correctness."""

import math

import pytest

from repro.core.bounds import (
    area_bound,
    combined_lower_bound,
    critical_path_bound,
    hmax_bound,
    release_bound,
)
from repro.core.errors import InvalidInstanceError
from repro.core.instance import ReleaseInstance, StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.engine import SolveReport, bound_components, run


def plain_inst():
    return StripPackingInstance([Rect(rid=i, width=0.25, height=1.0) for i in range(4)])


def release_inst():
    return ReleaseInstance(
        [Rect(rid=i, width=0.5, height=0.5, release=float(i)) for i in range(3)], K=2
    )


class TestRun:
    def test_report_fields_against_bounds(self):
        inst = plain_inst()
        report = run(inst, "nfdh")
        assert report.algorithm == "nfdh"
        assert report.variant == "plain"
        assert report.n == 4
        assert report.valid is True
        assert report.error is None
        assert report.ok
        assert report.height == report.placement.height
        assert report.lower_bound == combined_lower_bound(inst)
        assert report.bounds["area"] == area_bound(inst)
        assert report.bounds["hmax"] == hmax_bound(inst)
        assert report.ratio == pytest.approx(report.height / combined_lower_bound(inst))
        assert report.ratio >= 1.0 - 1e-12
        assert report.wall_time >= 0.0
        validate_placement(inst, report.placement)

    def test_bound_components_by_variant(self, chain_instance):
        comps = bound_components(chain_instance)
        assert comps["critical_path"] == critical_path_bound(chain_instance)
        rel = release_inst()
        comps = bound_components(rel)
        assert comps["release"] == release_bound(rel)
        assert "critical_path" not in comps

    def test_default_algorithm_used(self):
        report = run(release_inst())
        assert report.algorithm == "aptas"
        assert report.params["eps"] == pytest.approx(0.5)

    def test_params_override_spec_default(self):
        report = run(release_inst(), "aptas", params={"eps": 1.0})
        assert report.params == {"eps": 1.0}
        assert report.valid

    def test_validate_false_leaves_valid_none(self):
        report = run(plain_inst(), "nfdh", validate=False)
        assert report.valid is None
        assert report.ok

    def test_compute_bounds_false(self):
        report = run(plain_inst(), "nfdh", compute_bounds=False)
        assert report.lower_bound is None
        assert report.bounds == {}
        assert report.ratio is None

    def test_requires_enforced_through_run(self):
        with pytest.raises(InvalidInstanceError):
            run(plain_inst(), "aptas")

    def test_label_carried(self):
        assert run(plain_inst(), "nfdh", label="case-7").label == "case-7"


class TestSolveReportObject:
    def test_failed_report_shape(self):
        report = SolveReport(algorithm="x", variant="plain", n=3, error="boom")
        assert not report.ok
        assert report.height == math.inf
        assert report.ratio is None
        assert report.placement is None

    def test_to_dict_roundtrips_scalars(self):
        report = run(plain_inst(), "ffdh", label="d")
        d = report.to_dict()
        assert d["algorithm"] == "ffdh"
        assert d["height"] == report.height
        assert d["lower_bound"] == report.lower_bound
        assert d["ratio"] == report.ratio
        assert d["valid"] is True
        assert d["label"] == "d"
        assert "placement" not in d

    def test_nonpositive_lower_bound_gives_no_ratio(self):
        report = SolveReport(
            algorithm="x", variant="plain", n=0, height=0.0, lower_bound=0.0
        )
        assert report.ratio is None


class TestBackCompatShim:
    def test_solve_returns_plain_placement(self):
        from repro import solve

        inst = plain_inst()
        placement = solve(inst, "nfdh")
        validate_placement(inst, placement)

    def test_solve_kwargs_still_reach_algorithm(self):
        from repro import solve

        p = solve(release_inst(), "aptas", eps=1.0)
        validate_placement(release_inst(), p)
