"""Unit tests for the three instance types."""

import math

import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG


def rects4():
    return [
        Rect(rid=0, width=0.5, height=1.0),
        Rect(rid=1, width=0.25, height=0.5),
        Rect(rid=2, width=0.75, height=0.25),
        Rect(rid=3, width=1.0, height=0.125),
    ]


class TestStripPackingInstance:
    def test_len_iter(self):
        inst = StripPackingInstance(rects4())
        assert len(inst) == 4
        assert [r.rid for r in inst] == [0, 1, 2, 3]

    def test_area(self):
        inst = StripPackingInstance(rects4())
        assert math.isclose(inst.area, 0.5 + 0.125 + 0.1875 + 0.125)

    def test_hmax(self):
        assert StripPackingInstance(rects4()).hmax == 1.0

    def test_by_id(self):
        inst = StripPackingInstance(rects4())
        assert inst.by_id()[2].width == 0.75

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidInstanceError):
            StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)] * 2)

    def test_subset(self):
        inst = StripPackingInstance(rects4())
        sub = inst.subset([3, 1])
        assert [r.rid for r in sub] == [3, 1]

    def test_empty_instance(self):
        inst = StripPackingInstance([])
        assert len(inst) == 0 and inst.area == 0.0 and inst.hmax == 0.0

    def test_heights_mapping(self):
        inst = StripPackingInstance(rects4())
        assert inst.heights() == {0: 1.0, 1: 0.5, 2: 0.25, 3: 0.125}


class TestPrecedenceInstance:
    def test_requires_matching_universe(self):
        with pytest.raises(InvalidInstanceError):
            PrecedenceInstance(rects4(), TaskDAG.empty([0, 1, 2]))

    def test_without_constraints(self):
        inst = PrecedenceInstance.without_constraints(rects4())
        assert inst.dag.n_edges == 0

    def test_uniform_height_false(self):
        inst = PrecedenceInstance.without_constraints(rects4())
        assert not inst.uniform_height()

    def test_uniform_height_true(self):
        rs = [Rect(rid=i, width=0.3, height=1.0) for i in range(3)]
        assert PrecedenceInstance.without_constraints(rs).uniform_height()

    def test_induced_subinstance(self):
        inst = PrecedenceInstance(rects4(), TaskDAG.chain([0, 1, 2, 3]))
        sub = inst.induced([1, 2])
        assert len(sub) == 2
        assert sub.dag.edges() == [(1, 2)]

    def test_cyclic_dag_rejected(self):
        with pytest.raises(InvalidInstanceError):
            PrecedenceInstance(rects4(), TaskDAG([0, 1, 2, 3], [(0, 1), (1, 0)]))


class TestReleaseInstance:
    def test_requires_positive_K(self):
        with pytest.raises(InvalidInstanceError):
            ReleaseInstance(rects4(), K=0)

    def test_rmax(self):
        rs = [
            Rect(rid=0, width=0.5, height=1.0, release=2.0),
            Rect(rid=1, width=0.5, height=1.0, release=5.0),
        ]
        assert ReleaseInstance(rs, K=2).rmax == 5.0

    def test_rmax_empty(self):
        assert ReleaseInstance([], K=2).rmax == 0.0

    def test_release_classes_sorted(self):
        rs = [
            Rect(rid=0, width=0.5, height=1.0, release=2.0),
            Rect(rid=1, width=0.5, height=1.0, release=0.0),
            Rect(rid=2, width=0.5, height=1.0, release=2.0),
        ]
        classes = ReleaseInstance(rs, K=2).release_classes()
        assert list(classes.keys()) == [0.0, 2.0]
        assert [r.rid for r in classes[2.0]] == [0, 2]

    def test_aptas_assumptions_height(self):
        rs = [Rect(rid=0, width=0.5, height=1.5)]
        with pytest.raises(InvalidInstanceError):
            ReleaseInstance(rs, K=2).check_aptas_assumptions()

    def test_aptas_assumptions_width(self):
        rs = [Rect(rid=0, width=0.1, height=0.5)]
        with pytest.raises(InvalidInstanceError):
            ReleaseInstance(rs, K=2).check_aptas_assumptions()

    def test_aptas_assumptions_pass(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        ReleaseInstance(rs, K=2).check_aptas_assumptions()

    def test_with_rects_keeps_K(self):
        inst = ReleaseInstance(rects4(), K=4)
        assert inst.with_rects(rects4()[:2]).K == 4
