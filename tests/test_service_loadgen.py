"""Tests for the load generator (closed/open loops, payloads, histograms)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.service import InProcessServer
from repro.service.loadgen import (
    LoadResult,
    arrival_offsets,
    run_closed_loop,
    run_open_loop,
    solve_payloads,
)


@pytest.fixture(scope="module")
def server():
    with InProcessServer() as srv:
        yield srv


class TestPayloads:
    def test_deterministic_per_seed(self):
        assert solve_payloads(3, seed=5) == solve_payloads(3, seed=5)
        assert solve_payloads(3, seed=5) != solve_payloads(3, seed=6)

    def test_distinct_instances(self):
        bodies = [json.loads(p) for p in solve_payloads(4, n_rects=6)]
        fingerprints = {json.dumps(b["instance"], sort_keys=True) for b in bodies}
        assert len(fingerprints) == 4

    def test_algorithm_and_params_embedded(self):
        (payload,) = solve_payloads(1, algorithm="ffdh", params={"x": 1})
        body = json.loads(payload)
        assert body["algorithm"] == "ffdh" and body["params"] == {"x": 1}

    @pytest.mark.parametrize("kwargs", [{"distinct": 0}, {"distinct": 1, "n_rects": 0}])
    def test_bad_arguments(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            solve_payloads(**kwargs)


class TestArrivals:
    def test_offsets_are_sorted_and_seeded(self):
        a = arrival_offsets(20, rate=50.0, seed=1)
        b = arrival_offsets(20, rate=50.0, seed=1)
        assert a == b and a == sorted(a) and len(a) == 20
        assert arrival_offsets(20, rate=50.0, seed=2) != a

    def test_custom_stream_source(self):
        from repro.core.instance import ReleaseInstance
        from repro.core.rectangle import Rect
        from repro.sim.stream import InstanceStream

        inst = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.25 * i) for i in range(4)], K=2
        )
        offsets = arrival_offsets(3, stream=InstanceStream(inst))
        assert offsets == [0.0, 0.25, 0.5]

    def test_bad_arguments(self):
        with pytest.raises(InvalidInstanceError):
            arrival_offsets(0)
        with pytest.raises(InvalidInstanceError):
            arrival_offsets(5, rate=0.0)


class TestClosedLoop:
    def test_all_ok_and_cache_hits_on_repeats(self, server):
        result = run_closed_loop(
            server.url, solve_payloads(2, algorithm="nfdh", seed=11),
            requests=40, concurrency=4,
        )
        assert result.mode == "closed"
        assert result.requests == 40 and result.errors == 0 and result.ok == 40
        assert result.cache_hits >= 38  # all but the two distinct first solves
        assert result.throughput_rps > 0
        assert result.latency_ms(50) <= result.latency_ms(95)

    def test_cached_hot_path_sustains_100_rps(self, server):
        """ISSUE acceptance: >= 100 req/s on cached requests in-process."""
        payloads = solve_payloads(1, algorithm="ffdh", seed=12)
        run_closed_loop(server.url, payloads, requests=1, concurrency=1)  # warm
        result = run_closed_loop(server.url, payloads, requests=200, concurrency=4)
        assert result.errors == 0
        assert result.throughput_rps >= 100.0

    def test_bad_arguments(self, server):
        payloads = solve_payloads(1)
        with pytest.raises(InvalidInstanceError):
            run_closed_loop(server.url, payloads, requests=0)
        with pytest.raises(InvalidInstanceError):
            run_closed_loop(server.url, payloads, requests=1, concurrency=0)
        with pytest.raises(InvalidInstanceError):
            run_closed_loop(server.url, [], requests=1)
        with pytest.raises(InvalidInstanceError):
            run_closed_loop("ftp://nope", payloads, requests=1)

    def test_unreachable_server_counts_errors(self):
        # A bound-then-closed socket yields a port nothing listens on.
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        result = run_closed_loop(
            f"http://127.0.0.1:{port}", solve_payloads(1), requests=3, concurrency=1,
            timeout=0.5,
        )
        assert result.errors == 3 and result.ok == 0


class TestOpenLoop:
    def test_scheduled_arrivals_complete(self, server):
        result = run_open_loop(
            server.url, solve_payloads(2, algorithm="nfdh", seed=13),
            requests=30, rate=500.0, seed=3,
        )
        assert result.mode == "open"
        assert result.requests == 30 and result.errors == 0
        assert len(result.lateness_s) == 30
        assert result.max_lateness_s >= 0.0
        assert result.cache_hits >= 28

    def test_duration_respects_schedule(self, server):
        """At 100 req/s the last of ~20 arrivals lands well after 50 ms."""
        offsets = arrival_offsets(20, rate=100.0, seed=4)
        result = run_open_loop(
            server.url, solve_payloads(1, algorithm="nfdh"),
            requests=20, rate=100.0, seed=4,
        )
        assert result.duration_s >= offsets[-1]

    def test_bad_arguments(self, server):
        with pytest.raises(InvalidInstanceError):
            run_open_loop(server.url, solve_payloads(1), requests=0)
        with pytest.raises(InvalidInstanceError):
            run_open_loop(server.url, solve_payloads(1), requests=1, max_workers=0)


class TestLoadResult:
    def _result(self, latencies=(0.001, 0.002, 0.004), mode="closed", **kw):
        defaults = dict(
            mode=mode, requests=len(latencies), ok=len(latencies), errors=0,
            cache_hits=1, duration_s=0.5, latencies_s=tuple(latencies),
        )
        defaults.update(kw)
        return LoadResult(**defaults)

    def test_throughput_and_percentiles(self):
        result = self._result()
        assert result.throughput_rps == pytest.approx(6.0)
        assert result.latency_ms(50) == pytest.approx(2.0)
        assert result.latency_ms(99) <= 4.0

    def test_to_dict_and_summary(self):
        result = self._result()
        d = result.to_dict()
        assert d["throughput_rps"] == pytest.approx(6.0)
        assert set(d["latency_ms"]) == {50.0, 95.0, 99.0}
        text = "\n".join(result.summary_lines())
        assert "req/s" in text and "p50/p95/p99" in text

    def test_open_mode_summary_mentions_lateness(self):
        result = self._result(mode="open", lateness_s=(0.0, 0.01))
        assert any("lateness" in line for line in result.summary_lines())
        assert result.max_lateness_s == pytest.approx(0.01)

    def test_histogram_buckets_cover_all_samples(self):
        result = self._result(latencies=(0.0001, 0.0005, 0.0005, 0.02))
        lines = result.histogram_lines(width=10)
        total = sum(int(line.split()[3]) for line in lines)
        assert total == 4
        assert all("ms" in line for line in lines)

    def test_histogram_empty(self):
        result = self._result(latencies=())
        assert result.histogram_lines() == ["(no samples)"]
        assert result.latency_ms(50) == 0.0 and result.throughput_rps == 0.0


class TestSweepWorkers:
    def test_steps_in_input_order_and_error_free(self):
        from repro.service.loadgen import sweep_workers

        payloads = solve_payloads(2, n_rects=8, seed=3, algorithm="nfdh")
        stepped = sweep_workers([1, 2], payloads, requests=6, concurrency=2)
        assert [count for count, _ in stepped] == [1, 2]
        for _, result in stepped:
            assert result.mode == "closed"
            assert result.requests == 6 and result.errors == 0

    def test_bad_arguments(self):
        from repro.service.loadgen import sweep_workers

        payloads = solve_payloads(1, n_rects=4)
        with pytest.raises(InvalidInstanceError, match="non-empty"):
            sweep_workers([], payloads, requests=1)
        with pytest.raises(InvalidInstanceError, match=">= 1"):
            sweep_workers([1, 0], payloads, requests=1)
