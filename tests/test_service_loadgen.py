"""Tests for the load generator (closed/open loops, payloads, histograms)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.service import InProcessServer
from repro.service.loadgen import (
    LoadResult,
    arrival_offsets,
    run_closed_loop,
    run_open_loop,
    run_session_loop,
    session_step_bodies,
    solve_payloads,
)


@pytest.fixture(scope="module")
def server():
    with InProcessServer() as srv:
        yield srv


class TestPayloads:
    def test_deterministic_per_seed(self):
        assert solve_payloads(3, seed=5) == solve_payloads(3, seed=5)
        assert solve_payloads(3, seed=5) != solve_payloads(3, seed=6)

    def test_distinct_instances(self):
        bodies = [json.loads(p) for p in solve_payloads(4, n_rects=6)]
        fingerprints = {json.dumps(b["instance"], sort_keys=True) for b in bodies}
        assert len(fingerprints) == 4

    def test_algorithm_and_params_embedded(self):
        (payload,) = solve_payloads(1, algorithm="ffdh", params={"x": 1})
        body = json.loads(payload)
        assert body["algorithm"] == "ffdh" and body["params"] == {"x": 1}

    @pytest.mark.parametrize("kwargs", [{"distinct": 0}, {"distinct": 1, "n_rects": 0}])
    def test_bad_arguments(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            solve_payloads(**kwargs)


class TestArrivals:
    def test_offsets_are_sorted_and_seeded(self):
        a = arrival_offsets(20, rate=50.0, seed=1)
        b = arrival_offsets(20, rate=50.0, seed=1)
        assert a == b and a == sorted(a) and len(a) == 20
        assert arrival_offsets(20, rate=50.0, seed=2) != a

    def test_custom_stream_source(self):
        from repro.core.instance import ReleaseInstance
        from repro.core.rectangle import Rect
        from repro.sim.stream import InstanceStream

        inst = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.25 * i) for i in range(4)], K=2
        )
        offsets = arrival_offsets(3, stream=InstanceStream(inst))
        assert offsets == [0.0, 0.25, 0.5]

    def test_bad_arguments(self):
        with pytest.raises(InvalidInstanceError):
            arrival_offsets(0)
        with pytest.raises(InvalidInstanceError):
            arrival_offsets(5, rate=0.0)


class TestClosedLoop:
    def test_all_ok_and_cache_hits_on_repeats(self, server):
        result = run_closed_loop(
            server.url, solve_payloads(2, algorithm="nfdh", seed=11),
            requests=40, concurrency=4,
        )
        assert result.mode == "closed"
        assert result.requests == 40 and result.errors == 0 and result.ok == 40
        assert result.cache_hits >= 38  # all but the two distinct first solves
        assert result.throughput_rps > 0
        assert result.latency_ms(50) <= result.latency_ms(95)

    def test_cached_hot_path_sustains_100_rps(self, server):
        """ISSUE acceptance: >= 100 req/s on cached requests in-process."""
        payloads = solve_payloads(1, algorithm="ffdh", seed=12)
        run_closed_loop(server.url, payloads, requests=1, concurrency=1)  # warm
        result = run_closed_loop(server.url, payloads, requests=200, concurrency=4)
        assert result.errors == 0
        assert result.throughput_rps >= 100.0

    def test_bad_arguments(self, server):
        payloads = solve_payloads(1)
        with pytest.raises(InvalidInstanceError):
            run_closed_loop(server.url, payloads, requests=0)
        with pytest.raises(InvalidInstanceError):
            run_closed_loop(server.url, payloads, requests=1, concurrency=0)
        with pytest.raises(InvalidInstanceError):
            run_closed_loop(server.url, [], requests=1)
        with pytest.raises(InvalidInstanceError):
            run_closed_loop("ftp://nope", payloads, requests=1)

    def test_unreachable_server_counts_errors(self):
        # A bound-then-closed socket yields a port nothing listens on.
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        result = run_closed_loop(
            f"http://127.0.0.1:{port}", solve_payloads(1), requests=3, concurrency=1,
            timeout=0.5,
        )
        assert result.errors == 3 and result.ok == 0


class TestOpenLoop:
    def test_scheduled_arrivals_complete(self, server):
        result = run_open_loop(
            server.url, solve_payloads(2, algorithm="nfdh", seed=13),
            requests=30, rate=500.0, seed=3,
        )
        assert result.mode == "open"
        assert result.requests == 30 and result.errors == 0
        assert len(result.lateness_s) == 30
        assert result.max_lateness_s >= 0.0
        assert result.cache_hits >= 28

    def test_duration_respects_schedule(self, server):
        """At 100 req/s the last of ~20 arrivals lands well after 50 ms."""
        offsets = arrival_offsets(20, rate=100.0, seed=4)
        result = run_open_loop(
            server.url, solve_payloads(1, algorithm="nfdh"),
            requests=20, rate=100.0, seed=4,
        )
        assert result.duration_s >= offsets[-1]

    def test_bad_arguments(self, server):
        with pytest.raises(InvalidInstanceError):
            run_open_loop(server.url, solve_payloads(1), requests=0)
        with pytest.raises(InvalidInstanceError):
            run_open_loop(server.url, solve_payloads(1), requests=1, max_workers=0)


class TestLoadResult:
    def _result(self, latencies=(0.001, 0.002, 0.004), mode="closed", **kw):
        defaults = dict(
            mode=mode, requests=len(latencies), ok=len(latencies), errors=0,
            cache_hits=1, duration_s=0.5, latencies_s=tuple(latencies),
        )
        defaults.update(kw)
        return LoadResult(**defaults)

    def test_throughput_and_percentiles(self):
        result = self._result()
        assert result.throughput_rps == pytest.approx(6.0)
        assert result.latency_ms(50) == pytest.approx(2.0)
        assert result.latency_ms(99) <= 4.0

    def test_to_dict_and_summary(self):
        result = self._result()
        d = result.to_dict()
        assert d["throughput_rps"] == pytest.approx(6.0)
        assert set(d["latency_ms"]) == {50.0, 95.0, 99.0}
        text = "\n".join(result.summary_lines())
        assert "req/s" in text and "p50/p95/p99" in text

    def test_open_mode_summary_mentions_lateness(self):
        result = self._result(mode="open", lateness_s=(0.0, 0.01))
        assert any("lateness" in line for line in result.summary_lines())
        assert result.max_lateness_s == pytest.approx(0.01)

    def test_histogram_buckets_cover_all_samples(self):
        result = self._result(latencies=(0.0001, 0.0005, 0.0005, 0.02))
        lines = result.histogram_lines(width=10)
        total = sum(int(line.split()[3]) for line in lines)
        assert total == 4
        assert all("ms" in line for line in lines)

    def test_histogram_empty(self):
        result = self._result(latencies=())
        assert result.histogram_lines() == ["(no samples)"]
        assert result.latency_ms(50) == 0.0 and result.throughput_rps == 0.0

    def test_histogram_single_sample(self):
        result = self._result(latencies=(0.0057,))
        lines = result.histogram_lines(width=10)
        assert len(lines) == 1  # leading empty buckets are skipped
        assert int(lines[0].split()[3]) == 1 and lines[0].endswith("#" * 10)

    def test_zero_duration_has_no_nan_or_crash(self):
        result = self._result(duration_s=0.0)
        assert result.throughput_rps == 0.0
        d = result.to_dict()
        assert d["throughput_rps"] == 0.0
        assert all(v == v for v in d["latency_ms"].values())  # no NaN
        assert any("req/s" in line for line in result.summary_lines())

    def test_open_loop_no_completions(self):
        """All requests failed before dispatch: empty lateness must not crash."""
        result = self._result(latencies=(), mode="open", lateness_s=())
        assert result.max_lateness_s == 0.0
        assert result.to_dict()["max_lateness_s"] == 0.0
        text = "\n".join(result.summary_lines())
        assert "lateness" in text and "0/0" in text

    def test_warm_hits_default_and_round_trip(self):
        assert self._result().warm_hits == 0
        result = self._result(mode="session", warm_hits=2)
        assert result.to_dict()["warm_hits"] == 2
        assert any("warm starts = 2/3" in line for line in result.summary_lines())


class TestSessionLoop:
    def test_step_bodies_grow_by_prefix(self):
        (bodies,) = session_step_bodies(1, 3, base_rects=5, step_rects=2, seed=9)
        sizes = [len(json.loads(b)["instance"]["rects"]) for b in bodies]
        assert sizes == [5, 7, 9]
        again = session_step_bodies(1, 3, base_rects=5, step_rects=2, seed=9)
        assert again == [bodies]
        # step j is a strict prefix extension of step j-1 (by rect id)
        ids = [
            {r["id"] for r in json.loads(b)["instance"]["rects"]} for b in bodies
        ]
        assert ids[0] < ids[1] < ids[2]

    def test_bad_arguments(self):
        for kwargs in (
            {"sessions": 0, "steps": 1},
            {"sessions": 1, "steps": 0},
            {"sessions": 1, "steps": 1, "base_rects": 0},
            {"sessions": 1, "steps": 1, "step_rects": -1},
        ):
            with pytest.raises(InvalidInstanceError):
                session_step_bodies(**kwargs)

    def test_session_loop_warm_hits(self):
        from repro.service.server import SolveServer

        with InProcessServer(SolveServer(warm_delta=0.75)) as srv:
            result = run_session_loop(srv.url, sessions=2, steps=4, seed=21)
        assert result.mode == "session"
        assert result.requests == 8 and result.errors == 0 and result.ok == 8
        # every non-first step repairs the previous step's placement
        assert result.warm_hits >= 6
        assert any("warm starts" in line for line in result.summary_lines())

    def test_cold_server_yields_no_warm_hits(self, server):
        result = run_session_loop(server.url, sessions=1, steps=3, seed=22)
        assert result.requests == 3 and result.errors == 0
        assert result.warm_hits == 0

    def test_bad_run_arguments(self, server):
        with pytest.raises(InvalidInstanceError):
            run_session_loop(server.url, sessions=0)
        with pytest.raises(InvalidInstanceError):
            run_session_loop(server.url, steps=0)

    def test_unreachable_server_records_create_failure(self):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        result = run_session_loop(
            f"http://127.0.0.1:{port}", sessions=2, steps=3, timeout=0.5
        )
        # one error sample per abandoned session, no step samples
        assert result.requests == 2 and result.errors == 2 and result.ok == 0


class TestSweepWorkers:
    def test_steps_in_input_order_and_error_free(self):
        from repro.service.loadgen import sweep_workers

        payloads = solve_payloads(2, n_rects=8, seed=3, algorithm="nfdh")
        stepped = sweep_workers([1, 2], payloads, requests=6, concurrency=2)
        assert [count for count, _ in stepped] == [1, 2]
        for _, result in stepped:
            assert result.mode == "closed"
            assert result.requests == 6 and result.errors == 0

    def test_bad_arguments(self):
        from repro.service.loadgen import sweep_workers

        payloads = solve_payloads(1, n_rects=4)
        with pytest.raises(InvalidInstanceError, match="non-empty"):
            sweep_workers([], payloads, requests=1)
        with pytest.raises(InvalidInstanceError, match=">= 1"):
            sweep_workers([1, 0], payloads, requests=1)
