"""Tests for batch (solve_many) and portfolio execution."""

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.engine import portfolio, run, solve_many
from repro.workloads.suite import mixed_instance_suite, read_instance_dir, write_instance_dir


def suite(n=9, seed=123):
    return mixed_instance_suite(n, np.random.default_rng(seed))


def release_inst():
    return ReleaseInstance(
        [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(6)], K=2
    )


class TestSolveMany:
    def test_serial_matches_parallel_with_fixed_seed(self):
        instances = suite()
        serial = solve_many(instances)
        parallel = solve_many(instances, jobs=4)
        assert [r.height for r in serial] == [r.height for r in parallel]
        assert [r.algorithm for r in serial] == [r.algorithm for r in parallel]
        assert [r.lower_bound for r in serial] == [r.lower_bound for r in parallel]
        assert all(r.valid for r in parallel)

    def test_fixed_seed_reproduces_stream(self):
        heights_a = [r.height for r in solve_many(suite(seed=5))]
        heights_b = [r.height for r in solve_many(suite(seed=5), jobs=3)]
        assert heights_a == heights_b

    def test_order_preserved_and_labels(self):
        instances = suite(6)
        labels = [f"case-{i}" for i in range(6)]
        reports = solve_many(instances, jobs=2, labels=labels)
        assert [r.label for r in reports] == labels
        assert [r.n for r in reports] == [len(i) for i in instances]

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            solve_many(suite(3), labels=["only-one"])

    def test_named_algorithm_applies_to_all(self):
        plain = [i for i in suite(9) if type(i) is StripPackingInstance]
        reports = solve_many(plain, "ffdh")
        assert {r.algorithm for r in reports} == {"ffdh"}

    def test_empty_stream(self):
        assert solve_many([]) == []

    def test_strict_propagates_incompatible_algorithm(self):
        plain = [StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)])]
        with pytest.raises(InvalidInstanceError):
            solve_many(plain, "aptas")

    def test_non_strict_captures_error_reports(self):
        plain = [StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)])]
        reports = solve_many(plain + plain, "aptas", strict=False, jobs=2)
        assert len(reports) == 2
        for r in reports:
            assert r.error is not None and "ReleaseInstance" in r.error
            assert r.placement is None and not r.ok


class TestPortfolio:
    def test_best_is_minimum_height_valid(self):
        result = portfolio(release_inst())
        assert result.best is not None and result.best.valid
        valid_heights = [r.height for r in result.reports if r.valid]
        assert result.best.height == min(valid_heights)

    def test_default_candidates_cover_variant(self):
        result = portfolio(release_inst())
        assert {r.algorithm for r in result.reports} == {
            "aptas", "release_shelf", "release_bl",
            "online_ff", "online_best_fit", "online_shelf",
        }

    def test_never_worse_than_default_solve(self):
        inst = release_inst()
        assert portfolio(inst).best.height <= run(inst).height + 1e-12

    def test_explicit_entrants_and_params(self):
        result = portfolio(
            release_inst(),
            ["aptas", "release_bl"],
            params={"aptas": {"eps": 1.0}},
        )
        by_name = {r.algorithm: r for r in result.reports}
        assert set(by_name) == {"aptas", "release_bl"}
        assert by_name["aptas"].params == {"eps": 1.0}

    def test_incompatible_entrant_becomes_error_report(self):
        plain = StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)])
        result = portfolio(plain, ["nfdh", "aptas"])
        by_name = {r.algorithm: r for r in result.reports}
        assert by_name["aptas"].error is not None
        assert by_name["aptas"].placement is None
        assert result.best.algorithm == "nfdh"

    def test_unknown_entrant_raises(self):
        with pytest.raises(InvalidInstanceError, match="unknown algorithm"):
            portfolio(release_inst(), ["warp_drive"])

    def test_parallel_race_matches_serial(self):
        inst = release_inst()
        serial = portfolio(inst)
        threaded = portfolio(inst, jobs=4)
        assert serial.best.algorithm == threaded.best.algorithm
        assert serial.heights == threaded.heights


class TestInstanceDirRoundtrip:
    def test_write_then_read_then_batch(self, tmp_path):
        instances = suite(5)
        paths = write_instance_dir(tmp_path / "d", instances)
        assert len(paths) == 5
        rpaths, loaded = read_instance_dir(tmp_path / "d")
        assert [p.name for p in rpaths] == sorted(p.name for p in paths)
        assert [len(i) for i in loaded] == [len(i) for i in instances]
        reports = solve_many(loaded, jobs=2, labels=[p.name for p in rpaths])
        assert all(r.valid for r in reports)
