"""Chaos suite: deterministic fault schedules against the sharded service.

Three layers:

* **units** — :class:`FaultSpec`/:class:`FaultPlan` validation and
  round-trips, :class:`FaultInjector` counter determinism and fault
  application, and the cache/queue seams driven directly (no processes);
* **the scenario matrix** — each scenario arms one
  :class:`~repro.service.faults.FaultPlan` against a real two-worker
  fleet via :func:`~repro.service.chaos.run_chaos` and asserts the
  service invariants: zero lost accepted requests, answers
  byte-identical to a fault-free solve (``wall_time`` excluded), and
  ``/healthz`` recovery (waived only where the plan deliberately
  exhausts the respawn budget);
* **the randomized sweep** — seeded plans drawn from the
  liveness-preserving fault kinds, replayed through the same runner:
  whatever combination the seed produces, the invariants must hold.

``repro chaos`` CLI behaviour (exit 0 on pass, exit 1 on violation —
verified with a deliberately broken plan, exit 2 on bad input) is tested
at the bottom.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.errors import InvalidInstanceError
from repro.service.cache import ResultCache
from repro.service.chaos import ChaosReport, run_chaos, run_session_chaos
from repro.service.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    as_injector,
)


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan units
# ----------------------------------------------------------------------

class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown fault site"):
            FaultSpec(site="router.teleport", kind="slow")

    def test_kind_must_match_site(self):
        with pytest.raises(InvalidInstanceError, match="has no kind"):
            FaultSpec(site="queue.drain", kind="crash")

    def test_negative_window_rejected(self):
        with pytest.raises(InvalidInstanceError):
            FaultSpec(site="queue.drain", kind="stall", after=-1)
        with pytest.raises(InvalidInstanceError):
            FaultSpec(site="queue.drain", kind="stall", count=-1)
        with pytest.raises(InvalidInstanceError):
            FaultSpec(site="queue.drain", kind="stall", delay_s=-0.1)

    def test_matches_window_and_worker_scope(self):
        spec = FaultSpec(site="worker.pre_solve", kind="slow", after=2, count=2, worker=1)
        assert [spec.matches(hit, 1) for hit in range(6)] == [
            False, False, True, True, False, False,
        ]
        assert not spec.matches(2, 0)       # wrong worker
        assert spec.matches(2, None)        # unattributed hit: worker filter waived
        forever = FaultSpec(site="worker.pre_solve", kind="slow", after=3, count=0)
        assert forever.matches(3, None) and forever.matches(10_000, None)

    def test_dict_round_trip(self):
        spec = FaultSpec(
            site="cache.spill_write", kind="disk_full", after=4, count=2, worker=0,
            delay_s=0.2,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        # Defaults are omitted from the serialised form.
        assert FaultSpec(site="queue.drain", kind="stall").to_dict() == {
            "site": "queue.drain", "kind": "stall",
        }

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(InvalidInstanceError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"site": "queue.drain", "kind": "stall", "when": 3})
        with pytest.raises(InvalidInstanceError, match="'site' and 'kind'"):
            FaultSpec.from_dict({"site": "queue.drain"})

    def test_every_registered_site_kind_pair_constructs(self):
        for site, kinds in FAULT_SITES.items():
            for kind in kinds:
                assert FaultSpec(site=site, kind=kind).matches(0, None)


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="worker.pre_solve", kind="crash", after=3, worker=0),
                FaultSpec(site="router.recv", kind="truncate", after=1),
            ),
            seed=42,
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.dumps())
        assert FaultPlan.load(path) == plan

    def test_load_errors_are_invalid_instance(self, tmp_path):
        with pytest.raises(InvalidInstanceError, match="cannot read"):
            FaultPlan.load(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(InvalidInstanceError, match="malformed JSON"):
            FaultPlan.load(bad)

    def test_unknown_plan_fields_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown fault plan fields"):
            FaultPlan.from_dict({"seed": 1, "faults": [], "mode": "hard"})

    def test_from_dict_passes_plans_through(self):
        plan = FaultPlan(seed=3)
        assert FaultPlan.from_dict(plan) is plan


# ----------------------------------------------------------------------
# FaultInjector units
# ----------------------------------------------------------------------

class TestFaultInjector:
    PLAN = {
        "seed": 0,
        "faults": [
            {"site": "queue.drain", "kind": "stall", "after": 1, "delay_s": 0.0},
        ],
    }

    def test_counter_based_firing_is_deterministic(self):
        for _ in range(3):
            injector = FaultInjector(self.PLAN)
            fired = [bool(injector.check("queue.drain")) for _ in range(4)]
            assert fired == [False, True, False, False]
            assert injector.fired == 1
            assert injector.stats()["queue.drain"] == {"hits": 4, "fired": 1}

    def test_worker_scoping(self):
        plan = {"faults": [{"site": "worker.pre_solve", "kind": "slow", "worker": 1}]}
        wrong = FaultInjector(plan, worker=0)
        right = FaultInjector(plan, worker=1)
        assert not wrong.check("worker.pre_solve")
        assert right.check("worker.pre_solve")

    def test_fire_sync_error_kinds(self):
        plan = {
            "faults": [
                {"site": "cache.spill_write", "kind": "disk_full", "count": 1},
                {"site": "cache.spill_read", "kind": "io_error", "count": 1},
                {"site": "router.send", "kind": "conn_reset", "count": 1},
            ]
        }
        injector = FaultInjector(plan)
        with pytest.raises(OSError) as exc_info:
            injector.fire_sync("cache.spill_write")
        assert exc_info.value.errno == 28  # ENOSPC
        with pytest.raises(OSError):
            injector.fire_sync("cache.spill_read")
        with pytest.raises(ConnectionResetError):
            injector.fire_sync("router.send")
        # Windows closed: the same sites pass silently afterwards.
        injector.fire_sync("cache.spill_write")
        injector.fire_sync("cache.spill_read")

    def test_check_rejects_unknown_site(self):
        with pytest.raises(InvalidInstanceError, match="unknown fault site"):
            FaultInjector({"faults": []}).check("nonsense.site")

    def test_as_injector_normalisation(self):
        assert as_injector(None) is None
        injector = FaultInjector({"faults": []})
        assert as_injector(injector) is injector
        built = as_injector({"faults": []}, worker=3)
        assert isinstance(built, FaultInjector) and built.worker == 3


# ----------------------------------------------------------------------
# Cache seams driven directly (no processes)
# ----------------------------------------------------------------------

class TestCacheFaultSeams:
    def test_injected_write_failure_drops_entry_silently(self, tmp_path):
        plan = {"faults": [{"site": "cache.spill_write", "kind": "disk_full", "count": 1}]}
        cache = ResultCache(0, spill_dir=tmp_path, faults=as_injector(plan))
        cache.put("k1", b"payload-1")          # spill eaten by injected ENOSPC
        assert cache.get("k1") is None         # lost entry = miss, not an error
        cache.put("k1", b"payload-1")          # window closed: second write lands
        assert cache.get("k1") == b"payload-1"
        assert cache.stats().spills == 1

    def test_injected_read_corruption_is_a_miss_and_recovers(self, tmp_path):
        plan = {"faults": [{"site": "cache.spill_read", "kind": "corrupt", "after": 0, "count": 1}]}
        cache = ResultCache(0, spill_dir=tmp_path, faults=as_injector(plan))
        cache.put("k1", b"payload-1")
        assert cache.get("k1") is None         # truncated mid-file -> miss
        assert cache.stats().corruptions == 1
        cache.put("k1", b"payload-1")          # recompute path overwrites
        assert cache.get("k1") == b"payload-1"

    def test_injected_read_io_error_is_a_miss(self, tmp_path):
        plan = {"faults": [{"site": "cache.spill_read", "kind": "io_error", "count": 1}]}
        cache = ResultCache(0, spill_dir=tmp_path, faults=as_injector(plan))
        cache.put("k1", b"payload-1")
        assert cache.get("k1") is None
        assert cache.stats().corruptions == 0  # unreadable, not corrupt
        assert cache.get("k1") == b"payload-1"


# ----------------------------------------------------------------------
# The scenario matrix (real two-worker fleets)
# ----------------------------------------------------------------------

def _assert_invariants(report: ChaosReport) -> None:
    assert report.lost == 0, report.violations
    assert report.mismatched == 0, report.violations
    assert report.passed, report.violations


class TestChaosMatrix:
    def test_kill_during_batch(self):
        """Worker 0 crashes at its second solve: ring failover + respawn
        must answer everything, byte-identically."""
        plan = {
            "seed": 7,
            "faults": [
                {"site": "worker.pre_solve", "kind": "crash", "after": 1, "worker": 0}
            ],
        }
        report = run_chaos(plan, workers=2, requests=24, n_rects=24)
        _assert_invariants(report)
        assert report.recovered

    def test_kill_after_solve_before_response(self):
        """Worker 0 dies *between* computing and responding: the router
        sees a reset and the successor recomputes the same bytes."""
        plan = {
            "seed": 8,
            "faults": [
                {"site": "worker.post_solve", "kind": "crash", "after": 1, "worker": 0}
            ],
        }
        report = run_chaos(plan, workers=2, requests=24, n_rects=24)
        _assert_invariants(report)
        assert report.retries >= 1  # at least one failover actually happened

    def test_slow_worker_timeout_then_failover(self):
        """An injected 2s stall against a 0.5s request timeout: the router
        retries the slow worker, then fails over without de-ringing it."""
        plan = {
            "seed": 11,
            "faults": [
                {
                    "site": "worker.pre_solve", "kind": "slow",
                    "after": 1, "count": 2, "delay_s": 2.0, "worker": 1,
                }
            ],
        }
        report = run_chaos(
            plan, workers=2, requests=24, n_rects=20,
            request_timeout=0.5, retries=1, backoff_ms=20.0,
        )
        _assert_invariants(report)
        assert report.request_retries >= 1   # the timeout retry policy engaged
        assert report.faults_injected >= 1   # slow survives the process, so counted
        assert report.recovered              # a slow worker is never marked dead

    def test_l2_spill_corruption_served_from_recompute(self, tmp_path):
        """With a 1-byte L1 every answer lives in the shared L2; corrupted
        spill reads must degrade to recompute, never to a 500 or to
        different bytes."""
        plan = {
            "seed": 13,
            "faults": [
                {"site": "cache.spill_read", "kind": "corrupt", "after": 1, "count": 3}
            ],
        }
        report = run_chaos(
            plan, workers=2, requests=20, n_rects=24,
            cache_bytes=1, cache_dir=tmp_path / "l2",
        )
        _assert_invariants(report)
        assert report.faults_injected >= 1

    def test_truncated_response_fails_over(self):
        """A half-written response (injected IncompleteReadError) is a
        connection-level failure: immediate failover, zero loss."""
        # after=0 fires on the router's very first response read — a
        # fresh (unpooled) connection, so the failure cannot be absorbed
        # by the client's pooled-connection retry and must reach _forward.
        plan = {
            "seed": 17,
            "faults": [{"site": "router.recv", "kind": "truncate", "count": 1}],
        }
        report = run_chaos(plan, workers=2, requests=20, n_rects=24)
        _assert_invariants(report)
        assert report.retries >= 1

    def test_session_kill_migrates_sessions_with_zero_lost_steps(self):
        """The committed session-kill plan: a worker dies mid-session.
        The router's soft session registry re-creates every affected
        session on the ring successor — no step may be lost and every
        answer must match the cold baseline."""
        report = run_session_chaos(
            "examples/faultplans/session_kill.json",
            workers=2, sessions=3, steps=4, base_rects=10, step_rects=2,
        )
        _assert_invariants(report)
        assert report.requests == 12
        assert report.recovered

    def test_session_slow_seams_on_single_server(self):
        """Injected latency at the session create/step seams must only
        slow things down, never change status or bytes."""
        plan = {
            "seed": 23,
            "faults": [
                {"site": "session.create", "kind": "slow", "delay_s": 0.2, "count": 1},
                {"site": "session.step", "kind": "slow", "delay_s": 0.2, "count": 1},
            ],
        }
        report = run_session_chaos(
            plan, workers=1, sessions=2, steps=3, base_rects=8, step_rects=2,
        )
        _assert_invariants(report)
        assert report.faults_injected >= 1

    def test_repeated_crash_exhausts_restarts_degraded_but_serving(self):
        """Worker 0 crashes on every solve with a zero respawn budget: the
        fleet ends degraded — but the survivor answers everything."""
        plan = {
            "seed": 19,
            "faults": [
                {"site": "worker.pre_solve", "kind": "crash", "count": 0, "worker": 0}
            ],
        }
        report = run_chaos(
            plan, workers=2, requests=20, n_rects=24,
            max_restarts=0, expect_final_ok=False,
        )
        _assert_invariants(report)           # recovery check waived, loss check not
        assert report.final_health == "degraded"
        assert not report.recovered


# ----------------------------------------------------------------------
# Seeded randomized fault-schedule sweep
# ----------------------------------------------------------------------

#: Faults any plan may combine while still preserving liveness: each is
#: absorbed by retry, failover, respawn, or recompute.
_SURVIVABLE = [
    {"site": "router.send", "kind": "conn_reset"},
    {"site": "router.recv", "kind": "conn_reset"},
    {"site": "router.recv", "kind": "truncate"},
    {"site": "worker.pre_solve", "kind": "slow", "delay_s": 0.3},
    {"site": "worker.post_solve", "kind": "slow", "delay_s": 0.3},
    {"site": "worker.pre_solve", "kind": "crash", "worker": 0, "after": 1},
    {"site": "cache.spill_read", "kind": "io_error"},
    {"site": "cache.spill_read", "kind": "corrupt"},
    {"site": "cache.spill_write", "kind": "disk_full"},
    {"site": "cache.spill_write", "kind": "io_error"},
    {"site": "queue.drain", "kind": "stall", "delay_s": 0.2},
]


def _random_plan(seed: int) -> dict:
    rng = random.Random(seed)
    faults = []
    for template in rng.sample(_SURVIVABLE, rng.randint(2, 4)):
        spec = dict(template)
        spec["after"] = spec.get("after", 0) + rng.randint(0, 3)
        spec["count"] = rng.randint(1, 2)
        faults.append(spec)
    return {"seed": seed, "faults": faults}


class TestRandomizedSweep:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_random_survivable_schedule_preserves_invariants(self, seed, tmp_path):
        plan = _random_plan(seed)
        report = run_chaos(
            plan, workers=2, requests=12, n_rects=20,
            request_timeout=2.0, retries=1, backoff_ms=20.0,
            cache_bytes=64, cache_dir=tmp_path / "l2",
        )
        _assert_invariants(report)

    def test_plans_are_reproducible_per_seed(self):
        assert _random_plan(101) == _random_plan(101)
        assert _random_plan(101) != _random_plan(202)


# ----------------------------------------------------------------------
# CLI: exit codes and the committed example plans
# ----------------------------------------------------------------------

class TestChaosCli:
    def test_committed_worker_kill_plan_passes(self, capsys):
        from repro.cli import main

        code = main([
            "chaos", "examples/faultplans/worker_kill.json",
            "--workers", "2", "--requests", "16", "--rects", "20",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "lost=0" in out and "PASS" in out

    def test_committed_session_kill_plan_passes(self, capsys):
        from repro.cli import main

        code = main([
            "chaos", "examples/faultplans/session_kill.json",
            "--workers", "2", "--sessions", "2", "--steps", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "lost=0" in out and "PASS" in out

    def test_broken_plan_exits_nonzero(self, tmp_path, capsys):
        """The deliberately-broken plan: kill worker 0 forever with no
        respawn budget and still demand a healthy fleet — the runner must
        report the violation and exit 1."""
        from repro.cli import main

        plan_path = tmp_path / "broken.json"
        plan_path.write_text(json.dumps({
            "seed": 1,
            "faults": [
                {"site": "worker.pre_solve", "kind": "crash", "count": 0, "worker": 0}
            ],
        }))
        code = main([
            "chaos", str(plan_path),
            "--workers", "2", "--requests", "12", "--rects", "20",
            "--max-restarts", "0", "--health-deadline", "3",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "/healthz" in out

    def test_bad_plan_file_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["chaos", str(bad)]) == 2
        assert capsys.readouterr().out.startswith("error:")

    def test_unknown_site_in_plan_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "faults": [{"site": "warp.core", "kind": "breach"}]
        }))
        assert main(["chaos", str(plan_path)]) == 2
        assert "error:" in capsys.readouterr().out
