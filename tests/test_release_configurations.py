"""Tests for configuration enumeration (Lemma 3.3 support)."""

import math
from itertools import combinations_with_replacement

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SolverError
from repro.release.configurations import enumerate_configurations


class TestEnumeration:
    def test_single_width_full(self):
        cs = enumerate_configurations([1.0])
        assert cs.Q == 1
        assert cs.configs[0].counts == (1,)

    def test_single_width_half(self):
        cs = enumerate_configurations([0.5])
        # one or two copies of 0.5
        assert {c.counts for c in cs.configs} == {(1,), (2,)}

    def test_quarter_width_counts(self):
        cs = enumerate_configurations([0.25])
        assert {c.counts for c in cs.configs} == {(1,), (2,), (3,), (4,)}

    def test_two_widths(self):
        cs = enumerate_configurations([0.5, 0.25])
        expected = set()
        for a in range(3):
            for b in range(5):
                if a + b >= 1 and 0.5 * a + 0.25 * b <= 1.0 + 1e-9:
                    expected.add((a, b))
        assert {c.counts for c in cs.configs} == expected

    def test_widths_sorted_descending(self):
        cs = enumerate_configurations([0.25, 0.75, 0.5])
        assert cs.widths == (0.75, 0.5, 0.25)

    def test_total_width_never_exceeds_one(self):
        cs = enumerate_configurations([0.3, 0.45, 0.7])
        for c in cs.configs:
            assert c.total_width <= 1.0 + 1e-9

    def test_include_empty(self):
        cs = enumerate_configurations([0.5], include_empty=True)
        assert cs.configs[0].is_empty()

    def test_duplicate_widths_rejected(self):
        with pytest.raises(SolverError):
            enumerate_configurations([0.5, 0.5])

    def test_bad_width_rejected(self):
        with pytest.raises(SolverError):
            enumerate_configurations([1.5])

    def test_max_configs_guard(self):
        widths = [i / 100 for i in range(1, 30)]
        with pytest.raises(SolverError, match="max_configs"):
            enumerate_configurations(widths, max_configs=50)

    def test_matrix_shape_and_counts(self):
        cs = enumerate_configurations([0.5, 0.25])
        A = cs.matrix
        assert A.shape == (2, cs.Q)
        for q, cfg in enumerate(cs.configs):
            assert tuple(int(v) for v in A[:, q]) == cfg.counts

    def test_config_index(self):
        cs = enumerate_configurations([0.5, 0.25])
        q = cs.config_index((1, 2))
        assert cs.configs[q].counts == (1, 2)
        with pytest.raises(KeyError):
            cs.config_index((9, 9))


class TestKBound:
    @pytest.mark.parametrize("K", [2, 3, 4, 5])
    def test_at_most_K_items_per_config(self, K):
        """Widths >= 1/K imply configurations hold at most K rectangles."""
        widths = [c / K for c in range(1, K + 1)]
        cs = enumerate_configurations(widths)
        for c in cs.configs:
            assert c.n_items() <= K

    def test_exhaustive_vs_bruteforce(self):
        """Cross-check the DFS against brute-force multiset enumeration."""
        widths = (0.6, 0.35, 0.2)
        cs = enumerate_configurations(list(widths))
        brute = set()
        for size in range(1, 6):
            for combo in combinations_with_replacement(range(3), size):
                total = sum(widths[i] for i in combo)
                if total <= 1.0 + 1e-9:
                    counts = tuple(combo.count(i) for i in range(3))
                    brute.add(counts)
        assert {c.counts for c in cs.configs} == brute


@settings(deadline=None)
@given(
    st.lists(
        st.integers(min_value=1, max_value=6).map(lambda c: c / 6),
        min_size=1,
        max_size=5,
        unique=True,
    )
)
def test_enumeration_complete_and_feasible(widths):
    cs = enumerate_configurations(widths)
    # Every config feasible; every single-width config present.
    for c in cs.configs:
        assert c.total_width <= 1.0 + 1e-9 and c.n_items() >= 1
    for i in range(len(cs.widths)):
        single = tuple(1 if j == i else 0 for j in range(len(cs.widths)))
        assert any(c.counts == single for c in cs.configs)
