"""Unit tests for shelves/levels."""

import pytest

from repro.core.errors import InvalidPlacementError
from repro.core.placement import Placement
from repro.core.rectangle import Rect
from repro.geometry.levels import Level, LevelStack


class TestLevel:
    def test_fits_empty(self):
        lvl = Level(y=0.0, height=1.0)
        assert lvl.fits(Rect(rid=0, width=1.0, height=1.0))

    def test_fits_partial(self):
        lvl = Level(y=0.0, height=1.0, used_width=0.6)
        assert lvl.fits(Rect(rid=0, width=0.4, height=1.0))
        assert not lvl.fits(Rect(rid=1, width=0.5, height=1.0))

    def test_add_places_left_to_right(self):
        lvl = Level(y=2.0, height=1.0)
        p = Placement()
        lvl.add(Rect(rid=0, width=0.5, height=1.0), p)
        lvl.add(Rect(rid=1, width=0.25, height=0.5), p)
        assert p[0].x == 0.0 and p[0].y == 2.0
        assert p[1].x == 0.5 and p[1].y == 2.0
        assert lvl.used_width == 0.75

    def test_add_overflow_raises(self):
        lvl = Level(y=0.0, height=1.0, used_width=0.9)
        with pytest.raises(InvalidPlacementError):
            lvl.add(Rect(rid=0, width=0.2, height=1.0), Placement())

    def test_top_and_area(self):
        lvl = Level(y=1.0, height=0.5)
        p = Placement()
        lvl.add(Rect(rid=0, width=0.5, height=0.5), p)
        assert lvl.top == 1.5
        assert abs(lvl.filled_area - 0.25) < 1e-12


class TestLevelStack:
    def test_open_stacks_upward(self):
        stack = LevelStack(base=1.0)
        a = stack.open_level(0.5)
        b = stack.open_level(0.25)
        assert a.y == 1.0 and b.y == 1.5
        assert stack.top == 1.75 and stack.extent == 0.75

    def test_empty_stack(self):
        stack = LevelStack(base=2.0)
        assert stack.top == 2.0 and stack.extent == 0.0 and len(stack) == 0

    def test_iteration_order(self):
        stack = LevelStack()
        l1 = stack.open_level(1.0)
        l2 = stack.open_level(1.0)
        assert list(stack) == [l1, l2]
