"""Tests for the simulator's task streams."""

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.sim.stream import (
    GeneratorStream,
    InstanceStream,
    ReplayStream,
    TaskStream,
    poisson_stream,
)


def rel_inst(specs, K=4):
    rects = [
        Rect(rid=i, width=c / K, height=h, release=r)
        for i, (c, h, r) in enumerate(specs)
    ]
    return ReleaseInstance(rects, K)


class TestInstanceStream:
    def test_orders_by_release_then_taller_first(self):
        inst = rel_inst([(1, 0.5, 2.0), (1, 1.0, 0.0), (1, 0.25, 0.0), (1, 0.75, 2.0)])
        order = [r.rid for r in InstanceStream(inst)]
        assert order == [1, 2, 3, 0]

    def test_carries_K_and_len(self):
        inst = rel_inst([(1, 1.0, 0.0)], K=6)
        s = InstanceStream(inst)
        assert s.K == 6 and len(s) == 1

    def test_rejects_non_release_instance(self):
        plain = StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)])
        with pytest.raises(InvalidInstanceError):
            InstanceStream(plain)

    def test_satisfies_protocol(self):
        s = InstanceStream(rel_inst([(1, 1.0, 0.0)]))
        assert isinstance(s, TaskStream)


class TestGeneratorStream:
    def test_wraps_any_iterable(self):
        rects = [Rect(rid=0, width=0.5, height=1.0)]
        assert list(GeneratorStream(2, rects)) == rects

    def test_rejects_bad_K(self):
        with pytest.raises(InvalidInstanceError):
            GeneratorStream(0, [])


class TestPoissonStream:
    def test_seeded_prefix_is_deterministic(self):
        def prefix(seed, n=20):
            it = iter(poisson_stream(8, np.random.default_rng(seed), rate=2.0))
            return [next(it) for _ in range(n)]

        assert prefix(7) == prefix(7)
        assert prefix(7) != prefix(8)

    def test_arrivals_nondecreasing_and_columnar(self):
        it = iter(poisson_stream(5, np.random.default_rng(0), rate=1.5))
        prev = 0.0
        for _ in range(50):
            r = next(it)
            assert r.release >= prev
            assert abs(r.width * 5 - round(r.width * 5)) < 1e-9
            assert 0.1 <= r.height <= 1.0
            prev = r.release

    def test_max_cols_respected(self):
        it = iter(poisson_stream(8, np.random.default_rng(1), max_cols=2))
        assert all(next(it).width <= 2 / 8 + 1e-12 for _ in range(30))

    def test_rejects_bad_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InvalidInstanceError):
            poisson_stream(4, rng, rate=0.0)
        with pytest.raises(InvalidInstanceError):
            poisson_stream(0, rng)
        with pytest.raises(InvalidInstanceError):
            poisson_stream(4, rng, max_cols=9)


class TestReplayStream:
    def test_concatenates_on_one_timeline(self):
        a = rel_inst([(1, 1.0, 0.0), (1, 1.0, 3.0)])
        b = rel_inst([(1, 1.0, 0.0), (1, 1.0, 1.0)])
        rects = list(ReplayStream([("day0", a), ("day1", b)]))
        assert [r.rid for r in rects] == ["day0:0", "day0:1", "day1:0", "day1:1"]
        # day1 arrivals shift to begin at day0's last arrival (rmax = 3).
        assert [r.release for r in rects] == [0.0, 3.0, 3.0, 4.0]

    def test_len_and_monotone(self):
        a = rel_inst([(1, 0.5, 1.0), (2, 1.0, 0.0)])
        s = ReplayStream([("x", a), ("y", a)])
        assert len(s) == 4
        times = [r.release for r in s]
        assert times == sorted(times)

    def test_requires_matching_K(self):
        with pytest.raises(InvalidInstanceError):
            ReplayStream([("a", rel_inst([(1, 1.0, 0.0)], K=2)),
                          ("b", rel_inst([(1, 1.0, 0.0)], K=4))])

    def test_requires_at_least_one_trace(self):
        with pytest.raises(InvalidInstanceError):
            ReplayStream([])

    def test_from_dir_skips_non_release_instances(self, tmp_path):
        from repro.workloads.suite import mixed_instance_suite, write_instance_dir

        suite = mixed_instance_suite(6, np.random.default_rng(5))
        write_instance_dir(tmp_path, suite)
        stream = ReplayStream.from_dir(tmp_path)
        n_release = sum(1 for i in suite if isinstance(i, ReleaseInstance))
        assert n_release > 0
        assert len(stream.traces) == n_release
        assert len(stream) == sum(len(i) for i in suite if isinstance(i, ReleaseInstance))
