"""Tests for the micro-batching request queue.

The contract under test: a request submitted through the batcher resolves
to a report identical to a direct ``engine.run()`` (deterministic fields —
wall time is measured, not computed), batches group compatible requests,
and a full queue sheds load with :class:`BackpressureError`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.core.serialize import placement_to_dict
from repro.engine import run
from repro.service.queue import BackpressureError, MicroBatcher
from repro.workloads.random_rects import powerlaw_rects


def _instances(n, seed=0, size=10):
    rng = np.random.default_rng(seed)
    return [StripPackingInstance(powerlaw_rects(size, rng)) for _ in range(n)]


def _same_report(a, b):
    """Deterministic-field equality between two SolveReports."""
    assert a.algorithm == b.algorithm
    assert a.height == b.height
    assert a.lower_bound == b.lower_bound
    assert dict(a.bounds) == dict(b.bounds)
    assert a.valid == b.valid and a.error == b.error
    assert a.params == b.params and a.label == b.label
    assert placement_to_dict(a.placement) == placement_to_dict(b.placement)


@pytest.fixture
def batcher():
    b = MicroBatcher(max_batch=8, max_wait_s=0.001, maxsize=64)
    yield b
    b.stop()


class TestResults:
    def test_identical_to_direct_run(self, batcher):
        batcher.start()
        (instance,) = _instances(1)
        report = batcher.submit(instance, "ffdh").result(timeout=10)
        _same_report(report, run(instance, "ffdh"))

    def test_default_algorithm_resolution(self, batcher):
        batcher.start()
        (instance,) = _instances(1)
        report = batcher.submit(instance).result(timeout=10)
        _same_report(report, run(instance))

    def test_params_are_honoured(self, batcher):
        batcher.start()
        instance = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(4)],
            K=2,
        )
        report = batcher.submit(instance, "aptas", {"eps": 1.0}).result(timeout=30)
        _same_report(report, run(instance, "aptas", params={"eps": 1.0}))

    def test_incompatible_algorithm_becomes_error_report(self, batcher):
        batcher.start()
        (instance,) = _instances(1)  # plain instance, aptas needs release
        report = batcher.submit(instance, "aptas").result(timeout=10)
        assert report.error is not None and report.placement is None

    def test_unknown_algorithm_becomes_error_report(self, batcher):
        batcher.start()
        (instance,) = _instances(1)
        report = batcher.submit(instance, "oracle").result(timeout=10)
        assert report.error is not None and "unknown algorithm" in report.error


class TestBatching:
    def test_queued_requests_drain_as_one_batch(self):
        """Pre-load the queue before any drain: one drain, grouped fan-out."""
        batcher = MicroBatcher(max_batch=8, maxsize=64)
        instances = _instances(6, seed=1)
        futures = [batcher.submit(inst, "nfdh") for inst in instances]
        assert batcher.depth == 6
        assert batcher.drain_once() == 6
        stats = batcher.stats()
        assert stats.batches == 1 and stats.max_batch == 6
        assert stats.completed == stats.submitted == 6
        assert stats.mean_batch == pytest.approx(6.0)
        for fut, inst in zip(futures, instances):
            _same_report(fut.result(timeout=1), run(inst, "nfdh"))

    def test_mixed_algorithms_grouped_but_all_correct(self):
        batcher = MicroBatcher(max_batch=8, maxsize=64)
        instances = _instances(4, seed=2)
        futures = [
            batcher.submit(inst, algo)
            for inst, algo in zip(instances, ["nfdh", "ffdh", "nfdh", "bfdh"])
        ]
        batcher.drain_once()
        for fut, inst, algo in zip(futures, instances, ["nfdh", "ffdh", "nfdh", "bfdh"]):
            _same_report(fut.result(timeout=1), run(inst, algo))

    def test_max_batch_caps_one_drain(self):
        batcher = MicroBatcher(max_batch=3, maxsize=64)
        for inst in _instances(5, seed=3):
            batcher.submit(inst, "nfdh")
        assert batcher.drain_once() == 3
        assert batcher.depth == 2
        assert batcher.drain_once() == 2
        assert batcher.stats().max_batch == 3

    def test_distinct_params_solve_in_distinct_groups(self):
        batcher = MicroBatcher(max_batch=8, maxsize=64)
        instance = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(4)],
            K=2,
        )
        f1 = batcher.submit(instance, "aptas", {"eps": 1.0})
        f2 = batcher.submit(instance, "aptas", {"eps": 0.5})
        batcher.drain_once()
        r1, r2 = f1.result(timeout=30), f2.result(timeout=30)
        assert r1.params["eps"] == 1.0 and r2.params["eps"] == 0.5

    def test_thread_backend_matches_serial(self):
        serial = MicroBatcher(maxsize=64)
        threaded = MicroBatcher(backend="thread", jobs=3, maxsize=64)
        instances = _instances(5, seed=4)
        fs = [serial.submit(i, "ffdh") for i in instances]
        ft = [threaded.submit(i, "ffdh") for i in instances]
        serial.drain_once()
        threaded.drain_once()
        for a, b in zip(fs, ft):
            _same_report(a.result(timeout=1), b.result(timeout=1))


class TestBackpressureAndLifecycle:
    def test_full_queue_rejects(self):
        batcher = MicroBatcher(maxsize=2)
        instances = _instances(3, seed=5)
        batcher.submit(instances[0])
        batcher.submit(instances[1])
        with pytest.raises(BackpressureError, match="full"):
            batcher.submit(instances[2])
        stats = batcher.stats()
        assert stats.rejected == 1 and stats.submitted == 2

    def test_stop_fails_pending_and_rejects_new(self):
        batcher = MicroBatcher(maxsize=8)
        (instance,) = _instances(1, seed=6)
        fut = batcher.submit(instance)
        batcher.stop()
        with pytest.raises(BackpressureError):
            fut.result(timeout=1)
        with pytest.raises(BackpressureError, match="stopped"):
            batcher.submit(instance)

    def test_start_is_idempotent_and_restartable(self):
        batcher = MicroBatcher(maxsize=8)
        assert batcher.start() is batcher
        batcher.start()
        batcher.stop()
        batcher.start()  # restart after stop
        (instance,) = _instances(1, seed=7)
        assert batcher.submit(instance, "nfdh").result(timeout=10).valid
        batcher.stop()

    @pytest.mark.parametrize(
        "kwargs", [{"max_batch": 0}, {"max_wait_s": -1}, {"maxsize": 0},
                   {"backend": "warp"}, {"jobs": 0}]
    )
    def test_bad_construction_rejected(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            MicroBatcher(**kwargs)


class TestGracefulDrain:
    def test_drain_answers_everything_accepted(self):
        """drain() with a live thread: accepted requests all resolve to
        reports (never BackpressureError), then the batcher is stopped."""
        batcher = MicroBatcher(max_batch=4, max_wait_s=0.001, maxsize=64)
        instances = _instances(10, seed=8)
        batcher.start()
        futures = [batcher.submit(inst, "nfdh") for inst in instances]
        batcher.drain(timeout=30)
        for fut, inst in zip(futures, instances):
            _same_report(fut.result(timeout=0), run(inst, "nfdh"))
        stats = batcher.stats()
        assert stats.completed == stats.submitted == 10 and stats.depth == 0

    def test_drain_refuses_new_submits_with_a_distinct_message(self):
        batcher = MicroBatcher(maxsize=8).start()
        (instance,) = _instances(1, seed=9)
        batcher.drain(timeout=5)
        with pytest.raises(BackpressureError, match="stopped"):
            # after drain() returns, the batcher is fully stopped
            batcher.submit(instance)

    def test_drain_without_thread_flushes_inline(self):
        """The unit-test path: no drain thread ever started, drain() still
        answers the queue synchronously."""
        batcher = MicroBatcher(max_batch=4, maxsize=64)
        instances = _instances(6, seed=10)
        futures = [batcher.submit(inst, "ffdh") for inst in instances]
        batcher.drain(timeout=5)
        for fut, inst in zip(futures, instances):
            _same_report(fut.result(timeout=0), run(inst, "ffdh"))

    def test_submit_during_drain_is_rejected_as_draining(self):
        """The drain flag (set before the queue empties) produces the
        drain-specific message the server maps to 503."""
        batcher = MicroBatcher(maxsize=8)
        (instance,) = _instances(1, seed=11)
        batcher._draining.set()  # as drain() does first
        with pytest.raises(BackpressureError, match="draining for shutdown"):
            batcher.submit(instance)

    def test_drain_is_reentrant_with_stop(self):
        batcher = MicroBatcher(maxsize=8).start()
        batcher.drain(timeout=5)
        batcher.stop()  # no error, no hang

    def test_drain_with_nonempty_queue_and_injected_stall(self):
        """A queue.drain stall fault slows every batch tick, but drain()
        still answers everything that was accepted before it started."""
        from repro.service.faults import FaultInjector

        injector = FaultInjector(
            {"faults": [{"site": "queue.drain", "kind": "stall",
                         "count": 0, "delay_s": 0.05}]}
        )
        batcher = MicroBatcher(
            max_batch=2, max_wait_s=0.001, maxsize=64, faults=injector
        )
        instances = _instances(8, seed=12)
        futures = [batcher.submit(inst, "nfdh") for inst in instances]
        batcher.drain(timeout=30)  # queue is non-empty when drain begins
        for fut, inst in zip(futures, instances):
            _same_report(fut.result(timeout=0), run(inst, "nfdh"))
        assert injector.fired >= 4  # 8 requests / max_batch 2 → ≥4 stalled ticks
        stats = batcher.stats()
        assert stats.completed == stats.submitted == 8 and stats.depth == 0
