"""Cross-module integration tests: full pipelines spanning several
subsystems, mirroring how a downstream user composes the library."""

import math

import numpy as np
import pytest

from repro import solve, validate_placement
from repro.core.bounds import combined_lower_bound
from repro.core.serialize import dumps_instance, loads_instance, placement_to_dict
from repro.exact.branch_and_bound import solve_exact
from repro.fpga.device import Device, quantize_instance
from repro.fpga.schedule import schedule_from_placement
from repro.fpga.simulator import simulate
from repro.precedence.bin_packing import (
    bins_to_placement,
    precedence_first_fit_decreasing,
    strip_to_bin_instance,
)
from repro.precedence.dc import dc_pack
from repro.precedence.ggjy_first_fit import ggjy_first_fit
from repro.precedence.shelf_conversion import is_shelf_solution, to_shelf_solution
from repro.precedence.shelf_nextfit import shelf_next_fit
from repro.release.aptas import aptas
from repro.workloads.dags import uniform_height_precedence_instance
from repro.workloads.jpeg import jpeg_pipeline_instance
from repro.workloads.releases import bursty_release_instance


class TestPrecedencePipeline:
    """DC -> device schedule -> simulator, then the Section 2.2 loop:
    shelf algorithm <-> bin packing <-> shelf conversion."""

    def test_quantize_solve_schedule_simulate(self, rng):
        from repro.workloads.dags import random_precedence_instance

        K = 8
        inst = random_precedence_instance(24, 0.1, rng)  # continuous widths
        device = Device(K=K)
        q = quantize_instance(inst, K)
        result = dc_pack(q)
        validate_placement(q, result.placement)
        # Transfer to the original (narrower) instance.
        rebound = {rid: pr for rid, pr in result.placement.items()}
        from repro.core.placement import Placement

        original = Placement()
        for rid, pr in rebound.items():
            original.place(inst.by_id()[rid], pr.x, pr.y)
        validate_placement(inst, original)
        # Execute the quantised placement on the device.
        sched = schedule_from_placement(result.placement, device)
        sched.validate(dag=inst.dag)
        rep = simulate(sched)
        assert math.isclose(rep.makespan, result.height, abs_tol=1e-9)

    def test_uniform_height_triangle(self, rng):
        """shelf_next_fit, bin-packing round trip and shelf conversion all
        agree on feasibility and heights relate as proven."""
        inst = uniform_height_precedence_instance(30, 0.08, rng)
        # Algorithm F directly.
        run = shelf_next_fit(inst)
        validate_placement(inst, run.placement)
        # Through the bin equivalence with two different bin algorithms.
        bin_inst = strip_to_bin_instance(inst)
        for algo in (precedence_first_fit_decreasing, ggjy_first_fit):
            assignment = algo(bin_inst)
            assignment.validate(bin_inst)
            placement = bins_to_placement(inst, assignment)
            validate_placement(inst, placement)
            assert is_shelf_solution(placement, 1.0)
        # Slide-down conversion of F's own output is a no-op height-wise.
        converted = to_shelf_solution(inst, run.placement)
        assert converted.height <= run.placement.height + 1e-9

    def test_exact_certifies_dc_on_small_jpeg(self):
        dev = Device(K=4)
        inst = jpeg_pipeline_instance(2, dev)
        dc_h = dc_pack(inst).height
        exact = solve_exact(inst, K=4, max_nodes=1_500_000)
        validate_placement(inst, exact.placement)
        assert exact.height <= dc_h + 1e-9
        assert dc_h <= (2 + math.log2(len(inst) + 1)) * exact.height + 1e-7


class TestReleasePipeline:
    def test_aptas_to_device(self, rng):
        K = 4
        inst = bursty_release_instance(20, K, rng, n_bursts=3)
        res = aptas(inst, eps=1.0)
        validate_placement(inst, res.placement)
        sched = schedule_from_placement(res.placement, Device(K=K))
        sched.validate(releases={r.rid: r.release for r in inst.rects})
        rep = simulate(sched)
        assert math.isclose(rep.makespan, res.height, abs_tol=1e-9)

    def test_exact_certifies_aptas_on_tiny_instance(self, rng):
        K = 3
        inst = bursty_release_instance(6, K, rng, n_bursts=2)
        res = aptas(inst, eps=1.0)
        exact = solve_exact(inst, K=K, max_nodes=1_000_000)
        assert exact.height <= res.height + 1e-9


class TestSerializationPipeline:
    def test_json_round_trip_preserves_solution_quality(self, rng):
        from repro.workloads.dags import random_precedence_instance

        inst = random_precedence_instance(15, 0.1, rng)
        text = dumps_instance(inst)
        restored = loads_instance(text)
        h1 = solve(inst).height
        h2 = solve(restored).height
        assert math.isclose(h1, h2)

    def test_solve_registry_matches_direct_calls(self, rng):
        from repro.workloads.dags import random_precedence_instance

        inst = random_precedence_instance(15, 0.1, rng)
        assert math.isclose(solve(inst, "dc").height, dc_pack(inst).height)


class TestLowerBoundConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_every_algorithm_respects_every_bound(self, seed):
        from repro.workloads.dags import random_precedence_instance

        rng = np.random.default_rng(seed)
        inst = random_precedence_instance(18, 0.1, rng)
        lb = combined_lower_bound(inst)
        for algo in ("dc", "list_schedule"):
            h = solve(inst, algo).height
            assert h >= lb - 1e-9
