"""Tests for the sharded solve service: ring, router, failover, L2 tier.

The consistent-hash :class:`~repro.service.router.HashRing` is unit-tested
for determinism and minimal key movement; everything else runs a real
:class:`~repro.service.router.RouterServer` fleet — worker *processes*
spawned over loopback — probed through the same ``http.client`` path as
the single-process server tests.  The acceptance contract lives here:
responses are byte-identical to the non-sharded path (modulo ``wall_time``),
killing a worker mid-load loses no accepted request, ``/healthz`` reports
``degraded`` then ``ok`` around a respawn, and two workers sharing a
``cache_dir`` observe each other's disk spills as L2 hits.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.core.serialize import instance_to_dict
from repro.service import InProcessServer, RouterServer, SolveServer
from repro.service.router import HashRing, WorkerHandle
from repro.service.server import parse_json_body, resolve_solve_request


# ----------------------------------------------------------------------
# HashRing units
# ----------------------------------------------------------------------

class TestHashRing:
    def test_lookup_is_deterministic_and_total(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(200)]
        first = [ring.node_for(k) for k in keys]
        assert first == [ring.node_for(k) for k in keys]
        assert set(first) <= {"a", "b", "c"}

    def test_replicas_spread_the_key_space(self):
        ring = HashRing(["a", "b", "c"])
        counts = {"a": 0, "b": 0, "c": 0}
        for i in range(3000):
            counts[ring.node_for(f"key-{i}")] += 1
        # 64 virtual points per node keep every shard within a loose
        # band of fair share (1000); a naive mod-N ring would be exact,
        # a single-point ring could starve a node entirely.
        assert min(counts.values()) > 400

    def test_removing_a_node_moves_only_its_keys(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("b")
        for key, owner in before.items():
            if owner != "b":
                assert ring.node_for(key) == owner  # survivors keep their arcs
            else:
                assert ring.node_for(key) in ("a", "c")

    def test_adding_a_node_only_steals_keys(self):
        ring = HashRing(["a", "b"])
        keys = [f"key-{i}" for i in range(500)]
        before = {k: ring.node_for(k) for k in keys}
        ring.add("c")
        moved = 0
        for key, owner in before.items():
            after = ring.node_for(key)
            if after != owner:
                assert after == "c"  # keys never shuffle between old nodes
                moved += 1
        assert 0 < moved < len(keys)

    def test_add_and_remove_are_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring) == 1
        ring.remove("ghost")
        ring.remove("a")
        ring.remove("a")
        assert len(ring) == 0 and ring.node_for("x") is None

    def test_preference_starts_at_owner_and_covers_all_nodes(self):
        ring = HashRing(["a", "b", "c", "d"])
        for i in range(50):
            order = ring.preference(f"key-{i}")
            assert order[0] == ring.node_for(f"key-{i}")
            assert sorted(order) == ["a", "b", "c", "d"]  # each exactly once

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.node_for("k") is None and ring.preference("k") == []
        assert len(ring) == 0 and "a" not in ring

    def test_bad_replicas_raises(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


# ----------------------------------------------------------------------
# a live two-worker fleet
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fleet():
    with InProcessServer(RouterServer(workers=2)) as srv:
        yield srv


@pytest.fixture()
def conn(fleet):
    connection = http.client.HTTPConnection(fleet.host, fleet.port, timeout=30)
    yield connection
    connection.close()


def _request(conn, method, path, body=None, headers=None):
    payload = json.dumps(body).encode() if isinstance(body, dict) else body
    base = {"Content-Type": "application/json"} if payload else {}
    conn.request(method, path, body=payload, headers={**base, **(headers or {})})
    response = conn.getresponse()
    raw = response.read()
    return response.status, dict(response.getheaders()), raw


def _solve_body(n=6, seed=0, algorithm="ffdh"):
    import numpy as np

    from repro.core.instance import StripPackingInstance
    from repro.workloads.random_rects import powerlaw_rects

    instance = StripPackingInstance(powerlaw_rects(n, np.random.default_rng(seed)))
    return {"instance": instance_to_dict(instance), "algorithm": algorithm}


def _result_key(body: dict) -> str:
    key, _name, _params, _instance = resolve_solve_request(
        parse_json_body(json.dumps(body).encode())
    )
    return key


def _normalized(raw: bytes) -> dict:
    data = json.loads(raw)
    data["report"]["wall_time"] = 0.0
    return data


class TestRoutedSolve:
    def test_healthz_reports_full_fleet(self, conn):
        status, _, raw = _request(conn, "GET", "/healthz")
        data = json.loads(raw)
        assert status == 200 and data["status"] == "ok"
        assert data["workers"] == {"total": 2, "alive": 2, "restarts": 0}

    def test_solve_misses_then_hits_byte_identical(self, conn):
        body = _solve_body(seed=10)
        s1, h1, raw1 = _request(conn, "POST", "/solve", body)
        s2, h2, raw2 = _request(conn, "POST", "/solve", body)
        assert (s1, s2) == (200, 200)
        assert h1["X-Repro-Cache"] == "miss" and h2["X-Repro-Cache"] == "hit"
        assert raw1 == raw2  # key affinity: the repeat lands on the same L1

    def test_matches_single_process_server(self):
        """Same body through 1 worker and through the fleet: identical
        responses once the only nondeterministic field (wall_time) is
        normalized — the sharded path must be invisible to clients."""
        body = _solve_body(n=9, seed=11, algorithm="bottom_left")
        with InProcessServer(SolveServer()) as solo:
            c = http.client.HTTPConnection(solo.host, solo.port, timeout=30)
            try:
                _, _, raw_solo = _request(c, "POST", "/solve", body)
            finally:
                c.close()
        with InProcessServer(RouterServer(workers=2)) as routed:
            c = http.client.HTTPConnection(routed.host, routed.port, timeout=30)
            try:
                _, _, raw_fleet = _request(c, "POST", "/solve", body)
            finally:
                c.close()
        assert _normalized(raw_solo) == _normalized(raw_fleet)

    def test_portfolio_routes_and_caches(self, conn):
        from repro.core.instance import ReleaseInstance
        from repro.core.rectangle import Rect

        instance = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(4)], K=2
        )
        body = {
            "instance": instance_to_dict(instance),
            "algorithms": ["release_bl", "release_shelf"],
        }
        s1, h1, raw1 = _request(conn, "POST", "/portfolio", body)
        s2, h2, raw2 = _request(conn, "POST", "/portfolio", body)
        assert (s1, s2) == (200, 200)
        assert h1["X-Repro-Cache"] == "miss" and h2["X-Repro-Cache"] == "hit"
        assert raw1 == raw2

    def test_error_mapping_matches_single_process(self, conn):
        status, _, raw = _request(conn, "POST", "/solve", b"{not json")
        assert status == 400 and "malformed JSON" in json.loads(raw)["error"]
        body = _solve_body()
        body["algorithm"] = "oracle"
        status, _, raw = _request(conn, "POST", "/solve", body)
        assert status == 422 and "unknown algorithm" in json.loads(raw)["error"]
        status, _, _ = _request(conn, "GET", "/solve")
        assert status == 405
        status, _, _ = _request(conn, "GET", "/nope")
        assert status == 404

    def test_concurrent_identical_misses_coalesce_at_the_router(self, fleet):
        import threading

        body = _solve_body(n=80, seed=12, algorithm="bottom_left")
        sources: list[str] = []
        lock = threading.Lock()

        def hammer():
            c = http.client.HTTPConnection(fleet.host, fleet.port, timeout=30)
            try:
                status, headers, _ = _request(c, "POST", "/solve", body)
                with lock:
                    if status == 200:
                        sources.append(headers["X-Repro-Cache"])
            finally:
                c.close()

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sources) == 6
        assert sources.count("miss") == 1  # one leader reached a worker
        assert all(s in ("miss", "hit", "coalesced") for s in sources)


class TestFleetMetrics:
    def test_json_metrics_aggregate_the_fleet(self, conn):
        _request(conn, "POST", "/solve", _solve_body(seed=13))
        status, _, raw = _request(conn, "GET", "/metrics")
        data = json.loads(raw)
        assert status == 200
        assert {"uptime_s", "requests", "latency", "queue", "cache",
                "router", "workers"} <= set(data)
        # the fleet sums keep the single-process document shape
        assert {"depth", "submitted", "completed", "rejected", "batches",
                "max_batch", "mean_batch"} <= set(data["queue"])
        assert {"hits", "misses", "evictions", "spills",
                "spill_hits", "entries", "bytes"} <= set(data["cache"])
        assert data["router"]["workers"]["total"] == 2
        assert data["kernel"]["active"] in ("array", "compiled")
        assert set(data["workers"]) == {"0", "1"}
        assert all(
            w["kernel"]["active"] == data["kernel"]["active"]
            for w in data["workers"].values()
        )
        per_worker = sum(w["queue"]["completed"] for w in data["workers"].values())
        assert data["queue"]["completed"] == per_worker

    def test_prometheus_metrics_carry_per_worker_labels(self, conn):
        _request(conn, "POST", "/solve", _solve_body(seed=14))
        status, headers, raw = _request(
            conn, "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = raw.decode()
        assert "repro_workers_total 2" in text
        assert "repro_workers_alive 2" in text
        assert 'worker="0"' in text and 'worker="1"' in text
        # the kernel tier rides as an info-pattern gauge, fleet + per-worker
        assert 'repro_kernel_tier{requested="auto",tier="array"} 1' in text
        assert 'repro_kernel_tier{requested="auto",tier="array",worker="0"} 1' in text
        # one # TYPE header per metric name, preceding all of its series
        typed = [line.split()[2] for line in text.splitlines()
                 if line.startswith("# TYPE")]
        assert len(typed) == len(set(typed))

    def test_algorithm_counters(self, conn):
        _request(conn, "POST", "/solve", _solve_body(seed=15, algorithm="nfdh"))
        _, _, raw = _request(conn, "GET", "/metrics")
        by_algorithm = json.loads(raw)["requests"]["by_algorithm"]
        assert by_algorithm.get("nfdh", 0) >= 1


# ----------------------------------------------------------------------
# failure handling: kill, failover, respawn
# ----------------------------------------------------------------------

def _poll_healthz(srv, predicate, deadline_s=20.0):
    deadline = time.monotonic() + deadline_s
    last = None
    while time.monotonic() < deadline:
        c = http.client.HTTPConnection(srv.host, srv.port, timeout=10)
        try:
            _, _, raw = _request(c, "GET", "/healthz")
        finally:
            c.close()
        last = json.loads(raw)
        if predicate(last):
            return last
        time.sleep(0.02)
    raise AssertionError(f"healthz never satisfied the predicate; last = {last}")


class TestWorkerDeath:
    def test_kill_reroute_respawn_recover(self):
        """SIGKILL one worker: its keys fail over to the ring successor,
        /healthz dips to degraded, and the supervisor respawn brings the
        fleet back to ok with the restart counted."""
        router = RouterServer(workers=2)
        with InProcessServer(router) as srv:
            body = _solve_body(n=8, seed=20)
            owner = router._ring.node_for(_result_key(body))
            victim = router._handles[owner]
            victim.process.kill()
            victim.process.join(timeout=10)
            degraded = _poll_healthz(srv, lambda h: h["status"] == "degraded")
            assert degraded["workers"]["alive"] == 1
            # the dead shard's key re-routes and still solves
            c = http.client.HTTPConnection(srv.host, srv.port, timeout=30)
            try:
                status, headers, _ = _request(c, "POST", "/solve", body)
            finally:
                c.close()
            assert status == 200
            recovered = _poll_healthz(
                srv, lambda h: h["status"] == "ok" and h["workers"]["restarts"] >= 1
            )
            assert recovered["workers"]["alive"] == 2

    def test_no_accepted_request_is_lost_across_a_kill(self):
        """Closed-loop load over cold keys while one worker dies mid-run:
        every request must come back 200 — a connection-level failure
        walks the ring instead of surfacing to the client."""
        import threading

        from repro.service.loadgen import run_closed_loop, solve_payloads

        router = RouterServer(workers=2)
        with InProcessServer(router) as srv:
            payloads = solve_payloads(
                30, n_rects=200, seed=21, algorithm="bottom_left"
            )
            box: dict = {}

            def load():
                box["result"] = run_closed_loop(
                    srv.url, payloads, requests=30, concurrency=4
                )

            thread = threading.Thread(target=load)
            thread.start()
            time.sleep(0.15)  # let the loop get requests in flight
            router._handles[0].process.kill()
            thread.join(timeout=120)
            assert not thread.is_alive()
            result = box["result"]
            assert result.errors == 0
            assert result.ok == result.requests == 30
            assert set(result.status_counts) == {"200"}


# ----------------------------------------------------------------------
# the shared L2 tier: disk spills cross process boundaries
# ----------------------------------------------------------------------

class TestSharedSpillTier:
    def test_workers_see_each_others_spills(self, tmp_path):
        """Two workers, one cache_dir, 1-byte L1 budgets (every insert
        spills).  Kill the owner of a solved key: the re-routed repeat
        lands on the *other* process, whose only way to answer with a
        hit is the shared disk tier."""
        config = {"cache_bytes": 1, "cache_dir": str(tmp_path)}
        router = RouterServer(workers=2, worker_config=config)
        with InProcessServer(router) as srv:
            body = _solve_body(n=8, seed=30)
            c = http.client.HTTPConnection(srv.host, srv.port, timeout=30)
            try:
                _, h1, raw1 = _request(c, "POST", "/solve", body)
            finally:
                c.close()
            assert h1["X-Repro-Cache"] == "miss"
            owner = router._ring.node_for(_result_key(body))
            victim = router._handles[owner]
            victim.process.kill()
            victim.process.join(timeout=10)
            c = http.client.HTTPConnection(srv.host, srv.port, timeout=30)
            try:
                _, h2, raw2 = _request(c, "POST", "/solve", body)
                _, _, metrics_raw = _request(c, "GET", "/metrics")
            finally:
                c.close()
            assert h2["X-Repro-Cache"] == "hit" and raw2 == raw1
            assert json.loads(metrics_raw)["cache"]["spill_hits"] >= 1
        # warm restart: a brand-new fleet over the same directory is hot
        with InProcessServer(RouterServer(workers=2, worker_config=config)) as srv:
            c = http.client.HTTPConnection(srv.host, srv.port, timeout=30)
            try:
                _, h3, raw3 = _request(c, "POST", "/solve", body)
            finally:
                c.close()
            assert h3["X-Repro-Cache"] == "hit" and raw3 == raw1


# ----------------------------------------------------------------------
# graceful drain edge cases
# ----------------------------------------------------------------------

class TestFleetDrain:
    def test_drain_with_inflight_requests_answers_them(self):
        """router.drain() with the workers' micro-batcher queues non-empty:
        stop accepting, answer everything already accepted, SIGTERM the
        fleet — no client sees anything but a 200."""
        import asyncio
        import threading

        router = RouterServer(workers=2)
        statuses: list[int] = []

        async def scenario():
            bound = await router.start("127.0.0.1", 0)
            port = router.port

            def client(seed):
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
                try:
                    status, _, _ = _request(
                        conn, "POST", "/solve",
                        _solve_body(n=150, seed=seed, algorithm="bottom_left"),
                    )
                except (OSError, http.client.HTTPException):
                    status = 599  # transport failure == lost request
                finally:
                    conn.close()
                statuses.append(status)

            threads = [
                threading.Thread(target=client, args=(40 + i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            await asyncio.sleep(0.1)  # let requests reach the workers' queues
            await router.drain(bound, timeout=60)
            return threads

        threads = asyncio.run(scenario())
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert len(statuses) == 6 and all(s == 200 for s in statuses)
        # drain reaped the whole fleet
        assert all(h.process is None for h in router._handles.values())

    def test_sigterm_mid_respawn_reaps_the_fresh_child(self):
        """Tear the fleet down while the supervisor's respawn of a killed
        worker is still in flight: the freshly spawned child must be
        reaped by the closed-handle check, never leaked."""
        import multiprocessing

        before = {p.pid for p in multiprocessing.active_children()}
        router = RouterServer(workers=2)
        observed_inflight = False
        with InProcessServer(router):
            router._handles[0].process.kill()
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if router._respawns_inflight:
                    observed_inflight = True
                    break
                time.sleep(0.02)
        assert observed_inflight  # teardown raced an in-flight spawn
        # close() marked every handle closed; when the in-flight spawn's
        # handshake lands it must self-reap instead of orphaning the child.
        extra: list = []
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            extra = [
                p for p in multiprocessing.active_children() if p.pid not in before
            ]
            if not extra:
                break
            time.sleep(0.05)
        assert not extra, f"leaked worker processes: {extra}"

    def test_spawn_after_shutdown_raises_and_reaps(self):
        """The race seam itself, deterministically: a handle that was shut
        down before (or during) spawn refuses to hand back a live child."""
        handle = WorkerHandle(0, {})
        handle.shutdown()  # no process yet: just marks the handle closed
        with pytest.raises(RuntimeError, match="shut down during spawn"):
            handle.spawn(timeout=60)
        assert handle.process is None
