"""Tests for JSON serialization of instances and placements."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.core.serialize import (
    canonical_hash,
    canonical_instance_dict,
    canonical_params,
    dumps_instance,
    instance_from_dict,
    instance_to_dict,
    loads_instance,
    placement_from_dict,
    placement_to_dict,
    result_key,
)
from repro.core.tol import ATOL
from repro.dag.graph import TaskDAG

from .conftest import precedence_instances, rect_lists, release_instances


def rects3():
    return [
        Rect(rid="a", width=0.5, height=1.0),
        Rect(rid="b", width=0.25, height=0.5, release=1.0),
        Rect(rid="c", width=0.75, height=0.25),
    ]


class TestInstanceRoundTrip:
    def test_plain(self):
        inst = StripPackingInstance(rects3())
        out = loads_instance(dumps_instance(inst))
        assert type(out) is StripPackingInstance
        assert [r.rid for r in out.rects] == ["a", "b", "c"]
        assert out.rects[1].release == 1.0

    def test_precedence(self):
        inst = PrecedenceInstance(rects3(), TaskDAG(["a", "b", "c"], [("a", "b")]))
        out = loads_instance(dumps_instance(inst))
        assert isinstance(out, PrecedenceInstance)
        assert out.dag.edges() == [("a", "b")]

    def test_release(self):
        inst = ReleaseInstance(rects3(), K=4)
        out = loads_instance(dumps_instance(inst))
        assert isinstance(out, ReleaseInstance)
        assert out.K == 4

    def test_unknown_type(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"type": "quantum", "rects": []})

    def test_missing_K(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"type": "release", "rects": []})

    def test_missing_field(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"type": "plain", "rects": [{"id": 0, "width": 0.5}]})

    def test_dict_shape(self):
        inst = PrecedenceInstance(rects3(), TaskDAG(["a", "b", "c"], [("a", "c")]))
        d = instance_to_dict(inst)
        assert d["type"] == "precedence"
        assert d["edges"] == [["a", "c"]]
        json.dumps(d)  # JSON-ready


class TestPlacementRoundTrip:
    def test_round_trip(self):
        inst = StripPackingInstance(rects3())
        from repro.core.registry import solve

        p = solve(inst, "nfdh")
        d = placement_to_dict(p)
        q = placement_from_dict(d, inst)
        validate_placement(inst, q)
        assert q.height == p.height

    def test_unknown_id_rejected(self):
        inst = StripPackingInstance(rects3())
        with pytest.raises(InvalidInstanceError):
            placement_from_dict({"placements": [{"id": "ghost", "x": 0, "y": 0}]}, inst)

    def test_sorted_output(self):
        inst = StripPackingInstance(rects3())
        from repro.core.registry import solve

        d = placement_to_dict(solve(inst, "nfdh"))
        ids = [e["id"] for e in d["placements"]]
        assert ids == sorted(ids)


# ----------------------------------------------------------------------
# canonical fingerprinting (the serving cache's identity function)
# ----------------------------------------------------------------------

def _permuted(instance, seed):
    """The same instance with its rectangle tuple reordered (ids kept)."""
    import numpy as np

    rects = list(instance.rects)
    order = np.random.default_rng(seed).permutation(len(rects))
    rects = [rects[i] for i in order]
    if isinstance(instance, ReleaseInstance):
        return ReleaseInstance(rects, instance.K)
    if isinstance(instance, PrecedenceInstance):
        return PrecedenceInstance(rects, instance.dag)
    return StripPackingInstance(rects)


class TestCanonicalHash:
    @given(rects=rect_lists(min_size=1, max_size=12), seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_invariant_under_rect_reordering(self, rects, seed):
        inst = StripPackingInstance(rects)
        shuffled = _permuted(inst, seed)
        assert canonical_instance_dict(inst) == canonical_instance_dict(shuffled)
        assert canonical_hash(inst) == canonical_hash(shuffled)

    @given(inst=precedence_instances(max_size=8), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_precedence_invariant_under_reordering(self, inst, seed):
        assert canonical_hash(inst) == canonical_hash(_permuted(inst, seed))

    @given(inst=release_instances(max_size=8), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_release_invariant_under_reordering(self, inst, seed):
        assert canonical_hash(inst) == canonical_hash(_permuted(inst, seed))

    @given(rects=rect_lists(min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_hash_inequality_implies_dict_inequality(self, rects):
        """The digest is a pure function of the canonical dict, so two
        instances with equal canonical dicts can never hash apart."""
        a = StripPackingInstance(rects)
        b = _permuted(a, 7)
        if canonical_hash(a) != canonical_hash(b):
            assert canonical_instance_dict(a) != canonical_instance_dict(b)
        if canonical_instance_dict(a) == canonical_instance_dict(b):
            assert canonical_hash(a) == canonical_hash(b)

    def test_subtolerance_noise_collapses(self):
        a = StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)])
        b = StripPackingInstance(
            [Rect(rid=0, width=0.5 + ATOL / 10, height=1.0 - ATOL / 10)]
        )
        assert canonical_hash(a) == canonical_hash(b)

    def test_super_tolerance_difference_separates(self):
        a = StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)])
        b = StripPackingInstance([Rect(rid=0, width=0.5 + 1e4 * ATOL, height=1.0)])
        assert canonical_hash(a) != canonical_hash(b)

    def test_ids_are_part_of_the_identity(self):
        a = StripPackingInstance([Rect(rid="a", width=0.5, height=1.0)])
        b = StripPackingInstance([Rect(rid="b", width=0.5, height=1.0)])
        assert canonical_hash(a) != canonical_hash(b)

    def test_variant_and_structure_separate(self):
        rects = rects3()
        plain = StripPackingInstance(rects)
        release = ReleaseInstance(rects, K=4)
        release8 = ReleaseInstance(rects, K=8)
        chain = PrecedenceInstance(rects, TaskDAG(["a", "b", "c"], [("a", "b")]))
        loose = PrecedenceInstance(rects, TaskDAG(["a", "b", "c"], []))
        hashes = [canonical_hash(i) for i in (plain, release, release8, chain, loose)]
        assert len(set(hashes)) == 5

    def test_edge_order_is_canonicalised(self):
        a = PrecedenceInstance(rects3(), TaskDAG(["a", "b", "c"], [("a", "b"), ("b", "c")]))
        b = PrecedenceInstance(rects3(), TaskDAG(["a", "b", "c"], [("b", "c"), ("a", "b")]))
        assert canonical_hash(a) == canonical_hash(b)

    def test_hash_is_hex_sha256(self):
        digest = canonical_hash(StripPackingInstance(rects3()))
        assert len(digest) == 64 and int(digest, 16) >= 0


class TestResultKey:
    def test_key_structure_and_determinism(self):
        inst = StripPackingInstance(rects3())
        key = result_key(inst, "nfdh", {"x": 1})
        assert key == result_key(inst, "nfdh", {"x": 1})
        assert key.split("|")[0] == canonical_hash(inst)
        assert key.split("|")[1] == "nfdh"

    def test_spec_and_params_separate_keys(self):
        inst = StripPackingInstance(rects3())
        keys = {
            result_key(inst, "nfdh"),
            result_key(inst, "ffdh"),
            result_key(inst, "aptas", {"eps": 0.5}),
            result_key(inst, "aptas", {"eps": 0.25}),
        }
        assert len(keys) == 4

    def test_none_and_empty_params_share_a_key(self):
        inst = StripPackingInstance(rects3())
        assert result_key(inst, "nfdh", None) == result_key(inst, "nfdh", {})

    def test_param_floats_are_tolerance_aware(self):
        inst = StripPackingInstance(rects3())
        assert result_key(inst, "aptas", {"eps": 0.5}) == result_key(
            inst, "aptas", {"eps": 0.5 + ATOL / 10}
        )

    def test_param_key_order_is_canonical(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params({"b": 2, "a": 1})

    def test_nested_and_scalar_param_values(self):
        out = canonical_params({"names": ("a", "b"), "flag": True, "depth": 2})
        parsed = json.loads(out)
        assert parsed["names"] == ["s:a", "s:b"] and parsed["flag"] is True
        assert parsed["depth"].startswith("n:")  # numbers are tagged ticks

    def test_params_never_alias_across_types(self):
        # 4 and 4.0 are the same parameter value (JSON clients emit either)
        assert canonical_params({"K": 4}) == canonical_params({"K": 4.0})
        # a float never collides with the raw integer equal to its tick
        # count (both quantise, so 0.5 -> n:5e8 but 500000000 -> n:5e17)
        assert canonical_params({"eps": 0.5}) != canonical_params({"eps": 500000000})
        # a string can't forge a number's canonical form (the "s:" tag)
        assert canonical_params({"eps": 0.5}) != canonical_params({"eps": "n:500000000"})
        # and bools stay bools, never numbers
        assert canonical_params({"x": True}) != canonical_params({"x": 1})

    def test_empty_spec_name_rejected(self):
        with pytest.raises(InvalidInstanceError):
            result_key(StripPackingInstance(rects3()), "")

    def test_unserialisable_param_rejected(self):
        with pytest.raises(InvalidInstanceError):
            canonical_params({"fn": object()})


class TestCanonicalMemo:
    """The per-instance memo caches only the default-``atol`` form."""

    def test_default_atol_memoizes(self):
        inst = StripPackingInstance(rects3())
        first = canonical_instance_dict(inst)
        assert canonical_instance_dict(inst) is first
        assert canonical_instance_dict(inst, atol=ATOL) is first

    def test_non_default_atol_never_poisons_the_memo(self):
        """An exotic-tolerance call neither reads nor writes the memo.

        Ordering matters both ways: a coarse-grid call *before* the first
        default call must not seed the memo with coarse ticks, and one
        *after* must not evict or overwrite the default-grid entry the
        serving cache keys on.
        """
        coarse = 1e-3
        inst = StripPackingInstance(rects3())
        before = canonical_instance_dict(inst, atol=coarse)
        assert inst.__dict__.get("_canonical_dict") is None  # not written
        default = canonical_instance_dict(inst)
        assert default != before  # different grids, different ticks
        after = canonical_instance_dict(inst, atol=coarse)
        assert after == before
        assert canonical_instance_dict(inst) is default  # memo intact

    def test_memo_entry_matches_fresh_computation(self):
        """The memoized dict equals what an unmemoized instance computes."""
        inst = StripPackingInstance(rects3())
        canonical_instance_dict(inst, atol=1e-5)  # exotic call first
        memoized = canonical_instance_dict(inst)
        fresh = canonical_instance_dict(StripPackingInstance(rects3()))
        assert memoized == fresh
        assert canonical_hash(inst) == canonical_hash(StripPackingInstance(rects3()))
