"""Tests for JSON serialization of instances and placements."""

import json

import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.core.serialize import (
    dumps_instance,
    instance_from_dict,
    instance_to_dict,
    loads_instance,
    placement_from_dict,
    placement_to_dict,
)
from repro.dag.graph import TaskDAG


def rects3():
    return [
        Rect(rid="a", width=0.5, height=1.0),
        Rect(rid="b", width=0.25, height=0.5, release=1.0),
        Rect(rid="c", width=0.75, height=0.25),
    ]


class TestInstanceRoundTrip:
    def test_plain(self):
        inst = StripPackingInstance(rects3())
        out = loads_instance(dumps_instance(inst))
        assert type(out) is StripPackingInstance
        assert [r.rid for r in out.rects] == ["a", "b", "c"]
        assert out.rects[1].release == 1.0

    def test_precedence(self):
        inst = PrecedenceInstance(rects3(), TaskDAG(["a", "b", "c"], [("a", "b")]))
        out = loads_instance(dumps_instance(inst))
        assert isinstance(out, PrecedenceInstance)
        assert out.dag.edges() == [("a", "b")]

    def test_release(self):
        inst = ReleaseInstance(rects3(), K=4)
        out = loads_instance(dumps_instance(inst))
        assert isinstance(out, ReleaseInstance)
        assert out.K == 4

    def test_unknown_type(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"type": "quantum", "rects": []})

    def test_missing_K(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"type": "release", "rects": []})

    def test_missing_field(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"type": "plain", "rects": [{"id": 0, "width": 0.5}]})

    def test_dict_shape(self):
        inst = PrecedenceInstance(rects3(), TaskDAG(["a", "b", "c"], [("a", "c")]))
        d = instance_to_dict(inst)
        assert d["type"] == "precedence"
        assert d["edges"] == [["a", "c"]]
        json.dumps(d)  # JSON-ready


class TestPlacementRoundTrip:
    def test_round_trip(self):
        inst = StripPackingInstance(rects3())
        from repro.core.registry import solve

        p = solve(inst, "nfdh")
        d = placement_to_dict(p)
        q = placement_from_dict(d, inst)
        validate_placement(inst, q)
        assert q.height == p.height

    def test_unknown_id_rejected(self):
        inst = StripPackingInstance(rects3())
        with pytest.raises(InvalidInstanceError):
            placement_from_dict({"placements": [{"id": "ghost", "x": 0, "y": 0}]}, inst)

    def test_sorted_output(self):
        inst = StripPackingInstance(rects3())
        from repro.core.registry import solve

        d = placement_to_dict(solve(inst, "nfdh"))
        ids = [e["id"] for e in d["placements"]]
        assert ids == sorted(ids)
