"""Unit and property tests for the skyline bottom-left packers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.instance import ReleaseInstance, StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.packing.bottom_left import bottom_left, bottom_left_release

from .conftest import rect_lists


class TestBottomLeft:
    def test_empty(self):
        assert bottom_left([]).extent == 0.0

    def test_perfect_fit(self):
        rs = [
            Rect(rid=0, width=0.5, height=1.0),
            Rect(rid=1, width=0.5, height=1.0),
        ]
        assert math.isclose(bottom_left(rs).extent, 1.0)

    def test_fills_holes_unlike_nfdh(self):
        # A tall tower on the left; BL should tuck short wide pieces beside it.
        rs = [
            Rect(rid=0, width=0.4, height=2.0),
            Rect(rid=1, width=0.6, height=1.0),
            Rect(rid=2, width=0.6, height=1.0),
        ]
        result = bottom_left(rs)
        assert math.isclose(result.extent, 2.0)

    def test_custom_order(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=2.0)]
        result = bottom_left(rs, order=lambda r: str(r.rid))
        # id order: rect 0 first at (0,0), rect 1 beside it.
        assert result.placement[0].x == 0.0
        assert result.placement[1].x == 0.5

    def test_valid(self, rng):
        from repro.workloads.random_rects import powerlaw_rects

        rects = powerlaw_rects(50, rng)
        result = bottom_left(rects)
        validate_placement(StripPackingInstance(rects), result.placement)


class TestBottomLeftRelease:
    def test_empty(self):
        assert bottom_left_release([]).extent == 0.0

    def test_release_respected(self):
        rs = [Rect(rid=0, width=0.5, height=1.0, release=2.0)]
        result = bottom_left_release(rs)
        assert result.placement[0].y >= 2.0

    def test_no_releases_behaves_like_packing(self):
        rs = [Rect(rid=i, width=0.5, height=1.0) for i in range(4)]
        result = bottom_left_release(rs)
        assert math.isclose(result.placement.height, 2.0)

    def test_valid_with_releases(self, rng):
        from repro.workloads.releases import poisson_release_instance

        inst = poisson_release_instance(30, 5, rng, rate=2.0)
        result = bottom_left_release(inst.rects)
        validate_placement(inst, result.placement)


@given(rect_lists(min_size=1, max_size=16, max_h=2.0))
def test_bottom_left_valid_and_bounded(rects):
    inst = StripPackingInstance(rects)
    result = bottom_left(rects)
    validate_placement(inst, result.placement)
    # Trivial upper bound: the vertical stack.
    assert result.extent <= sum(r.height for r in rects) + 1e-9


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),
            st.floats(min_value=0.1, max_value=1.0),
            st.floats(min_value=0.0, max_value=3.0),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_bottom_left_release_valid(triples):
    rects = [
        Rect(rid=i, width=c / 4, height=h, release=r)
        for i, (c, h, r) in enumerate(triples)
    ]
    inst = ReleaseInstance(rects, K=4)
    result = bottom_left_release(rects)
    validate_placement(inst, result.placement)
