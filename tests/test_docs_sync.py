"""Doc-sync tests: generated tables must match the spec registry.

README.md and docs/ALGORITHMS.md embed the algorithm table between
``BEGIN GENERATED`` / ``END GENERATED`` markers.  These tests re-render
:func:`repro.engine.spec_table_markdown` and fail on any drift, so
registering/changing an algorithm spec forces the documentation to follow
(the failure message says exactly what to paste).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engine import spec_table_markdown

REPO_ROOT = Path(__file__).resolve().parent.parent
BEGIN = "<!-- BEGIN GENERATED: algorithm table (repro.engine.spec_table_markdown) -->"
END_PREFIX = "<!-- END GENERATED: algorithm table -->"


def _embedded_table(path: Path) -> str:
    text = path.read_text()
    assert BEGIN in text, f"{path.name} lost its BEGIN marker"
    assert END_PREFIX in text, f"{path.name} lost its END marker"
    inner = text.split(BEGIN, 1)[1].split(END_PREFIX, 1)[0]
    return inner.strip()


@pytest.mark.parametrize("relpath", ["README.md", "docs/ALGORITHMS.md"])
def test_algorithm_table_in_sync(relpath):
    path = REPO_ROOT / relpath
    expected = spec_table_markdown()
    actual = _embedded_table(path)
    assert actual == expected, (
        f"{relpath} algorithm table drifted from engine/specs.py.\n"
        f"Replace the block between the GENERATED markers with:\n\n{expected}\n"
    )


def test_generated_table_lists_every_spec():
    from repro.engine import all_specs

    table = spec_table_markdown()
    for spec in all_specs():
        assert f"| `{spec.name}` |" in table


def test_readme_documents_bench_command():
    text = (REPO_ROOT / "README.md").read_text()
    assert "## Benchmarking" in text
    assert "repro bench --all --quick" in text or "bench --all --quick" in text


def test_testing_md_links_ci_workflow():
    text = (REPO_ROOT / "TESTING.md").read_text()
    assert ".github/workflows/ci.yml" in text
    assert "bench" in text
