"""Differential tests: array-native level packers vs the reference kernels.

The columnar packers (:mod:`repro.packing` on
:class:`repro.geometry.levels.LevelArray`) must be *observationally
identical* to the executable specification
(:mod:`repro.geometry.levels_reference`): same ``(x, y)`` for every
rectangle, same extents — on hypothesis-generated rectangle lists and on
the real workload generators at packing scale.  This is what makes the
``level_packers`` bench's speedup trustworthy.

Also here: the :class:`~repro.engine.batch.Executor` determinism sweep —
``solve_many`` and ``portfolio`` must return bit-identical outputs on the
serial, thread, and process backends.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrays import RectArrays, decreasing_order
from repro.core.rectangle import Rect, decreasing_height_order
from repro.geometry.levels_reference import (
    reference_bfdh,
    reference_ffdh,
    reference_nfdh,
)
from repro.packing import bfdh, ffdh, nfdh

from .conftest import rect_lists

PAIRS = [
    pytest.param(nfdh, reference_nfdh, id="nfdh"),
    pytest.param(ffdh, reference_ffdh, id="ffdh"),
    pytest.param(bfdh, reference_bfdh, id="bfdh"),
]


def assert_identical(fast_result, ref_result, rects):
    """Placement-for-placement equality (exact float comparison)."""
    assert fast_result.extent == ref_result.extent
    for r in rects:
        assert fast_result.placement[r.rid] == ref_result.placement[r.rid], r.rid


@pytest.mark.parametrize("fast, ref", PAIRS)
@given(rect_lists(min_size=1, max_size=24, max_h=3.0))
def test_hypothesis_sequences_identical(fast, ref, rects):
    """Random rectangle lists land every rectangle identically."""
    assert_identical(fast(rects), ref(rects), rects)


@pytest.mark.parametrize("fast, ref", PAIRS)
@settings(max_examples=25)
@given(
    rect_lists(min_size=1, max_size=16, max_h=2.0),
    st.floats(min_value=0.0, max_value=7.5, allow_nan=False),
)
def test_base_offset_identical(fast, ref, rects, y):
    """The y-offset (subroutine-A calling convention) threads identically."""
    assert_identical(fast(rects, y=y), ref(rects, y=y), rects)


@pytest.mark.parametrize("fast, ref", PAIRS)
def test_mixed_id_types_share_tie_break(fast, ref):
    """Height/width ties fall through to the lexicographic str(rid)
    tie-break — including across int and str ids (and '10' < '9')."""
    rects = [
        Rect(rid=rid, width=0.3, height=1.0)
        for rid in (9, 10, "10", "9x", 2, "a")
    ]
    assert_identical(fast(rects), ref(rects), rects)


@pytest.mark.parametrize("fast, ref", PAIRS)
@pytest.mark.parametrize("generator", ["uniform_rects", "powerlaw_rects"])
@pytest.mark.parametrize("n", [200, 1000])
def test_workload_sweeps_identical(fast, ref, generator, n):
    """Placement-for-placement equality on the bench workloads."""
    from repro import workloads

    rects = getattr(workloads, generator)(n, np.random.default_rng(7))
    assert_identical(fast(rects), ref(rects), rects)


@pytest.mark.slow
@pytest.mark.parametrize("fast, ref", PAIRS)
@pytest.mark.parametrize("seed", range(5))
def test_packer_differential_deep(fast, ref, seed):
    """Larger randomized sweep (CI): 5 seeds x 3000 powerlaw rectangles."""
    from repro.workloads import powerlaw_rects

    rects = powerlaw_rects(3000, np.random.default_rng(seed))
    assert_identical(fast(rects), ref(rects), rects)


@given(rect_lists(min_size=0, max_size=24, max_h=3.0))
def test_decreasing_order_matches_sorted(rects):
    """The lexsort permutation equals the object-world sort."""
    arrays = RectArrays.from_rects(rects)
    by_array = [rects[i].rid for i in decreasing_order(arrays)]
    by_sorted = [r.rid for r in decreasing_height_order(rects)]
    assert by_array == by_sorted


def test_packers_accept_columnar_inputs():
    """Sequence[Rect], RectArrays, and instances all give the same result."""
    from repro.core.instance import StripPackingInstance

    rects = [Rect(rid=i, width=0.4, height=1.0 + i % 3) for i in range(9)]
    instance = StripPackingInstance(rects)
    for algo in (nfdh, ffdh, bfdh):
        from_list = algo(rects)
        from_arrays = algo(RectArrays.from_rects(rects))
        from_instance = algo(instance.arrays())
        for r in rects:
            assert from_list.placement[r.rid] == from_arrays.placement[r.rid]
            assert from_list.placement[r.rid] == from_instance.placement[r.rid]
    assert instance.arrays() is instance.arrays()  # cached


# ----------------------------------------------------------------------
# executor determinism: serial == thread == process, bit for bit
# ----------------------------------------------------------------------

def _assert_reports_bit_identical(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.algorithm == rb.algorithm
        assert ra.height == rb.height
        assert ra.lower_bound == rb.lower_bound
        assert ra.valid == rb.valid and ra.error == rb.error
        if ra.placement is None or rb.placement is None:
            assert ra.placement is None and rb.placement is None
            continue
        assert len(ra.placement) == len(rb.placement)
        for rid, pr in ra.placement.items():
            assert rb.placement[rid] == pr


class TestExecutorDeterminism:
    @pytest.fixture(scope="class")
    def instances(self):
        from repro.workloads.suite import mixed_instance_suite

        return mixed_instance_suite(8, np.random.default_rng(42))

    def test_solve_many_backends_bit_identical(self, instances):
        from repro.engine import solve_many

        serial = solve_many(instances, backend="serial")
        threaded = solve_many(instances, backend="thread", jobs=3)
        processed = solve_many(instances, backend="process", jobs=2)
        _assert_reports_bit_identical(serial, threaded)
        _assert_reports_bit_identical(serial, processed)

    def test_portfolio_backends_bit_identical(self):
        from repro.core.instance import ReleaseInstance
        from repro.engine import portfolio

        inst = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(6)],
            K=2,
        )
        serial = portfolio(inst, backend="serial")
        threaded = portfolio(inst, backend="thread", jobs=4)
        processed = portfolio(inst, backend="process", jobs=2)
        for other in (threaded, processed):
            assert other.best is not None and serial.best is not None
            assert other.best.algorithm == serial.best.algorithm
            assert other.best.height == serial.best.height
            assert other.heights == serial.heights
            _assert_reports_bit_identical(list(serial.reports), list(other.reports))

    def test_unknown_backend_rejected(self):
        from repro.core.errors import InvalidInstanceError
        from repro.engine import Executor

        with pytest.raises(InvalidInstanceError, match="unknown backend"):
            Executor("warp")

    def test_non_positive_jobs_rejected(self):
        from repro.core.errors import InvalidInstanceError
        from repro.engine import Executor

        with pytest.raises(InvalidInstanceError, match="jobs"):
            Executor("thread", 0)


class TestKernelTierDifferential:
    """Every tier of the registry lands every rectangle identically.

    The compiled tier is exercised even without numba: the kernel bodies
    run as plain Python (pass-through ``njit``), which is the same logic
    the JIT compiles — ``tests/test_kernel_tiers.py`` owns the deeper
    tier sweeps, this keeps the level-packer suite self-contained.
    """

    @pytest.mark.parametrize("fast, ref", PAIRS)
    @pytest.mark.parametrize("tier", ["reference", "array", "compiled"])
    def test_workload_identical_on_every_tier(self, fast, ref, tier):
        from repro import kernels
        from repro.kernels import compiled
        from repro.workloads import powerlaw_rects

        rects = powerlaw_rects(400, np.random.default_rng(13))
        expected = ref(rects)
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(compiled, "AVAILABLE", True)
            kernels._reset_for_testing()
            try:
                with kernels.use_tier(tier):
                    assert_identical(fast(rects), expected, rects)
            finally:
                kernels._reset_for_testing()
