"""Tests for GGJY First Fit precedence bin packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.graph import TaskDAG
from repro.precedence.bin_packing import (
    BinPackingInstance,
    chain_lower_bound,
    precedence_next_fit,
    size_lower_bound,
)
from repro.precedence.ggjy_first_fit import ggjy_first_fit

from .conftest import dags_over


def bp(sizes, edges=()):
    return BinPackingInstance(
        sizes=dict(enumerate(sizes)), dag=TaskDAG(range(len(sizes)), edges)
    )


class TestGGJYFirstFit:
    def test_no_precedence_ffd_like(self):
        a = ggjy_first_fit(bp([0.6, 0.4, 0.6, 0.4]))
        a.validate(bp([0.6, 0.4, 0.6, 0.4]))
        assert a.n_bins == 2

    def test_chain(self):
        inst = bp([0.1, 0.1, 0.1], edges=[(0, 1), (1, 2)])
        a = ggjy_first_fit(inst)
        a.validate(inst)
        assert a.n_bins == 3

    def test_backfill_beats_level_algorithms(self):
        """First Fit can put a late-ready small task into an old bin; the
        level algorithms cannot."""
        # 0 -> 1; 2 independent and small.  NF: bin0={0, 2?}...
        # Construct: bin0 gets 0 (0.9); 1 must go later; 2 (0.05) becomes
        # ready late in NF terms but FF backfills bin 0.
        inst = bp([0.9, 0.9, 0.05], edges=[(0, 1), (0, 2)])
        ff = ggjy_first_fit(inst)
        ff.validate(inst)
        assert ff.n_bins == 2  # bin0: {0}, bin1: {1, 2}

    def test_strictly_later_than_predecessors(self):
        inst = bp([0.05, 0.05, 0.05], edges=[(0, 2), (1, 2)])
        a = ggjy_first_fit(inst)
        a.validate(inst)
        where = a.bin_of()
        assert where[2] > max(where[0], where[1])

    @pytest.mark.parametrize("order", ["topological", "decreasing"])
    def test_orders_both_feasible(self, order, rng):
        from repro.dag.generators import random_order_dag

        n = 25
        sizes = dict(enumerate(rng.uniform(0.05, 0.9, size=n)))
        dag = random_order_dag(n, 0.08, rng)
        inst = BinPackingInstance(sizes=sizes, dag=dag)
        a = ggjy_first_fit(inst, order=order)
        a.validate(inst)

    def test_never_worse_than_next_fit_plus_slack(self, rng):
        from repro.dag.generators import random_order_dag

        worse = 0
        for seed in range(6):
            r = np.random.default_rng(seed)
            n = 30
            sizes = dict(enumerate(r.uniform(0.05, 0.9, size=n)))
            dag = random_order_dag(n, 0.05, r)
            inst = BinPackingInstance(sizes=sizes, dag=dag)
            ff = ggjy_first_fit(inst)
            nf = precedence_next_fit(inst)
            ff.validate(inst)
            if ff.n_bins > nf.n_bins:
                worse += 1
        assert worse <= 1  # back-filling should essentially never lose


@settings(deadline=None)
@given(
    st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=14),
    st.data(),
)
def test_ggjy_always_feasible_and_lower_bounded(sizes, data):
    dag = data.draw(dags_over(len(sizes)))
    inst = BinPackingInstance(sizes=dict(enumerate(sizes)), dag=dag)
    a = ggjy_first_fit(inst)
    a.validate(inst)
    assert a.n_bins >= max(size_lower_bound(inst), chain_lower_bound(inst))
