"""Unit tests for DAG validators, including the Lemma 2.1 level-set
antichain property."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidInstanceError
from repro.dag.graph import TaskDAG
from repro.dag.validate import check_same_universe, is_antichain, level_set

from .conftest import dags_over


class TestUniverse:
    def test_match(self):
        check_same_universe(TaskDAG.empty([1, 2]), [2, 1])

    def test_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            check_same_universe(TaskDAG.empty([1, 2]), [1, 3])


class TestAntichain:
    def test_empty_is_antichain(self):
        assert is_antichain(TaskDAG.empty([1]), [])

    def test_independent_pair(self):
        dag = TaskDAG([1, 2, 3], [(1, 3), (2, 3)])
        assert is_antichain(dag, [1, 2])

    def test_dependent_pair(self):
        dag = TaskDAG.chain([1, 2, 3])
        assert not is_antichain(dag, [1, 3])


class TestLevelSet:
    def test_chain_level(self):
        dag = TaskDAG.chain([0, 1, 2])
        heights = {0: 1.0, 1: 1.0, 2: 1.0}
        # F = 1, 2, 3; level at y=1.5 -> node 1 (F=2 > 1.5, F-h=1 <= 1.5)
        assert level_set(dag, heights, 1.5) == [1]

    def test_level_at_zero(self):
        dag = TaskDAG.empty([0, 1])
        heights = {0: 1.0, 1: 2.0}
        assert set(level_set(dag, heights, 0.0)) == {0, 1}

    def test_level_above_all(self):
        dag = TaskDAG.empty([0])
        assert level_set(dag, {0: 1.0}, 5.0) == []


@given(dags_over(8), st.data(), st.floats(min_value=0.0, max_value=10.0))
def test_lemma_2_1_level_sets_are_antichains(dag, data, y):
    """Lemma 2.1: rectangles straddling any horizontal line in the
    infinite-width interpretation are pairwise independent."""
    heights = {
        n: data.draw(st.floats(min_value=0.1, max_value=3.0), label=f"h{n}")
        for n in dag.nodes()
    }
    ls = level_set(dag, heights, y)
    assert is_antichain(dag, ls)
