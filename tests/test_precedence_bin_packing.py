"""Tests for precedence-constrained bin packing and the strip equivalence."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG
from repro.precedence.bin_packing import (
    BinAssignment,
    BinPackingInstance,
    bins_to_placement,
    chain_lower_bound,
    precedence_first_fit_decreasing,
    precedence_next_fit,
    size_lower_bound,
    strip_to_bin_instance,
)

from .conftest import dags_over


def bp(sizes, edges=()):
    return BinPackingInstance(
        sizes=dict(enumerate(sizes)), dag=TaskDAG(range(len(sizes)), edges)
    )


class TestInstanceValidation:
    def test_bad_size(self):
        with pytest.raises(InvalidInstanceError):
            bp([1.5])

    def test_mismatched_universe(self):
        with pytest.raises(InvalidInstanceError):
            BinPackingInstance(sizes={0: 0.5}, dag=TaskDAG.empty([0, 1]))


class TestAssignmentValidation:
    def test_valid(self):
        inst = bp([0.5, 0.5, 0.5])
        a = BinAssignment(bins=[[0, 1], [2]])
        a.validate(inst)

    def test_overfull(self):
        inst = bp([0.7, 0.7])
        with pytest.raises(InvalidInstanceError, match="overfull"):
            BinAssignment(bins=[[0, 1]]).validate(inst)

    def test_unassigned(self):
        inst = bp([0.5, 0.5])
        with pytest.raises(InvalidInstanceError, match="unassigned"):
            BinAssignment(bins=[[0]]).validate(inst)

    def test_duplicate(self):
        inst = bp([0.5])
        with pytest.raises(InvalidInstanceError, match="twice"):
            BinAssignment(bins=[[0], [0]]).validate(inst)

    def test_precedence_strictly_earlier(self):
        inst = bp([0.4, 0.4], edges=[(0, 1)])
        with pytest.raises(InvalidInstanceError, match="precedence"):
            BinAssignment(bins=[[0, 1]]).validate(inst)


class TestAlgorithms:
    @pytest.mark.parametrize("algo", [precedence_next_fit, precedence_first_fit_decreasing])
    def test_no_precedence_simple(self, algo):
        inst = bp([0.5, 0.5, 0.5, 0.5])
        a = algo(inst)
        a.validate(inst)
        assert a.n_bins == 2

    @pytest.mark.parametrize("algo", [precedence_next_fit, precedence_first_fit_decreasing])
    def test_chain_one_per_bin(self, algo):
        inst = bp([0.1, 0.1, 0.1], edges=[(0, 1), (1, 2)])
        a = algo(inst)
        a.validate(inst)
        assert a.n_bins == 3

    def test_ffd_no_worse_than_nf_on_random(self, rng):
        from repro.dag.generators import random_order_dag

        n = 30
        sizes = dict(enumerate(rng.uniform(0.05, 0.9, size=n)))
        dag = random_order_dag(n, 0.05, rng)
        inst = BinPackingInstance(sizes=sizes, dag=dag)
        nf = precedence_next_fit(inst)
        ffd = precedence_first_fit_decreasing(inst)
        nf.validate(inst)
        ffd.validate(inst)
        assert ffd.n_bins <= nf.n_bins + 2  # FFD can rarely lose a bin or two to ordering

    def test_lower_bounds(self):
        inst = bp([0.6, 0.6, 0.6], edges=[(0, 1)])
        assert size_lower_bound(inst) == 2
        assert chain_lower_bound(inst) == 2


class TestStripEquivalence:
    def test_strip_to_bin_requires_uniform(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=2.0)]
        inst = PrecedenceInstance.without_constraints(rs)
        with pytest.raises(InvalidInstanceError):
            strip_to_bin_instance(inst)

    def test_round_trip(self, rng):
        from repro.workloads.dags import uniform_height_precedence_instance

        inst = uniform_height_precedence_instance(25, 0.08, rng)
        bin_inst = strip_to_bin_instance(inst)
        a = precedence_first_fit_decreasing(bin_inst)
        a.validate(bin_inst)
        placement = bins_to_placement(inst, a)
        validate_placement(inst, placement)
        assert math.isclose(placement.height, a.n_bins * 1.0)


@settings(deadline=None)
@given(
    st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=14),
    st.data(),
)
def test_both_algorithms_always_feasible(sizes, data):
    dag = data.draw(dags_over(len(sizes)))
    inst = BinPackingInstance(sizes=dict(enumerate(sizes)), dag=dag)
    for algo in (precedence_next_fit, precedence_first_fit_decreasing):
        a = algo(inst)
        a.validate(inst)
        assert a.n_bins >= max(size_lower_bound(inst), chain_lower_bound(inst)) - 0
