"""Unit tests for the tolerance helpers (repro.core.tol)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import tol


class TestComparisons:
    def test_leq_within_tolerance(self):
        assert tol.leq(1.0 + 1e-12, 1.0)

    def test_leq_beyond_tolerance(self):
        assert not tol.leq(1.0 + 1e-6, 1.0)

    def test_geq_within_tolerance(self):
        assert tol.geq(1.0 - 1e-12, 1.0)

    def test_geq_beyond_tolerance(self):
        assert not tol.geq(1.0 - 1e-6, 1.0)

    def test_lt_strict(self):
        assert tol.lt(0.0, 1.0)
        assert not tol.lt(1.0 - 1e-12, 1.0)

    def test_gt_strict(self):
        assert tol.gt(1.0, 0.0)
        assert not tol.gt(1.0 + 1e-12, 1.0)

    def test_eq(self):
        assert tol.eq(0.1 + 0.2, 0.3)
        assert not tol.eq(0.1, 0.2)

    def test_is_zero(self):
        assert tol.is_zero(1e-12)
        assert not tol.is_zero(1e-6)

    def test_custom_atol(self):
        assert tol.leq(1.5, 1.0, atol=1.0)
        assert not tol.leq(1.5, 1.0, atol=0.1)


class TestClamp:
    def test_clamp_inside(self):
        assert tol.clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_below(self):
        assert tol.clamp(-0.1, 0.0, 1.0) == 0.0

    def test_clamp_above(self):
        assert tol.clamp(1.1, 0.0, 1.0) == 1.0


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_lt_gt_mutually_exclusive(x):
    """x can never be both strictly below and strictly above a value."""
    assert not (tol.lt(x, 0.0) and tol.gt(x, 0.0))


@given(
    st.floats(min_value=-1e6, max_value=1e6),
    st.floats(min_value=-1e6, max_value=1e6),
)
def test_trichotomy_with_tolerance(a, b):
    """Exactly one of lt / eq-band / gt holds for any pair."""
    cases = [tol.lt(a, b), (not tol.lt(a, b)) and (not tol.gt(a, b)), tol.gt(a, b)]
    assert sum(cases) == 1


@given(st.floats(min_value=-10, max_value=10))
def test_leq_complements_gt(x):
    assert tol.leq(x, 0.0) == (not tol.gt(x, 0.0))


@given(st.floats(min_value=-10, max_value=10))
def test_geq_complements_lt(x):
    assert tol.geq(x, 0.0) == (not tol.lt(x, 0.0))
