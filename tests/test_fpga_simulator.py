"""Tests for the event-driven device simulator."""

import math

import numpy as np
import pytest

from repro.core.errors import InvalidPlacementError
from repro.fpga.device import Device
from repro.fpga.schedule import Schedule, ScheduledTask
from repro.fpga.simulator import simulate


def sched_of(tasks, K=4, lat=0.0):
    s = Schedule(Device(K=K, reconfig_latency=lat))
    for t in tasks:
        s.add(ScheduledTask(*t))
    return s


class TestSimulate:
    def test_empty(self):
        rep = simulate(sched_of([]))
        assert rep.makespan == 0.0 and rep.n_tasks == 0

    def test_single_task(self):
        rep = simulate(sched_of([(0, 0, 2, 0.0, 1.5)]))
        assert rep.makespan == 1.5
        assert rep.n_tasks == 1
        assert math.isclose(rep.busy_column_time, 3.0)

    def test_back_to_back_same_columns(self):
        """A task starting exactly when another ends on the same columns must
        not be flagged (free processed before claim)."""
        rep = simulate(sched_of([(0, 0, 2, 0.0, 1.0), (1, 0, 2, 1.0, 2.0)]))
        assert rep.makespan == 2.0

    def test_conflict_detected(self):
        with pytest.raises(InvalidPlacementError, match="double-claimed"):
            simulate(sched_of([(0, 0, 2, 0.0, 2.0), (1, 1, 2, 1.0, 3.0)]))

    def test_utilisation(self):
        rep = simulate(sched_of([(0, 0, 4, 0.0, 1.0)]))
        assert math.isclose(rep.utilisation(4), 1.0)

    def test_column_busy_accounting(self):
        rep = simulate(sched_of([(0, 0, 1, 0.0, 2.0), (1, 1, 1, 0.0, 3.0)]))
        assert rep.column_busy[0] == 2.0 and rep.column_busy[1] == 3.0
        assert rep.column_busy[2] == 0.0

    def test_events_ordered(self):
        rep = simulate(sched_of([(0, 0, 1, 0.0, 1.0), (1, 1, 1, 0.5, 2.0)]))
        times = [e.time for e in rep.events]
        assert times == sorted(times)


class TestReconfigLatency:
    def test_latency_conflict(self):
        """With latency 0.5, a task claiming columns at start-0.5 collides
        with the previous occupant that runs until exactly that start."""
        with pytest.raises(InvalidPlacementError):
            simulate(sched_of([(0, 0, 2, 0.0, 1.0), (1, 0, 2, 1.25, 2.0)], lat=0.5))

    def test_latency_with_gap_ok(self):
        rep = simulate(sched_of([(0, 0, 2, 0.0, 1.0), (1, 0, 2, 1.5, 2.0)], lat=0.5))
        assert rep.makespan == 2.0
        assert any(e.kind == "reconfig" for e in rep.events)

    def test_no_reconfig_events_without_latency(self):
        rep = simulate(sched_of([(0, 0, 2, 0.0, 1.0)]))
        assert not any(e.kind == "reconfig" for e in rep.events)


class TestEndToEnd:
    def test_dc_jpeg_pipeline_simulates(self, rng):
        from repro.fpga.schedule import schedule_from_placement
        from repro.precedence.dc import dc_pack
        from repro.workloads.jpeg import jpeg_pipeline_instance

        dev = Device(K=8)
        inst = jpeg_pipeline_instance(3, dev)
        result = dc_pack(inst)
        sched = schedule_from_placement(result.placement, dev)
        rep = simulate(sched)
        assert math.isclose(rep.makespan, result.height, abs_tol=1e-9)
        assert rep.n_tasks == len(inst)

    def test_aptas_output_simulates(self, rng):
        from repro.fpga.schedule import schedule_from_placement
        from repro.release.aptas import aptas
        from repro.workloads.releases import bursty_release_instance

        K = 4
        inst = bursty_release_instance(15, K, rng, n_bursts=3)
        res = aptas(inst, eps=1.0)
        sched = schedule_from_placement(res.placement, Device(K=K))
        sched.validate(releases={r.rid: r.release for r in inst.rects})
        rep = simulate(sched)
        assert math.isclose(rep.makespan, res.height, abs_tol=1e-9)
