"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for every test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_rects() -> list[Rect]:
    """A tiny fixed rectangle set used across unit tests."""
    return [
        Rect(rid=0, width=0.5, height=1.0),
        Rect(rid=1, width=0.25, height=0.5),
        Rect(rid=2, width=0.75, height=0.25),
        Rect(rid=3, width=1.0, height=0.125),
    ]


@pytest.fixture
def chain_instance(small_rects) -> PrecedenceInstance:
    """4 rectangles in a single chain 0 -> 1 -> 2 -> 3."""
    return PrecedenceInstance(small_rects, TaskDAG.chain([0, 1, 2, 3]))


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------

def widths() -> st.SearchStrategy[float]:
    return st.floats(min_value=0.01, max_value=1.0, allow_nan=False, allow_infinity=False)


def heights(max_value: float = 4.0) -> st.SearchStrategy[float]:
    return st.floats(min_value=0.01, max_value=max_value, allow_nan=False, allow_infinity=False)


def rect_lists(min_size: int = 0, max_size: int = 24, max_h: float = 4.0):
    """Lists of valid rectangles with ids 0..n-1."""
    pair = st.tuples(widths(), heights(max_h))
    return st.lists(pair, min_size=min_size, max_size=max_size).map(
        lambda ps: [Rect(rid=i, width=w, height=h) for i, (w, h) in enumerate(ps)]
    )


def columnar_rect_lists(K: int, min_size: int = 0, max_size: int = 16, max_h: float = 1.0):
    """Rectangles on a 1/K column grid with heights <= max_h."""
    pair = st.tuples(st.integers(min_value=1, max_value=K), heights(max_h))
    return st.lists(pair, min_size=min_size, max_size=max_size).map(
        lambda ps: [Rect(rid=i, width=c / K, height=h) for i, (c, h) in enumerate(ps)]
    )


def dags_over(n: int) -> st.SearchStrategy[TaskDAG]:
    """Random DAGs over nodes 0..n-1 (edges only i -> j for i < j)."""
    if n < 2:
        return st.just(TaskDAG.empty(range(n)))
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return st.lists(st.sampled_from(all_pairs), max_size=3 * n, unique=True).map(
        lambda edges: TaskDAG(range(n), edges)
    )


def precedence_instances(max_size: int = 14, max_h: float = 2.0):
    """Random precedence instances (rects + compatible DAG)."""

    @st.composite
    def build(draw):
        rects = draw(rect_lists(min_size=1, max_size=max_size, max_h=max_h))
        dag = draw(dags_over(len(rects)))
        return PrecedenceInstance(rects, dag)

    return build()


def release_instances(K: int = 4, max_size: int = 12, max_release: float = 3.0):
    """Random release instances on a K-column grid (APTAS-ready)."""

    @st.composite
    def build(draw):
        triples = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=1, max_value=K),
                    heights(1.0),
                    st.floats(min_value=0.0, max_value=max_release, allow_nan=False),
                ),
                min_size=1,
                max_size=max_size,
            )
        )
        rects = [
            Rect(rid=i, width=c / K, height=h, release=r)
            for i, (c, h, r) in enumerate(triples)
        ]
        return ReleaseInstance(rects, K)

    return build()
