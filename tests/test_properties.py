"""Library-wide property-based suite.

Hypothesis-driven invariants that cut across modules: every algorithm on
every generated instance produces a placement that the shared validator
accepts and whose height respects the appropriate bounds.  These are the
"no algorithm self-certifies" checks promised in DESIGN.md.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    area_bound,
    combined_lower_bound,
    critical_path_bound,
    dc_guarantee,
)
from repro.core.instance import PrecedenceInstance, StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.core.serialize import dumps_instance, loads_instance
from repro.packing import bfdh, bottom_left, ffdh, nfdh
from repro.precedence.dc import dc_pack
from repro.precedence.list_schedule import list_schedule

from .conftest import precedence_instances, rect_lists, release_instances

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])


@settings(max_examples=60, **COMMON)
@given(rect_lists(min_size=1, max_size=20, max_h=3.0))
def test_every_plain_packer_is_valid_and_sandwiched(rects):
    """lower bound <= packer <= full serialisation, for all four packers."""
    inst = StripPackingInstance(rects)
    lb = combined_lower_bound(inst)
    serial = sum(r.height for r in rects)
    for packer in (nfdh, ffdh, bfdh, bottom_left):
        result = packer(rects)
        validate_placement(inst, result.placement)
        assert lb - 1e-9 <= result.extent <= serial + 1e-9


@settings(max_examples=40, **COMMON)
@given(precedence_instances(max_size=12, max_h=2.0))
def test_dc_and_list_schedule_agree_on_feasibility(inst):
    for solver in (lambda i: dc_pack(i).placement, list_schedule):
        placement = solver(inst)
        validate_placement(inst, placement)


@settings(max_examples=40, **COMMON)
@given(precedence_instances(max_size=12, max_h=2.0))
def test_dc_beats_full_serialisation_and_obeys_theorem(inst):
    result = dc_pack(inst)
    serial = sum(r.height for r in inst.rects)
    assert result.height <= serial + 1e-9
    bound = dc_guarantee(len(inst), area_bound(inst), critical_path_bound(inst))
    assert result.height <= bound + 1e-7


@settings(max_examples=40, **COMMON)
@given(precedence_instances(max_size=10, max_h=2.0))
def test_serialization_round_trip_identity(inst):
    restored = loads_instance(dumps_instance(inst))
    assert isinstance(restored, PrecedenceInstance)
    assert [r.rid for r in restored.rects] == [r.rid for r in inst.rects]
    assert set(restored.dag.edges()) == set(inst.dag.edges())
    assert all(
        a.width == b.width and a.height == b.height and a.release == b.release
        for a, b in zip(inst.rects, restored.rects)
    )


@settings(max_examples=25, **COMMON)
@given(release_instances(K=4, max_size=10))
def test_release_heuristics_dominate_fractional_bound(inst):
    """Both heuristics produce integral solutions, so they sit at or above
    the certified fractional optimum."""
    from repro.release.heuristics import release_bottom_left, release_shelf_pack
    from repro.release.lp import optimal_fractional_height

    frac = optimal_fractional_height(inst)
    for heur in (release_shelf_pack, release_bottom_left):
        p = heur(inst)
        validate_placement(inst, p)
        assert p.height >= frac - 1e-6


@settings(max_examples=20, **COMMON)
@given(release_instances(K=3, max_size=7))
def test_aptas_full_lemma_chain(inst):
    """Every inequality in Algorithm 2's analysis, end to end, per run."""
    from repro.release.aptas import aptas
    from repro.release.lp import optimal_fractional_height

    eps = 1.2
    res = aptas(inst, eps=eps)
    validate_placement(inst, res.placement)
    # Lemma 3.1 inequality.
    base = optimal_fractional_height(inst)
    rounded = optimal_fractional_height(res.rounded)
    assert rounded <= (1 + eps / 3) * base + 1e-6
    # Lemma 3.2 inequality (with realised parameters).
    grouped = res.fractional.height
    n_classes = len({r.release for r in res.rounded.rects})
    lemma_32 = 1 + inst.K * n_classes / res.W
    assert grouped <= lemma_32 * rounded + 1e-6
    # Lemma 3.4 inequality.
    assert res.integral.height <= grouped + res.integral.n_occurrences + 1e-6
    # Theorem 3.5 composition.
    assert res.height <= (1 + eps) * base + res.integral.n_occurrences + 1e-6


@settings(max_examples=30, **COMMON)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=4), st.floats(min_value=0.05, max_value=1.0)),
        min_size=1,
        max_size=6,
    )
)
def test_exact_is_a_fixpoint_of_itself(specs):
    """Running exact on its own output cost cannot improve it."""
    from repro.exact.branch_and_bound import solve_exact

    rects = [Rect(rid=i, width=c / 4, height=h) for i, (c, h) in enumerate(specs)]
    inst = StripPackingInstance(rects)
    first = solve_exact(inst, K=4, max_nodes=300_000)
    second = solve_exact(inst, K=4, upper_bound=first.height + 1e-9, max_nodes=300_000)
    assert math.isclose(first.height, second.height, rel_tol=1e-9)
