"""Tests for table export (CSV/JSON)."""

import csv
import io
import json

from repro.analysis.export import table_to_csv, table_to_json, table_to_records
from repro.analysis.report import Table


def sample_table():
    t = Table(["n", "ratio"], title="demo")
    t.add_row([4, 1.5])
    t.add_row([8, 1.25])
    return t


class TestExport:
    def test_records(self):
        recs = table_to_records(sample_table())
        assert recs == [{"n": "4", "ratio": "1.5"}, {"n": "8", "ratio": "1.25"}]

    def test_csv_round_trip(self):
        text = table_to_csv(sample_table())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["n", "ratio"]
        assert rows[1] == ["4", "1.5"]
        assert len(rows) == 3

    def test_json(self):
        doc = json.loads(table_to_json(sample_table()))
        assert doc["title"] == "demo"
        assert doc["columns"] == ["n", "ratio"]
        assert doc["rows"][1]["n"] == "8"

    def test_empty_table(self):
        t = Table(["a"])
        assert table_to_records(t) == []
        assert "a" in table_to_csv(t)
