"""End-to-end tests for Algorithm 2 (the APTAS, Theorem 3.5)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.errors import InvalidInstanceError
from repro.core.instance import ReleaseInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.release.aptas import aptas, aptas_parameters
from repro.release.lp import optimal_fractional_height

from .conftest import release_instances


def inst_of(specs, K=4):
    rects = [
        Rect(rid=i, width=c / K, height=h, release=r)
        for i, (c, h, r) in enumerate(specs)
    ]
    return ReleaseInstance(rects, K)


class TestParameters:
    def test_faithful_parameters(self):
        R, W = aptas_parameters(1.0, K=4)
        # eps' = 1/3, R = 3, W = 3 * 4 * 4 = 48
        assert R == 3 and W == 48

    def test_eps_validation(self):
        with pytest.raises(InvalidInstanceError):
            aptas_parameters(0.0, K=4)

    def test_smaller_eps_larger_budgets(self):
        R1, W1 = aptas_parameters(1.0, K=4)
        R2, W2 = aptas_parameters(0.5, K=4)
        assert R2 >= R1 and W2 >= W1


class TestAPTAS:
    def test_checks_assumptions(self):
        bad = ReleaseInstance([Rect(rid=0, width=0.5, height=2.0)], K=4)
        with pytest.raises(InvalidInstanceError):
            aptas(bad, eps=1.0)

    def test_single_rect(self):
        inst = inst_of([(4, 1.0, 0.0)])
        res = aptas(inst, eps=1.0)
        validate_placement(inst, res.placement)
        assert res.height >= 1.0 - 1e-9

    def test_all_zero_releases(self):
        inst = inst_of([(1, 1.0, 0.0)] * 4)
        res = aptas(inst, eps=1.0)
        validate_placement(inst, res.placement)

    def test_theorem_3_5_bound(self):
        """S(R,W) <= (1+eps) * OPT_f(P) + (W+1)(R+1) with the realised
        occurrence count standing in for the worst-case additive term."""
        rng = np.random.default_rng(11)
        specs = [
            (int(rng.integers(1, 5)), float(rng.uniform(0.2, 1.0)),
             float(rng.uniform(0.0, 4.0)))
            for _ in range(30)
        ]
        inst = inst_of(specs)
        eps = 0.9
        res = aptas(inst, eps=eps)
        validate_placement(inst, res.placement)
        opt_f = optimal_fractional_height(inst)
        assert res.height <= (1 + eps) * opt_f + res.integral.n_occurrences + 1e-6
        # and the realised occurrences respect Lemma 3.3's cap
        W_real = len({r.width for r in res.grouping.instance.rects})
        R_real = len(res.fractional.boundaries)
        assert res.integral.n_occurrences <= (W_real + 1) * R_real

    def test_intermediate_artifacts_consistent(self):
        inst = inst_of([(2, 0.5, 0.0), (3, 0.8, 2.0), (1, 0.4, 4.0)])
        res = aptas(inst, eps=1.0)
        # rounded releases never below originals
        by_id = {r.rid: r for r in res.rounded.rects}
        for r in inst.rects:
            assert by_id[r.rid].release >= r.release
        # grouped widths never below rounded widths
        g_by_id = {r.rid: r for r in res.grouping.instance.rects}
        for r in res.rounded.rects:
            assert g_by_id[r.rid].width >= r.width - 1e-12
        # fractional solution verifies
        res.fractional.verify()

    def test_groups_per_class_override(self):
        inst = inst_of([(1, 0.5, 0.0), (2, 0.5, 1.0), (3, 0.5, 2.0)])
        res = aptas(inst, eps=1.0, groups_per_class=1)
        validate_placement(inst, res.placement)

    def test_bad_groups_per_class(self):
        inst = inst_of([(1, 0.5, 0.0)])
        with pytest.raises(InvalidInstanceError):
            aptas(inst, eps=1.0, groups_per_class=0)

    def test_quality_improves_with_eps_on_large_instance(self):
        """Asymptotics: with generous work per phase, smaller eps should not
        make the solution (relative to OPT_f) worse by much."""
        rng = np.random.default_rng(42)
        specs = [
            (int(rng.integers(1, 4)), float(rng.uniform(0.5, 1.0)),
             float(rng.choice([0.0, 8.0, 16.0])))
            for _ in range(80)
        ]
        inst = inst_of(specs)
        res_coarse = aptas(inst, eps=1.5)
        res_fine = aptas(inst, eps=0.6)
        for res in (res_coarse, res_fine):
            validate_placement(inst, res.placement)
        opt_f = optimal_fractional_height(inst)
        assert res_fine.height / opt_f <= res_coarse.height / opt_f + 0.5


@settings(deadline=None, max_examples=15)
@given(release_instances(K=3, max_size=8))
def test_aptas_valid_under_hypothesis(inst):
    res = aptas(inst, eps=1.2)
    validate_placement(inst, res.placement)
    # Height at least the trivial lower bounds.
    assert res.height >= max(r.release + r.height for r in inst.rects) - 1e-9
