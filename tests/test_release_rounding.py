"""Tests for Lemma 3.1 release-time rounding."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.errors import InvalidInstanceError
from repro.core.instance import ReleaseInstance
from repro.core.rectangle import Rect
from repro.release.rounding import release_grid, round_releases_down, round_releases_up

from .conftest import release_instances


def inst_of(releases, K=4):
    rects = [
        Rect(rid=i, width=1 / K, height=0.5, release=r) for i, r in enumerate(releases)
    ]
    return ReleaseInstance(rects, K)


class TestGrid:
    def test_grid_value(self):
        assert math.isclose(release_grid(inst_of([0.0, 10.0]), 0.25), 2.5)

    def test_zero_when_no_releases(self):
        assert release_grid(inst_of([0.0, 0.0]), 0.25) == 0.0

    def test_bad_eps(self):
        with pytest.raises(InvalidInstanceError):
            release_grid(inst_of([1.0]), 0.0)


class TestRoundDown:
    def test_on_grid_unchanged(self):
        inst = inst_of([0.0, 2.5, 5.0, 10.0])
        out = round_releases_down(inst, 0.25)  # delta = 2.5
        assert [r.release for r in out.rects] == [0.0, 2.5, 5.0, 10.0]

    def test_rounds_down(self):
        inst = inst_of([3.4, 10.0])
        out = round_releases_down(inst, 0.25)  # delta = 2.5
        assert [r.release for r in out.rects] == [2.5, 10.0]

    def test_all_zero_noop(self):
        inst = inst_of([0.0, 0.0])
        assert round_releases_down(inst, 0.5) is inst


class TestRoundUp:
    def test_releases_never_decrease(self):
        inst = inst_of([0.0, 1.2, 3.3, 10.0])
        out = round_releases_up(inst, 0.25)
        for orig, new in zip(inst.rects, out.rects):
            assert new.release >= orig.release

    def test_rounds_to_next_grid_point(self):
        inst = inst_of([3.4, 10.0])
        out = round_releases_up(inst, 0.25)  # delta = 2.5
        assert [r.release for r in out.rects] == [5.0, 12.5]

    def test_distinct_value_budget(self):
        rng = np.random.default_rng(0)
        inst = inst_of(list(rng.uniform(0.0, 50.0, size=200)) + [50.0])
        eps = 0.2
        out = round_releases_up(inst, eps)
        distinct = {r.release for r in out.rects}
        assert len(distinct) <= math.ceil(1 / eps) + 1

    def test_dimensions_and_ids_preserved(self):
        inst = inst_of([1.0, 2.0])
        out = round_releases_up(inst, 0.5)
        for orig, new in zip(inst.rects, out.rects):
            assert new.rid == orig.rid
            assert new.width == orig.width and new.height == orig.height

    def test_shift_bounded_by_delta(self):
        inst = inst_of([0.0, 4.9, 10.0])
        eps = 0.25
        delta = release_grid(inst, eps)
        out = round_releases_up(inst, eps)
        for orig, new in zip(inst.rects, out.rects):
            assert new.release - orig.release <= delta + 1e-12


@settings(deadline=None)
@given(release_instances(K=4, max_size=10))
def test_sandwich_property(inst):
    """P_down releases <= P releases < P_up releases (when rmax > 0),
    matching the Lemma 3.1 proof's sandwich."""
    eps = 0.3
    down = round_releases_down(inst, eps)
    up = round_releases_up(inst, eps)
    delta = release_grid(inst, eps)
    for o, d, u in zip(inst.rects, down.rects, up.rects):
        assert d.release <= o.release + 1e-9
        if delta > 0:
            assert u.release >= o.release - 1e-9
            assert math.isclose(u.release - d.release, delta, rel_tol=1e-9)


@settings(deadline=None)
@given(release_instances(K=4, max_size=10))
def test_round_up_solution_transfers_to_original(inst):
    """A valid placement of P_up is valid for P verbatim (releases only
    rose) — the property Algorithm 2's final step relies on."""
    from repro.core.placement import validate_placement
    from repro.release.heuristics import release_shelf_pack

    up = round_releases_up(inst, 0.3)
    placement = release_shelf_pack(up)
    # Re-bind the placement to the original rectangles at the same spots.
    from repro.core.placement import Placement

    by_id = inst.by_id()
    rebound = Placement()
    for rid, pr in placement.items():
        rebound.place(by_id[rid], pr.x, pr.y)
    validate_placement(inst, rebound)
