"""Unit tests for the observability package (:mod:`repro.obs`).

Covers the four zero-dependency building blocks on their own: trace-id
parsing and propagation, the bounded span ring + histograms, the
structured event logger and its schema, and the dependency-declaring
pipeline runner the trend gate is built on.  Service-level integration
(headers on the wire, ``/debug/trace`` merging) lives in
``tests/test_service_obs.py``.
"""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.logging import (
    EVENT_FIELDS,
    StructuredLogger,
    validate_event,
)
from repro.obs.pipeline import PipelineResult, Task, run_pipeline
from repro.obs.spans import (
    HISTOGRAM_BUCKETS_S,
    SpanRecorder,
    histogram_samples,
)
from repro.obs.trace import (
    DEFAULT_TENANT,
    TraceContext,
    current_trace,
    new_trace,
    parse_trace_header,
    sanitize_tenant,
    use_trace,
)


class TestTraceContext:
    def test_new_trace_ids_are_16_hex(self):
        ctx = new_trace()
        assert len(ctx.trace_id) == 16 and int(ctx.trace_id, 16) >= 0
        assert len(ctx.span_id) == 16 and int(ctx.span_id, 16) >= 0
        assert ctx.tenant == DEFAULT_TENANT

    def test_header_round_trip(self):
        ctx = new_trace("acme")
        parsed = parse_trace_header(ctx.header_value())
        assert parsed == ctx

    def test_child_keeps_trace_changes_span(self):
        ctx = new_trace()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.tenant == ctx.tenant

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "nonsense",
            "abc;def;tenant",  # ids too short
            "0123456789abcdef;0123456789abcdef",  # two fields, not three
            "0123456789ABCDEF;0123456789abcdef;t",  # uppercase rejected
        ],
    )
    def test_malformed_header_mints_new_trace(self, header):
        ctx = parse_trace_header(header)
        assert len(ctx.trace_id) == 16 and len(ctx.span_id) == 16
        assert ctx.tenant == DEFAULT_TENANT

    def test_explicit_tenant_header_wins(self):
        wire = TraceContext("0" * 16, "1" * 15 + "a", tenant="riding").header_value()
        ctx = parse_trace_header(wire, tenant="explicit")
        assert ctx.tenant == "explicit"
        assert ctx.trace_id == "0" * 16

    @pytest.mark.parametrize(
        "raw,expected",
        [
            (None, DEFAULT_TENANT),
            ("", DEFAULT_TENANT),
            ("team-a", "team-a"),
            ("a.b:c_d-e", "a.b:c_d-e"),
            ("has space", "other"),
            ("x" * 33, "other"),
            ('evil"label\n', "other"),
        ],
    )
    def test_sanitize_tenant(self, raw, expected):
        assert sanitize_tenant(raw) == expected

    def test_use_trace_scopes_the_ambient_context(self):
        assert current_trace() is None
        ctx = new_trace()
        with use_trace(ctx):
            assert current_trace() == ctx
        assert current_trace() is None


class TestSpanRecorder:
    def test_record_and_read_back(self):
        rec = SpanRecorder()
        rec.record("t1", "engine.solve", 10.0, 0.25, tenant="acme", algorithm="ffdh")
        doc = rec.trace_document("t1")
        assert doc["trace"] == "t1"
        (span,) = doc["spans"]
        assert span["name"] == "engine.solve"
        assert span["duration_s"] == 0.25
        assert span["tenant"] == "acme"
        assert span["labels"] == {"algorithm": "ffdh"}

    def test_unknown_trace_yields_empty_document(self):
        assert SpanRecorder().trace_document("nope") == {"trace": "nope", "spans": []}

    def test_trace_ring_is_bounded(self):
        rec = SpanRecorder(max_traces=3)
        for i in range(5):
            rec.record(f"t{i}", "x", float(i), 0.001)
        assert rec.spans_for("t0") == [] and rec.spans_for("t1") == []
        assert len(rec.spans_for("t4")) == 1

    def test_spans_per_trace_are_capped(self):
        rec = SpanRecorder(max_spans_per_trace=4)
        for i in range(10):
            rec.record("t", "x", float(i), 0.001)
        assert len(rec.spans_for("t")) == 4
        # the histogram still counts every recording
        assert rec.histogram_snapshot()["x|default"]["count"] == 10

    def test_identity_is_stamped_on_spans(self):
        rec = SpanRecorder()
        rec.identity = "3"
        rec.record("t", "x", 0.0, 0.001)
        assert rec.trace_document("t")["spans"][0]["worker"] == "3"

    def test_span_contextmanager_noop_without_trace(self):
        rec = SpanRecorder()
        with rec.span(None, "x"):
            pass
        assert rec.histogram_snapshot() == {}

    def test_histogram_buckets_accumulate(self):
        rec = SpanRecorder()
        rec.record("t", "x", 0.0, 0.0005)  # first bucket (<= 1ms)
        rec.record("t", "x", 0.0, 0.3)  # <= 0.5s bucket
        rec.record("t", "x", 0.0, 99.0)  # overflow (+Inf)
        entry = rec.histogram_snapshot()["x|default"]
        assert entry["count"] == 3
        assert entry["buckets"][0] == 1
        assert entry["buckets"][HISTOGRAM_BUCKETS_S.index(0.5)] == 1
        assert entry["buckets"][-1] == 1

    def test_histogram_samples_are_cumulative(self):
        rec = SpanRecorder()
        for duration in (0.0005, 0.3, 99.0):
            rec.record("t", "x", 0.0, duration)
        samples = histogram_samples(rec.histogram_snapshot(), {"worker": "0"})
        buckets = {
            s[1]["le"]: s[2]
            for s in samples
            if s[0] == "repro_span_duration_seconds_bucket"
        }
        assert buckets["0.001"] == 1.0
        assert buckets["5"] == 2.0  # cumulative: everything but the overflow
        assert buckets["+Inf"] == 3.0
        count = [s for s in samples if s[0] == "repro_span_duration_seconds_count"]
        assert count[0][2] == 3.0
        assert count[0][1]["worker"] == "0"


class TestStructuredLogger:
    def test_json_lines_validate(self):
        sink = io.StringIO()
        logger = StructuredLogger("json", stream=sink)
        logger.event(
            "request", trace="a" * 16, endpoint="/solve", status=200,
            latency_ms=1.25, tenant="default", cache="hit",
        )
        record = json.loads(sink.getvalue())
        validate_event(record)
        assert record["event"] == "request" and record["cache"] == "hit"

    def test_text_lines_are_key_value(self):
        sink = io.StringIO()
        StructuredLogger("text", stream=sink).event("drain", stage="begin")
        line = sink.getvalue().strip()
        assert line.startswith("event=drain")
        assert "stage=begin" in line and "level=info" in line

    def test_unconfigured_goes_through_stdlib_logging(self, caplog):
        logger = StructuredLogger()
        assert not logger.configured
        with caplog.at_level(logging.WARNING, logger="repro.test.obs"):
            logger.event("failover", logger="repro.test.obs",
                         worker=2, reason="timeout", path="/solve")
        assert len(caplog.records) == 1
        assert caplog.records[0].levelno == logging.WARNING
        assert "event=failover" in caplog.records[0].getMessage()

    def test_file_sink_appends_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = StructuredLogger("json", path=path)
        logger.event("drain", stage="begin")
        logger.event("drain", stage="complete")
        logger.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            validate_event(json.loads(line))

    def test_broken_sink_never_raises(self):
        class Broken(io.StringIO):
            def write(self, *_):
                raise OSError("disk full")

        StructuredLogger("json", stream=Broken()).event("drain", stage="begin")

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            StructuredLogger("xml")

    @pytest.mark.parametrize(
        "record,message",
        [
            ("not a dict", "object"),
            ({"event": "nope", "ts": 1.0, "level": "info"}, "unknown event"),
            ({"event": "drain", "level": "info"}, "ts"),
            ({"event": "drain", "ts": 1.0, "level": "loud"}, "level"),
            ({"event": "drain", "ts": 1.0, "level": "info"}, "stage"),
            (
                {"event": "drain", "ts": 1.0, "level": "info", "stage": 3},
                "stage",
            ),
        ],
    )
    def test_validate_event_rejects(self, record, message):
        with pytest.raises(ValueError, match=message):
            validate_event(record)

    def test_every_event_schema_has_typed_fields(self):
        for event, fields in EVENT_FIELDS.items():
            assert fields, event
            for name, types in fields.items():
                assert isinstance(name, str) and isinstance(types, tuple)


class TestPipeline:
    def test_runs_in_dependency_order(self):
        class A(Task):
            def run(self):
                self.output["a"] = [self.input["seed"]]

        class B(Task):
            @staticmethod
            def requires():
                return (A,)

            def run(self):
                self.output["b"] = self.input["a"] + ["b"]

        class C(Task):
            @staticmethod
            def requires():
                return ("B",)  # by name works too

            def run(self):
                self.output["c"] = self.input["b"] + ["c"]

        # declaration order is deliberately reversed
        result = run_pipeline((C, B, A), seed={"seed": "s"})
        assert list(result.order) == ["A", "B", "C"]
        assert result.outputs["C"]["c"] == ["s", "b", "c"]
        assert result.merged()["c"] == ["s", "b", "c"]

    def test_cycle_is_an_error_not_a_hang(self):
        from repro.core.errors import InvalidInstanceError

        class X(Task):
            @staticmethod
            def requires():
                return ("Y",)

            def run(self):
                pass

        class Y(Task):
            @staticmethod
            def requires():
                return (X,)

            def run(self):
                pass

        with pytest.raises(InvalidInstanceError):
            run_pipeline((X, Y))

    def test_seed_visible_to_every_task(self):
        class Solo(Task):
            def run(self):
                self.output["echo"] = self.input["param"]

        result = run_pipeline((Solo,), seed={"param": 42})
        assert isinstance(result, PipelineResult)
        assert result.outputs["Solo"]["echo"] == 42
