"""Tests for Algorithm F (shelf Next-Fit, Theorem 2.6) and Lemma 2.5."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG
from repro.precedence.shelf_nextfit import shelf_next_fit

from .conftest import dags_over


def unit_instance(widths, edges=()):
    rects = [Rect(rid=i, width=w, height=1.0) for i, w in enumerate(widths)]
    return PrecedenceInstance(rects, TaskDAG(range(len(widths)), edges))


class TestBasics:
    def test_empty(self):
        run = shelf_next_fit(unit_instance([]))
        assert run.height == 0.0 and run.n_skips == 0

    def test_non_uniform_rejected(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=2.0)]
        inst = PrecedenceInstance.without_constraints(rs)
        with pytest.raises(InvalidInstanceError):
            shelf_next_fit(inst)

    def test_single_shelf(self):
        run = shelf_next_fit(unit_instance([0.3, 0.3, 0.3]))
        assert run.height == 1.0 and len(run.shelves) == 1

    def test_width_close_opens_new_shelf(self):
        run = shelf_next_fit(unit_instance([0.6, 0.6]))
        assert run.height == 2.0
        assert not run.shelves[0].closed_by_skip  # queue non-empty at close

    def test_chain_forces_one_per_shelf(self):
        inst = unit_instance([0.1, 0.1, 0.1], edges=[(0, 1), (1, 2)])
        run = shelf_next_fit(inst)
        assert run.height == 3.0
        assert run.n_skips == 3  # every shelf closes on an empty queue

    def test_placement_valid(self, rng):
        from repro.workloads.dags import uniform_height_precedence_instance

        inst = uniform_height_precedence_instance(40, 0.05, rng)
        run = shelf_next_fit(inst)
        validate_placement(inst, run.placement)

    def test_non_unit_common_height(self):
        rs = [Rect(rid=i, width=0.4, height=0.5) for i in range(3)]
        inst = PrecedenceInstance(rs, TaskDAG.chain([0, 1, 2]))
        run = shelf_next_fit(inst)
        assert math.isclose(run.height, 1.5)
        validate_placement(inst, run.placement)


class TestLemma25:
    """#skips <= OPT — tested against the longest-chain lower bound and,
    on small instances, the exact optimum."""

    @pytest.mark.parametrize("seed", range(6))
    def test_skips_at_most_chain_plus_area_bound(self, seed):
        from repro.core.bounds import combined_lower_bound
        from repro.workloads.dags import uniform_height_precedence_instance

        rng = np.random.default_rng(seed)
        inst = uniform_height_precedence_instance(30, 0.1, rng)
        run = shelf_next_fit(inst)
        # Lemma 2.5's proof constructs a chain through the skip shelves, so
        # skips <= longest chain length <= OPT; the chain length equals the
        # critical-path bound here (all heights 1).
        from repro.core.bounds import critical_path_bound

        assert run.n_skips <= critical_path_bound(inst) + 1e-9


class TestTheorem26:
    @pytest.mark.parametrize("seed", range(6))
    def test_three_approximation_vs_lower_bound(self, seed):
        from repro.core.bounds import combined_lower_bound
        from repro.workloads.dags import uniform_height_precedence_instance

        rng = np.random.default_rng(seed)
        inst = uniform_height_precedence_instance(36, 0.08, rng)
        run = shelf_next_fit(inst)
        validate_placement(inst, run.placement)
        assert run.height <= 3.0 * combined_lower_bound(inst) + 1e-7

    def test_ratio3_construction_is_tight(self):
        from repro.workloads.adversarial import ratio3_instance

        adv = ratio3_instance(4, eps=1e-4)
        run = shelf_next_fit(adv.instance)
        validate_placement(adv.instance, run.placement)
        # The construction's optimum is n; Algorithm F also achieves it here
        # (the instance shows lower-bound weakness, not algorithm weakness).
        assert run.height <= adv.analytic["opt"] + 1e-9


@settings(deadline=None)
@given(
    st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=12),
    st.data(),
)
def test_shelf_next_fit_valid_and_3_approx(widths, data):
    dag = data.draw(dags_over(len(widths)))
    rects = [Rect(rid=i, width=w, height=1.0) for i, w in enumerate(widths)]
    inst = PrecedenceInstance(rects, dag)
    run = shelf_next_fit(inst)
    validate_placement(inst, run.placement)
    from repro.core.bounds import combined_lower_bound

    assert run.height <= 3.0 * combined_lower_bound(inst) + 1e-7
