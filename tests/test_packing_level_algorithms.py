"""Unit and property tests for NFDH / FFDH / BFDH."""

import math

import pytest
from hypothesis import given

from repro.core.instance import StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect, max_height, total_area
from repro.packing.base import subroutine_a_bound
from repro.packing.bfdh import bfdh
from repro.packing.ffdh import ffdh
from repro.packing.nfdh import nfdh

from .conftest import rect_lists

ALGOS = [nfdh, ffdh, bfdh]


@pytest.mark.parametrize("algo", ALGOS)
class TestLevelAlgorithms:
    def test_empty(self, algo):
        result = algo([])
        assert result.extent == 0.0 and len(result.placement) == 0

    def test_single_rect(self, algo):
        r = Rect(rid=0, width=0.5, height=2.0)
        result = algo([r])
        assert result.extent == 2.0
        assert result.placement[0].x == 0.0 and result.placement[0].y == 0.0

    def test_two_side_by_side(self, algo):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        result = algo(rs)
        assert math.isclose(result.extent, 1.0)

    def test_two_stacked(self, algo):
        rs = [Rect(rid=0, width=0.8, height=1.0), Rect(rid=1, width=0.8, height=0.5)]
        result = algo(rs)
        assert math.isclose(result.extent, 1.5)

    def test_starts_at_y(self, algo):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        result = algo(rs, y=3.0)
        assert result.placement[0].y == 3.0

    def test_valid_placement(self, algo, rng):
        from repro.workloads.random_rects import uniform_rects

        rects = uniform_rects(40, rng)
        result = algo(rects)
        validate_placement(StripPackingInstance(rects), result.placement)

    def test_extent_matches_placement(self, algo, rng):
        from repro.workloads.random_rects import uniform_rects

        rects = uniform_rects(25, rng)
        result = algo(rects)
        assert math.isclose(result.extent, result.placement.extent(), abs_tol=1e-9)


class TestNFDHSpecific:
    def test_level_heights_non_increasing(self, rng):
        from repro.workloads.random_rects import uniform_rects

        rects = uniform_rects(30, rng)
        result = nfdh(rects)
        # First rect of each level defines the level height; collect by y.
        by_y: dict[float, float] = {}
        for pr in result.placement:
            by_y.setdefault(pr.y, 0.0)
            by_y[pr.y] = max(by_y[pr.y], pr.rect.height)
        levels = [by_y[y] for y in sorted(by_y)]
        assert levels == sorted(levels, reverse=True)

    def test_nfdh_worse_or_equal_to_ffdh(self, rng):
        from repro.workloads.random_rects import uniform_rects

        rects = uniform_rects(60, rng)
        assert ffdh(rects).extent <= nfdh(rects).extent + 1e-9


@given(rect_lists(min_size=1, max_size=20, max_h=2.0))
def test_nfdh_subroutine_a_guarantee(rects):
    """The classical bound: NFDH(S) <= 2*AREA(S) + hmax."""
    result = nfdh(rects)
    assert result.extent <= subroutine_a_bound(rects) + 1e-9


@given(rect_lists(min_size=1, max_size=20, max_h=2.0))
def test_ffdh_also_meets_contract_bound(rects):
    """FFDH never uses more levels than NFDH, so it inherits the bound."""
    result = ffdh(rects)
    assert result.extent <= subroutine_a_bound(rects) + 1e-9


@given(rect_lists(min_size=1, max_size=18, max_h=2.0))
def test_all_level_algorithms_produce_valid_placements(rects):
    inst = StripPackingInstance(rects)
    for algo in ALGOS:
        validate_placement(inst, algo(rects).placement)


@given(rect_lists(min_size=1, max_size=18, max_h=2.0))
def test_extent_at_least_lower_bounds(rects):
    lower = max(total_area(rects), max_height(rects))
    for algo in ALGOS:
        assert algo(rects).extent >= lower - 1e-9
