"""Differential tests against the exact branch-and-bound oracle.

On exhaustively enumerated small columnar instances the exact solver's
optimum is ground truth, which pins down every other solver from below:

* every heuristic/approximation height is **>= the exact optimum** (a
  "better than optimal" result would mean an invalid placement slipped
  through, or the oracle is wrong — either is a bug worth one test);
* every :class:`~repro.engine.report.SolveReport` ratio is **>= 1** (the
  combined lower bound never exceeds the achieved height);
* online policies never beat the offline optimum — the price of not
  knowing the future is nonnegative on *every* instance, not just on
  benchmark averages.

The tier-1 sweeps keep the enumeration small (hundreds of instances); the
``slow`` sweep widens the grid on CI.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import (
    PrecedenceInstance,
    ReleaseInstance,
    StripPackingInstance,
)
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG
from repro.engine import run, specs_for_variant
from repro.exact.branch_and_bound import solve_exact

K = 2
WIDTHS = (1, 2)          # columns on the K=2 grid
HEIGHTS = (0.5, 1.0)
RELEASES = (0.0, 0.75)

TOL = 1e-9


def plain_instances(n: int):
    """Every plain instance with ``n`` rects over the small grid."""
    dims = list(itertools.product(WIDTHS, HEIGHTS))
    for combo in itertools.product(dims, repeat=n):
        yield StripPackingInstance(
            [Rect(rid=i, width=c / K, height=h) for i, (c, h) in enumerate(combo)]
        )


def release_instances_grid(n: int, releases=RELEASES):
    """Every release instance with ``n`` rects over the small grid."""
    dims = list(itertools.product(WIDTHS, HEIGHTS, releases))
    for combo in itertools.product(dims, repeat=n):
        yield ReleaseInstance(
            [Rect(rid=i, width=c / K, height=h, release=r)
             for i, (c, h, r) in enumerate(combo)],
            K,
        )


def precedence_instances_grid(n: int, dag_edges):
    """Every precedence instance with ``n`` rects over the grid and a DAG."""
    dims = list(itertools.product(WIDTHS, HEIGHTS))
    for combo in itertools.product(dims, repeat=n):
        yield PrecedenceInstance(
            [Rect(rid=i, width=c / K, height=h) for i, (c, h) in enumerate(combo)],
            TaskDAG(range(n), dag_edges),
        )


def check_against_oracle(instance, spec_names):
    opt = solve_exact(instance, K).height
    for name in spec_names:
        try:
            report = run(instance, name)
        except InvalidInstanceError:
            # A declared input restriction (e.g. shelf_next_fit's uniform
            # heights): the grid's uniform combos still cover this spec.
            continue
        assert report.valid, f"{name}: {report.error}"
        assert report.height >= opt - TOL, (
            f"{name} beat the exact optimum: {report.height} < {opt}"
        )
        assert report.ratio is not None and report.ratio >= 1.0 - TOL, (
            f"{name} ratio below 1: {report.ratio}"
        )


class TestPlainVsExact:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_no_heuristic_beats_exact(self, n):
        names = [s.name for s in specs_for_variant("plain")]
        for instance in plain_instances(n):
            check_against_oracle(instance, names)


class TestPrecedenceVsExact:
    @pytest.mark.parametrize(
        "edges", [[], [(0, 1), (1, 2)], [(0, 1), (0, 2)], [(0, 2), (1, 2)]],
        ids=["independent", "chain", "fork", "join"],
    )
    def test_no_heuristic_beats_exact(self, edges):
        names = [s.name for s in specs_for_variant("precedence")]
        for instance in precedence_instances_grid(3, edges):
            check_against_oracle(instance, names)


class TestReleaseVsExact:
    """Release specs include the LP-heavy APTAS, so tier-1 enumerates n=2
    in full; the slow sweep covers n=3."""

    def test_no_release_algorithm_beats_exact(self):
        names = [s.name for s in specs_for_variant("release")]
        for instance in release_instances_grid(2):
            check_against_oracle(instance, names)

    def test_online_never_beats_offline_optimum_n3(self):
        # Oracle-vs-online is cheap (no LP), so n=3 fits in tier-1.
        online = [s.name for s in specs_for_variant("release") if "online" in s.flags]
        assert len(online) == 3
        for instance in release_instances_grid(3):
            check_against_oracle(instance, online)

    @pytest.mark.slow
    def test_no_release_algorithm_beats_exact_n3_deep(self):
        names = [s.name for s in specs_for_variant("release")]
        for instance in release_instances_grid(3):
            check_against_oracle(instance, names)
