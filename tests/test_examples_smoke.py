"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; bit-rot there is a release
blocker, so the suite runs each one in-process (small parameters) and
checks for its expected output markers.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", [], capsys)
    assert "all three placements validated" in out


def test_fpga_jpeg_pipeline(capsys):
    out = run_example("fpga_jpeg_pipeline.py", ["3", "8"], capsys)
    assert "DC makespan" in out and "per-column busy time" in out


def test_online_release_scheduling(capsys):
    out = run_example("online_release_scheduling.py", ["15", "4"], capsys)
    assert "fractional optimum" in out and "APTAS pipeline internals" in out


def test_adversarial_gallery(capsys):
    out = run_example("adversarial_gallery.py", [], capsys)
    assert "Omega(log n)" in out and "factor 3" in out


def test_bin_packing_workflow(capsys):
    out = run_example("bin_packing_workflow.py", ["10"], capsys)
    assert "bin packing view" in out and "slide-down conversion" in out
