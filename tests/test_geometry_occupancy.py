"""Unit tests for occupancy metrics."""

import math

import numpy as np
import pytest
from hypothesis import given

from repro.core.placement import PlacedRect, Placement
from repro.core.rectangle import Rect
from repro.geometry.occupancy import band_density, occupancy_profile, union_area, utilisation
from repro.packing.nfdh import nfdh

from .conftest import rect_lists


def placed(w, h, x, y, rid=0):
    return PlacedRect(Rect(rid=rid, width=w, height=h), x, y)


class TestUnionArea:
    def test_empty(self):
        assert union_area([]) == 0.0

    def test_single(self):
        assert math.isclose(union_area([placed(0.5, 2.0, 0.0, 0.0)]), 1.0)

    def test_disjoint_sum(self):
        items = [placed(0.5, 1.0, 0.0, 0.0, 0), placed(0.5, 1.0, 0.5, 0.0, 1)]
        assert math.isclose(union_area(items), 1.0)

    def test_overlapping_counted_once(self):
        items = [placed(0.5, 1.0, 0.0, 0.0, 0), placed(0.5, 1.0, 0.0, 0.0, 1)]
        assert math.isclose(union_area(items), 0.5)

    def test_partial_overlap(self):
        items = [placed(0.6, 1.0, 0.0, 0.0, 0), placed(0.6, 1.0, 0.4, 0.0, 1)]
        assert math.isclose(union_area(items), 1.0)


class TestProfilesAndDensity:
    def test_occupancy_profile_flat(self):
        p = Placement()
        p.place(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)
        ys, ws = occupancy_profile(p, n_samples=16)
        assert np.allclose(ws, 0.5)

    def test_band_density_full(self):
        p = Placement()
        p.place(Rect(rid=0, width=1.0, height=1.0), 0.0, 0.0)
        assert math.isclose(band_density(p, 0.0, 1.0), 1.0)

    def test_band_density_clipped(self):
        p = Placement()
        p.place(Rect(rid=0, width=1.0, height=1.0), 0.0, 0.5)
        assert math.isclose(band_density(p, 0.0, 1.0), 0.5)

    def test_band_density_degenerate(self):
        assert band_density(Placement(), 1.0, 1.0) == 0.0

    def test_utilisation_empty(self):
        assert utilisation(Placement()) == 0.0


@given(rect_lists(min_size=1, max_size=14))
def test_union_area_of_valid_packing_is_area_sum(rects):
    """For non-overlapping placements, union area == sum of areas."""
    result = nfdh(rects)
    total = sum(r.area for r in rects)
    assert math.isclose(union_area(iter(result.placement)), total, rel_tol=1e-9)


@given(rect_lists(min_size=1, max_size=14))
def test_utilisation_between_0_and_1(rects):
    result = nfdh(rects)
    u = utilisation(result.placement)
    assert 0.0 < u <= 1.0 + 1e-9
