"""Tests for the Theorem 2.6 red/green shelf accounting."""

import numpy as np
import pytest

from repro.core.bounds import critical_path_bound
from repro.core.instance import PrecedenceInstance
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG
from repro.precedence.accounting import color_shelves, verify_accounting
from repro.precedence.shelf_nextfit import shelf_next_fit


def unit_instance(widths, edges=()):
    rects = [Rect(rid=i, width=w, height=1.0) for i, w in enumerate(widths)]
    return PrecedenceInstance(rects, TaskDAG(range(len(widths)), edges))


class TestColoring:
    def test_empty_run(self):
        run = shelf_next_fit(unit_instance([]))
        coloring = color_shelves(run)
        assert coloring.colors == ()

    def test_two_dense_shelves_red(self):
        # widths 0.6 + 0.6: two shelves, combined load 1.2 >= 1 -> both red.
        run = shelf_next_fit(unit_instance([0.6, 0.6]))
        coloring = color_shelves(run)
        assert coloring.colors == ("red", "red")

    def test_sparse_chain_green(self):
        inst = unit_instance([0.1, 0.1, 0.1], edges=[(0, 1), (1, 2)])
        run = shelf_next_fit(inst)
        coloring = color_shelves(run)
        assert set(coloring.colors) == {"green"}

    def test_counts(self):
        run = shelf_next_fit(unit_instance([0.6, 0.6]))
        c = color_shelves(run)
        assert c.n_red == 2 and c.n_green == 0


class TestVerifyAccounting:
    @pytest.mark.parametrize("seed", range(8))
    def test_proof_inequalities_on_random_runs(self, seed):
        from repro.workloads.dags import uniform_height_precedence_instance

        rng = np.random.default_rng(seed)
        inst = uniform_height_precedence_instance(32, 0.1, rng)
        run = shelf_next_fit(inst)
        area = sum(r.width for r in inst.rects)  # in shelf-height units
        stats = verify_accounting(run, area=area, opt_lower=critical_path_bound(inst))
        assert stats["total"] == stats["red"] + stats["green"]
        # Theorem 2.6 end-to-end: height <= 2*AREA + OPT (in shelves).
        assert stats["total"] <= 2 * area + critical_path_bound(inst) + 1e-9

    def test_green_shelves_are_skips(self):
        inst = unit_instance([0.1, 0.1], edges=[(0, 1)])
        run = shelf_next_fit(inst)
        stats = verify_accounting(run, area=0.2, opt_lower=2.0)
        assert stats["green"] <= stats["skips"]
