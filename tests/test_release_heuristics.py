"""Tests for the release-time heuristic baselines."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.instance import ReleaseInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.release.heuristics import release_bottom_left, release_shelf_pack

from .conftest import release_instances

HEURISTICS = [release_shelf_pack, release_bottom_left]


def inst_of(specs, K=4):
    rects = [
        Rect(rid=i, width=c / K, height=h, release=r)
        for i, (c, h, r) in enumerate(specs)
    ]
    return ReleaseInstance(rects, K)


@pytest.mark.parametrize("heur", HEURISTICS)
class TestHeuristics:
    def test_empty(self, heur):
        inst = inst_of([])
        assert heur(inst).height == 0.0

    def test_single(self, heur):
        inst = inst_of([(2, 1.0, 3.0)])
        p = heur(inst)
        validate_placement(inst, p)
        assert math.isclose(p.height, 4.0)

    def test_no_releases_packs_parallel(self, heur):
        inst = inst_of([(1, 1.0, 0.0)] * 4)
        p = heur(inst)
        validate_placement(inst, p)
        assert math.isclose(p.height, 1.0)

    def test_valid_on_random(self, heur, rng):
        from repro.workloads.releases import poisson_release_instance

        inst = poisson_release_instance(40, 6, rng, rate=3.0)
        p = heur(inst)
        validate_placement(inst, p)


class TestShelfSpecific:
    def test_batches_never_interleave(self):
        inst = inst_of([(1, 1.0, 0.0), (1, 1.0, 0.0), (1, 1.0, 5.0)])
        p = release_shelf_pack(inst)
        assert p[2].y >= 5.0
        assert p[0].y2 <= p[2].y + 1e-9

    def test_bl_can_beat_shelf_on_gaps(self, rng):
        """Bottom-left tucks later-released narrow rects beside earlier tall
        ones; batch-shelf cannot."""
        inst = inst_of([(2, 1.0, 0.0), (2, 0.2, 0.1)])
        shelf = release_shelf_pack(inst)
        bl = release_bottom_left(inst)
        assert bl.height <= shelf.height + 1e-9


@settings(deadline=None)
@given(release_instances(K=4, max_size=12))
def test_heuristics_valid_under_hypothesis(inst):
    for heur in HEURISTICS:
        p = heur(inst)
        validate_placement(inst, p)
        assert p.height >= max(r.release + r.height for r in inst.rects) - 1e-9
