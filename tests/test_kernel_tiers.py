"""Kernel-tier registry and compiled-tier differential tests.

Three families:

* **registry semantics** — tier selection, lazy resolution, the graceful
  numba-less fallback (``compiled``/``auto`` → ``array`` with exactly one
  log line), and the ``use_tier`` scope guard;
* **tier differentials** — the packers, the validator, and the registry
  specs must be *bit-identical* across every tier.  These run even
  without numba installed: :mod:`repro.kernels.compiled` degrades
  ``@njit`` to a pass-through decorator, so forcing
  ``compiled.AVAILABLE = True`` drives the exact compiled-kernel bodies
  as plain Python — same code, same arithmetic, minus the JIT;
* **real-numba checks** — ``skipif``-gated on numba actually importing
  (the CI ``[speed]`` leg); the default legs prove the fallback instead.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest
from hypothesis import given, settings

from repro import kernels
from repro.core.arrays import RectArrays
from repro.core.errors import InvalidPlacementError
from repro.core.instance import StripPackingInstance
from repro.core.placement import PlacedRect, Placement, validate_placement
from repro.core.rectangle import Rect
from repro.engine import run
from repro.kernels import compiled
from repro.packing import bfdh, bottom_left, ffdh, nfdh
from repro.workloads.random_rects import powerlaw_rects, uniform_rects

from .conftest import rect_lists


@pytest.fixture(autouse=True)
def _pristine_registry():
    """Every test starts and ends on a clean process-global registry."""
    kernels._reset_for_testing()
    yield
    kernels._reset_for_testing()


def _force_compiled(monkeypatch):
    """Make the compiled tier selectable regardless of numba.

    Without numba the kernels are their own pure-Python executable
    specification (pass-through ``njit``), so this is a real differential
    test of the compiled-kernel logic, not a mock.
    """
    monkeypatch.setattr(compiled, "AVAILABLE", True)


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------


class TestRegistry:
    def test_default_is_auto(self):
        assert kernels.requested_tier() == "auto"
        assert kernels.active_tier() == (
            "compiled" if compiled.AVAILABLE else "array"
        )

    @pytest.mark.parametrize("tier", ["reference", "array"])
    def test_explicit_tiers_resolve_to_themselves(self, tier):
        kernels.set_tier(tier)
        assert kernels.requested_tier() == tier
        assert kernels.active_tier() == tier

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            kernels.set_tier("vectorized")
        # The failed request left the registry untouched.
        assert kernels.requested_tier() == "auto"

    def test_tier_choices_cover_tiers(self):
        assert kernels.TIER_CHOICES == ("auto",) + kernels.TIERS

    def test_hot_path_predicates(self, monkeypatch):
        _force_compiled(monkeypatch)
        kernels.set_tier("reference")
        assert kernels.use_reference() and not kernels.use_compiled()
        kernels.set_tier("array")
        assert not kernels.use_reference() and not kernels.use_compiled()
        kernels.set_tier("compiled")
        assert kernels.use_compiled() and not kernels.use_reference()

    def test_use_tier_restores_previous_request(self):
        kernels.set_tier("array")
        with kernels.use_tier("reference") as active:
            assert active == "reference"
            assert kernels.use_reference()
        assert kernels.requested_tier() == "array"
        assert kernels.active_tier() == "array"

    def test_use_tier_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with kernels.use_tier("reference"):
                raise RuntimeError("boom")
        assert kernels.requested_tier() == "auto"

    def test_tier_info_shape(self):
        info = kernels.tier_info()
        assert set(info) == {"requested", "active", "compiled_available", "numba"}
        assert info["requested"] == "auto"
        assert info["active"] in kernels.TIERS
        assert isinstance(info["compiled_available"], bool)


class TestGracefulFallback:
    """Requesting ``compiled`` without numba degrades, loudly once."""

    @pytest.fixture(autouse=True)
    def _no_numba(self, monkeypatch):
        monkeypatch.setattr(compiled, "AVAILABLE", False)

    def test_explicit_compiled_degrades_to_array(self):
        kernels.set_tier("compiled")
        assert kernels.requested_tier() == "compiled"
        assert kernels.active_tier() == "array"
        assert not kernels.use_compiled()

    def test_auto_resolves_to_array(self):
        assert kernels.active_tier() == "array"

    def test_fallback_logs_exactly_once(self, caplog):
        kernels.set_tier("compiled")
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            kernels.active_tier()
            # Re-resolution after another request must stay silent.
            kernels.set_tier("auto")
            kernels.active_tier()
            kernels.set_tier("compiled")
            kernels.active_tier()
        warnings = [r for r in caplog.records if r.name == "repro.kernels"]
        assert len(warnings) == 1
        assert "falling back to the array tier" in warnings[0].message
        assert "[speed]" in warnings[0].message

    def test_degraded_tier_still_solves(self):
        kernels.set_tier("compiled")
        rects = [Rect(rid=i, width=0.3, height=0.5) for i in range(6)]
        report = run(StripPackingInstance(rects), "ffdh")
        assert report.valid is True


# ----------------------------------------------------------------------
# tier differentials: packers
# ----------------------------------------------------------------------

PACKERS = [
    pytest.param(nfdh, id="nfdh"),
    pytest.param(ffdh, id="ffdh"),
    pytest.param(bfdh, id="bfdh"),
    pytest.param(bottom_left, id="bottom_left"),
]


def _pack_under(packer, rects, tier):
    with kernels.use_tier(tier):
        # bottom_left takes rect sequences; level packers accept columns.
        arg = rects if packer is bottom_left else RectArrays(rects)
        return packer(arg)


def _assert_same_pack(a, b, rects):
    assert a.extent == b.extent
    for r in rects:
        assert a.placement[r.rid] == b.placement[r.rid], r.rid


class TestPackerTierDifferential:
    @pytest.mark.parametrize("packer", PACKERS)
    @given(rect_lists(min_size=1, max_size=20, max_h=3.0))
    def test_hypothesis_sequences(self, packer, rects):
        """reference == array == compiled on random rectangle lists."""
        # MonkeyPatch.context, not the fixture: hypothesis re-runs the
        # test body without resetting function-scoped fixtures.
        with pytest.MonkeyPatch.context() as mp:
            _force_compiled(mp)
            ref = _pack_under(packer, rects, "reference")
            arr = _pack_under(packer, rects, "array")
            com = _pack_under(packer, rects, "compiled")
        _assert_same_pack(arr, ref, rects)
        _assert_same_pack(com, ref, rects)

    @pytest.mark.parametrize("packer", PACKERS)
    @pytest.mark.parametrize("gen", [powerlaw_rects, uniform_rects])
    @pytest.mark.parametrize("n", [64, 300])
    def test_workload_scale(self, monkeypatch, packer, gen, n):
        """Workload-scale instances agree tier-for-tier (exact floats)."""
        _force_compiled(monkeypatch)
        rects = gen(n, np.random.default_rng(n))
        ref = _pack_under(packer, rects, "reference")
        com = _pack_under(packer, rects, "compiled")
        _assert_same_pack(com, ref, rects)


# ----------------------------------------------------------------------
# tier differentials: validator
# ----------------------------------------------------------------------


class TestValidatorTierDifferential:
    def _valid_case(self, n=120):
        rects = powerlaw_rects(n, np.random.default_rng(5))
        instance = StripPackingInstance(rects)
        return instance, ffdh(instance.arrays()).placement

    def test_valid_placement_all_tiers(self, monkeypatch):
        _force_compiled(monkeypatch)
        instance, placement = self._valid_case()
        for tier in kernels.TIERS:
            with kernels.use_tier(tier):
                validate_placement(instance, placement)  # must not raise

    @pytest.mark.parametrize("defect", ["overlap", "outside", "negative"])
    def test_defects_caught_on_every_tier(self, monkeypatch, defect):
        """The same broken placement fails identically on every tier."""
        _force_compiled(monkeypatch)
        instance, placement = self._valid_case()
        placed = dict(placement.items())
        victim = instance.rects[7]
        if defect == "overlap":
            other = placement[instance.rects[3].rid]
            placed[victim.rid] = PlacedRect(victim, other.x, other.y)
        elif defect == "outside":
            placed[victim.rid] = PlacedRect(victim, 1.0 - victim.width / 2, 0.0)
        else:
            placed[victim.rid] = PlacedRect(victim, 0.0, -victim.height)
        broken = Placement(placed)
        messages = {}
        for tier in kernels.TIERS:
            with kernels.use_tier(tier):
                with pytest.raises(InvalidPlacementError) as exc:
                    validate_placement(instance, broken)
                messages[tier] = str(exc.value)
        # array and compiled share the columnar sweep order, so their
        # messages match verbatim; reference may report a different
        # witness pair but must still reject.
        assert messages["array"] == messages["compiled"]


# ----------------------------------------------------------------------
# tier differentials: engine registry sweep
# ----------------------------------------------------------------------


class TestEngineTierSweep:
    @pytest.mark.parametrize("algorithm", ["nfdh", "ffdh", "bfdh", "bottom_left"])
    def test_run_reports_identical(self, monkeypatch, algorithm):
        """engine.run agrees field-for-field (minus wall_time) across tiers."""
        _force_compiled(monkeypatch)
        instance = StripPackingInstance(powerlaw_rects(150, np.random.default_rng(9)))
        reports = {}
        for tier in kernels.TIERS:
            with kernels.use_tier(tier):
                reports[tier] = run(instance, algorithm)
        base = reports["reference"]
        for tier in ("array", "compiled"):
            r = reports[tier]
            assert r.height == base.height
            assert r.valid is True and base.valid is True
            assert r.lower_bound == base.lower_bound
            for rid, p in base.placement.items():
                assert r.placement[rid] == p, (tier, rid)


# ----------------------------------------------------------------------
# direct kernel units (pure-Python bodies without numba)
# ----------------------------------------------------------------------


class TestKernelUnits:
    def test_level_first_fit_matches_scan(self):
        used = np.array([0.95, 0.5, 0.8, 0.2, 0.99], dtype=np.float64)
        for w in (0.01, 0.3, 0.6, 0.9):
            got = compiled.level_first_fit(used, len(used), w, 1e-9)
            want = next(
                (i for i, u in enumerate(used) if u + w <= 1.0 + 1e-9), -1
            )
            assert got == want, w

    def test_level_best_fit_prefers_tightest_then_first(self):
        used = np.array([0.1, 0.6, 0.6, 0.3], dtype=np.float64)
        # w=0.4: residuals 0.5, 0.0, 0.0, 0.3 -> tightest is level 1
        # (first occurrence of the minimum).
        assert compiled.level_best_fit(used, len(used), 0.4, 1e-9) == 1
        # Nothing fits.
        assert compiled.level_best_fit(used, len(used), 0.95, 1e-9) == -1

    def test_skyline_lowest_matches_array_kernel(self, monkeypatch):
        from repro.geometry.skyline import Skyline

        _force_compiled(monkeypatch)
        rng = np.random.default_rng(11)
        seq = [(float(rng.uniform(0.02, 0.5)), float(rng.uniform(0.02, 0.5)))
               for _ in range(60)]
        with kernels.use_tier("array"):
            a = Skyline()
            arr_positions = []
            for w, h in seq:
                pos = a.lowest_position(w)
                arr_positions.append(pos)
                a.place(pos[0], w, h)
        with kernels.use_tier("compiled"):
            c = Skyline()
            for (w, h), expected in zip(seq, arr_positions):
                pos = c.lowest_position(w)
                assert pos == expected
                c.place(pos[0], w, h)


# ----------------------------------------------------------------------
# real numba (the CI [speed] leg)
# ----------------------------------------------------------------------

requires_numba = pytest.mark.skipif(
    not compiled.AVAILABLE, reason="numba not installed (the [speed] extra)"
)


@requires_numba
class TestRealNumba:
    def test_auto_resolves_to_compiled(self):
        assert kernels.active_tier() == "compiled"
        assert kernels.tier_info()["numba"] is not None

    @pytest.mark.parametrize("packer", PACKERS)
    def test_jitted_kernels_bit_identical(self, packer):
        rects = powerlaw_rects(2000, np.random.default_rng(3))
        ref = _pack_under(packer, rects, "array")
        com = _pack_under(packer, rects, "compiled")
        _assert_same_pack(com, ref, rects)

    def test_jitted_validator_accepts_and_rejects(self):
        instance = StripPackingInstance(powerlaw_rects(500, np.random.default_rng(4)))
        placement = ffdh(instance.arrays()).placement
        with kernels.use_tier("compiled"):
            validate_placement(instance, placement)
        placed = dict(placement.items())
        victim = instance.rects[0]
        other = placement[instance.rects[1].rid]
        placed[victim.rid] = PlacedRect(victim, other.x, other.y)
        with kernels.use_tier("compiled"):
            with pytest.raises(InvalidPlacementError):
                validate_placement(instance, Placement(placed))
