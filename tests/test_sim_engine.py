"""Tests for the discrete-event loop and SimTrace records."""

import json
import math

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError, SolverError
from repro.core.instance import ReleaseInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.engine import get_spec, portfolio, run, solve_many
from repro.sim import (
    GeneratorStream,
    InstanceStream,
    OnlinePolicy,
    ReplayStream,
    poisson_stream,
    simulate,
    simulate_instance,
)
from repro.workloads.releases import bursty_release_instance


def rel_inst(specs, K=4):
    rects = [
        Rect(rid=i, width=c / K, height=h, release=r)
        for i, (c, h, r) in enumerate(specs)
    ]
    return ReleaseInstance(rects, K)


class TestEventLoop:
    def test_empty_stream(self):
        trace = simulate_instance(rel_inst([]))
        assert trace.n_tasks == 0 and trace.makespan == 0.0
        assert trace.mean_queue_depth == 0.0 and trace.mean_utilization == 0.0

    def test_events_carry_commit_data(self):
        trace = simulate_instance(rel_inst([(4, 1.0, 0.0), (1, 0.5, 0.2)]))
        assert [e.rid for e in trace.events] == [0, 1]
        e = trace.events[1]
        assert e.time == 0.2 and math.isclose(e.start, 1.0) and math.isclose(e.finish, 1.5)
        assert e.seq == 1

    def test_queue_depth_counts_waiting_tasks(self):
        # Two tasks released together on a full-width device: the second
        # commits to start at 1.0 while time is 0 — backlog of one.
        trace = simulate_instance(rel_inst([(4, 1.0, 0.0), (4, 1.0, 0.0)]))
        assert [e.queue_depth for e in trace.events] == [0, 1]
        assert trace.max_queue_depth == 1 and trace.mean_queue_depth == 0.5

    def test_utilization_profile_steps(self):
        trace = simulate_instance(rel_inst([(2, 1.0, 0.0), (2, 1.0, 0.0)]))
        # Both run side by side over [0, 1): busy 1.0, then drop to 0.
        assert trace.utilization_profile() == ((0.0, 1.0), (1.0, 0.0))
        assert math.isclose(trace.mean_utilization, 1.0)

    def test_max_tasks_caps_infinite_stream(self):
        stream = poisson_stream(8, np.random.default_rng(0), rate=2.0)
        trace = simulate(stream, "first_fit", max_tasks=25)
        assert trace.n_tasks == 25

    def test_horizon_stops_at_first_late_arrival(self):
        stream = poisson_stream(8, np.random.default_rng(0), rate=2.0)
        trace = simulate(stream, "first_fit", horizon=4.0)
        assert trace.n_tasks > 0
        assert all(e.time <= 4.0 + 1e-9 for e in trace.events)

    def test_negative_max_tasks_rejected(self):
        with pytest.raises(InvalidInstanceError):
            simulate(InstanceStream(rel_inst([(1, 1.0, 0.0)])), "first_fit", max_tasks=-1)

    def test_out_of_order_stream_rejected(self):
        rects = [
            Rect(rid=0, width=0.5, height=1.0, release=2.0),
            Rect(rid=1, width=0.5, height=1.0, release=0.0),
        ]
        with pytest.raises(InvalidInstanceError):
            simulate(GeneratorStream(2, rects), "first_fit")

    def test_policy_breaking_release_contract_rejected(self):
        class Eager(OnlinePolicy):
            name = "eager"

            def start(self, K):
                pass

            def place(self, rect):
                return 0.0, 0.0  # ignores the release time

        with pytest.raises(SolverError):
            simulate(InstanceStream(rel_inst([(1, 1.0, 2.0)])), Eager())

    def test_policy_leaving_strip_rejected(self):
        class OffStrip(OnlinePolicy):
            name = "off_strip"

            def start(self, K):
                pass

            def place(self, rect):
                return 0.9, rect.release

        with pytest.raises(SolverError):
            simulate(InstanceStream(rel_inst([(2, 1.0, 0.0)])), OffStrip())


class TestDeterminism:
    def test_same_seed_identical_trace(self):
        def trace(seed):
            return simulate(
                poisson_stream(8, np.random.default_rng(seed), rate=2.0),
                "best_fit_column",
                max_tasks=40,
            )

        t1, t2 = trace(11), trace(11)
        assert t1 == t2                      # event-for-event equality
        assert t1.to_dict() == t2.to_dict()  # and through serialization
        assert trace(11) != trace(12)

    def test_wall_time_excluded_from_equality(self):
        inst = bursty_release_instance(15, 4, np.random.default_rng(3))
        t1 = simulate_instance(inst, "first_fit")
        t2 = simulate_instance(inst, "first_fit")
        assert t1.wall_time != t2.wall_time or True  # timing may coincide
        assert t1 == t2


class TestTraceBridges:
    def test_to_report_against_given_instance(self):
        inst = bursty_release_instance(20, 4, np.random.default_rng(0), n_bursts=3)
        trace = simulate_instance(inst, "first_fit")
        rep = trace.to_report(inst)
        assert rep.valid and rep.algorithm == "sim:first_fit"
        assert rep.variant == "release" and rep.n == 20
        assert math.isclose(rep.height, trace.makespan)
        assert rep.ratio is not None and rep.ratio >= 1.0 - 1e-9
        assert "release" in rep.bounds

    def test_realized_instance_from_generator(self):
        trace = simulate(
            poisson_stream(6, np.random.default_rng(4), rate=1.5),
            "shelf_online",
            max_tasks=30,
        )
        inst = trace.realized_instance()
        assert isinstance(inst, ReleaseInstance) and len(inst) == 30
        validate_placement(inst, trace.placement)
        assert trace.to_report().valid

    def test_to_dict_round_trips_through_json(self):
        trace = simulate_instance(rel_inst([(2, 1.0, 0.0), (1, 0.5, 0.5)]))
        data = json.loads(json.dumps(trace.to_dict()))
        assert data["policy"] == "first_fit" and data["n_tasks"] == 2
        assert len(data["events"]) == 2
        assert data["events"][0]["queue_depth"] == 0


class TestEngineIntegration:
    def test_online_specs_registered_with_online_flag(self):
        for name in ("online_ff", "online_best_fit", "online_shelf"):
            spec = get_spec(name)
            assert "online" in spec.flags and spec.requires == "release"

    def test_run_through_engine(self):
        inst = bursty_release_instance(12, 4, np.random.default_rng(1))
        rep = run(inst, "online_best_fit")
        assert rep.valid and rep.ratio >= 1.0 - 1e-9

    def test_portfolio_races_online_next_to_offline(self):
        inst = bursty_release_instance(12, 4, np.random.default_rng(2))
        result = portfolio(inst)
        entrants = {r.algorithm for r in result.reports}
        assert {"aptas", "online_ff", "online_best_fit", "online_shelf"} <= entrants
        assert result.best is not None

    def test_solve_many_with_online_policy(self):
        insts = [bursty_release_instance(8, 4, np.random.default_rng(s)) for s in range(3)]
        reports = solve_many(insts, "online_shelf")
        assert all(r.valid for r in reports)

    def test_replay_stream_simulates_clean(self, tmp_path):
        from repro.workloads.suite import mixed_instance_suite, write_instance_dir

        write_instance_dir(tmp_path, mixed_instance_suite(6, np.random.default_rng(9)))
        trace = simulate(ReplayStream.from_dir(tmp_path), "first_fit")
        assert trace.n_tasks > 0
        assert trace.to_report().valid
