"""Tests for the greedy list-scheduling baseline."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.instance import PrecedenceInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG
from repro.precedence.list_schedule import list_schedule

from .conftest import precedence_instances


class TestListSchedule:
    def test_empty(self):
        inst = PrecedenceInstance.without_constraints([])
        assert list_schedule(inst).height == 0.0

    def test_antichain_parallel(self):
        rs = [Rect(rid=i, width=0.25, height=1.0) for i in range(4)]
        inst = PrecedenceInstance.without_constraints(rs)
        p = list_schedule(inst)
        assert math.isclose(p.height, 1.0)

    def test_chain_serial(self):
        rs = [Rect(rid=i, width=0.1, height=1.0) for i in range(4)]
        inst = PrecedenceInstance(rs, TaskDAG.chain(list(range(4))))
        p = list_schedule(inst)
        validate_placement(inst, p)
        assert math.isclose(p.height, 4.0)

    def test_fills_gaps_beside_tall_rect(self):
        rs = [
            Rect(rid=0, width=0.5, height=3.0),
            Rect(rid=1, width=0.5, height=1.0),
            Rect(rid=2, width=0.5, height=1.0),
            Rect(rid=3, width=0.5, height=1.0),
        ]
        inst = PrecedenceInstance(rs, TaskDAG([0, 1, 2, 3], [(1, 2), (2, 3)]))
        p = list_schedule(inst)
        validate_placement(inst, p)
        # Chain 1->2->3 runs beside the tall rect 0.
        assert math.isclose(p.height, 3.0)

    def test_respects_earliest_start(self):
        rs = [Rect(rid=0, width=1.0, height=2.0), Rect(rid=1, width=0.1, height=0.5)]
        inst = PrecedenceInstance(rs, TaskDAG([0, 1], [(0, 1)]))
        p = list_schedule(inst)
        assert p[1].y >= 2.0

    def test_valid_on_random(self, rng):
        from repro.workloads.dags import layered_precedence_instance

        inst = layered_precedence_instance(40, 6, 0.2, rng)
        p = list_schedule(inst)
        validate_placement(inst, p)


@settings(deadline=None)
@given(precedence_instances(max_size=12))
def test_list_schedule_valid_under_hypothesis(inst):
    p = list_schedule(inst)
    validate_placement(inst, p)
    # Never worse than full serialisation.
    assert p.height <= sum(r.height for r in inst.rects) + 1e-9
