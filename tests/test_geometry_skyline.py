"""Unit tests for the skyline structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidPlacementError
from repro.geometry.skyline import Skyline


class TestBasics:
    def test_initial_flat(self):
        sky = Skyline()
        segs = sky.segments()
        assert len(segs) == 1 and segs[0].y == 0.0 and segs[0].width == 1.0

    def test_support_flat(self):
        assert Skyline().support_y(0.25, 0.5) == 0.0

    def test_support_out_of_strip(self):
        with pytest.raises(InvalidPlacementError):
            Skyline().support_y(0.8, 0.5)

    def test_place_raises_envelope(self):
        sky = Skyline()
        y = sky.place(0.0, 0.5, 1.0)
        assert y == 0.0
        assert sky.support_y(0.0, 0.5) == 1.0
        assert sky.support_y(0.5, 0.5) == 0.0

    def test_place_spanning_segments(self):
        sky = Skyline()
        sky.place(0.0, 0.5, 1.0)
        sky.place(0.5, 0.5, 2.0)
        # A full-width rectangle rests on the taller part.
        assert sky.support_y(0.0, 1.0) == 2.0

    def test_max_min_y(self):
        sky = Skyline()
        sky.place(0.0, 0.5, 1.0)
        assert sky.max_y == 1.0 and sky.min_y == 0.0

    def test_merge_equal_heights(self):
        sky = Skyline()
        sky.place(0.0, 0.5, 1.0)
        sky.place(0.5, 0.5, 1.0)
        assert len(sky.segments()) == 1  # merged back into one flat segment

    def test_waste_below(self):
        sky = Skyline()
        sky.place(0.0, 0.5, 1.0)
        assert abs(sky.waste_below(1.0) - 0.5) < 1e-12


class TestPositions:
    def test_lowest_position_prefers_low_then_left(self):
        sky = Skyline()
        sky.place(0.0, 0.5, 2.0)  # left tower
        x, y = sky.lowest_position(0.5)
        assert (x, y) == (0.5, 0.0)

    def test_candidates_include_walls(self):
        sky = Skyline()
        cands = sky.candidate_positions(0.4)
        xs = [x for x, _ in cands]
        assert 0.0 in xs and any(abs(x - 0.6) < 1e-12 for x in xs)

    def test_full_width_rect(self):
        sky = Skyline()
        x, y = sky.lowest_position(1.0)
        assert (x, y) == (0.0, 0.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=1.0),
            st.floats(min_value=0.05, max_value=2.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_skyline_invariants(dims):
    """After any sequence of bottom-left placements the skyline partitions
    [0,1], is non-negative, and max_y only grows."""
    sky = Skyline()
    last_max = 0.0
    for w, h in dims:
        x, _ = sky.lowest_position(w)
        sky.place(x, w, h)
        segs = sky.segments()
        # contiguous partition of [0, 1]
        assert abs(segs[0].x) < 1e-9
        for a, b in zip(segs, segs[1:]):
            assert abs(a.x2 - b.x) < 1e-9
        assert abs(segs[-1].x2 - 1.0) < 1e-9
        assert all(s.y >= -1e-9 for s in segs)
        assert sky.max_y >= last_max - 1e-9
        last_max = sky.max_y
