"""Tests for the device model and width quantisation."""

import math

import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.fpga.device import Device, quantize_instance, quantize_width


class TestDevice:
    def test_bad_K(self):
        with pytest.raises(InvalidInstanceError):
            Device(K=0)

    def test_bad_latency(self):
        with pytest.raises(InvalidInstanceError):
            Device(K=4, reconfig_latency=-1.0)

    def test_column_width(self):
        assert Device(K=8).column_width == 0.125

    def test_columns_for(self):
        dev = Device(K=8)
        assert dev.columns_for(0.125) == 1
        assert dev.columns_for(0.3) == 3
        assert dev.columns_for(1.0) == 8

    def test_x_of_column(self):
        dev = Device(K=4)
        assert dev.x_of_column(2) == 0.5
        with pytest.raises(InvalidInstanceError):
            dev.x_of_column(4)

    def test_column_of_x(self):
        dev = Device(K=4)
        assert dev.column_of_x(0.75) == 3
        with pytest.raises(InvalidInstanceError):
            dev.column_of_x(0.3)


class TestQuantize:
    def test_rounds_up(self):
        assert quantize_width(0.3, 4) == 0.5

    def test_exact_unchanged(self):
        assert quantize_width(0.5, 4) == 0.5

    def test_never_exceeds_one(self):
        assert quantize_width(0.99, 4) == 1.0

    def test_minimum_one_column(self):
        assert quantize_width(0.01, 4) == 0.25

    def test_instance_type_preserved(self):
        rects = [Rect(rid=0, width=0.3, height=1.0)]
        plain = quantize_instance(StripPackingInstance(rects), 4)
        assert isinstance(plain, StripPackingInstance)
        assert plain.rects[0].width == 0.5

        rel = quantize_instance(ReleaseInstance(rects, K=4), 4)
        assert isinstance(rel, ReleaseInstance) and rel.K == 4

        from repro.dag.graph import TaskDAG

        prec = quantize_instance(
            PrecedenceInstance(rects, TaskDAG.empty([0])), 4
        )
        assert isinstance(prec, PrecedenceInstance)

    def test_quantized_placement_transfers(self):
        """A valid placement of the quantised instance is valid for the
        original (widths only grew)."""
        from repro.core.placement import Placement, validate_placement

        rects = [Rect(rid=0, width=0.3, height=1.0), Rect(rid=1, width=0.4, height=1.0)]
        inst = StripPackingInstance(rects)
        q = quantize_instance(inst, 4)  # both widths become 0.5
        p = Placement()
        p.place(q.rects[0], 0.0, 0.0)
        p.place(q.rects[1], 0.5, 0.0)
        validate_placement(q, p)
        rebound = Placement()
        for rid, pr in p.items():
            rebound.place(inst.by_id()[rid], pr.x, pr.y)
        validate_placement(inst, rebound)
