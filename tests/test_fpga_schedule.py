"""Tests for schedules and placement->schedule conversion."""

import math

import numpy as np
import pytest

from repro.core.errors import InvalidPlacementError
from repro.core.placement import Placement
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG
from repro.fpga.device import Device
from repro.fpga.schedule import Schedule, ScheduledTask, schedule_from_placement


class TestScheduledTask:
    def test_duration(self):
        t = ScheduledTask(tid=0, col=0, n_cols=2, start=1.0, end=3.0)
        assert t.duration == 2.0
        assert list(t.columns()) == [0, 1]

    def test_conflicts(self):
        a = ScheduledTask(tid=0, col=0, n_cols=2, start=0.0, end=2.0)
        b = ScheduledTask(tid=1, col=1, n_cols=2, start=1.0, end=3.0)
        c = ScheduledTask(tid=2, col=2, n_cols=2, start=0.0, end=2.0)
        d = ScheduledTask(tid=3, col=0, n_cols=2, start=2.0, end=4.0)
        assert a.conflicts(b)
        assert not a.conflicts(c)  # disjoint columns
        assert not a.conflicts(d)  # back-to-back in time


class TestSchedule:
    def test_add_validates_columns(self):
        sched = Schedule(Device(K=4))
        with pytest.raises(InvalidPlacementError):
            sched.add(ScheduledTask(tid=0, col=3, n_cols=2, start=0.0, end=1.0))

    def test_add_validates_duration(self):
        sched = Schedule(Device(K=4))
        with pytest.raises(InvalidPlacementError):
            sched.add(ScheduledTask(tid=0, col=0, n_cols=1, start=1.0, end=1.0))

    def test_makespan(self):
        sched = Schedule(Device(K=4))
        sched.add(ScheduledTask(tid=0, col=0, n_cols=1, start=0.0, end=2.0))
        sched.add(ScheduledTask(tid=1, col=1, n_cols=1, start=1.0, end=5.0))
        assert sched.makespan == 5.0

    def test_validate_conflict(self):
        sched = Schedule(Device(K=4))
        sched.add(ScheduledTask(tid=0, col=0, n_cols=2, start=0.0, end=2.0))
        sched.add(ScheduledTask(tid=1, col=1, n_cols=1, start=1.0, end=3.0))
        with pytest.raises(InvalidPlacementError, match="concurrently"):
            sched.validate()

    def test_validate_precedence(self):
        sched = Schedule(Device(K=4))
        sched.add(ScheduledTask(tid=0, col=0, n_cols=1, start=0.0, end=2.0))
        sched.add(ScheduledTask(tid=1, col=1, n_cols=1, start=1.0, end=3.0))
        dag = TaskDAG([0, 1], [(0, 1)])
        with pytest.raises(InvalidPlacementError, match="precedence"):
            sched.validate(dag=dag)

    def test_validate_release(self):
        sched = Schedule(Device(K=4))
        sched.add(ScheduledTask(tid=0, col=0, n_cols=1, start=0.5, end=1.5))
        with pytest.raises(InvalidPlacementError, match="release"):
            sched.validate(releases={0: 1.0})

    def test_utilisation(self):
        sched = Schedule(Device(K=2))
        sched.add(ScheduledTask(tid=0, col=0, n_cols=2, start=0.0, end=1.0))
        assert math.isclose(sched.utilisation(), 1.0)

    def test_getitem(self):
        sched = Schedule(Device(K=2))
        t = ScheduledTask(tid="x", col=0, n_cols=1, start=0.0, end=1.0)
        sched.add(t)
        assert sched["x"] is t
        with pytest.raises(KeyError):
            sched["missing"]


class TestFromPlacement:
    def test_round_trip(self):
        dev = Device(K=4)
        rects = [Rect(rid=0, width=0.5, height=2.0), Rect(rid=1, width=0.25, height=1.0)]
        p = Placement()
        p.place(rects[0], 0.0, 0.0)
        p.place(rects[1], 0.5, 1.0)
        sched = schedule_from_placement(p, dev)
        sched.validate()
        assert sched[0].col == 0 and sched[0].n_cols == 2
        assert sched[1].col == 2 and sched[1].start == 1.0

    def test_off_grid_x_rejected(self):
        dev = Device(K=4)
        p = Placement()
        p.place(Rect(rid=0, width=0.25, height=1.0), 0.1, 0.0)
        with pytest.raises(InvalidPlacementError):
            schedule_from_placement(p, dev)

    def test_fractional_width_rejected(self):
        dev = Device(K=4)
        p = Placement()
        p.place(Rect(rid=0, width=0.3, height=1.0), 0.0, 0.0)
        with pytest.raises(InvalidPlacementError, match="whole number"):
            schedule_from_placement(p, dev)

    def test_packer_output_converts(self, rng):
        from repro.packing.nfdh import nfdh
        from repro.workloads.random_rects import columnar_rects

        dev = Device(K=8)
        rects = columnar_rects(20, 8, rng)
        result = nfdh(rects)
        sched = schedule_from_placement(result.placement, dev)
        sched.validate()
        assert math.isclose(sched.makespan, result.extent, abs_tol=1e-9)
