"""Registry-wide invariant property tests.

Every :class:`~repro.engine.spec.AlgorithmSpec` in the registry — present
and future — is swept over randomized instances of each variant it
supports, and the returned placement is checked against the paper's
validity definition invariant by invariant:

* **no-overlap** — no two rectangles intersect in their open interiors;
* **within-strip** — ``0 <= x <= 1 - w`` and ``y >= 0`` for every task;
* **precedence-respect** — every DAG edge ``(s, s')`` has
  ``top(s) <= base(s')``;
* **release-respect** — every task starts at or after its release time.

The checks are spelled out explicitly (rather than delegating wholesale to
:func:`~repro.core.placement.validate_placement`) so a failure names the
broken invariant directly; a final assertion cross-checks the shared
validator agrees.  New algorithms get all of this for free the moment they
are registered.

The tier-1 sweep keeps sizes small; the ``slow`` sweep (CI) pushes more
seeds and larger instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import tol
from repro.core.errors import InvalidInstanceError
from repro.core.instance import (
    PrecedenceInstance,
    ReleaseInstance,
    StripPackingInstance,
)
from repro.core.placement import find_overlap, validate_placement
from repro.engine import all_specs, run
from repro.workloads.dags import random_precedence_instance
from repro.workloads.random_rects import uniform_rects
from repro.workloads.releases import (
    bursty_release_instance,
    poisson_release_instance,
    staircase_release_instance,
)

SPECS = all_specs()
SPEC_IDS = [s.name for s in SPECS]


def instance_for(spec, seed: int, n: int) -> StripPackingInstance:
    """A randomized instance of the hardest variant ``spec`` supports.

    Release specs get release instances (rotating over the three arrival
    shapes), precedence-capable specs get random DAG instances, and plain
    packers get plain rectangles — so every spec is exercised on the
    constraints it claims to handle.
    """
    rng = np.random.default_rng(seed)
    if "release" in spec.variants:
        maker = (bursty_release_instance, poisson_release_instance,
                 staircase_release_instance)[seed % 3]
        return maker(n, 4, rng)
    if "precedence" in spec.variants:
        return random_precedence_instance(n, 0.2, rng)
    return StripPackingInstance(uniform_rects(n, rng))


def run_respecting_restrictions(spec, instance):
    """Run ``spec``; on a declared input restriction (e.g. shelf_next_fit's
    uniform heights) retry on the uniform-height version of the instance."""
    try:
        return run(instance, spec.name), instance
    except InvalidInstanceError:
        rects = [r.replace(height=1.0) for r in instance.rects]
        if isinstance(instance, ReleaseInstance):
            uniform = instance.with_rects(rects)
        elif isinstance(instance, PrecedenceInstance):
            uniform = PrecedenceInstance(rects, instance.dag)
        else:
            uniform = StripPackingInstance(rects)
        return run(uniform, spec.name), uniform


def assert_placement_invariants(instance: StripPackingInstance, placement) -> None:
    """The four paper invariants, asserted one by one with names."""
    ids = {r.rid for r in instance.rects}
    placed = dict(placement.items())
    assert set(placed) == ids, "completeness: every task placed exactly once"

    for rid, pr in placed.items():
        assert tol.geq(pr.x, 0.0) and tol.leq(pr.x2, 1.0), (
            f"within-strip violated: {rid!r} spans x in [{pr.x}, {pr.x2}]"
        )
        assert tol.geq(pr.y, 0.0), f"within-strip violated: {rid!r} has y={pr.y}"

    pair = find_overlap(placed.values())
    assert pair is None, (
        f"no-overlap violated: {pair[0].rect.rid!r} and {pair[1].rect.rid!r}"
        if pair else ""
    )

    if isinstance(instance, PrecedenceInstance):
        for u, v in instance.dag.edges():
            assert tol.leq(placed[u].y2, placed[v].y), (
                f"precedence-respect violated: top({u!r})={placed[u].y2} "
                f"> base({v!r})={placed[v].y}"
            )

    if isinstance(instance, ReleaseInstance):
        for rid, pr in placed.items():
            assert tol.geq(pr.y, pr.rect.release), (
                f"release-respect violated: {rid!r} starts at {pr.y} "
                f"< r={pr.rect.release}"
            )

    # The shared validator must agree with the spelled-out invariants.
    validate_placement(instance, placement)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
def test_spec_placement_invariants(spec, seed):
    instance = instance_for(spec, seed, n=12)
    report, instance = run_respecting_restrictions(spec, instance)
    assert report.valid, f"{spec.name} produced an invalid placement: {report.error}"
    assert_placement_invariants(instance, report.placement)
    # Heights sit above the combined lower bound, so the ratio is >= 1.
    assert report.ratio is not None and report.ratio >= 1.0 - 1e-9


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("spec", SPECS, ids=SPEC_IDS)
def test_spec_placement_invariants_deep(spec, seed):
    rng = np.random.default_rng(1000 + seed)
    n = int(rng.integers(15, 40))
    instance = instance_for(spec, 1000 + seed, n=n)
    report, instance = run_respecting_restrictions(spec, instance)
    assert report.valid, f"{spec.name} produced an invalid placement: {report.error}"
    assert_placement_invariants(instance, report.placement)
    assert report.ratio is not None and report.ratio >= 1.0 - 1e-9
