"""Tests for the reconfiguration-latency dilation pass."""

import math

import numpy as np
import pytest

from repro.core.placement import Placement, validate_placement
from repro.core.rectangle import Rect
from repro.fpga.device import Device
from repro.fpga.latency import dilate_for_reconfiguration
from repro.fpga.schedule import schedule_from_placement
from repro.fpga.simulator import simulate


def stacked_placement(K=4):
    """Two tasks back-to-back on the same columns."""
    p = Placement()
    p.place(Rect(rid=0, width=2 / K, height=1.0), 0.0, 0.0)
    p.place(Rect(rid=1, width=2 / K, height=1.0), 0.0, 1.0)
    return p


class TestDilation:
    def test_zero_latency_identity(self):
        dev = Device(K=4, reconfig_latency=0.0)
        p = stacked_placement()
        q = dilate_for_reconfiguration(p, dev)
        assert q[0].y == p[0].y and q[1].y == p[1].y

    def test_gap_inserted(self):
        dev = Device(K=4, reconfig_latency=0.5)
        q = dilate_for_reconfiguration(stacked_placement(), dev)
        assert math.isclose(q[1].y, 1.5)

    def test_disjoint_columns_untouched(self):
        dev = Device(K=4, reconfig_latency=0.5)
        p = Placement()
        p.place(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)
        p.place(Rect(rid=1, width=0.5, height=1.0), 0.5, 1.0)
        q = dilate_for_reconfiguration(p, dev)
        assert q[1].y == 1.0  # different columns: no push needed

    def test_simulates_with_latency(self):
        dev = Device(K=4, reconfig_latency=0.5)
        q = dilate_for_reconfiguration(stacked_placement(), dev)
        sched = schedule_from_placement(q, dev)
        rep = simulate(sched)  # must not raise a double-claim
        assert rep.makespan >= 2.5 - 1e-9

    def test_original_would_fail_simulation(self):
        from repro.core.errors import InvalidPlacementError

        dev = Device(K=4, reconfig_latency=0.5)
        sched = schedule_from_placement(stacked_placement(), dev)
        with pytest.raises(InvalidPlacementError):
            simulate(sched)

    def test_precedence_preserved(self, rng):
        from repro.precedence.dc import dc_pack
        from repro.workloads.jpeg import jpeg_pipeline_instance

        dev = Device(K=8, reconfig_latency=0.25)
        inst = jpeg_pipeline_instance(4, dev)
        base = dc_pack(inst).placement
        dilated = dilate_for_reconfiguration(base, dev, dag=inst.dag)
        validate_placement(inst, dilated)
        sched = schedule_from_placement(dilated, dev)
        sched.validate(dag=inst.dag)
        rep = simulate(sched)
        assert rep.makespan >= base.height - 1e-9

    def test_dilation_bounded(self, rng):
        """Makespan growth is at most lat per task (loose bound)."""
        from repro.packing.nfdh import nfdh
        from repro.workloads.random_rects import columnar_rects

        lat = 0.3
        dev = Device(K=4, reconfig_latency=lat)
        rects = columnar_rects(15, 4, rng)
        base = nfdh(rects).placement
        dilated = dilate_for_reconfiguration(base, dev)
        assert dilated.height <= base.height + lat * len(rects) + 1e-9

    def test_releases_still_respected(self, rng):
        from repro.core.instance import ReleaseInstance
        from repro.release.heuristics import release_shelf_pack
        from repro.workloads.releases import bursty_release_instance

        dev = Device(K=4, reconfig_latency=0.2)
        inst = bursty_release_instance(12, 4, rng, n_bursts=2)
        base = release_shelf_pack(inst)
        dilated = dilate_for_reconfiguration(base, dev)
        validate_placement(inst, dilated)
