"""Differential tests: optimized Skyline vs the reference implementation.

The optimized kernel (:mod:`repro.geometry.skyline`) must be
*observationally identical* to the executable specification
(:mod:`repro.geometry.skyline_reference`): same ``(x, y)`` from
``lowest_position``, same supports, same candidate sets, same segment
lists after every ``place`` — on hypothesis-generated operation sequences
and on the real workload generators at packing scale.  This is what makes
the ``skyline_bottom_left`` bench's speedup trustworthy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.skyline import Skyline
from repro.geometry.skyline_reference import ReferenceSkyline
from repro.packing.bottom_left import bottom_left, bottom_left_release

from .conftest import rect_lists


def _segments_equal(a, b):
    sa, sb = a.segments(), b.segments()
    assert len(sa) == len(sb), (sa, sb)
    for x, y in zip(sa, sb):
        assert x == y, (x, y)


dims = st.tuples(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.01, max_value=3.0),
)


@given(st.lists(dims, min_size=1, max_size=30))
def test_bottom_left_sequences_identical(seq):
    """Bottom-left driving both kernels lands every rectangle identically."""
    fast, ref = Skyline(), ReferenceSkyline()
    for w, h in seq:
        pos_fast = fast.lowest_position(w)
        pos_ref = ref.lowest_position(w)
        assert pos_fast == pos_ref
        x = pos_fast[0]
        assert fast.place(x, w, h) == ref.place(x, w, h)
        _segments_equal(fast, ref)
        assert fast.max_y == ref.max_y and fast.min_y == ref.min_y


@given(
    st.lists(dims, min_size=1, max_size=15),
    st.lists(st.tuples(st.floats(0.0, 0.9), st.floats(0.01, 1.0)), min_size=1, max_size=8),
)
def test_support_and_candidates_identical(seq, queries):
    """After arbitrary placements, point queries agree on both kernels."""
    fast, ref = Skyline(), ReferenceSkyline()
    for w, h in seq:
        x, _ = ref.lowest_position(w)
        fast.place(x, w, h)
        ref.place(x, w, h)
    for x, w in queries:
        if x + w <= 1.0:
            assert fast.support_y(x, w) == ref.support_y(x, w)
    for w, _ in seq:
        # Same candidate set (the reference may repeat a clamped x; the
        # optimized kernel deduplicates, so compare as sets).
        assert set(fast.candidate_positions(w)) == set(ref.candidate_positions(w))
        assert fast.lowest_position(w) == ref.lowest_position(w)


@given(rect_lists(min_size=1, max_size=20))
def test_packer_differential_hypothesis(rects):
    """bottom_left with either kernel produces the same placement."""
    fast = bottom_left(rects)
    ref = bottom_left(rects, skyline_cls=ReferenceSkyline)
    for r in rects:
        assert fast.placement[r.rid] == ref.placement[r.rid]


@pytest.mark.parametrize("generator", ["uniform_rects", "powerlaw_rects"])
@pytest.mark.parametrize("n", [200, 1000])
def test_packer_differential_workloads(generator, n):
    """Placement-for-placement equality on the bench workloads."""
    from repro import workloads

    rects = getattr(workloads, generator)(n, np.random.default_rng(7))
    fast = bottom_left(rects)
    ref = bottom_left(rects, skyline_cls=ReferenceSkyline)
    assert fast.extent == ref.extent
    for r in rects:
        assert fast.placement[r.rid] == ref.placement[r.rid]


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(5))
def test_packer_differential_deep(seed):
    """Larger randomized sweep (CI): 5 seeds x 3000 powerlaw rectangles."""
    from repro.workloads import powerlaw_rects

    rects = powerlaw_rects(3000, np.random.default_rng(seed))
    fast = bottom_left(rects)
    ref = bottom_left(rects, skyline_cls=ReferenceSkyline)
    for r in rects:
        assert fast.placement[r.rid] == ref.placement[r.rid]


@settings(max_examples=30)
@given(st.lists(dims, min_size=1, max_size=12))
def test_release_variant_unaffected(seq):
    """bottom_left_release (candidate_positions consumer) stays deterministic
    and valid with the optimized kernel."""
    from repro.core.instance import ReleaseInstance
    from repro.core.placement import validate_placement
    from repro.core.rectangle import Rect

    rects = [
        Rect(rid=i, width=w, height=h, release=float(i % 3))
        for i, (w, h) in enumerate(seq)
    ]
    result = bottom_left_release(rects)
    validate_placement(ReleaseInstance(rects, K=100), result.placement)


@pytest.mark.parametrize("tier", ["reference", "array", "compiled"])
def test_bottom_left_identical_on_every_tier(tier):
    """The kernel-tier registry never changes a bottom-left placement.

    Runs the compiled candidate sweep as plain Python when numba is
    absent (pass-through ``njit``) — same logic the JIT compiles.
    """
    from repro import kernels
    from repro.kernels import compiled
    from repro.workloads import powerlaw_rects

    rects = powerlaw_rects(300, np.random.default_rng(17))
    expected = bottom_left(rects, skyline_cls=ReferenceSkyline)
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(compiled, "AVAILABLE", True)
        kernels._reset_for_testing()
        try:
            with kernels.use_tier(tier):
                result = bottom_left(rects)
        finally:
            kernels._reset_for_testing()
    assert result.extent == expected.extent
    for r in rects:
        assert result.placement[r.rid] == expected.placement[r.rid]
