"""Metamorphic warm-start properties over the algorithm registry.

Every *offline* :class:`~repro.engine.spec.AlgorithmSpec` (the ``online_*``
arrival-order simulators solve a different problem and are excluded) is
swept over hypothesis-generated ``(neighbor, delta)`` pairs — the neighbor
solved cold by that spec, the new instance derived from it by a rect-level
edit (adds, removes, resizes) — and the warm-start layer is pinned by the
metamorphic relations the service relies on:

* an accepted repair passes the same :func:`validate_placement` /
  invariant-by-invariant checks as any cold placement
  (:func:`assert_placement_invariants` from the registry sweep);
* an accepted repair's height is ≤ ``(1 + δ) ×`` the *cold* height of the
  same instance — the δ-gate is stated against the lower bound, so the
  cold-relative bound must hold without ever comparing against cold;
* provenance is honest: ``warm``/``cached`` appears iff a neighbor repair
  was accepted (``cached`` exactly when the delta is empty), and
  :func:`warm_run` without a neighbor is indistinguishable from
  :func:`repro.engine.run`;
* :func:`try_warm` never solves cold — refusal is ``None``, not a cold
  report in warm clothing.

Same sweep shape as ``test_properties_registry.py``: parametrized over the
registry, so new offline algorithms inherit the warm-start contract the
moment they are registered.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidInstanceError
from repro.core.instance import (
    PrecedenceInstance,
    ReleaseInstance,
    StripPackingInstance,
)
from repro.core.rectangle import Rect
from repro.core.serialize import instance_delta
from repro.dag import TaskDAG
from repro.engine import all_specs, run
from repro.engine.warmstart import DEFAULT_DELTA, repair_placement, try_warm, warm_run

from .test_properties_registry import assert_placement_invariants, instance_for

OFFLINE_SPECS = [s for s in all_specs() if not s.name.startswith("online_")]
OFFLINE_IDS = [s.name for s in OFFLINE_SPECS]


def _uniformize(instance: StripPackingInstance) -> StripPackingInstance:
    """Height-1 version of ``instance`` (for specs restricted to uniform
    heights), preserving variant, ``K``, and the DAG."""
    rects = [r.replace(height=1.0) for r in instance.rects]
    if isinstance(instance, ReleaseInstance):
        return instance.with_rects(rects)
    if isinstance(instance, PrecedenceInstance):
        return PrecedenceInstance(rects, instance.dag)
    return StripPackingInstance(rects)


def _rebuild(template: StripPackingInstance, rects: list[Rect]) -> StripPackingInstance:
    """An instance over ``rects`` with ``template``'s variant; precedence
    edges are restricted to surviving ids (the repairable edge shape) and
    new ids join the DAG as unconstrained nodes."""
    if isinstance(template, ReleaseInstance):
        return template.with_rects(rects)
    if isinstance(template, PrecedenceInstance):
        ids = {r.rid for r in rects}
        edges = [(u, v) for u, v in template.dag.edges() if u in ids and v in ids]
        return PrecedenceInstance(rects, TaskDAG(ids, edges))
    return StripPackingInstance(rects)


def perturb(
    instance: StripPackingInstance,
    seed: int,
    *,
    n_add: int,
    n_remove: int,
    n_resize: int,
    uniform_heights: bool = False,
) -> StripPackingInstance:
    """A rect-level edit of ``instance``: remove ``n_remove``, resize
    ``n_resize`` of the survivors, append ``n_add`` fresh rects.

    Edited dimensions stay inside the old instance's observed envelope
    (``[min, max]`` width and height), so declared input restrictions
    that are envelopes — APTAS's ``h <= 1`` / ``w >= 1/K``, the uniform-
    height shelf — survive the delta by construction."""
    rng = np.random.default_rng(seed)
    rects = sorted(instance.rects, key=lambda r: str(r.rid))
    w_lo = min(r.width for r in rects)
    w_hi = max(r.width for r in rects)
    h_lo = min(r.height for r in rects)
    h_hi = max(r.height for r in rects)
    n_remove = min(n_remove, max(0, len(rects) - 1))  # keep >= 1 survivor
    keep = rects[n_remove:]
    out: list[Rect] = []
    for i, r in enumerate(keep):
        if i < n_resize:
            width = float(rng.uniform(w_lo, w_hi))
            if uniform_heights:
                out.append(r.replace(width=width))
            else:
                out.append(r.replace(width=width, height=float(rng.uniform(h_lo, h_hi))))
        else:
            out.append(r)
    rmax = max((r.release for r in instance.rects), default=0.0)
    for i in range(n_add):
        out.append(Rect(
            rid=f"delta{i}",
            width=float(rng.uniform(w_lo, w_hi)),
            height=1.0 if uniform_heights else float(rng.uniform(h_lo, h_hi)),
            release=float(rng.uniform(0.0, rmax)) if rmax > 0.0 else 0.0,
        ))
    return _rebuild(instance, out)


def neighbor_pair(spec, seed: int, n: int, n_add: int, n_remove: int, n_resize: int):
    """``(old, cold_report_of_old, new)`` for ``spec``, honoring declared
    input restrictions (uniform heights) on both sides of the delta."""
    old = instance_for(spec, seed, n=n)
    uniform = False
    try:
        report = run(old, spec.name)
    except InvalidInstanceError:
        uniform = True
        old = _uniformize(old)
        report = run(old, spec.name)
    new = perturb(
        old, seed + 1,
        n_add=n_add, n_remove=n_remove, n_resize=n_resize,
        uniform_heights=uniform,
    )
    return old, report, new


DELTAS = st.tuples(
    st.integers(min_value=0, max_value=2**16),  # seed
    st.integers(min_value=6, max_value=14),     # n
    st.integers(min_value=0, max_value=3),      # adds
    st.integers(min_value=0, max_value=2),      # removes
    st.integers(min_value=0, max_value=2),      # resizes
)


@pytest.mark.parametrize("spec", OFFLINE_SPECS, ids=OFFLINE_IDS)
@settings(max_examples=12, deadline=None)
@given(DELTAS)
def test_warm_run_metamorphic_properties(spec, delta_args):
    """The three pinned relations: validity, δ-bounded height vs cold,
    honest provenance — on every offline spec × generated delta."""
    seed, n, n_add, n_remove, n_resize = delta_args
    old, old_report, new = neighbor_pair(spec, seed, n, n_add, n_remove, n_resize)

    report = warm_run(new, spec.name, neighbor=(old, old_report.placement))
    assert report.valid, f"{spec.name}: warm_run produced invalid placement"
    assert_placement_invariants(new, report.placement)
    assert report.provenance in ("warm", "cached", "cold")

    cold = run(new, spec.name)
    if report.provenance != "cold":
        # The δ gate is against the lower bound, so the cold-relative
        # bound holds unconditionally — cold height >= lower bound.
        assert report.height <= (1.0 + DEFAULT_DELTA) * cold.height + 1e-9
        assert report.lower_bound <= cold.height + 1e-9
        exact = instance_delta(old, new)
        empty = not (exact["added"] or exact["removed"] or exact["resized"])
        assert report.provenance == ("cached" if empty else "warm")
    else:
        # Refused repair == the cold answer, byte for byte.
        assert report.height == cold.height
        assert report.algorithm == cold.algorithm


@pytest.mark.parametrize("spec", OFFLINE_SPECS, ids=OFFLINE_IDS)
@settings(max_examples=8, deadline=None)
@given(DELTAS)
def test_try_warm_never_answers_cold(spec, delta_args):
    """try_warm either repairs (warm/cached) or returns None — the caller
    owns the cold path, so a refusal can never masquerade as a solve."""
    seed, n, n_add, n_remove, n_resize = delta_args
    old, old_report, new = neighbor_pair(spec, seed, n, n_add, n_remove, n_resize)
    report = try_warm(new, spec.name, neighbor=(old, old_report.placement))
    if report is not None:
        assert report.provenance in ("warm", "cached")
        assert_placement_invariants(new, report.placement)


@pytest.mark.parametrize("spec", OFFLINE_SPECS, ids=OFFLINE_IDS)
def test_no_neighbor_means_cold_provenance(spec):
    """warm_run without a neighbor is exactly run(): cold provenance,
    identical height."""
    old = instance_for(spec, 7, n=10)
    try:
        cold = run(old, spec.name)
    except InvalidInstanceError:
        old = _uniformize(old)
        cold = run(old, spec.name)
    report = warm_run(old, spec.name)
    assert report.provenance == "cold"
    assert report.height == cold.height


def test_empty_delta_is_cached_provenance():
    """The neighbor *is* the instance: verbatim reuse, 'cached', and the
    survivors sit at exactly the neighbor's anchors."""
    inst = instance_for(OFFLINE_SPECS[0], 3, n=10)
    cold = run(inst, OFFLINE_SPECS[0].name)
    report = try_warm(inst, OFFLINE_SPECS[0].name, neighbor=(inst, cold.placement))
    assert report is not None and report.provenance == "cached"
    for rid, placed in cold.placement.items():
        assert report.placement[rid].x == placed.x
        assert report.placement[rid].y == placed.y


def test_inadmissible_precedence_edges_refuse_repair():
    """A new edge pointing from a delta rect *into* a survivor cannot be
    satisfied by pack-above — the repair must refuse, not bend."""
    rects = [Rect(rid=i, width=0.4, height=1.0) for i in range(4)]
    old = PrecedenceInstance(rects, TaskDAG(range(4), [(0, 1)]))
    cold = run(old, "list_schedule")
    added = rects + [Rect(rid="delta0", width=0.4, height=1.0)]
    # delta0 -> 2: the delta rect must finish before survivor 2 starts,
    # but the repair keeps 2 at its (low) anchor and packs delta0 above.
    new = PrecedenceInstance(added, TaskDAG([r.rid for r in added], [(0, 1), ("delta0", 2)]))
    assert repair_placement(new, old, cold.placement) is None
    assert try_warm(new, "list_schedule", neighbor=(old, cold.placement)) is None
    report = warm_run(new, "list_schedule", neighbor=(old, cold.placement))
    assert report.provenance == "cold" and report.valid


def test_survivor_to_delta_edges_are_repairable():
    """Edges from survivors into delta rects hold by construction (delta
    rects pack above every survivor) — the repair may accept them."""
    rects = [Rect(rid=i, width=0.4, height=1.0) for i in range(4)]
    old = PrecedenceInstance(rects, TaskDAG(range(4), [(0, 1)]))
    cold = run(old, "list_schedule")
    added = rects + [Rect(rid="delta0", width=0.4, height=1.0)]
    new = PrecedenceInstance(added, TaskDAG([r.rid for r in added], [(0, 1), (2, "delta0")]))
    placement = repair_placement(new, old, cold.placement)
    assert placement is not None
    top_of_2 = placement[2].y + 1.0
    assert placement["delta0"].y >= top_of_2 - 1e-9
