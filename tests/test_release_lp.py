"""Tests for the Lemma 3.3 configuration LP."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.errors import SolverError
from repro.core.instance import ReleaseInstance
from repro.core.rectangle import Rect
from repro.release.configurations import enumerate_configurations
from repro.release.lp import (
    build_demands,
    optimal_fractional_height,
    phase_boundaries,
    solve_configuration_lp,
    solve_fractional,
)

from .conftest import release_instances


def inst_of(specs, K=4):
    """specs: list of (cols, height, release)."""
    rects = [
        Rect(rid=i, width=c / K, height=h, release=r)
        for i, (c, h, r) in enumerate(specs)
    ]
    return ReleaseInstance(rects, K)


class TestBoundaries:
    def test_zero_prepended(self):
        inst = inst_of([(1, 0.5, 1.0), (2, 0.5, 3.0)])
        assert phase_boundaries(inst) == (0.0, 1.0, 3.0)

    def test_zero_release_not_duplicated(self):
        inst = inst_of([(1, 0.5, 0.0), (2, 0.5, 2.0)])
        assert phase_boundaries(inst) == (0.0, 2.0)


class TestDemands:
    def test_accumulates_heights(self):
        inst = inst_of([(2, 0.5, 0.0), (2, 0.7, 0.0), (1, 0.3, 1.0)])
        bounds = phase_boundaries(inst)
        widths = (0.5, 0.25)
        d = build_demands(inst, widths, bounds)
        assert math.isclose(d[0, 0], 1.2)  # width 0.5 at release 0
        assert math.isclose(d[1, 1], 0.3)  # width 0.25 at release 1

    def test_unknown_width_raises(self):
        inst = inst_of([(3, 0.5, 0.0)])
        with pytest.raises(SolverError, match="width"):
            build_demands(inst, (0.5,), (0.0,))

    def test_unknown_release_raises(self):
        inst = inst_of([(2, 0.5, 5.0)])
        with pytest.raises(SolverError, match="boundary"):
            build_demands(inst, (0.5,), (0.0,))


class TestSolve:
    def test_no_releases_equals_fractional_packing(self):
        # 4 quarter-width unit-height rects, no releases: fractional optimum
        # packs them side by side -> height 1.
        inst = inst_of([(1, 1.0, 0.0)] * 4)
        sol = solve_fractional(inst)
        assert math.isclose(sol.height, 1.0, rel_tol=1e-6)

    def test_full_width_stack(self):
        inst = inst_of([(4, 1.0, 0.0)] * 3)
        sol = solve_fractional(inst)
        assert math.isclose(sol.height, 3.0, rel_tol=1e-6)

    def test_release_forces_waiting(self):
        # One rect released at 5: fractional height is 5 + 1.
        inst = inst_of([(4, 1.0, 5.0)])
        sol = solve_fractional(inst)
        assert math.isclose(sol.height, 6.0, rel_tol=1e-6)

    def test_early_work_fits_in_gap(self):
        # Two full-width rects at release 0 and one at release 5: the early
        # ones fit below 5, so height stays 6.
        inst = inst_of([(4, 1.0, 0.0), (4, 1.0, 0.0), (4, 1.0, 5.0)])
        sol = solve_fractional(inst)
        assert math.isclose(sol.height, 6.0, rel_tol=1e-6)

    def test_phase_overflow_pushes_objective(self):
        # Release gap of 1 but 3 units of full-width work released at 0 and
        # one more at 1: total = 4, so top = 4 regardless of slicing.
        inst = inst_of([(4, 1.0, 0.0)] * 3 + [(4, 1.0, 1.0)])
        sol = solve_fractional(inst)
        assert math.isclose(sol.height, 4.0, rel_tol=1e-6)

    def test_fractional_beats_area_and_suffix_bounds(self):
        # NOTE: the paper's fractional relaxation allows slices of one
        # rectangle to run in parallel, so ``release + height`` per rectangle
        # is NOT a lower bound on OPT_f.  The valid fractional bounds are the
        # total area and, per release value rho, rho + area released at or
        # after rho (that work must all sit above rho).
        inst = inst_of([(2, 0.8, 0.0), (3, 0.6, 1.0), (1, 0.4, 2.0)])
        sol = solve_fractional(inst)
        area = sum(r.area for r in inst.rects)
        assert sol.height >= area - 1e-6
        for rho in {r.release for r in inst.rects}:
            suffix = sum(r.area for r in inst.rects if r.release >= rho)
            assert sol.height >= rho + suffix - 1e-6

    def test_parallel_slicing_beats_integral_bound(self):
        # The phenomenon itself, pinned: a 1-column rect of height 0.4
        # released at 2 can be sliced into 4 parallel strips of height 0.1,
        # so OPT_f = 2.1 < 2.4 = the integral bound release + height.
        inst = inst_of([(2, 0.8, 0.0), (3, 0.6, 1.0), (1, 0.4, 2.0)])
        sol = solve_fractional(inst)
        assert sol.height < 2.4 - 1e-6
        assert math.isclose(sol.height, 2.1, rel_tol=1e-6)

    def test_support_size_bound(self):
        """Lemma 3.3: a basic optimal solution uses at most (W+1)(R+1)
        distinct occurrences of configurations."""
        rng = np.random.default_rng(3)
        specs = [
            (int(rng.integers(1, 5)), float(rng.uniform(0.2, 1.0)), float(rng.choice([0.0, 1.0, 2.0])))
            for _ in range(30)
        ]
        inst = inst_of(specs)
        sol = solve_fractional(inst)
        W = len({r.width for r in inst.rects})
        R_plus_1 = len(sol.boundaries)
        assert len(sol.support()) <= (W + 1) * R_plus_1

    def test_verify_rejects_tampered_solution(self):
        inst = inst_of([(4, 1.0, 0.0)])
        sol = solve_fractional(inst)
        bad = sol.x.copy()
        bad[:, -1] = 0.0  # wipe out the supply
        from repro.release.fractional import FractionalSolution

        tampered = FractionalSolution(
            config_set=sol.config_set,
            boundaries=sol.boundaries,
            x=bad,
            demands=sol.demands,
        )
        with pytest.raises(SolverError):
            tampered.verify()

    def test_empty_configs_rejected(self):
        cs = enumerate_configurations([0.5])
        with pytest.raises(SolverError, match="demands shape"):
            solve_configuration_lp(cs, (0.0,), np.zeros((3, 1)))


@settings(deadline=None, max_examples=25)
@given(release_instances(K=3, max_size=8))
def test_lp_height_is_a_valid_lower_bound_structure(inst):
    """The fractional solution verifies and its height dominates the
    elementary *fractional* lower bounds (area and release-suffix area —
    per-rectangle release+height does not bound the fractional optimum
    because slices may run in parallel)."""
    sol = solve_fractional(inst)
    sol.verify()
    area = sum(r.area for r in inst.rects)
    assert sol.height >= area - 1e-6
    for rho in {r.release for r in inst.rects}:
        suffix = sum(r.area for r in inst.rects if r.release >= rho)
        assert sol.height >= rho + suffix - 1e-6
