"""Tests for the slide-down shelf conversion (Section 2.2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance, StripPackingInstance
from repro.core.placement import Placement, validate_placement
from repro.core.rectangle import Rect
from repro.precedence.shelf_conversion import is_shelf_solution, shelf_index, to_shelf_solution


class TestShelfIndex:
    def test_aligned(self):
        assert shelf_index(0.0, 1.0) == 1
        assert shelf_index(2.0, 1.0) == 3

    def test_spanning(self):
        assert shelf_index(0.5, 1.0) is None

    def test_non_unit_height(self):
        assert shelf_index(1.0, 0.5) == 3
        assert shelf_index(0.75, 0.5) is None


class TestConversion:
    def test_requires_uniform(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=2.0)]
        inst = StripPackingInstance(rs)
        with pytest.raises(InvalidInstanceError):
            to_shelf_solution(inst, Placement())

    def test_already_shelf_noop(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = Placement()
        p.place(rs[0], 0.0, 1.0)
        out = to_shelf_solution(inst, p)
        assert out[0].y == 1.0

    def test_single_spanning_rect_slides_to_floor(self):
        rs = [Rect(rid=0, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = Placement()
        p.place(rs[0], 0.0, 1.5)
        out = to_shelf_solution(inst, p, paranoid=True)
        assert out[0].y == 1.0

    def test_stacked_spanning_rects(self):
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = StripPackingInstance(rs)
        p = Placement()
        p.place(rs[0], 0.0, 0.5)
        p.place(rs[1], 0.0, 1.5)
        out = to_shelf_solution(inst, p, paranoid=True)
        assert out[0].y == 0.0 and out[1].y == 1.0

    def test_height_never_increases(self):
        rs = [Rect(rid=i, width=0.3, height=1.0) for i in range(3)]
        inst = StripPackingInstance(rs)
        p = Placement()
        p.place(rs[0], 0.0, 0.25)
        p.place(rs[1], 0.3, 0.5)
        p.place(rs[2], 0.6, 0.75)
        out = to_shelf_solution(inst, p, paranoid=True)
        assert out.height <= p.height + 1e-9
        assert is_shelf_solution(out, 1.0)

    def test_preserves_precedence(self):
        from repro.dag.graph import TaskDAG

        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.5, height=1.0)]
        inst = PrecedenceInstance(rs, TaskDAG([0, 1], [(0, 1)]))
        p = Placement()
        p.place(rs[0], 0.0, 0.5)
        p.place(rs[1], 0.0, 1.7)
        out = to_shelf_solution(inst, p, paranoid=True)
        validate_placement(inst, out)
        assert is_shelf_solution(out, 1.0)


def _random_valid_uniform_placement(n, rng):
    """Random valid unit-height placement built by a randomized skyline drop
    with random float bases (often spanning shelves)."""
    rects = [
        Rect(rid=i, width=float(rng.uniform(0.1, 0.6)), height=1.0) for i in range(n)
    ]
    placement = Placement()
    placed = []
    for r in rects:
        # try random x positions until one fits at a random lifted y
        for _ in range(200):
            x = float(rng.uniform(0.0, 1.0 - r.width))
            y_min = 0.0
            for q in placed:
                if x < q[1] + q[0].width and q[1] < x + r.width:
                    y_min = max(y_min, q[2] + q[0].height)
            y = y_min + float(rng.uniform(0.0, 0.8))
            ok = True
            for q in placed:
                if (
                    x < q[1] + q[0].width
                    and q[1] < x + r.width
                    and y < q[2] + q[0].height
                    and q[2] < y + r.height
                ):
                    ok = False
                    break
            if ok:
                placement.place(r, x, y)
                placed.append((r, x, y))
                break
        else:  # pragma: no cover
            raise AssertionError("random placement generation failed")
    return StripPackingInstance(rects), placement


@pytest.mark.parametrize("seed", range(8))
def test_conversion_on_random_valid_placements(seed):
    rng = np.random.default_rng(seed)
    inst, p = _random_valid_uniform_placement(12, rng)
    validate_placement(inst, p)
    out = to_shelf_solution(inst, p, paranoid=True)
    validate_placement(inst, out)
    assert is_shelf_solution(out, 1.0)
    assert out.height <= p.height + 1e-9
