"""Tests for the serving layer's content-addressed result cache."""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import InvalidInstanceError
from repro.service.cache import DEFAULT_CACHE_BYTES, CacheStats, ResultCache


class TestBasics:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(1024)
        assert cache.get("k") is None
        cache.put("k", b"payload")
        assert cache.get("k") == b"payload"
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 0)
        assert stats.entries == 1 and stats.bytes == len(b"payload")
        assert stats.hit_rate == pytest.approx(0.5)

    def test_put_refreshes_value_and_bytes(self):
        cache = ResultCache(1024)
        cache.put("k", b"short")
        cache.put("k", b"a-longer-payload")
        assert cache.get("k") == b"a-longer-payload"
        assert cache.stats().bytes == len(b"a-longer-payload")
        assert cache.stats().entries == 1

    def test_non_bytes_value_rejected(self):
        with pytest.raises(InvalidInstanceError, match="bytes"):
            ResultCache(64).put("k", "text")  # type: ignore[arg-type]

    def test_negative_budget_rejected(self):
        with pytest.raises(InvalidInstanceError, match="max_bytes"):
            ResultCache(-1)

    def test_default_budget(self):
        assert ResultCache().max_bytes == DEFAULT_CACHE_BYTES

    def test_get_memory_counts_hits_but_never_misses(self):
        cache = ResultCache(64)
        assert cache.get_memory("absent") is None
        cache.put("k", b"x")
        assert cache.get_memory("k") == b"x"
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 0

    def test_len_and_contains_do_not_touch_counters(self):
        cache = ResultCache(64)
        cache.put("k", b"x")
        assert len(cache) == 1 and "k" in cache and "other" not in cache
        assert cache.stats().hits == 0 and cache.stats().misses == 0

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = ResultCache(64)
        cache.put("k", b"x")
        cache.get("k")
        cache.clear()
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.entries == 0 and stats.bytes == 0 and stats.hits == 1

    def test_stats_to_dict_shape(self):
        stats = ResultCache(64).stats()
        assert isinstance(stats, CacheStats)
        d = stats.to_dict()
        assert {"hits", "misses", "evictions", "spills", "spill_hits",
                "entries", "bytes", "max_bytes", "hit_rate"} <= set(d)


class TestLru:
    def test_evicts_least_recently_used(self):
        cache = ResultCache(3)  # holds three 1-byte payloads
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.put("c", b"3")
        cache.get("a")  # refresh a: b becomes LRU
        cache.put("d", b"4")
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats().evictions == 1

    def test_byte_budget_enforced(self):
        cache = ResultCache(10)
        for i in range(8):
            cache.put(f"k{i}", b"xxxx")  # 4 bytes each, budget fits 2
        stats = cache.stats()
        assert stats.bytes <= 10 and stats.entries == 2
        assert stats.evictions == 6

    def test_oversized_payload_not_admitted_to_memory(self):
        cache = ResultCache(4)
        cache.put("big", b"x" * 100)
        assert "big" not in cache and cache.stats().bytes == 0

    def test_oversized_refresh_evicts_the_stale_small_value(self):
        """A later over-budget put for the same key must not leave the old
        in-memory value to be served forever."""
        cache = ResultCache(8)
        cache.put("k", b"old")
        cache.put("k", b"x" * 100)  # oversize: cannot live in memory
        assert cache.get("k") is None  # and the stale b"old" is gone too
        assert cache.stats().bytes == 0

    def test_zero_budget_is_a_counting_noop(self):
        cache = ResultCache(0)
        cache.put("k", b"x")
        assert cache.get("k") is None
        assert cache.stats().misses == 1

    def test_disk_only_mode_does_not_rewrite_on_every_hit(self, tmp_path):
        """max_bytes=0 + spill_dir is the disk-only tier: hits must read
        the file, not re-spill identical bytes on each lookup."""
        cache = ResultCache(0, spill_dir=tmp_path)
        cache.put("k", b"payload")
        assert cache.stats().spills == 1
        for _ in range(5):
            assert cache.get("k") == b"payload"
        stats = cache.stats()
        assert stats.spills == 1  # the original write only
        assert stats.spill_hits == 5 and stats.hits == 5


class TestDiskSpill:
    def test_evicted_entry_served_from_disk_and_promoted(self, tmp_path):
        cache = ResultCache(4, spill_dir=tmp_path)
        cache.put("a", b"aaaa")
        cache.put("b", b"bbbb")  # evicts a -> spilled to disk
        assert "a" not in cache
        assert cache.stats().spills == 1
        assert cache.get("a") == b"aaaa"  # disk hit
        stats = cache.stats()
        assert stats.spill_hits == 1 and stats.hits == 1
        assert "a" in cache  # promoted back into memory

    def test_spill_files_are_filesystem_safe(self, tmp_path):
        cache = ResultCache(1, spill_dir=tmp_path)
        cache.put("hash|spec|{...}/|nasty", b"xy")  # oversized -> straight to disk
        files = list(tmp_path.iterdir())
        assert len(files) == 1
        assert files[0].suffix == ".json" and "|" not in files[0].name

    def test_oversized_payload_spills_directly(self, tmp_path):
        cache = ResultCache(4, spill_dir=tmp_path)
        cache.put("big", b"x" * 100)
        assert cache.stats().spills == 1
        assert cache.get("big") == b"x" * 100
        assert cache.stats().spill_hits == 1

    def test_spill_dir_created(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        ResultCache(64, spill_dir=target)
        assert target.is_dir()

    def test_restart_reuses_spilled_results(self, tmp_path):
        first = ResultCache(4, spill_dir=tmp_path)
        first.put("a", b"aaaa")
        first.put("b", b"bbbb")  # spills a
        second = ResultCache(1024, spill_dir=tmp_path)  # fresh process, same dir
        assert second.get("a") == b"aaaa"


class TestSpillCorruption:
    """A damaged L2 file is a miss plus a counter — never an error, and
    never stale bytes served as valid."""

    def _spill_path(self, cache, key):
        cache.put(key, b"x" * 100)  # oversized -> straight to disk
        (path,) = list(cache.spill_dir.iterdir())
        return path

    def test_truncated_spill_file_reads_as_miss(self, tmp_path):
        cache = ResultCache(4, spill_dir=tmp_path)
        path = self._spill_path(cache, "k")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats.corruptions == 1 and stats.misses == 1
        assert not path.exists()  # quarantined: deleted, not retried forever

    def test_garbage_spill_file_reads_as_miss(self, tmp_path):
        cache = ResultCache(4, spill_dir=tmp_path)
        path = self._spill_path(cache, "k")
        path.write_bytes(b"\x00\xffnot a spill frame at all")
        assert cache.get("k") is None
        assert cache.stats().corruptions == 1

    def test_flipped_payload_byte_fails_the_checksum(self, tmp_path):
        cache = ResultCache(4, spill_dir=tmp_path)
        path = self._spill_path(cache, "k")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # damage the payload, keep the frame header intact
        path.write_bytes(bytes(raw))
        assert cache.get("k") is None
        assert cache.stats().corruptions == 1

    def test_recompute_overwrites_the_corrupt_file(self, tmp_path):
        cache = ResultCache(4, spill_dir=tmp_path)
        path = self._spill_path(cache, "k")
        path.write_bytes(b"garbage")
        assert cache.get("k") is None  # corruption detected, file quarantined
        cache.put("k", b"x" * 100)  # the recompute path re-spills
        assert cache.get("k") == b"x" * 100
        stats = cache.stats()
        assert stats.corruptions == 1 and stats.spill_hits == 1

    def test_pre_framing_spill_file_is_treated_as_corrupt(self, tmp_path):
        """Files written before the checksum frame existed have no header:
        they must read as a miss, not as payload."""
        cache = ResultCache(4, spill_dir=tmp_path)
        path = self._spill_path(cache, "k")
        path.write_bytes(b'{"report": {"height": 12}}')  # old-format: raw payload
        assert cache.get("k") is None
        assert cache.stats().corruptions == 1

    def test_corruptions_in_stats_dict(self, tmp_path):
        cache = ResultCache(4, spill_dir=tmp_path)
        assert cache.stats().to_dict()["corruptions"] == 0


class TestThreadSafety:
    def test_concurrent_mixed_workload_stays_consistent(self):
        cache = ResultCache(256)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for i in range(200):
                    key = f"k{(seed * 7 + i) % 32}"
                    if i % 3 == 0:
                        cache.put(key, key.encode() * 4)
                    else:
                        got = cache.get(key)
                        assert got is None or got == key.encode() * 4
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.bytes <= 256
        assert stats.hits + stats.misses > 0
