"""Unit tests for DAG generators."""

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.dag.generators import (
    chain_forest,
    in_tree,
    layered_dag,
    out_tree,
    random_order_dag,
    series_parallel_dag,
)


class TestRandomOrderDag:
    def test_size(self, rng):
        dag = random_order_dag(20, 0.1, rng)
        assert len(dag) == 20

    def test_p_zero_no_edges(self, rng):
        assert random_order_dag(10, 0.0, rng).n_edges == 0

    def test_p_one_tournament(self, rng):
        dag = random_order_dag(6, 1.0, rng)
        assert dag.n_edges == 6 * 5 // 2

    def test_invalid_p(self, rng):
        with pytest.raises(InvalidInstanceError):
            random_order_dag(5, 1.5, rng)

    def test_negative_n(self, rng):
        with pytest.raises(InvalidInstanceError):
            random_order_dag(-1, 0.5, rng)

    def test_reproducible(self):
        a = random_order_dag(12, 0.3, np.random.default_rng(7))
        b = random_order_dag(12, 0.3, np.random.default_rng(7))
        assert set(a.edges()) == set(b.edges())


class TestLayeredDag:
    def test_every_nonsource_has_predecessor(self, rng):
        dag = layered_dag(30, 5, 0.2, rng)
        sources = dag.sources()
        for n in dag.nodes():
            if n not in sources:
                assert dag.in_degree(n) >= 1

    def test_single_layer_no_edges(self, rng):
        assert layered_dag(10, 1, 0.5, rng).n_edges == 0

    def test_bad_layers(self, rng):
        with pytest.raises(InvalidInstanceError):
            layered_dag(10, 0, 0.5, rng)


class TestSeriesParallel:
    def test_acyclic_and_sized(self, rng):
        dag = series_parallel_dag(25, rng)
        assert len(dag) == 25
        dag.topological_order()  # must not raise

    def test_all_series_is_chainlike(self, rng):
        dag = series_parallel_dag(10, rng, series_bias=1.0)
        # Fully serial composition: one source, one sink.
        assert len(dag.sources()) == 1
        assert len(dag.sinks()) == 1

    def test_all_parallel_no_edges(self, rng):
        assert series_parallel_dag(10, rng, series_bias=0.0).n_edges == 0


class TestChainsAndTrees:
    def test_chain_forest(self):
        dag = chain_forest([3, 2])
        assert set(dag.edges()) == {(0, 1), (1, 2), (3, 4)}

    def test_chain_forest_invalid(self):
        with pytest.raises(InvalidInstanceError):
            chain_forest([0, 2])

    def test_out_tree_parents(self):
        dag = out_tree(7, 2)
        assert dag.predecessors(3) == {1} and dag.predecessors(4) == {1}
        assert dag.sources() == [0]

    def test_in_tree_is_reverse(self):
        out = out_tree(7, 2)
        inn = in_tree(7, 2)
        assert {(v, u) for u, v in out.edges()} == set(inn.edges())

    def test_tree_bad_branching(self):
        with pytest.raises(InvalidInstanceError):
            out_tree(5, 0)
