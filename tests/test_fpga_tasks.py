"""Tests for the FPGA task API."""

import pytest

from repro.core.errors import InvalidInstanceError
from repro.fpga.device import Device
from repro.fpga.tasks import FPGATask, build_precedence_instance, build_release_instance


class TestFPGATask:
    def test_valid(self):
        t = FPGATask(tid="a", columns=2, duration=1.0)
        assert t.deps == () and t.release == 0.0

    def test_bad_columns(self):
        with pytest.raises(InvalidInstanceError):
            FPGATask(tid="a", columns=0, duration=1.0)

    def test_bad_duration(self):
        with pytest.raises(InvalidInstanceError):
            FPGATask(tid="a", columns=1, duration=0.0)

    def test_bad_release(self):
        with pytest.raises(InvalidInstanceError):
            FPGATask(tid="a", columns=1, duration=1.0, release=-1.0)


class TestBuildPrecedence:
    def test_basic(self):
        dev = Device(K=4)
        tasks = [
            FPGATask(tid="a", columns=2, duration=1.0),
            FPGATask(tid="b", columns=4, duration=2.0, deps=("a",)),
        ]
        inst = build_precedence_instance(tasks, dev)
        assert len(inst) == 2
        assert inst.by_id()["a"].width == 0.5
        assert inst.dag.edges() == [("a", "b")]

    def test_too_wide(self):
        dev = Device(K=2)
        with pytest.raises(InvalidInstanceError):
            build_precedence_instance([FPGATask(tid="a", columns=3, duration=1.0)], dev)

    def test_unknown_dep(self):
        dev = Device(K=4)
        with pytest.raises(InvalidInstanceError):
            build_precedence_instance(
                [FPGATask(tid="a", columns=1, duration=1.0, deps=("ghost",))], dev
            )


class TestBuildRelease:
    def test_basic(self):
        dev = Device(K=4)
        tasks = [FPGATask(tid="a", columns=1, duration=0.5, release=2.0)]
        inst = build_release_instance(tasks, dev)
        assert inst.K == 4 and inst.rects[0].release == 2.0

    def test_deps_rejected(self):
        dev = Device(K=4)
        tasks = [
            FPGATask(tid="a", columns=1, duration=0.5),
            FPGATask(tid="b", columns=1, duration=0.5, deps=("a",)),
        ]
        with pytest.raises(InvalidInstanceError):
            build_release_instance(tasks, dev)
