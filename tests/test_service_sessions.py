"""Session API tests: lifecycle, and the session/one-shot differential.

The long-lived session endpoints are sugar over the same engine path as
``POST /solve`` — a step must answer with the *same bytes* as a one-shot
solve of the identical request, modulo ``wall_time`` (timing) and the
``X-Repro-Cache`` header (provenance).  That differential is pinned here
twice: against a single worker, and through a two-worker router fleet —
where session affinity additionally guarantees every step of one session
lands on the ring owner of ``session|{id}``.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.service import InProcessServer, RouterServer, SolveServer
from repro.service.loadgen import session_step_bodies

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _request(srv, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(srv.host, srv.port, timeout=30)
    try:
        payload = json.dumps(body).encode() if isinstance(body, dict) else body
        base = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers={**base, **(headers or {})})
        response = conn.getresponse()
        raw = response.read()
        return response.status, dict(response.getheaders()), raw
    finally:
        conn.close()


def _normalized(raw: bytes) -> dict:
    data = json.loads(raw)
    data["report"]["wall_time"] = 0.0
    return data


STEPS = session_step_bodies(sessions=1, steps=4, base_rects=10, step_rects=2, seed=5)[0]


# ----------------------------------------------------------------------
# lifecycle on a single worker
# ----------------------------------------------------------------------

class TestSessionLifecycle:
    def test_create_step_delete_round_trip(self):
        with InProcessServer(SolveServer()) as srv:
            status, _, raw = _request(srv, "POST", "/session", {"algorithm": "release_bl"})
            assert status == 200
            session = json.loads(raw)["session"]
            assert session["algorithm"] == "release_bl" and session["steps"] == 0
            sid = session["id"]

            for i, body in enumerate(STEPS):
                status, headers, raw = _request(
                    srv, "POST", f"/session/{sid}/step", body
                )
                assert status == 200
                assert headers["X-Repro-Cache"] in ("hit", "coalesced", "warm", "miss")
                report = json.loads(raw)["report"]
                # The session default is merged into every step body.
                assert report["algorithm"] == "release_bl"
                assert report["valid"] is True

            status, _, raw = _request(srv, "DELETE", f"/session/{sid}")
            assert status == 200
            assert json.loads(raw) == {"deleted": sid, "steps": len(STEPS)}
            status, _, _ = _request(srv, "DELETE", f"/session/{sid}")
            assert status == 404

    def test_client_chosen_id_and_bad_ids(self):
        with InProcessServer(SolveServer()) as srv:
            status, _, raw = _request(srv, "POST", "/session", {"id": "mine"})
            assert status == 200
            assert json.loads(raw)["session"]["id"] == "mine"
            for bad in ({"id": ""}, {"id": "a/b"}, {"id": 7}):
                status, _, _ = _request(srv, "POST", "/session", bad)
                assert status == 400
            status, _, _ = _request(srv, "POST", "/session", {"algorithm": "nope"})
            assert status == 422

    def test_sessions_show_up_in_metrics(self):
        with InProcessServer(SolveServer()) as srv:
            _, _, raw = _request(srv, "POST", "/session", {})
            sid = json.loads(raw)["session"]["id"]
            _request(srv, "POST", f"/session/{sid}/step", STEPS[0])
            _, _, raw = _request(srv, "GET", "/metrics")
            sessions = json.loads(raw)["sessions"]
            assert sessions["active"] == 1
            assert sessions["created"] == 1
            assert sessions["steps"] == 1


# ----------------------------------------------------------------------
# the session / one-shot differential
# ----------------------------------------------------------------------

class TestSessionOneShotDifferential:
    def test_steps_byte_identical_to_one_shot_solves(self):
        """Each step answers with the bytes a one-shot /solve of the same
        request produces — modulo wall_time and the cache header.  Two
        separate servers, so both sides solve every instance cold."""
        with InProcessServer(SolveServer()) as sessions, \
                InProcessServer(SolveServer()) as oneshot:
            _, _, raw = _request(sessions, "POST", "/session", {"algorithm": "release_bl"})
            sid = json.loads(raw)["session"]["id"]
            for body in STEPS:
                merged = dict(json.loads(body))
                merged["algorithm"] = "release_bl"
                s_status, _, s_raw = _request(
                    sessions, "POST", f"/session/{sid}/step", body
                )
                o_status, _, o_raw = _request(oneshot, "POST", "/solve", merged)
                assert (s_status, o_status) == (200, 200)
                assert _normalized(s_raw) == _normalized(o_raw)

    def test_fleet_steps_byte_identical_to_solo_server(self):
        """The same differential through a 2-worker router: affinity,
        forwarding, and default-merging must not change a single byte."""
        with InProcessServer(RouterServer(workers=2)) as fleet, \
                InProcessServer(SolveServer()) as solo:
            _, _, raw = _request(fleet, "POST", "/session", {"algorithm": "release_bl"})
            sid = json.loads(raw)["session"]["id"]
            for body in STEPS:
                merged = dict(json.loads(body))
                merged["algorithm"] = "release_bl"
                f_status, _, f_raw = _request(
                    fleet, "POST", f"/session/{sid}/step", body
                )
                s_status, _, s_raw = _request(solo, "POST", "/solve", merged)
                assert (f_status, s_status) == (200, 200)
                assert _normalized(f_raw) == _normalized(s_raw)

    def test_warm_steps_match_one_shot_warm_solves(self):
        """With warm starts enabled the repaired placements depend on the
        neighbor history — but the *same* history gives the same bytes:
        a session stream and a one-shot stream of identical requests
        against identically-configured servers stay byte-identical."""
        with InProcessServer(SolveServer(warm_delta=0.75)) as sessions, \
                InProcessServer(SolveServer(warm_delta=0.75)) as oneshot:
            _, _, raw = _request(sessions, "POST", "/session", {"algorithm": "release_bl"})
            sid = json.loads(raw)["session"]["id"]
            warm_headers = []
            for body in STEPS:
                merged = dict(json.loads(body))
                merged["algorithm"] = "release_bl"
                s_status, s_headers, s_raw = _request(
                    sessions, "POST", f"/session/{sid}/step", body
                )
                o_status, o_headers, o_raw = _request(oneshot, "POST", "/solve", merged)
                assert (s_status, o_status) == (200, 200)
                assert s_headers["X-Repro-Cache"] == o_headers["X-Repro-Cache"]
                warm_headers.append(s_headers["X-Repro-Cache"])
                assert _normalized(s_raw) == _normalized(o_raw)
            # The delta stream actually exercises the warm path.
            assert "warm" in warm_headers


# ----------------------------------------------------------------------
# fleet affinity
# ----------------------------------------------------------------------

class TestFleetSessionAffinity:
    def test_every_step_of_a_session_lands_on_its_ring_owner(self):
        """Per-worker session counters: a session owned by worker W puts
        all of its steps on W — a split session would inflate 'created'
        past the session count (soft-state recreation on the stray
        worker)."""
        n_sessions, n_steps = 3, 4
        streams = session_step_bodies(
            sessions=n_sessions, steps=n_steps, base_rects=8, step_rects=2, seed=9
        )
        with InProcessServer(RouterServer(workers=2)) as fleet:
            for stream in streams:
                _, _, raw = _request(fleet, "POST", "/session", {"algorithm": "release_bl"})
                sid = json.loads(raw)["session"]["id"]
                for body in stream:
                    status, _, _ = _request(fleet, "POST", f"/session/{sid}/step", body)
                    assert status == 200
            _, _, raw = _request(fleet, "GET", "/metrics")
            data = json.loads(raw)
            workers = data["workers"].values()
            assert sum(w["sessions"]["created"] for w in workers) == n_sessions
            assert sum(w["sessions"]["steps"] for w in workers) == n_sessions * n_steps
            for w in workers:
                # steps stuck to their owner: each worker served exactly
                # n_steps per session it owns, never a partial stream.
                assert w["sessions"]["steps"] == n_steps * w["sessions"]["created"]

    def test_stepping_an_unregistered_session_via_router_is_404(self):
        with InProcessServer(RouterServer(workers=2)) as fleet:
            status, _, _ = _request(fleet, "POST", "/session/ghost/step", STEPS[0])
            assert status == 404
