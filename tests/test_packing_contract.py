"""Tests of the subroutine-A contract machinery (repro.packing.base)."""

import pytest
from hypothesis import given

from repro.core.placement import Placement
from repro.core.rectangle import Rect
from repro.packing.base import PackResult, as_subroutine, subroutine_a_bound
from repro.packing.nfdh import nfdh

from .conftest import rect_lists


class TestBound:
    def test_empty(self):
        assert subroutine_a_bound([]) == 0.0

    def test_formula(self):
        rs = [Rect(rid=0, width=0.5, height=2.0)]
        assert subroutine_a_bound(rs) == 2.0 * 1.0 + 2.0


class TestWrapper:
    def test_accepts_conforming_packer(self):
        wrapped = as_subroutine(nfdh, check_contract=True)
        rs = [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.75, height=0.5)]
        result = wrapped(rs, y=2.0)
        assert result.placement.base == 2.0

    def test_rejects_wrong_base(self):
        def bad(rects, y=0.0):
            p = Placement()
            for r in rects:
                p.place(r, 0.0, y + 1.0)  # starts too high
            return PackResult(p, 1.0)

        wrapped = as_subroutine(bad)
        with pytest.raises(AssertionError, match="start packing"):
            wrapped([Rect(rid=0, width=0.5, height=1.0)], y=0.0)

    def test_rejects_contract_violation(self):
        def sparse(rects, y=0.0):
            # Stack everything with big gaps: violates 2*AREA + hmax badly.
            p = Placement()
            cur = y
            for r in rects:
                p.place(r, 0.0, cur)
                cur += r.height * 10.0
            # report correct extent but ensure base == y by construction
            return PackResult(p, p.extent())

        wrapped = as_subroutine(sparse, check_contract=True)
        rs = [Rect(rid=i, width=0.1, height=1.0) for i in range(4)]
        with pytest.raises(AssertionError, match="contract"):
            wrapped(rs, y=0.0)

    def test_empty_input_passthrough(self):
        wrapped = as_subroutine(nfdh, check_contract=True)
        assert wrapped([], y=5.0).extent == 0.0


@given(rect_lists(min_size=1, max_size=16, max_h=2.0))
def test_nfdh_passes_contract_check_under_hypothesis(rects):
    wrapped = as_subroutine(nfdh, check_contract=True)
    wrapped(rects, y=0.0)  # must not raise
