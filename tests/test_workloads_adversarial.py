"""Tests for the Lemma 2.4 and Lemma 2.7 adversarial constructions —
verifying the constructions' analytic claims computationally."""

import math

import pytest

from repro.core.bounds import area_bound, critical_path_bound
from repro.core.placement import validate_placement
from repro.precedence.dc import dc_pack
from repro.precedence.shelf_nextfit import shelf_next_fit
from repro.workloads.adversarial import omega_log_n_instance, ratio3_instance


class TestOmegaLogN:
    def test_size_formula(self):
        for k in range(1, 6):
            adv = omega_log_n_instance(k)
            assert len(adv.instance) == 2 ** (k + 1) - 2

    def test_analytic_F_matches_computed(self):
        for k in (2, 3, 4):
            adv = omega_log_n_instance(k, eps=1e-6)
            F = critical_path_bound(adv.instance)
            assert math.isclose(F, adv.analytic["F"], rel_tol=1e-6)

    def test_analytic_area_matches_computed(self):
        for k in (2, 3, 4):
            adv = omega_log_n_instance(k, eps=1e-6)
            assert math.isclose(area_bound(adv.instance), adv.analytic["area"], rel_tol=1e-6)

    def test_bounds_stay_near_one(self):
        adv = omega_log_n_instance(6, eps=1e-8)
        assert critical_path_bound(adv.instance) < 1.01
        assert area_bound(adv.instance) < 1.01

    def test_chain_structure(self):
        adv = omega_log_n_instance(3)
        dag = adv.instance.dag
        # tall:i:* chains interleaved with wides -> every tall except chain
        # heads has a wide predecessor.
        assert "tall:1:0" in set(map(str, dag.nodes()))
        for i in range(1, 4):
            head = f"tall:{i}:0"
            assert dag.in_degree(head) == 0

    def test_any_valid_packing_costs_log_factor(self):
        """Packing the k=5 instance with DC (or any algorithm) costs at
        least ~k/2 despite AREA = F = 1 — the Omega(log n) gap is real."""
        adv = omega_log_n_instance(5, eps=1e-7)
        result = dc_pack(adv.instance)
        validate_placement(adv.instance, result.placement)
        # The shelf argument: each chain i adds ~1/2 of unavoidable height.
        assert result.height >= adv.analytic["opt_lb"] - 0.25

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            omega_log_n_instance(3, eps=1.5)
        with pytest.raises(ValueError):
            omega_log_n_instance(0)


class TestRatio3:
    def test_size(self):
        for k in (1, 2, 5):
            assert len(ratio3_instance(k).instance) == 3 * k

    def test_analytic_relations(self):
        """The lemma's stated equalities: OPT = 3(F - 1) = 3*AREA - 3n*eps."""
        for k in (2, 3, 4):
            adv = ratio3_instance(k, eps=1e-5)
            a = adv.analytic
            assert math.isclose(a["opt"], 3.0 * (a["F"] - 1.0), rel_tol=1e-9)
            assert math.isclose(a["opt"], 3.0 * a["area"] - 3 * a["n"] * a["eps"], rel_tol=1e-6)

    def test_analytic_F_matches_computed(self):
        adv = ratio3_instance(4, eps=1e-5)
        assert math.isclose(critical_path_bound(adv.instance), adv.analytic["F"], rel_tol=1e-9)

    def test_analytic_area_matches_computed(self):
        adv = ratio3_instance(4, eps=1e-5)
        assert math.isclose(area_bound(adv.instance), adv.analytic["area"], rel_tol=1e-6)

    def test_wides_cannot_pair(self):
        adv = ratio3_instance(3, eps=0.01)
        wides = [r for r in adv.instance.rects if str(r.rid).startswith("wide")]
        assert all(w.width > 0.5 for w in wides)

    def test_serialisation_is_forced(self):
        """Any valid placement has height >= n: wides one per unit of
        height, then the narrow chain."""
        adv = ratio3_instance(3, eps=0.01)
        run = shelf_next_fit(adv.instance)
        validate_placement(adv.instance, run.placement)
        assert run.height >= adv.analytic["opt"] - 1e-9

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            ratio3_instance(3, eps=0.6)
        with pytest.raises(ValueError):
            ratio3_instance(0)
