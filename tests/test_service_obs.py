"""Service-level observability: traces on the wire, spans, log contract.

The acceptance contracts of the tracing layer live here:

* every response (any endpoint, solo server and fleet alike) carries an
  ``X-Repro-Trace`` id, and a client-supplied trace id is propagated,
  not replaced;
* ``GET /debug/trace/{id}`` on a 2-worker fleet returns the merged
  router→queue→engine span tree, and the non-root spans cover >= 80 %
  of the root span's wall time;
* solve payloads are byte-identical with tracing headers present or
  absent (observation never changes answer bytes);
* the ``X-Repro-Cache`` response header and the ``/metrics`` cache
  counters agree under request coalescing;
* the Prometheus exposition stays lint-clean (one ``# TYPE`` per
  family, escaped label values, no duplicate series) now that span
  histograms ride along;
* ``repro loadtest`` reports the slowest traces with span breakdowns;
* the structured request log validates against the event schema.
"""

from __future__ import annotations

import http.client
import io
import json
import re
import threading

import numpy as np
import pytest

from repro.core.instance import StripPackingInstance
from repro.core.serialize import instance_to_dict
from repro.obs import configure_logging, validate_event
from repro.obs.logging import _reset_for_testing as _reset_logger
from repro.service import InProcessServer, RouterServer, SolveServer
from repro.workloads.random_rects import powerlaw_rects


@pytest.fixture(scope="module")
def server():
    with InProcessServer() as srv:
        yield srv


@pytest.fixture()
def conn(server):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    yield connection
    connection.close()


def _request(conn, method, path, body=None, headers=None):
    payload = json.dumps(body).encode() if isinstance(body, dict) else body
    all_headers = {"Content-Type": "application/json"} if payload else {}
    all_headers.update(headers or {})
    conn.request(method, path, body=payload, headers=all_headers)
    response = conn.getresponse()
    raw = response.read()
    return response.status, dict(response.getheaders()), raw


def _solve_body(n=8, seed=0, algorithm="bottom_left"):
    instance = StripPackingInstance(powerlaw_rects(n, np.random.default_rng(seed)))
    return {"instance": instance_to_dict(instance), "algorithm": algorithm}


def _trace_id(headers) -> str:
    header = headers["X-Repro-Trace"]
    trace_id, span_id, tenant = header.split(";")
    assert re.fullmatch(r"[0-9a-f]{16}", trace_id), header
    return trace_id


# ----------------------------------------------------------------------
# trace propagation on the wire
# ----------------------------------------------------------------------

class TestTraceHeader:
    @pytest.mark.parametrize("method,path,body", [
        ("GET", "/healthz", None),
        ("GET", "/metrics", None),
        ("POST", "/solve", _solve_body(seed=100)),
    ])
    def test_every_response_carries_a_trace(self, conn, method, path, body):
        status, headers, _ = _request(conn, method, path, body)
        assert status == 200
        _trace_id(headers)

    def test_errors_are_traced_too(self, conn):
        status, headers, _ = _request(conn, "POST", "/solve", b"{not json")
        assert status == 400
        _trace_id(headers)

    def test_client_supplied_trace_id_is_propagated(self, conn):
        wire = "c0ffee0123456789;abcdef0123456789;default"
        _, headers, _ = _request(
            conn, "POST", "/solve", _solve_body(seed=101),
            headers={"X-Repro-Trace": wire},
        )
        assert _trace_id(headers) == "c0ffee0123456789"

    def test_malformed_trace_header_is_replaced(self, conn):
        _, headers, _ = _request(
            conn, "GET", "/healthz", headers={"X-Repro-Trace": "NOT;A;TRACE"}
        )
        assert _trace_id(headers)  # fresh, well-formed

    def test_tenant_header_is_sanitized_onto_spans(self, conn, server):
        _, headers, _ = _request(
            conn, "POST", "/solve", _solve_body(seed=102),
            headers={"X-Repro-Tenant": "team-a"},
        )
        trace = _trace_id(headers)
        _, _, raw = _request(conn, "GET", f"/debug/trace/{trace}")
        doc = json.loads(raw)
        assert doc["spans"] and all(s["tenant"] == "team-a" for s in doc["spans"])

    def test_debug_trace_spans_cover_the_solve_path(self, conn):
        _, headers, _ = _request(conn, "POST", "/solve", _solve_body(n=30, seed=103))
        trace = _trace_id(headers)
        _, _, raw = _request(conn, "GET", f"/debug/trace/{trace}")
        doc = json.loads(raw)
        assert doc["trace"] == trace
        names = [s["name"] for s in doc["spans"]]
        assert {"server.request", "cache.lookup", "queue.wait",
                "engine.solve"} <= set(names)
        starts = [s["start_s"] for s in doc["spans"]]
        assert starts == sorted(starts)

    def test_unknown_trace_is_empty_not_404(self, conn):
        status, _, raw = _request(conn, "GET", "/debug/trace/0123456789abcdef")
        assert status == 200
        assert json.loads(raw) == {"trace": "0123456789abcdef", "spans": []}

    def test_report_payload_never_carries_a_trace_id(self, conn):
        """Service solves run off-context by design: the payload (and so
        every cached byte) is trace-free; the id rides the header."""
        _, _, raw = _request(conn, "POST", "/solve", _solve_body(seed=104))
        assert "trace_id" not in json.loads(raw)["report"]


class TestByteIdentity:
    def test_solve_bytes_identical_with_and_without_tracing_headers(self):
        body = _solve_body(n=12, seed=7)
        with InProcessServer() as plain_srv:
            c = http.client.HTTPConnection(plain_srv.host, plain_srv.port, timeout=30)
            _, _, raw_plain = _request(c, "POST", "/solve", body)
            c.close()
        with InProcessServer() as traced_srv:
            c = http.client.HTTPConnection(traced_srv.host, traced_srv.port, timeout=30)
            _, _, raw_traced = _request(
                c, "POST", "/solve", body,
                headers={
                    "X-Repro-Trace": "1234567890abcdef;fedcba0987654321;acme",
                    "X-Repro-Tenant": "acme",
                },
            )
            # and the cache-hit bytes match the cold bytes too
            _, hit_headers, raw_hit = _request(c, "POST", "/solve", body)
            c.close()
        plain, traced = json.loads(raw_plain), json.loads(raw_traced)
        # wall_time is the one nondeterministic field across runs (the same
        # caveat the router-vs-solo differential tests carry); everything
        # else — placements, heights, bounds, key order — must match, and
        # no trace material may appear in either payload.
        assert plain["report"].pop("wall_time") and traced["report"].pop("wall_time")
        assert plain == traced
        assert "trace_id" not in traced["report"]
        assert hit_headers["X-Repro-Cache"] == "hit" and raw_hit == raw_traced


class TestCoalesceCounterConsistency:
    def test_cache_header_and_counters_agree_mid_coalesce(self):
        """Followers that join an in-flight solve answer ``coalesced`` and
        must not bump the cache hit/miss counters (the satellite-2 fix:
        the in-flight probe runs before the cache lookup)."""
        body = _solve_body(n=80, seed=42)
        with InProcessServer() as srv:
            sources: list[str] = []
            lock = threading.Lock()

            def hammer():
                c = http.client.HTTPConnection(srv.host, srv.port, timeout=30)
                try:
                    _, headers, _ = _request(c, "POST", "/solve", body)
                    with lock:
                        sources.append(headers["X-Repro-Cache"])
                finally:
                    c.close()

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            c = http.client.HTTPConnection(srv.host, srv.port, timeout=30)
            _, _, raw = _request(c, "GET", "/metrics")
            c.close()
        cache = json.loads(raw)["cache"]
        assert sources.count("miss") == 1
        assert set(sources) <= {"miss", "hit", "coalesced"}
        # the contract: counters move only for requests whose header says so
        assert cache["misses"] == sources.count("miss")
        assert cache["hits"] == sources.count("hit")


# ----------------------------------------------------------------------
# fleet acceptance: the merged router→queue→engine span tree
# ----------------------------------------------------------------------

def _union_length(intervals: list[tuple[float, float]]) -> float:
    total, end = 0.0, float("-inf")
    for start, stop in sorted(intervals):
        if stop > end:
            total += stop - max(start, end)
            end = stop
    return total


class TestFleetTrace:
    def test_two_worker_fleet_span_tree_covers_the_request(self):
        with InProcessServer(RouterServer(workers=2)) as srv:
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=60)
            try:
                body = _solve_body(n=800, seed=9)
                status, headers, _ = _request(conn, "POST", "/solve", body)
                assert status == 200
                trace = _trace_id(headers)
                _, _, raw = _request(conn, "GET", f"/debug/trace/{trace}")
            finally:
                conn.close()
        doc = json.loads(raw)
        assert doc["trace"] == trace
        spans = doc["spans"]
        names = {s["name"] for s in spans}
        # the full hop chain is visible in one document
        assert {"router.request", "router.forward", "server.request",
                "queue.wait", "engine.solve"} <= names
        # worker-side spans carry the worker identity
        worker_spans = [s for s in spans if s["name"] == "server.request"]
        assert worker_spans and all(s.get("worker") in ("0", "1") for s in worker_spans)
        # ordering contract: merged across processes, sorted by start
        starts = [s["start_s"] for s in spans]
        assert starts == sorted(starts)
        # coverage: the children account for >= 80% of the root span
        (root,) = [s for s in spans if s["name"] == "router.request"]
        children = [
            (s["start_s"], s["start_s"] + s["duration_s"])
            for s in spans
            if s is not root
        ]
        root_interval = (root["start_s"], root["start_s"] + root["duration_s"])
        clipped = [
            (max(lo, root_interval[0]), min(hi, root_interval[1]))
            for lo, hi in children
            if hi > root_interval[0] and lo < root_interval[1]
        ]
        assert root["duration_s"] > 0
        coverage = _union_length(clipped) / root["duration_s"]
        assert coverage >= 0.8, f"span tree covers only {coverage:.0%} of the request"

    def test_fleet_responses_carry_traces_and_debug_trace_merges(self):
        with InProcessServer(RouterServer(workers=2)) as srv:
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=60)
            try:
                _, headers, _ = _request(conn, "GET", "/healthz")
                _trace_id(headers)
                _, headers, _ = _request(conn, "POST", "/solve", _solve_body(seed=10))
                trace = _trace_id(headers)
                _, _, raw = _request(conn, "GET", f"/debug/trace/{trace}")
            finally:
                conn.close()
        spans = json.loads(raw)["spans"]
        # router-side and worker-side spans both present in the merge
        assert any(s["name"].startswith("router.") for s in spans)
        assert any(s["name"] == "server.request" for s in spans)


# ----------------------------------------------------------------------
# Prometheus exposition linter
# ----------------------------------------------------------------------

_SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? "
    r"(?P<value>-?[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?|\+Inf|NaN)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"')


def _lint_prometheus(text: str) -> None:
    """One ``# TYPE`` per family before its first sample, valid label
    escaping, no duplicate series."""
    typed: dict[str, str] = {}
    seen: set[tuple] = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            assert name not in typed, f"duplicate # TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram", "summary"), line
            typed[name] = kind
            continue
        assert not line.startswith("#"), f"unexpected comment: {line}"
        match = _SERIES_RE.match(line)
        assert match, f"unparseable series line: {line!r}"
        name = match.group("name")
        assert name in typed, f"series {name} emitted before its # TYPE"
        labels = match.group("labels") or ""
        if labels:
            parsed = _LABEL_RE.findall(labels)
            reassembled = ",".join(f'{k}="{v}"' for k, v in parsed)
            assert reassembled == labels, f"bad label escaping in: {line!r}"
        key = (name, labels)
        assert key not in seen, f"duplicate series: {line!r}"
        seen.add(key)
    float(match.group("value"))  # the last line parsed is a number


class TestPrometheusLint:
    def test_solo_server_exposition_is_clean(self):
        with InProcessServer() as srv:
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=30)
            try:
                _request(conn, "POST", "/solve", _solve_body(seed=21))
                _request(conn, "POST", "/solve", _solve_body(seed=21))  # a hit
                # session mode: create + step so session series are live
                _, _, raw = _request(conn, "POST", "/session", {})
                sid = json.loads(raw)["session"]["id"]
                _request(conn, "POST", f"/session/{sid}/step",
                         {"instance": _solve_body(seed=22)["instance"]})
                status, headers, raw = _request(
                    conn, "GET", "/metrics", headers={"Accept": "text/plain"}
                )
            finally:
                conn.close()
        assert status == 200 and headers["Content-Type"].startswith("text/plain")
        text = raw.decode()
        _lint_prometheus(text)
        assert "repro_span_duration_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert "repro_session_steps_total" in text

    def test_fleet_exposition_is_clean_with_span_histograms(self):
        with InProcessServer(RouterServer(workers=2)) as srv:
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=60)
            try:
                _request(conn, "POST", "/solve", _solve_body(seed=23))
                _request(conn, "POST", "/solve", _solve_body(seed=24))
                _, _, raw = _request(
                    conn, "GET", "/metrics", headers={"Accept": "text/plain"}
                )
            finally:
                conn.close()
        text = raw.decode()
        _lint_prometheus(text)
        # span histograms appear for the router and per worker
        assert re.search(
            r'repro_span_duration_seconds_count\{phase="router\.request"', text
        )
        assert re.search(
            r'repro_span_duration_seconds_count\{.*phase="server\.request".*'
            r'worker="[01]"', text
        )


# ----------------------------------------------------------------------
# loadtest slow-trace reporting
# ----------------------------------------------------------------------

class TestLoadtestSlowTraces:
    def test_closed_loop_reports_slowest_traces_with_spans(self, server):
        from repro.service.loadgen import run_closed_loop, solve_payloads

        payloads = solve_payloads(4, n_rects=10, seed=31, algorithm="bottom_left")
        result = run_closed_loop(server.url, payloads, requests=12, concurrency=3)
        assert result.errors == 0
        assert 1 <= len(result.slow_traces) <= 3
        latencies = [entry["latency_ms"] for entry in result.slow_traces]
        assert latencies == sorted(latencies, reverse=True)
        for entry in result.slow_traces:
            assert re.fullmatch(r"[0-9a-f]{16}", entry["trace"])
            assert any(s["name"] == "server.request" for s in entry["spans"])
        document = result.to_dict()
        assert document["slow_traces"] == [dict(e) for e in result.slow_traces]
        # the human summary names the slow traces too
        text = "\n".join(result.summary_lines())
        assert "slow trace" in text


# ----------------------------------------------------------------------
# structured request log
# ----------------------------------------------------------------------

class TestRequestLog:
    @pytest.fixture(autouse=True)
    def _restore_logger(self):
        yield
        _reset_logger()

    def test_request_events_validate_against_the_schema(self, server):
        sink = io.StringIO()
        configure_logging("json", stream=sink)
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            _, headers, _ = _request(conn, "POST", "/solve", _solve_body(seed=41))
        finally:
            conn.close()
        trace = _trace_id(headers)
        records = [json.loads(line) for line in sink.getvalue().splitlines()]
        requests = [r for r in records if r["event"] == "request"]
        assert requests, "no request event emitted"
        for record in records:
            validate_event(record)
        (solve_event,) = [r for r in requests if r["trace"] == trace]
        assert solve_event["endpoint"] == "/solve"
        assert solve_event["status"] == 200
        assert solve_event["latency_ms"] > 0
        assert solve_event["tenant"] == "default"

    def test_drain_events_are_emitted(self):
        import asyncio

        sink = io.StringIO()
        configure_logging("json", stream=sink)

        async def cycle():
            server = SolveServer()
            bound = await server.start("127.0.0.1", 0)
            await server.drain(bound)

        asyncio.run(cycle())
        records = [json.loads(line) for line in sink.getvalue().splitlines()]
        stages = [r["stage"] for r in records if r["event"] == "drain"]
        assert "begin" in stages and "complete" in stages
        for record in records:
            validate_event(record)
