"""Tests for the Lemma 3.4 fractional-to-integral conversion."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.instance import ReleaseInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.release.integralize import integralize
from repro.release.lp import solve_fractional

from .conftest import release_instances


def inst_of(specs, K=4):
    rects = [
        Rect(rid=i, width=c / K, height=h, release=r)
        for i, (c, h, r) in enumerate(specs)
    ]
    return ReleaseInstance(rects, K)


def run_pipeline(inst):
    sol = solve_fractional(inst)
    result = integralize(sol, inst)
    validate_placement(inst, result.placement)
    return sol, result


class TestIntegralize:
    def test_single_rect(self):
        inst = inst_of([(4, 1.0, 0.0)])
        sol, result = run_pipeline(inst)
        assert math.isclose(result.height, 1.0, rel_tol=1e-6)

    def test_respects_releases(self):
        inst = inst_of([(4, 1.0, 3.0), (4, 1.0, 0.0)])
        sol, result = run_pipeline(inst)
        for _, pr in result.placement.items():
            assert pr.y >= pr.rect.release - 1e-9

    def test_lemma_3_4_additive_bound(self):
        rng = np.random.default_rng(5)
        specs = [
            (int(rng.integers(1, 5)), float(rng.uniform(0.2, 1.0)),
             float(rng.choice([0.0, 1.0, 2.0])))
            for _ in range(25)
        ]
        inst = inst_of(specs)
        sol, result = run_pipeline(inst)
        k = result.n_occurrences
        assert result.height <= sol.height + k + 1e-6

    def test_column_trace_covers_all_rects(self):
        inst = inst_of([(2, 0.5, 0.0), (2, 0.7, 1.0), (1, 0.3, 1.0)])
        sol, result = run_pipeline(inst)
        traced = [r.rid for col in result.columns for r in col.rects]
        assert sorted(traced) == [0, 1, 2]

    def test_columns_match_config_widths(self):
        inst = inst_of([(2, 0.5, 0.0), (2, 0.7, 0.0)])
        sol, result = run_pipeline(inst)
        for col in result.columns:
            for r in col.rects:
                assert math.isclose(r.width, sol.config_set.widths[col.width_index])

    def test_perfect_parallel_packing(self):
        # Four 1-column unit rects: LP packs them side by side; the integral
        # conversion should stay within height 1 + additive slack of the
        # single occurrence.
        inst = inst_of([(1, 1.0, 0.0)] * 4)
        sol, result = run_pipeline(inst)
        assert result.height <= sol.height + result.n_occurrences + 1e-9


@settings(deadline=None, max_examples=25)
@given(release_instances(K=3, max_size=8))
def test_integralize_always_valid_and_bounded(inst):
    """End-to-end Lemma 3.3 + 3.4 under hypothesis: the integral packing is
    valid and within OPT_f + #occurrences."""
    sol = solve_fractional(inst)
    result = integralize(sol, inst)
    validate_placement(inst, result.placement)
    assert result.height <= sol.height + result.n_occurrences + 1e-6
