"""Tests for Algorithm 1 (DC) — validity, the Theorem 2.3 guarantee, and
the band-structure trace."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.bounds import area_bound, critical_path_bound, dc_guarantee
from repro.core.instance import PrecedenceInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG
from repro.dag.validate import is_antichain
from repro.packing import bfdh, ffdh, nfdh
from repro.precedence.dc import dc_pack

from .conftest import precedence_instances


class TestDCBasics:
    def test_empty(self):
        inst = PrecedenceInstance.without_constraints([])
        result = dc_pack(inst)
        assert result.height == 0.0 and len(result.placement) == 0

    def test_single_rect(self):
        r = Rect(rid=0, width=0.5, height=2.0)
        inst = PrecedenceInstance.without_constraints([r])
        result = dc_pack(inst)
        assert math.isclose(result.height, 2.0)
        validate_placement(inst, result.placement)

    def test_chain_is_fully_serial(self):
        rs = [Rect(rid=i, width=0.1, height=1.0) for i in range(5)]
        inst = PrecedenceInstance(rs, TaskDAG.chain(list(range(5))))
        result = dc_pack(inst)
        validate_placement(inst, result.placement)
        assert math.isclose(result.height, 5.0)

    def test_antichain_packs_in_parallel(self):
        rs = [Rect(rid=i, width=0.25, height=1.0) for i in range(4)]
        inst = PrecedenceInstance.without_constraints(rs)
        result = dc_pack(inst)
        assert math.isclose(result.height, 1.0)

    def test_diamond(self):
        rs = [Rect(rid=i, width=0.4, height=1.0) for i in range(4)]
        inst = PrecedenceInstance(rs, TaskDAG([0, 1, 2, 3], [(0, 1), (0, 2), (1, 3), (2, 3)]))
        result = dc_pack(inst)
        validate_placement(inst, result.placement)
        # critical path = 3; 1 and 2 fit side by side
        assert math.isclose(result.height, 3.0)

    def test_height_matches_placement(self, rng):
        from repro.workloads.dags import random_precedence_instance

        inst = random_precedence_instance(30, 0.1, rng)
        result = dc_pack(inst)
        assert math.isclose(result.height, result.placement.height, abs_tol=1e-9)


class TestDCBands:
    def test_bands_cover_all_ids(self, rng):
        from repro.workloads.dags import random_precedence_instance

        inst = random_precedence_instance(25, 0.15, rng)
        result = dc_pack(inst)
        covered = [rid for band in result.bands for rid in band.ids]
        assert sorted(map(str, covered)) == sorted(str(r.rid) for r in inst.rects)
        assert len(covered) == len(set(covered))

    def test_bands_are_antichains(self, rng):
        from repro.workloads.dags import random_precedence_instance

        inst = random_precedence_instance(25, 0.2, rng)
        result = dc_pack(inst)
        for band in result.bands:
            assert is_antichain(inst.dag, band.ids)

    def test_bands_ascending(self, rng):
        from repro.workloads.dags import layered_precedence_instance

        inst = layered_precedence_instance(30, 5, 0.2, rng)
        result = dc_pack(inst)
        ys = [b.y for b in result.bands]
        assert ys == sorted(ys)

    def test_max_depth_bounded_by_log_n(self, rng):
        from repro.workloads.dags import random_precedence_instance

        inst = random_precedence_instance(64, 0.1, rng)
        result = dc_pack(inst)
        # Each recursion level removes at least the middle band, so the
        # depth is at most log2(n+1) rounded up generously.
        assert result.max_depth <= math.ceil(math.log2(65)) + 1


class TestDCSubroutines:
    @pytest.mark.parametrize("sub", [nfdh, ffdh, bfdh])
    def test_works_with_all_level_packers(self, sub, rng):
        from repro.workloads.dags import random_precedence_instance

        inst = random_precedence_instance(25, 0.1, rng)
        result = dc_pack(inst, subroutine=sub)
        validate_placement(inst, result.placement)


class TestTheorem23:
    @pytest.mark.parametrize("seed", range(8))
    def test_guarantee_on_random_instances(self, seed):
        from repro.workloads.dags import random_precedence_instance

        rng = np.random.default_rng(seed)
        inst = random_precedence_instance(40, 0.08, rng)
        result = dc_pack(inst)
        bound = dc_guarantee(len(inst), area_bound(inst), critical_path_bound(inst))
        assert result.height <= bound + 1e-7

    def test_guarantee_on_adversarial_instance(self):
        from repro.workloads.adversarial import omega_log_n_instance

        adv = omega_log_n_instance(5)
        inst = adv.instance
        result = dc_pack(inst)
        validate_placement(inst, result.placement)
        bound = dc_guarantee(len(inst), area_bound(inst), critical_path_bound(inst))
        assert result.height <= bound + 1e-7


@settings(deadline=None)
@given(precedence_instances(max_size=12))
def test_dc_valid_and_within_theorem_bound(inst):
    result = dc_pack(inst)
    validate_placement(inst, result.placement)
    bound = dc_guarantee(len(inst), area_bound(inst), critical_path_bound(inst))
    assert result.height <= bound + 1e-7


@settings(deadline=None)
@given(precedence_instances(max_size=10))
def test_dc_height_at_least_lower_bounds(inst):
    result = dc_pack(inst)
    assert result.height >= critical_path_bound(inst) - 1e-9
    assert result.height >= area_bound(inst) - 1e-9
