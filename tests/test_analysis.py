"""Tests for the analysis helpers (ratios, tables, rendering)."""

import math

import numpy as np
import pytest

from repro.analysis.ratios import RatioSample, geometric_mean, log_slope, summarize
from repro.analysis.render import render_placement
from repro.analysis.report import Table, format_value
from repro.core.placement import Placement
from repro.core.rectangle import Rect


class TestRatios:
    def test_ratio(self):
        assert RatioSample(achieved=3.0, reference=2.0).ratio == 1.5

    def test_zero_reference(self):
        with pytest.raises(ZeroDivisionError):
            RatioSample(achieved=1.0, reference=0.0).ratio

    def test_geometric_mean(self):
        assert math.isclose(geometric_mean([1.0, 4.0]), 2.0)

    def test_geometric_mean_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_summarize(self):
        samples = [RatioSample(2.0, 1.0), RatioSample(3.0, 1.0)]
        s = summarize(samples)
        assert s["count"] == 2 and s["min"] == 2.0 and s["max"] == 3.0

    def test_summarize_empty(self):
        assert summarize([]) == {"count": 0.0}

    def test_log_slope_linear_in_log(self):
        ns = [2, 4, 8, 16]
        values = [1.0, 2.0, 3.0, 4.0]  # exactly +1 per doubling
        assert math.isclose(log_slope(ns, values), 1.0)

    def test_log_slope_flat(self):
        assert abs(log_slope([2, 4, 8], [5.0, 5.0, 5.0])) < 1e-12

    def test_log_slope_validation(self):
        with pytest.raises(ValueError):
            log_slope([1], [1.0])


class TestTable:
    def test_render_contains_cells(self):
        t = Table(["n", "ratio"], title="demo")
        t.add_row([4, 1.5])
        out = t.render()
        assert "demo" in out and "4" in out and "1.5" in out

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.123456789) == "0.1235"
        assert format_value("x") == "x"

    def test_render_empty_table(self):
        t = Table(["a"])
        assert "a" in t.render()


class TestRender:
    def test_empty(self):
        assert "empty" in render_placement(Placement())

    def test_contains_glyphs(self):
        p = Placement()
        p.place(Rect(rid=0, width=0.5, height=1.0), 0.0, 0.0)
        p.place(Rect(rid=1, width=0.5, height=1.0), 0.5, 0.0)
        art = render_placement(p, width_chars=16)
        assert "A" in art and "B" in art

    def test_header_reports_height(self):
        p = Placement()
        p.place(Rect(rid=0, width=1.0, height=2.5), 0.0, 0.0)
        assert "2.5" in render_placement(p).splitlines()[0]

    def test_row_count_capped(self):
        p = Placement()
        p.place(Rect(rid=0, width=1.0, height=100.0), 0.0, 0.0)
        art = render_placement(p, width_chars=16, max_rows=10)
        assert len(art.splitlines()) <= 11
