"""Bench-history trend gating (:mod:`repro.obs.trend` + ``repro bench trend``).

Synthetic artifact histories are written with the real
``bench.artifact`` writer, so everything the trend pipeline consumes is
schema-valid by construction.  The acceptance contract: a history whose
last ``window`` runs are all slower than baseline trips the gate (CLI
exit 1); the repo's committed ``benchmarks/artifacts`` passes it; one
noisy run does not trip it.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.bench.artifact import SCHEMA, machine_info
from repro.cli import main
from repro.obs.trend import (
    DEFAULT_DRIFT_THRESHOLD,
    TREND_FILENAME,
    TREND_SCHEMA,
    run_trend,
    trend_table,
    validate_trend,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED = REPO_ROOT / "benchmarks" / "artifacts"


def make_artifact(name: str, created: str, medians: dict[str, float],
                  size: int = 100, tier: str = "array") -> dict:
    """A minimal schema-valid artifact: one point per ``medians`` entry."""
    return {
        "schema": SCHEMA,
        "name": name,
        "title": f"synthetic {name}",
        "source": "tests/test_obs_trend.py",
        "quick": True,
        "seed": 0,
        "created": created,
        "machine": machine_info(),
        "kernel_tier": tier,
        "config": {
            "sizes": [size],
            "size_name": "n",
            "repetitions": 1,
            "warmup": 0,
            "entries": sorted(medians),
        },
        "points": [
            {
                "label": label,
                "kind": "synthetic",
                "size": size,
                "params": {},
                "times_s": [median],
                "median_s": median,
                "p95_s": median,
                "mean_s": median,
                "min_s": median,
                "metrics": {},
            }
            for label, median in sorted(medians.items())
        ],
    }


def write_history(directory: Path, runs: list[dict[str, float]], name: str = "synth"):
    """One sub-directory per historical run (timestamps order them)."""
    for i, medians in enumerate(runs):
        run_dir = directory / f"run{i:02d}"
        run_dir.mkdir(parents=True, exist_ok=True)
        artifact = make_artifact(name, f"2026-01-{i + 1:02d}T00:00:00+00:00", medians)
        (run_dir / f"BENCH_{name}.json").write_text(json.dumps(artifact))
    return [directory / f"run{i:02d}" for i in range(len(runs))]


class TestRunTrend:
    def test_drifting_history_is_flagged(self, tmp_path):
        # baseline 10ms, then three consecutive runs at 2x: sustained drift
        dirs = write_history(
            tmp_path, [{"e": 0.010}, {"e": 0.020}, {"e": 0.021}, {"e": 0.022}]
        )
        document, drifts = run_trend(dirs, window=3)
        assert len(drifts) == 1
        drift = drifts[0]
        assert drift["bench"] == "synth" and drift["entry"] == "e"
        assert drift["ratio"] == pytest.approx(2.2)
        validate_trend(document)

    def test_single_noisy_run_does_not_trip(self, tmp_path):
        # one slow run sandwiched between healthy ones: not sustained
        dirs = write_history(
            tmp_path, [{"e": 0.010}, {"e": 0.010}, {"e": 0.030}, {"e": 0.010}]
        )
        _, drifts = run_trend(dirs, window=3)
        assert drifts == []

    def test_short_history_cannot_drift(self, tmp_path):
        # window runs above threshold but no pre-window baseline run
        dirs = write_history(tmp_path, [{"e": 0.010}, {"e": 0.030}, {"e": 0.030}])
        _, drifts = run_trend(dirs, window=3)
        assert drifts == []

    def test_small_absolute_deltas_are_ignored(self, tmp_path):
        # 2x ratio but only 0.2ms absolute: below the min_delta_s floor
        dirs = write_history(
            tmp_path, [{"e": 0.0002}, {"e": 0.0004}, {"e": 0.0004}, {"e": 0.0004}]
        )
        _, drifts = run_trend(dirs, window=3)
        assert drifts == []

    def test_document_written_and_excluded_from_discovery(self, tmp_path):
        dirs = write_history(tmp_path, [{"e": 0.01}, {"e": 0.01}])
        out = tmp_path / "out"
        document, _ = run_trend(dirs, out_dir=out)
        on_disk = json.loads((out / TREND_FILENAME).read_text())
        assert on_disk["schema"] == TREND_SCHEMA
        assert on_disk["artifacts"] == document["artifacts"] == 2
        # a second pass over the out dir must not re-ingest the document
        document2, _ = run_trend([*dirs, out])
        assert document2["artifacts"] == 2

    def test_invalid_artifact_is_reported_not_fatal(self, tmp_path):
        dirs = write_history(tmp_path, [{"e": 0.01}, {"e": 0.01}])
        (dirs[0] / "BENCH_broken.json").write_text("{not json")
        document, drifts = run_trend(dirs)
        assert drifts == []
        assert document["artifacts"] == 2
        assert len(document["load_errors"]) == 1

    def test_parameter_validation(self, tmp_path):
        with pytest.raises(ValueError):
            run_trend([tmp_path], window=0)
        with pytest.raises(ValueError):
            run_trend([tmp_path], threshold=1.0)

    def test_trend_table_marks_drift(self, tmp_path):
        dirs = write_history(
            tmp_path, [{"e": 0.010}, {"e": 0.020}, {"e": 0.021}, {"e": 0.022}]
        )
        document, _ = run_trend(dirs, window=3)
        rendered = trend_table(document).render()
        assert "DRIFT" in rendered and "synth" in rendered

    def test_validate_trend_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_trend({"schema": "nope"})
        with pytest.raises(ValueError, match="object"):
            validate_trend([])


class TestCliBenchTrend:
    def test_committed_artifacts_pass_the_gate(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["bench", "trend", "--artifacts", str(COMMITTED), "--out", str(tmp_path)],
            out=out,
        )
        assert code == 0, out.getvalue()
        assert "no sustained drift" in out.getvalue()
        validate_trend(json.loads((tmp_path / TREND_FILENAME).read_text()))

    def test_drifting_history_exits_nonzero(self, tmp_path):
        history = tmp_path / "history"
        dirs = write_history(
            history, [{"e": 0.010}, {"e": 0.020}, {"e": 0.021}, {"e": 0.022}]
        )
        out = io.StringIO()
        code = main(
            [
                "bench", "trend",
                "--artifacts", str(dirs[0]),
                *[arg for d in dirs[1:] for arg in ("--history", str(d))],
                "--out", str(tmp_path / "out"),
            ],
            out=out,
        )
        assert code == 1
        text = out.getvalue()
        assert "DRIFT" in text and "1 drifting series flagged" in text

    def test_missing_directory_is_a_usage_error(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["bench", "trend", "--artifacts", str(tmp_path / "nope")], out=out
        )
        assert code == 2 and "not a directory" in out.getvalue()

    def test_empty_directory_is_a_usage_error(self, tmp_path):
        out = io.StringIO()
        code = main(["bench", "trend", "--artifacts", str(tmp_path)], out=out)
        assert code == 2 and "no BENCH_" in out.getvalue()

    def test_bad_window_and_threshold_are_usage_errors(self, tmp_path):
        for argv in (
            ["bench", "trend", "--artifacts", str(COMMITTED), "--window", "0"],
            ["bench", "trend", "--artifacts", str(COMMITTED),
             "--drift-threshold", "1.0"],
        ):
            out = io.StringIO()
            assert main([*argv, "--out", str(tmp_path)], out=out) == 2

    def test_default_threshold_matches_module(self):
        assert DEFAULT_DRIFT_THRESHOLD == 1.25
