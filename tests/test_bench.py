"""Tests for the benchmark subsystem: registry, runner, artifacts, compare, CLI."""

from __future__ import annotations

import json
import time

import pytest

from repro.bench import (
    SCHEMA,
    BenchArtifactError,
    BenchEntry,
    BenchSpec,
    all_benches,
    artifact_path,
    bench_names,
    compare_artifacts,
    get_bench,
    load_artifact,
    run_bench,
    validate_artifact,
    write_artifact,
)
from repro.cli import main
from repro.core.errors import InvalidInstanceError
from repro.core.instance import StripPackingInstance
from repro.core.rectangle import Rect


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_every_bench_script_has_a_spec(self):
        """One spec per benchmarks/bench_*.py script (plus the kernel race)."""
        expected = {
            "aptas", "aptas_budget", "bin_packing", "dc_ratio", "dc_subroutine",
            "fig1_gap", "fig2_ratio3", "fpga_jpeg", "fractional_lb", "grouping",
            "latency_dilation", "level_packers", "lp_configs", "online_policies",
            "online_vs_offline", "packers", "portfolio", "release_baselines",
            "rounding", "service_scaling", "service_throughput", "shelf_nextfit",
            "skyline_bottom_left",
        }
        assert expected <= set(bench_names())

    def test_lookup_roundtrip(self):
        for spec in all_benches():
            assert get_bench(spec.name) is spec

    def test_unknown_name_is_canonical_error(self):
        with pytest.raises(InvalidInstanceError, match="unknown bench 'nope'"):
            get_bench("nope")

    def test_quick_sweep_defaults_to_prefix(self):
        spec = _tiny_spec("sweepcheck", sizes=(2, 4, 8), quick_sizes=None)
        assert spec.sweep(quick=False) == (2, 4, 8)
        assert spec.sweep(quick=True) == (2, 4)

    def test_spec_validation(self):
        entry = BenchEntry(label="x", kind="callable", fn=lambda inst: None)
        with pytest.raises(ValueError, match="at least one entry"):
            BenchSpec(name="bad", title="", workload=_wl, entries=(), sizes=(1,))
        with pytest.raises(ValueError, match="at least one size"):
            BenchSpec(name="bad", title="", workload=_wl, entries=(entry,), sizes=())
        with pytest.raises(ValueError, match="duplicate entry labels"):
            BenchSpec(name="bad", title="", workload=_wl, entries=(entry, entry), sizes=(1,))

    def test_entry_validation(self):
        with pytest.raises(ValueError, match="kind"):
            BenchEntry(label="x", kind="warp")
        with pytest.raises(ValueError, match="algorithm"):
            BenchEntry(label="x", kind="engine")
        with pytest.raises(ValueError, match="policy"):
            BenchEntry(label="x", kind="sim")
        with pytest.raises(ValueError, match="fn"):
            BenchEntry(label="x", kind="callable")


# ----------------------------------------------------------------------
# runner + artifact round-trip
# ----------------------------------------------------------------------

def _wl(n, rng):
    return StripPackingInstance(
        [Rect(rid=i, width=0.5, height=1.0) for i in range(n)]
    )


def _tiny_spec(name, *, sizes=(2, 3), quick_sizes=(2,), entries=None, **kw):
    entries = entries or (
        BenchEntry(label="nfdh", kind="engine", algorithm="nfdh"),
        BenchEntry(label="noop", kind="callable", fn=lambda inst: len(inst)),
    )
    return BenchSpec(
        name=name, title=f"test spec {name}", workload=_wl,
        entries=entries, sizes=sizes, quick_sizes=quick_sizes,
        repetitions=2, warmup=1, **kw,
    )


class TestRunnerAndArtifact:
    def test_run_bench_shape(self):
        artifact = run_bench(_tiny_spec("shape"))
        validate_artifact(artifact)
        assert artifact["schema"] == SCHEMA
        assert artifact["quick"] is False
        # every artifact records the tier its numbers were measured on
        from repro import kernels

        assert artifact["kernel_tier"] == kernels.active_tier()
        # 2 sizes x 2 entries
        assert len(artifact["points"]) == 4
        for pt in artifact["points"]:
            assert len(pt["times_s"]) == 2
            assert pt["min_s"] <= pt["median_s"] <= pt["p95_s"]
        engine_pts = [p for p in artifact["points"] if p["label"] == "nfdh"]
        assert all(p["metrics"]["valid"] is True for p in engine_pts)
        assert all(p["metrics"]["ratio"] >= 1.0 for p in engine_pts)
        callable_pts = [p for p in artifact["points"] if p["label"] == "noop"]
        assert [p["metrics"]["value"] for p in callable_pts] == [2.0, 3.0]

    def test_quick_run_uses_quick_sizes(self):
        artifact = run_bench(_tiny_spec("quick"), quick=True)
        assert artifact["quick"] is True
        assert {p["size"] for p in artifact["points"]} == {2}

    def test_sim_entries_carry_trace_metrics(self):
        from repro.workloads.releases import bursty_release_instance

        spec = BenchSpec(
            name="simspec", title="sim", sizes=(6,),
            workload=lambda n, rng: bursty_release_instance(n, 4, rng),
            entries=(BenchEntry(label="ff", kind="sim", policy="first_fit"),),
            repetitions=1, warmup=0,
        )
        artifact = run_bench(spec)
        (pt,) = artifact["points"]
        assert pt["metrics"]["valid"] is True
        assert pt["metrics"]["height"] > 0
        assert "max_queue_depth" in pt["metrics"]

    def test_engine_entry_requires_instance(self):
        spec = BenchSpec(
            name="badwl", title="", sizes=(2,),
            workload=lambda n, rng: {"not": "an instance"},
            entries=(BenchEntry(label="nfdh", kind="engine", algorithm="nfdh"),),
        )
        with pytest.raises(InvalidInstanceError, match="StripPackingInstance"):
            run_bench(spec)

    def test_artifact_roundtrip(self, tmp_path):
        artifact = run_bench(_tiny_spec("roundtrip"), quick=True)
        path = write_artifact(artifact, tmp_path)
        assert path == artifact_path(tmp_path, "roundtrip")
        assert path.name == "BENCH_roundtrip.json"
        assert load_artifact(path) == artifact

    @pytest.mark.parametrize("mutate, message", [
        (lambda a: a.update(schema="repro-bench/0"), "unknown schema"),
        (lambda a: a.pop("points"), "missing field 'points'"),
        (lambda a: a["config"].pop("sizes"), "config missing 'sizes'"),
        (lambda a: a["points"][0].pop("times_s"), "missing 'times_s'"),
        (lambda a: a["points"][0].update(times_s=[]), "times_s is empty"),
        (lambda a: a["points"][0].update(median_s="fast"), "median_s must be a number"),
    ])
    def test_validate_rejects_malformed(self, mutate, message):
        artifact = run_bench(_tiny_spec("malformed"), quick=True)
        mutate(artifact)
        with pytest.raises(BenchArtifactError, match=message):
            validate_artifact(artifact)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        with pytest.raises(BenchArtifactError, match="not JSON"):
            load_artifact(path)


class TestCommittedSkylineArtifact:
    """The checked-in before/after artifact of the skyline optimization."""

    @pytest.fixture(scope="class")
    def artifact(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "artifacts" / "BENCH_skyline_bottom_left.json"
        )
        return load_artifact(path)  # schema-validates

    def test_speedup_at_1e5_rects(self, artifact):
        """ISSUE acceptance: >= 10x over the reference kernel at n=100000."""
        medians = {(p["label"], p["size"]): p["median_s"] for p in artifact["points"]}
        assert medians[("reference", 100_000)] / medians[("optimized", 100_000)] >= 10.0
        # and the optimized kernel packs 1e5 rectangles in seconds
        assert medians[("optimized", 100_000)] < 10.0

    def test_same_heights_per_size(self, artifact):
        """Both kernels packed every sweep size to the same height."""
        heights: dict[int, set[float]] = {}
        for p in artifact["points"]:
            heights.setdefault(p["size"], set()).add(p["metrics"]["height"])
        assert heights and all(len(hs) == 1 for hs in heights.values())


class TestCommittedLevelPackersArtifact:
    """The checked-in before/after artifact of the columnar level kernels."""

    @pytest.fixture(scope="class")
    def artifact(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "artifacts" / "BENCH_level_packers.json"
        )
        return load_artifact(path)  # schema-validates

    def test_ffdh_speedup_at_1e5_rects(self, artifact):
        """ISSUE acceptance: >= 5x over the reference FFDH at n=100000."""
        medians = {(p["label"], p["size"]): p["median_s"] for p in artifact["points"]}
        assert medians[("reference_ffdh", 100_000)] / medians[("ffdh", 100_000)] >= 5.0
        # and the array kernel packs 1e5 rectangles in seconds
        assert medians[("ffdh", 100_000)] < 10.0

    def test_scan_packers_speed_up_nfdh_stays_parity(self, artifact):
        """The scan-heavy packers gain an order of magnitude; NFDH (a
        one-level streaming loop, never quadratic) stays within a small
        constant of its reference — the columnar boundary costs a few
        list appends per rectangle, which only NFDH ever notices."""
        medians = {(p["label"], p["size"]): p["median_s"] for p in artifact["points"]}
        for name in ("ffdh", "bfdh"):
            assert medians[(f"reference_{name}", 100_000)] / medians[(name, 100_000)] >= 5.0
        assert medians[("nfdh", 100_000)] <= medians[("reference_nfdh", 100_000)] * 2.0

    def test_same_heights_per_size_and_packer(self, artifact):
        """Array and reference kernels packed every size to the same height."""
        heights: dict[tuple[str, int], set[float]] = {}
        for p in artifact["points"]:
            key = (p["label"].replace("reference_", ""), p["size"])
            heights.setdefault(key, set()).add(p["metrics"]["height"])
        assert heights and all(len(hs) == 1 for hs in heights.values())

    def test_quick_sizes_overlap_for_ci_compare(self, artifact):
        """CI diffs a --quick run against this artifact; at least one
        (label, size) point must overlap or compare_artifacts errors."""
        from repro.bench import get_bench

        spec = get_bench("level_packers")
        committed = {(p["label"], p["size"]) for p in artifact["points"]}
        quick = {
            (e.label, s) for e in spec.entries for s in spec.sweep(quick=True)
        }
        assert committed & quick


class TestCommittedServiceArtifact:
    """The checked-in throughput artifact of the solve service."""

    @pytest.fixture(scope="class")
    def artifact(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "artifacts" / "BENCH_service_throughput.json"
        )
        return load_artifact(path)  # schema-validates

    def test_cached_requests_sustain_100_rps(self, artifact):
        """ISSUE acceptance: >= 100 req/s on cached requests."""
        by_point = {(p["label"], p["size"]): p["metrics"] for p in artifact["points"]}
        biggest = max(size for _, size in by_point)
        assert by_point[("cached", biggest)]["rps"] >= 100.0
        assert by_point[("cached", biggest)]["ok"] is True

    def test_cached_runs_hit_the_cache_and_cold_runs_do_not(self, artifact):
        for p in artifact["points"]:
            if p["label"] == "cached":
                # everything after the first solve of the single instance
                assert p["metrics"]["hit_rate"] >= 1.0 - 2.0 / p["size"]
            else:
                assert p["metrics"]["hit_rate"] == 0.0

    def test_cached_faster_than_cold(self, artifact):
        medians = {(p["label"], p["size"]): p["median_s"] for p in artifact["points"]}
        for size in {s for _, s in medians}:
            assert medians[("cached", size)] < medians[("cold", size)]

    def test_quick_sizes_overlap_for_ci_compare(self, artifact):
        """CI diffs a --quick run against this artifact; at least one
        (label, size) point must overlap or compare_artifacts errors."""
        from repro.bench import get_bench

        spec = get_bench("service_throughput")
        committed = {(p["label"], p["size"]) for p in artifact["points"]}
        quick = {(e.label, s) for e in spec.entries for s in spec.sweep(quick=True)}
        assert committed & quick


class TestCommittedScalingArtifact:
    """The checked-in worker-count scaling artifact of the sharded service."""

    @pytest.fixture(scope="class")
    def artifact(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "artifacts" / "BENCH_service_scaling.json"
        )
        return load_artifact(path)  # schema-validates

    @staticmethod
    def _metrics(artifact):
        """``(mode, workers, size) -> metrics`` from the ``mode[wN]`` labels."""
        out = {}
        for p in artifact["points"]:
            mode, _, rest = p["label"].partition("[w")
            workers = int(rest.rstrip("]"))
            assert p["metrics"]["workers"] == workers  # label and payload agree
            out[(mode, workers, p["size"])] = p["metrics"]
        return out

    def test_covers_the_full_sweep(self, artifact):
        by_point = self._metrics(artifact)
        sizes = {size for _, _, size in by_point}
        for mode in ("cached", "cold"):
            for workers in (1, 2, 4):
                for size in sizes:
                    assert (mode, workers, size) in by_point

    def test_every_step_completed_error_free(self, artifact):
        for metrics in self._metrics(artifact).values():
            assert metrics["ok"] is True
            assert metrics["rps"] > 0 and metrics["cpus"] >= 1

    def test_cold_scaling_efficiency_on_multicore(self, artifact):
        """ISSUE acceptance: cold rps at workers=4 >= 2.5x workers=1 —
        only meaningful when the artifact was measured on >= 4 cores; a
        1-core runner's curve is recorded but not gated (extra processes
        cannot beat the single-process path without cores to run on)."""
        by_point = self._metrics(artifact)
        cpus = min(m["cpus"] for m in by_point.values())
        if cpus < 4:
            pytest.skip(f"artifact measured on {cpus} cpu(s); scaling gate needs >= 4")
        biggest = max(size for _, _, size in by_point)
        ratio = by_point[("cold", 4, biggest)]["rps"] / by_point[("cold", 1, biggest)]["rps"]
        assert ratio >= 2.5

    def test_quick_sizes_overlap_for_ci_compare(self, artifact):
        """CI diffs a --quick run against this artifact; at least one
        (label, size) point must overlap or compare_artifacts errors."""
        from repro.bench import get_bench

        spec = get_bench("service_scaling")
        committed = {(p["label"], p["size"]) for p in artifact["points"]}
        quick = {(e.label, s) for e in spec.entries for s in spec.sweep(quick=True)}
        assert committed & quick


class TestCommittedSessionsArtifact:
    """The checked-in warm-start triad artifact: cached vs warm vs cold."""

    @pytest.fixture(scope="class")
    def artifact(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "artifacts" / "BENCH_service_sessions.json"
        )
        return load_artifact(path)  # schema-validates

    @staticmethod
    def _metrics(artifact):
        return {(p["label"], p["size"]): p["metrics"] for p in artifact["points"]}

    def test_warm_latency_strictly_between_cached_and_cold(self, artifact):
        """ISSUE acceptance: cached p50 < warm p50 < cold p50 at every size."""
        by_point = self._metrics(artifact)
        for size in {s for _, s in by_point}:
            cached = by_point[("cached", size)]["p50_ms"]
            warm = by_point[("warm", size)]["p50_ms"]
            cold = by_point[("cold", size)]["p50_ms"]
            assert cached < warm < cold

    def test_warm_at_least_1_5x_faster_than_cold(self, artifact):
        """ISSUE acceptance: warm repair >= 1.5x faster than a cold solve."""
        by_point = self._metrics(artifact)
        for size in {s for _, s in by_point}:
            ratio = by_point[("cold", size)]["p50_ms"] / by_point[("warm", size)]["p50_ms"]
            assert ratio >= 1.5

    def test_entry_provenance_is_what_the_label_claims(self, artifact):
        """cached hits the content cache, warm repairs a neighbor, cold
        does neither — the headers the loadgen counted must agree."""
        for (label, _), metrics in self._metrics(artifact).items():
            assert metrics["ok"] is True
            if label == "cached":
                assert metrics["hit_rate"] == 1.0
            elif label == "warm":
                assert metrics["warm_rate"] >= 0.8
                assert metrics["hit_rate"] == 0.0
            else:
                assert metrics["warm_rate"] == 0.0
                assert metrics["hit_rate"] == 0.0

    def test_quick_sizes_overlap_for_ci_compare(self, artifact):
        """CI diffs a --quick run against this artifact; at least one
        (label, size) point must overlap or compare_artifacts errors."""
        from repro.bench import get_bench

        spec = get_bench("service_sessions")
        committed = {(p["label"], p["size"]) for p in artifact["points"]}
        quick = {(e.label, s) for e in spec.entries for s in spec.sweep(quick=True)}
        assert committed & quick


class TestCommittedKernelTiersArtifact:
    """The checked-in array-vs-compiled tier race."""

    @pytest.fixture(scope="class")
    def artifact(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "artifacts" / "BENCH_kernel_tiers.json"
        )
        return load_artifact(path)  # schema-validates

    def test_header_records_a_tier(self, artifact):
        assert artifact["kernel_tier"] in ("array", "compiled")

    def test_tier_metrics_honest(self, artifact):
        """Every point records what actually ran: `array` entries always
        ran the array tier; `compiled` entries ran whatever the header
        tier says (the graceful fallback makes them equal without numba)."""
        for p in artifact["points"]:
            if p["label"].endswith("[array]"):
                assert p["metrics"]["tier"] == "array", p["label"]
            else:
                assert p["metrics"]["tier"] == artifact["kernel_tier"], p["label"]

    def test_same_heights_across_tiers(self, artifact):
        """Bit-identity made visible: both tiers pack to equal heights."""
        heights: dict[tuple[str, int], set[float]] = {}
        for p in artifact["points"]:
            if "height" not in p["metrics"]:
                continue
            kernel = p["label"].split("[", 1)[0]
            heights.setdefault((kernel, p["size"]), set()).add(p["metrics"]["height"])
        assert heights and all(len(hs) == 1 for hs in heights.values())

    def test_compiled_speedup_at_1e5_rects(self, artifact):
        """ISSUE acceptance: >= 2x compiled-over-array on at least one
        kernel at n=100000 — gated only when the artifact was actually
        measured on the compiled tier (the CI [speed] leg re-records and
        gates; an array-tier artifact records the honest fallback)."""
        if artifact["kernel_tier"] != "compiled":
            pytest.skip(
                "artifact measured without numba "
                f"(kernel_tier={artifact['kernel_tier']!r}); "
                "the >= 2x gate runs on the CI [speed] leg"
            )
        medians = {(p["label"], p["size"]): p["median_s"] for p in artifact["points"]}
        speedups = [
            medians[(f"{kernel}[array]", 100_000)]
            / medians[(f"{kernel}[compiled]", 100_000)]
            for kernel in ("ffdh", "bottom_left", "validate")
        ]
        assert max(speedups) >= 2.0, speedups

    def test_quick_sizes_overlap_for_ci_compare(self, artifact):
        from repro.bench import get_bench

        spec = get_bench("kernel_tiers")
        committed = {(p["label"], p["size"]) for p in artifact["points"]}
        quick = {(e.label, s) for e in spec.entries for s in spec.sweep(quick=True)}
        assert committed & quick


class TestCommittedBatchedSolveArtifact:
    """The checked-in batched-vs-independent stacked-solve race."""

    @pytest.fixture(scope="class")
    def artifact(self):
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "artifacts" / "BENCH_batched_solve.json"
        )
        return load_artifact(path)  # schema-validates

    def test_batched_beats_independent_at_16_plus(self, artifact):
        """ISSUE acceptance: one arena pass beats K independent dispatches
        at every recorded K >= 16 small instances."""
        medians = {(p["label"], p["size"]): p["median_s"] for p in artifact["points"]}
        sizes = sorted({s for _, s in medians})
        assert any(s >= 16 for s in sizes)
        for size in sizes:
            if size < 16:
                continue
            assert medians[("batched", size)] < medians[("independent", size)], size

    def test_identical_total_heights(self, artifact):
        """Both paths solved the identical batch to the identical answers."""
        totals: dict[int, set[float]] = {}
        for p in artifact["points"]:
            totals.setdefault(p["size"], set()).add(p["metrics"]["total_height"])
        assert totals and all(len(ts) == 1 for ts in totals.values())

    def test_quick_sizes_overlap_for_ci_compare(self, artifact):
        from repro.bench import get_bench

        spec = get_bench("batched_solve")
        committed = {(p["label"], p["size"]) for p in artifact["points"]}
        quick = {(e.label, s) for e in spec.entries for s in spec.sweep(quick=True)}
        assert committed & quick


# ----------------------------------------------------------------------
# comparison mode
# ----------------------------------------------------------------------

def _synthetic_artifact(medians: dict[tuple[str, int], float], name="synth"):
    """A schema-valid artifact with prescribed medians."""
    artifact = {
        "schema": SCHEMA, "name": name, "title": "synthetic", "source": "",
        "quick": False, "seed": 0, "created": "2026-07-30T00:00:00+00:00",
        "machine": {"python": "x", "platform": "y", "numpy": "z"},
        "config": {
            "sizes": sorted({s for _, s in medians}), "size_name": "n",
            "repetitions": 1, "warmup": 0,
            "entries": sorted({label for label, _ in medians}),
        },
        "points": [
            {
                "label": label, "kind": "callable", "size": size, "params": {},
                "times_s": [t], "median_s": t, "p95_s": t, "mean_s": t, "min_s": t,
                "metrics": {},
            }
            for (label, size), t in medians.items()
        ],
    }
    validate_artifact(artifact)
    return artifact


class TestCompare:
    def test_synthetic_slowdown_is_flagged(self):
        baseline = _synthetic_artifact({("a", 10): 0.05, ("a", 20): 0.2})
        current = _synthetic_artifact({("a", 10): 0.051, ("a", 20): 0.9})
        result = compare_artifacts(baseline, current)
        assert not result.ok
        (reg,) = result.regressions
        assert (reg.label, reg.size) == ("a", 20)
        assert reg.ratio == pytest.approx(4.5)
        # the unregressed point is ok, not flagged
        statuses = {(r.label, r.size): r.status for r in result.rows}
        assert statuses[("a", 10)] == "ok"

    def test_subfloor_noise_not_flagged(self):
        """A 10x slowdown on a microsecond point stays quiet (absolute floor)."""
        baseline = _synthetic_artifact({("a", 10): 1e-5})
        current = _synthetic_artifact({("a", 10): 1e-4})
        assert compare_artifacts(baseline, current).ok

    def test_improvement_and_new_and_missing(self):
        baseline = _synthetic_artifact({("a", 10): 0.5, ("gone", 10): 0.1})
        current = _synthetic_artifact({("a", 10): 0.1, ("fresh", 10): 0.1})
        result = compare_artifacts(baseline, current)
        assert result.ok
        statuses = {(r.label, r.size): r.status for r in result.rows}
        assert statuses[("a", 10)] == "improved"
        assert statuses[("fresh", 10)] == "new"
        assert statuses[("gone", 10)] == "missing"

    def test_disjoint_sweeps_rejected(self):
        """A quick-vs-full diff (zero matched points) must not pass vacuously."""
        baseline = _synthetic_artifact({("a", 500): 0.001})
        current = _synthetic_artifact({("a", 100_000): 99.0})
        with pytest.raises(ValueError, match="no overlapping"):
            compare_artifacts(baseline, current)

    def test_mismatched_names_rejected(self):
        a = _synthetic_artifact({("a", 1): 0.1}, name="one")
        b = _synthetic_artifact({("a", 1): 0.1}, name="two")
        with pytest.raises(ValueError, match="cannot compare"):
            compare_artifacts(a, b)

    def test_threshold_validation(self):
        a = _synthetic_artifact({("a", 1): 0.1})
        with pytest.raises(ValueError, match="threshold"):
            compare_artifacts(a, a, threshold=0.9)

    def test_cross_tier_diff_warns(self):
        baseline = _synthetic_artifact({("a", 10): 0.1})
        current = dict(_synthetic_artifact({("a", 10): 0.1}), kernel_tier="compiled")
        result = compare_artifacts(baseline, current)
        assert result.tier_note is not None
        assert "'array'" in result.tier_note and "'compiled'" in result.tier_note
        # a warning, not a failure
        assert result.ok

    def test_pre_tier_artifacts_read_as_array(self):
        """An artifact without the field ran the array kernels; diffing it
        against an explicit array-tier artifact must stay silent."""
        baseline = _synthetic_artifact({("a", 10): 0.1})  # no kernel_tier
        current = dict(_synthetic_artifact({("a", 10): 0.1}), kernel_tier="array")
        assert compare_artifacts(baseline, current).tier_note is None
        assert compare_artifacts(baseline, baseline).tier_note is None

    def test_ill_typed_kernel_tier_rejected(self):
        bad = dict(_synthetic_artifact({("a", 10): 0.1}), kernel_tier=3)
        with pytest.raises(BenchArtifactError, match="kernel_tier"):
            validate_artifact(bad)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def cli_spec():
    """A registered spec with a deterministic, compare-friendly duration."""
    from repro.bench.spec import _BENCHES

    name = "clibench"
    if name not in _BENCHES:
        spec = BenchSpec(
            name=name, title="CLI test bench", workload=_wl,
            entries=(
                BenchEntry(
                    label="sleep", kind="callable",
                    fn=lambda inst: time.sleep(0.005),
                ),
            ),
            sizes=(2,), repetitions=1, warmup=0,
        )
        _BENCHES[name] = spec
    yield name
    _BENCHES.pop(name, None)


class TestCli:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bench registry" in out and "skyline_bottom_left" in out

    def test_run_writes_schema_valid_artifact(self, tmp_path, capsys, cli_spec):
        assert main(["bench", cli_spec, "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        path = tmp_path / f"BENCH_{cli_spec}.json"
        assert f"artifact written to {path}" in out
        artifact = load_artifact(path)  # validates
        assert artifact["name"] == cli_spec

    def test_compare_regression_exits_1(self, tmp_path, capsys, cli_spec):
        assert main(["bench", cli_spec, "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        path = tmp_path / f"BENCH_{cli_spec}.json"
        baseline = json.loads(path.read_text())
        for pt in baseline["points"]:  # doctor a much faster past
            for key in ("median_s", "p95_s", "mean_s", "min_s"):
                pt[key] = pt[key] / 1000.0
            pt["times_s"] = [pt["median_s"]]
        base_path = tmp_path / "baseline.json"
        base_path.write_text(json.dumps(baseline))
        code = main(["bench", cli_spec, "--out", str(tmp_path), "--compare", str(base_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "regression" in out

    def test_compare_self_passes(self, tmp_path, capsys, cli_spec):
        assert main(["bench", cli_spec, "--out", str(tmp_path)]) == 0
        path = tmp_path / f"BENCH_{cli_spec}.json"
        code = main(["bench", cli_spec, "--out", str(tmp_path), "--compare", str(path)])
        out = capsys.readouterr().out
        assert code == 0 and "no regressions" in out

    def test_thread_backend_writes_artifacts(self, tmp_path, capsys, cli_spec):
        code = main([
            "bench", cli_spec, "--out", str(tmp_path),
            "--backend", "thread", "--jobs", "2",
        ])
        capsys.readouterr()
        assert code == 0
        load_artifact(tmp_path / f"BENCH_{cli_spec}.json")  # validates

    @pytest.mark.parametrize("argv, message", [
        (["bench"], "nothing to run"),
        (["bench", "nosuch"], "unknown bench"),
        (["bench", "--all", "fig1_gap"], "not both"),
        (["bench", "fig1_gap", "--repetitions", "0"], "--repetitions"),
        (["bench", "fig1_gap", "--threshold", "0.5"], "--threshold"),
        (["bench", "fig1_gap", "--compare", "does-not-exist.json"], "cannot read"),
        (["bench", "fig1_gap", "--jobs", "0"], "--jobs"),
        (["bench", "fig1_gap", "--jobs", "-3"], "--jobs"),
    ])
    def test_bad_input_exits_2(self, capsys, argv, message):
        assert main(argv) == 2
        out = capsys.readouterr().out
        assert out.startswith("error:") and message in out

    def test_compare_disjoint_sweep_exits_2(self, tmp_path, capsys, cli_spec):
        """Baseline whose points share no (entry, size) with the run: exit 2."""
        assert main(["bench", cli_spec, "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        path = tmp_path / f"BENCH_{cli_spec}.json"
        baseline = json.loads(path.read_text())
        for pt in baseline["points"]:
            pt["size"] += 1000  # no longer matches any fresh point
        base_path = tmp_path / "disjoint.json"
        base_path.write_text(json.dumps(baseline))
        assert main(["bench", cli_spec, "--out", str(tmp_path),
                     "--compare", str(base_path)]) == 2
        assert "no overlapping" in capsys.readouterr().out

    def test_compare_baseline_for_unrun_bench_exits_2(self, tmp_path, capsys, cli_spec):
        assert main(["bench", cli_spec, "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        path = tmp_path / f"BENCH_{cli_spec}.json"
        assert main(["bench", "fig1_gap", "--quick", "--out", str(tmp_path),
                     "--compare", str(path)]) == 2
        assert "not being run" in capsys.readouterr().out
