"""Tests for the exact branch-and-bound solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.errors import BudgetExceededError, InvalidInstanceError
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG
from repro.exact.branch_and_bound import columns_of, solve_exact
from repro.packing.nfdh import nfdh

from .conftest import columnar_rect_lists


def cinst(specs, K=4):
    """specs: (cols, height) pairs."""
    return StripPackingInstance(
        [Rect(rid=i, width=c / K, height=h) for i, (c, h) in enumerate(specs)]
    )


class TestColumnsOf:
    def test_valid(self):
        assert columns_of(0.5, 4) == 2

    def test_off_grid(self):
        with pytest.raises(InvalidInstanceError):
            columns_of(0.3, 4)


class TestExactPlain:
    def test_empty(self):
        res = solve_exact(StripPackingInstance([]), K=4)
        assert res.height == 0.0

    def test_single(self):
        inst = cinst([(2, 1.5)])
        res = solve_exact(inst, K=4)
        assert math.isclose(res.height, 1.5)

    def test_perfect_row(self):
        inst = cinst([(1, 1.0)] * 4)
        res = solve_exact(inst, K=4)
        validate_placement(inst, res.placement)
        assert math.isclose(res.height, 1.0)

    def test_forced_stack(self):
        inst = cinst([(3, 1.0), (3, 1.0)])
        res = solve_exact(inst, K=4)
        assert math.isclose(res.height, 2.0)

    def test_interlocking(self):
        # 2 cols x 2.0 tall + two (2 cols x 1.0): optimum 2.0.
        inst = cinst([(2, 2.0), (2, 1.0), (2, 1.0)])
        res = solve_exact(inst, K=4)
        assert math.isclose(res.height, 2.0)

    def test_upper_bound_accepted(self):
        inst = cinst([(2, 1.0), (2, 1.0)])
        ub = nfdh(list(inst.rects)).extent
        res = solve_exact(inst, K=4, upper_bound=ub + 1e-9)
        assert math.isclose(res.height, 1.0)

    def test_budget_exceeded(self):
        rng = np.random.default_rng(0)
        rects = [
            Rect(rid=i, width=int(rng.integers(1, 4)) / 8, height=float(rng.uniform(0.3, 1.0)))
            for i in range(12)
        ]
        inst = StripPackingInstance(rects)
        with pytest.raises(BudgetExceededError):
            solve_exact(inst, K=8, max_nodes=50)

    def test_never_beats_lower_bound(self, rng):
        from repro.core.bounds import combined_lower_bound

        rects = [
            Rect(rid=i, width=int(rng.integers(1, 4)) / 4, height=float(rng.uniform(0.2, 1.0)))
            for i in range(6)
        ]
        inst = StripPackingInstance(rects)
        res = solve_exact(inst, K=4)
        assert res.height >= combined_lower_bound(inst) - 1e-9


class TestExactPrecedence:
    def test_chain_serialises(self):
        rects = [Rect(rid=i, width=0.25, height=1.0) for i in range(3)]
        inst = PrecedenceInstance(rects, TaskDAG.chain([0, 1, 2]))
        res = solve_exact(inst, K=4)
        validate_placement(inst, res.placement)
        assert math.isclose(res.height, 3.0)

    def test_diamond_optimal(self):
        rects = [Rect(rid=i, width=0.5, height=1.0) for i in range(4)]
        inst = PrecedenceInstance(rects, TaskDAG([0, 1, 2, 3], [(0, 1), (0, 2), (1, 3), (2, 3)]))
        res = solve_exact(inst, K=2)
        validate_placement(inst, res.placement)
        assert math.isclose(res.height, 3.0)

    def test_exact_at_most_dc(self, rng):
        from repro.precedence.dc import dc_pack
        from repro.workloads.dags import random_precedence_instance

        inst = random_precedence_instance(7, 0.3, rng, columnar_K=3)
        dc_h = dc_pack(inst).height
        res = solve_exact(inst, K=3, max_nodes=500_000)
        validate_placement(inst, res.placement)
        assert res.height <= dc_h + 1e-9


class TestExactRelease:
    def test_release_respected(self):
        rects = [Rect(rid=0, width=0.5, height=1.0, release=2.0)]
        inst = ReleaseInstance(rects, K=2)
        res = solve_exact(inst, K=2)
        assert math.isclose(res.height, 3.0)

    def test_work_fits_in_release_gap(self):
        rects = [
            Rect(rid=0, width=1.0, height=1.0, release=0.0),
            Rect(rid=1, width=1.0, height=1.0, release=3.0),
        ]
        inst = ReleaseInstance(rects, K=2)
        res = solve_exact(inst, K=2)
        validate_placement(inst, res.placement)
        assert math.isclose(res.height, 4.0)

    def test_parallel_after_release(self):
        rects = [
            Rect(rid=0, width=0.5, height=1.0, release=1.0),
            Rect(rid=1, width=0.5, height=1.0, release=1.0),
        ]
        inst = ReleaseInstance(rects, K=2)
        res = solve_exact(inst, K=2)
        assert math.isclose(res.height, 2.0)


@settings(deadline=None, max_examples=20)
@given(columnar_rect_lists(K=3, min_size=1, max_size=6))
def test_exact_no_worse_than_heuristics(rects):
    inst = StripPackingInstance(rects)
    res = solve_exact(inst, K=3, max_nodes=400_000)
    validate_placement(inst, res.placement)
    assert res.height <= nfdh(rects).extent + 1e-9
