"""In-process tests for the asyncio solve server.

A real ``SolveServer`` runs on a daemon thread (``InProcessServer``) and
is probed with stdlib ``http.client`` — the same path ``repro loadtest``
and the CI smoke job take.  The acceptance contract lives here: a
repeated instance is served from the content-addressed cache (visible in
``/metrics`` counters), byte-identical to the first response, and equal to
a direct ``engine.run()`` on every deterministic field.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.core.instance import ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.core.serialize import instance_to_dict, placement_to_dict
from repro.engine import portfolio, run
from repro.service import InProcessServer, SolveServer


@pytest.fixture(scope="module")
def server():
    with InProcessServer() as srv:
        yield srv


@pytest.fixture()
def conn(server):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    yield connection
    connection.close()


def _request(conn, method, path, body=None):
    payload = json.dumps(body).encode() if isinstance(body, dict) else body
    conn.request(method, path, body=payload,
                 headers={"Content-Type": "application/json"} if payload else {})
    response = conn.getresponse()
    raw = response.read()
    return response.status, dict(response.getheaders()), raw


def _plain_instance(n=6, seed=0):
    import numpy as np

    from repro.workloads.random_rects import powerlaw_rects

    return StripPackingInstance(powerlaw_rects(n, np.random.default_rng(seed)))


class TestHealthAndMetrics:
    def test_healthz(self, conn):
        status, _, raw = _request(conn, "GET", "/healthz")
        data = json.loads(raw)
        assert status == 200 and data["status"] == "ok"
        from repro import __version__

        assert data["version"] == __version__ and data["uptime_s"] >= 0

    def test_metrics_shape(self, conn):
        status, _, raw = _request(conn, "GET", "/metrics")
        data = json.loads(raw)
        assert status == 200
        assert {"uptime_s", "requests", "latency", "queue", "cache"} <= set(data)
        assert {"depth", "submitted", "completed", "rejected", "batches"} <= set(data["queue"])
        assert {"hits", "misses", "evictions", "hit_rate"} <= set(data["cache"])


class TestSolve:
    def test_solve_returns_valid_report(self, conn):
        instance = _plain_instance(seed=1)
        status, headers, raw = _request(
            conn, "POST", "/solve", {"instance": instance_to_dict(instance), "algorithm": "ffdh"}
        )
        assert status == 200 and headers["X-Repro-Cache"] == "miss"
        data = json.loads(raw)
        assert data["report"]["algorithm"] == "ffdh"
        assert data["report"]["valid"] is True
        assert len(data["placement"]["placements"]) == len(instance)

    def test_repeat_is_cached_byte_identical_and_counted(self, conn, server):
        instance = _plain_instance(n=8, seed=2)
        body = {"instance": instance_to_dict(instance), "algorithm": "nfdh"}
        hits_before = server.server.cache.stats().hits
        s1, h1, raw1 = _request(conn, "POST", "/solve", body)
        s2, h2, raw2 = _request(conn, "POST", "/solve", body)
        assert (s1, s2) == (200, 200)
        assert h1["X-Repro-Cache"] == "miss" and h2["X-Repro-Cache"] == "hit"
        assert raw1 == raw2  # byte-identical SolveReport payload
        # the /metrics counters show the hit
        _, _, metrics_raw = _request(conn, "GET", "/metrics")
        cache = json.loads(metrics_raw)["cache"]
        assert cache["hits"] >= hits_before + 1

    def test_rect_reordering_hits_the_same_entry(self, conn):
        rects = [Rect(rid=i, width=0.3, height=0.5 + 0.1 * i) for i in range(5)]
        a = {"instance": instance_to_dict(StripPackingInstance(rects)), "algorithm": "bfdh"}
        b = {"instance": instance_to_dict(StripPackingInstance(rects[::-1])), "algorithm": "bfdh"}
        _request(conn, "POST", "/solve", a)
        _, headers, _ = _request(conn, "POST", "/solve", b)
        assert headers["X-Repro-Cache"] == "hit"

    def test_matches_direct_engine_run(self, conn):
        """Served report == engine.run() on every deterministic field."""
        instance = _plain_instance(n=10, seed=3)
        _, _, raw = _request(
            conn, "POST", "/solve", {"instance": instance_to_dict(instance), "algorithm": "ffdh"}
        )
        served = json.loads(raw)
        direct = run(instance, "ffdh")
        expected = direct.to_dict()
        for key, value in served["report"].items():
            if key != "wall_time":
                assert value == expected[key], key
        assert served["placement"] == placement_to_dict(direct.placement)

    def test_default_and_explicit_algorithm_share_cache(self, conn):
        """Omitting the algorithm resolves the variant default up front."""
        instance = _plain_instance(n=7, seed=4)
        from repro.engine import default_algorithm

        name = default_algorithm(instance)
        _request(conn, "POST", "/solve",
                 {"instance": instance_to_dict(instance), "algorithm": name})
        _, headers, _ = _request(conn, "POST", "/solve",
                                 {"instance": instance_to_dict(instance)})
        assert headers["X-Repro-Cache"] == "hit"

    def test_concurrent_identical_misses_coalesce(self, server):
        """Parallel first requests for one key trigger exactly one solve."""
        import threading

        instance = _plain_instance(n=60, seed=42)
        body = {"instance": instance_to_dict(instance), "algorithm": "bottom_left"}
        sources: list[str] = []
        lock = threading.Lock()

        def hammer():
            c = http.client.HTTPConnection(server.host, server.port, timeout=30)
            try:
                _, headers, _ = _request(c, "POST", "/solve", body)
                with lock:
                    sources.append(headers["X-Repro-Cache"])
            finally:
                c.close()

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(set(sources)) != []
        assert sources.count("miss") == 1  # one leader, everyone else joins
        assert all(s in ("miss", "hit", "coalesced") for s in sources)

    def test_params_reach_the_solver(self, conn):
        instance = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(4)], K=2
        )
        _, _, raw = _request(conn, "POST", "/solve", {
            "instance": instance_to_dict(instance),
            "algorithm": "aptas",
            "params": {"eps": 1.0},
        })
        assert json.loads(raw)["report"]["params"]["eps"] == 1.0


class TestPortfolio:
    def test_portfolio_returns_winner_and_entrants(self, conn):
        instance = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=0.5, release=0.5 * i) for i in range(4)], K=2
        )
        body = {
            "instance": instance_to_dict(instance),
            "algorithms": ["release_bl", "release_shelf"],
        }
        status, headers, raw = _request(conn, "POST", "/portfolio", body)
        assert status == 200 and headers["X-Repro-Cache"] == "miss"
        data = json.loads(raw)
        assert {r["algorithm"] for r in data["entrants"]} == {"release_bl", "release_shelf"}
        direct = portfolio(instance, ["release_bl", "release_shelf"])
        assert data["winner"]["report"]["algorithm"] == direct.best.algorithm
        assert data["winner"]["report"]["height"] == direct.best.height
        # cached on repeat
        _, headers2, raw2 = _request(conn, "POST", "/portfolio", body)
        assert headers2["X-Repro-Cache"] == "hit" and raw2 == raw

    def test_portfolio_unknown_entrant_is_422(self, conn):
        instance = _plain_instance(seed=5)
        status, _, raw = _request(conn, "POST", "/portfolio", {
            "instance": instance_to_dict(instance), "algorithms": ["oracle"],
        })
        assert status == 422 and "error" in json.loads(raw)


class TestErrorMapping:
    def test_malformed_json_is_400(self, conn):
        status, _, raw = _request(conn, "POST", "/solve", b"{not json")
        assert status == 400 and "malformed JSON" in json.loads(raw)["error"]

    def test_missing_instance_field_is_400(self, conn):
        status, _, raw = _request(conn, "POST", "/solve", {"algorithm": "nfdh"})
        assert status == 400 and "instance" in json.loads(raw)["error"]

    def test_invalid_instance_is_422(self, conn):
        status, _, raw = _request(conn, "POST", "/solve", {"instance": {"type": "martian"}})
        assert status == 422 and "invalid instance" in json.loads(raw)["error"]

    def test_unknown_algorithm_is_422(self, conn):
        status, _, raw = _request(conn, "POST", "/solve", {
            "instance": instance_to_dict(_plain_instance()), "algorithm": "oracle",
        })
        assert status == 422 and "unknown algorithm" in json.loads(raw)["error"]

    def test_failed_solve_is_422_and_not_cached(self, conn):
        """aptas on a plain instance: an error report, surfaced as 422."""
        body = {"instance": instance_to_dict(_plain_instance(seed=6)), "algorithm": "aptas"}
        status, _, raw = _request(conn, "POST", "/solve", body)
        assert status == 422
        status2, _, _ = _request(conn, "POST", "/solve", body)
        assert status2 == 422  # still an error; nothing was cached

    def test_unknown_path_is_404(self, conn):
        status, _, _ = _request(conn, "GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, conn):
        status, _, _ = _request(conn, "GET", "/solve")
        assert status == 405

    def test_non_object_body_is_400(self, conn):
        status, _, _ = _request(conn, "POST", "/solve", b"[1, 2]")
        assert status == 400

    def test_non_string_algorithm_is_400(self, conn):
        status, _, raw = _request(conn, "POST", "/solve", {
            "instance": instance_to_dict(_plain_instance()), "algorithm": ["nfdh"],
        })
        assert status == 400 and "'algorithm'" in json.loads(raw)["error"]

    def test_non_finite_param_is_422(self, conn):
        # json.loads accepts NaN/Infinity; they have no canonical form
        body = ('{"instance": ' + json.dumps(instance_to_dict(_plain_instance()))
                + ', "algorithm": "nfdh", "params": {"eps": NaN}}').encode()
        status, _, raw = _request(conn, "POST", "/solve", body)
        assert status == 422 and "non-finite" in json.loads(raw)["error"]

    def test_bad_content_length_is_dropped_or_400(self, server):
        c = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            c.putrequest("POST", "/solve", skip_accept_encoding=True)
            c.putheader("Content-Length", "-5")
            c.endheaders()
            response = c.getresponse()
            assert response.status == 400
        finally:
            c.close()

    def test_chunked_transfer_encoding_is_411(self, server):
        c = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            c.putrequest("POST", "/solve", skip_accept_encoding=True)
            c.putheader("Transfer-Encoding", "chunked")
            c.endheaders()
            response = c.getresponse()
            raw = response.read()
            assert response.status == 411
            assert "Content-Length" in json.loads(raw)["error"]
        finally:
            c.close()

    def test_header_flood_is_431(self, server):
        import socket

        from repro.service.server import MAX_HEADERS

        sock = socket.create_connection((server.host, server.port), timeout=10)
        try:
            head = b"GET /healthz HTTP/1.1\r\n" + b"".join(
                b"x-h%d: v\r\n" % i for i in range(MAX_HEADERS + 5)
            ) + b"\r\n"
            sock.sendall(head)
            response = sock.recv(4096)
            assert b"431" in response.split(b"\r\n", 1)[0]
        finally:
            sock.close()

    def test_oversized_body_is_413_with_a_response(self, server):
        """An over-limit Content-Length gets a real 413, not a dropped
        connection (the body is never read, so no bytes are wasted)."""
        from repro.service.server import MAX_BODY_BYTES

        c = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            c.putrequest("POST", "/solve")
            c.putheader("Content-Type", "application/json")
            c.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            c.endheaders()
            response = c.getresponse()
            raw = response.read()
            assert response.status == 413
            assert "error" in json.loads(raw)
        finally:
            c.close()

    def test_empty_algorithm_string_is_422_not_the_default(self, conn):
        status, _, raw = _request(conn, "POST", "/solve", {
            "instance": instance_to_dict(_plain_instance()), "algorithm": "",
        })
        assert status == 422 and "unknown algorithm" in json.loads(raw)["error"]

    def test_unparsed_requests_leave_latency_stats_alone(self, server):
        import socket

        before = server.server.metrics.snapshot()["latency"].get("count", 0)
        for _ in range(3):
            s = socket.create_connection((server.host, server.port), timeout=10)
            s.sendall(b"GARBAGE\r\n\r\n")
            s.recv(4096)
            s.close()
        snap = server.server.metrics.snapshot()
        assert snap["requests"]["by_endpoint"].get("unparsed", 0) >= 3
        assert "unparsed" not in snap["endpoints"]  # no latency samples
        assert snap["latency"].get("count", 0) == before

    def test_unmatched_paths_share_one_metrics_key(self, conn):
        for path in ("/scan1", "/scan2", "/scan3"):
            _request(conn, "GET", path)
        _, _, raw = _request(conn, "GET", "/metrics")
        by_endpoint = json.loads(raw)["requests"]["by_endpoint"]
        assert "/scan1" not in by_endpoint
        assert by_endpoint.get("unmatched", 0) >= 3
        from repro.service.server import SolveServer

        assert set(by_endpoint) <= SolveServer.ENDPOINTS | {"unmatched", "unparsed"}


class TestBackpressure:
    def test_shed_after_accept_is_still_503(self):
        """A request the queue accepted but dropped on shutdown maps to
        503 (load shedding), never 500 (server bug)."""
        from concurrent.futures import Future

        from repro.service.queue import BackpressureError

        server = SolveServer()
        failed: Future = Future()
        failed.set_exception(BackpressureError("request queue stopped before this solve ran"))
        server.batcher.submit = lambda *a, **k: failed  # type: ignore[method-assign]
        with InProcessServer(server) as srv:
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=10)
            try:
                status, headers, raw = _request(conn, "POST", "/solve", {
                    "instance": instance_to_dict(_plain_instance(seed=9)),
                    "algorithm": "nfdh",
                })
            finally:
                conn.close()
        assert status == 503 and headers.get("Retry-After") == "1"

    def test_full_queue_responds_503(self):
        """A server whose batcher never drains sheds load with 503."""
        server = SolveServer(queue_size=1)
        with InProcessServer(server) as srv:
            server.batcher.stop()  # drain thread gone; queue fills up
            # stop() marks the batcher stopped -> immediate BackpressureError
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=10)
            try:
                status, headers, raw = _request(conn, "POST", "/solve", {
                    "instance": instance_to_dict(_plain_instance(seed=7)),
                    "algorithm": "nfdh",
                })
            finally:
                conn.close()
            assert status == 503
            assert headers.get("Retry-After") == "1"
            assert "error" in json.loads(raw)


class TestLifecycle:
    def test_failed_bind_raises_and_leaves_no_batcher_thread(self):
        """A bind failure must not leak the micro-batcher worker thread."""
        import socket
        import threading

        def batcher_threads():
            return sum(
                1 for t in threading.enumerate()
                if t.name == "repro-batcher" and t.is_alive()
            )

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        port = sock.getsockname()[1]
        before = batcher_threads()
        try:
            with pytest.raises(OSError):
                with InProcessServer(SolveServer(), port=port):
                    pass  # pragma: no cover - never reached
        finally:
            sock.close()
        assert batcher_threads() == before


class TestCacheSpill(object):
    def test_cache_dir_spills_and_serves_from_disk(self, tmp_path):
        """A 1-byte memory budget forces every insert straight to disk; the
        repeat request must still hit, via the spill tier."""
        instance = _plain_instance(n=8, seed=8)
        body = {"instance": instance_to_dict(instance), "algorithm": "ffdh"}
        with InProcessServer(SolveServer(cache_bytes=1, cache_dir=tmp_path)) as srv:
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=10)
            _, h1, raw1 = _request(conn, "POST", "/solve", body)  # solves, spills
            _, h2, raw2 = _request(conn, "POST", "/solve", body)  # disk hit
            conn.close()
            assert h1["X-Repro-Cache"] == "miss"
            assert h2["X-Repro-Cache"] == "hit" and raw2 == raw1
            assert srv.server.cache.stats().spill_hits >= 1
        # A fresh server over the same directory is warm from restart.
        with InProcessServer(SolveServer(cache_dir=tmp_path)) as srv:
            conn = http.client.HTTPConnection(srv.host, srv.port, timeout=10)
            _, h3, raw3 = _request(conn, "POST", "/solve", body)
            conn.close()
            assert h3["X-Repro-Cache"] == "hit" and raw3 == raw1
