"""Unit tests for the lower bounds (repro.core.bounds)."""

import math

import pytest
from hypothesis import given

from repro.core.bounds import (
    area_bound,
    combined_lower_bound,
    critical_path_bound,
    dc_guarantee,
    hmax_bound,
    release_bound,
)
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG

from .conftest import rect_lists


class TestElementaryBounds:
    def test_area_bound(self):
        inst = StripPackingInstance([Rect(rid=0, width=0.5, height=2.0)])
        assert area_bound(inst) == 1.0

    def test_hmax_bound(self):
        inst = StripPackingInstance(
            [Rect(rid=0, width=0.5, height=2.0), Rect(rid=1, width=0.5, height=3.0)]
        )
        assert hmax_bound(inst) == 3.0

    def test_critical_path_chain(self):
        rs = [Rect(rid=i, width=0.1, height=1.0) for i in range(3)]
        inst = PrecedenceInstance(rs, TaskDAG.chain([0, 1, 2]))
        assert critical_path_bound(inst) == 3.0

    def test_critical_path_antichain(self):
        rs = [Rect(rid=i, width=0.1, height=float(i + 1)) for i in range(3)]
        inst = PrecedenceInstance(rs, TaskDAG.empty([0, 1, 2]))
        assert critical_path_bound(inst) == 3.0

    def test_release_bound_dominant_release(self):
        rs = [Rect(rid=0, width=0.5, height=0.5, release=10.0)]
        inst = ReleaseInstance(rs, K=2)
        assert release_bound(inst) == 10.5

    def test_release_bound_dominant_area(self):
        rs = [Rect(rid=i, width=1.0, height=1.0) for i in range(5)]
        inst = ReleaseInstance(rs, K=2)
        assert release_bound(inst) == 5.0


class TestCombined:
    def test_plain(self):
        inst = StripPackingInstance([Rect(rid=0, width=0.25, height=4.0)])
        assert combined_lower_bound(inst) == 4.0

    def test_precedence_uses_F(self):
        rs = [Rect(rid=i, width=0.01, height=1.0) for i in range(5)]
        inst = PrecedenceInstance(rs, TaskDAG.chain(list(range(5))))
        assert combined_lower_bound(inst) == 5.0

    def test_release_uses_rmax(self):
        rs = [Rect(rid=0, width=0.5, height=0.25, release=7.0)]
        inst = ReleaseInstance(rs, K=2)
        assert combined_lower_bound(inst) == 7.25


class TestDCGuarantee:
    def test_empty(self):
        assert dc_guarantee(0, 0.0, 0.0) == 0.0

    def test_formula(self):
        assert math.isclose(dc_guarantee(3, 1.0, 2.0), math.log2(4) * 2.0 + 2.0)

    def test_monotone_in_n(self):
        assert dc_guarantee(100, 1.0, 1.0) > dc_guarantee(10, 1.0, 1.0)


@given(rect_lists(min_size=1, max_size=12))
def test_combined_bound_at_least_each_elementary(rects):
    inst = StripPackingInstance(rects)
    lb = combined_lower_bound(inst)
    assert lb >= area_bound(inst) - 1e-12
    assert lb >= hmax_bound(inst) - 1e-12


@given(rect_lists(min_size=1, max_size=10))
def test_chain_F_is_total_height(rects):
    """On a chain, the critical-path bound is the full height sum."""
    inst = PrecedenceInstance(rects, TaskDAG.chain([r.rid for r in rects]))
    assert math.isclose(
        critical_path_bound(inst), sum(r.height for r in rects), rel_tol=1e-9
    )
