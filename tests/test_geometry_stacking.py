"""Unit tests for stackings and containment (Fig. 3 machinery)."""

import math

import pytest
from hypothesis import given

from repro.core.rectangle import Rect
from repro.geometry.stacking import Stacking, contains, stack

from .conftest import rect_lists


class TestStack:
    def test_empty(self):
        st = stack([])
        assert st.height == 0.0 and st.area == 0.0

    def test_sorted_non_increasing_width(self):
        rects = [
            Rect(rid=0, width=0.2, height=1.0),
            Rect(rid=1, width=0.8, height=0.5),
            Rect(rid=2, width=0.5, height=0.25),
        ]
        st = stack(rects)
        widths = [w for _, _, w in st.steps]
        assert widths == sorted(widths, reverse=True)

    def test_height_is_sum(self):
        rects = [Rect(rid=i, width=0.5, height=0.5) for i in range(4)]
        assert math.isclose(stack(rects).height, 2.0)

    def test_width_at(self):
        rects = [
            Rect(rid=0, width=0.8, height=1.0),
            Rect(rid=1, width=0.2, height=1.0),
        ]
        st = stack(rects)
        assert st.width_at(0.5) == 0.8
        assert st.width_at(1.5) == 0.2
        assert st.width_at(5.0) == 0.0

    def test_width_at_negative_raises(self):
        with pytest.raises(ValueError):
            stack([Rect(rid=0, width=0.5, height=1.0)]).width_at(-0.1)

    def test_cut_heights(self):
        st = stack([Rect(rid=0, width=0.5, height=2.0)])
        assert st.cut_heights(4) == [0.0, 0.5, 1.0, 1.5]


class TestContains:
    def test_reflexive(self):
        st = stack([Rect(rid=0, width=0.5, height=1.0)])
        assert contains(st, st)

    def test_wider_contains_narrower(self):
        inner = stack([Rect(rid=0, width=0.3, height=1.0)])
        outer = stack([Rect(rid=0, width=0.6, height=1.0)])
        assert contains(outer, inner)
        assert not contains(inner, outer)

    def test_taller_needed(self):
        inner = stack([Rect(rid=0, width=0.3, height=2.0)])
        outer = stack([Rect(rid=0, width=0.6, height=1.0)])
        assert not contains(outer, inner)

    def test_staircase_dominance(self):
        inner = stack(
            [Rect(rid=0, width=0.5, height=1.0), Rect(rid=1, width=0.25, height=1.0)]
        )
        outer = stack(
            [Rect(rid=0, width=0.6, height=1.2), Rect(rid=1, width=0.3, height=1.0)]
        )
        assert contains(outer, inner)

    def test_crossing_profiles_not_contained(self):
        a = stack([Rect(rid=0, width=0.9, height=0.5), Rect(rid=1, width=0.1, height=1.5)])
        b = stack([Rect(rid=0, width=0.5, height=2.0)])
        assert not contains(a, b)
        assert not contains(b, a)


@given(rect_lists(min_size=1, max_size=10))
def test_widening_rects_preserves_containment(rects):
    """Rounding widths up (as Lemma 3.2 does) always contains the original."""
    inner = stack(rects)
    wider = [r.replace(width=min(1.0, r.width * 1.25)) for r in rects]
    outer = stack(wider)
    assert contains(outer, inner)


@given(rect_lists(min_size=1, max_size=10))
def test_stack_area_equals_rect_area(rects):
    assert math.isclose(stack(rects).area, sum(r.area for r in rects), rel_tol=1e-9)
