"""Edge-case sweep across modules: degenerate sizes, boundary widths,
zero-release regimes, single-element structures.

These pin behaviours that the property suites rarely sample but users hit
immediately (empty inputs, exactly-full shelves, width exactly 1, all
releases equal, one-task pipelines).
"""

import math

import numpy as np
import pytest

from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG


class TestFullWidthRectangles:
    """Width exactly 1: every algorithm must serialise them."""

    def rects(self, n=3):
        return [Rect(rid=i, width=1.0, height=1.0) for i in range(n)]

    def test_nfdh(self):
        from repro.packing import nfdh

        assert math.isclose(nfdh(self.rects()).extent, 3.0)

    def test_bottom_left(self):
        from repro.packing import bottom_left

        assert math.isclose(bottom_left(self.rects()).extent, 3.0)

    def test_dc(self):
        from repro.precedence.dc import dc_pack

        inst = PrecedenceInstance.without_constraints(self.rects())
        assert math.isclose(dc_pack(inst).height, 3.0)

    def test_shelf_next_fit(self):
        from repro.precedence.shelf_nextfit import shelf_next_fit

        inst = PrecedenceInstance.without_constraints(self.rects())
        assert math.isclose(shelf_next_fit(inst).height, 3.0)

    def test_aptas(self):
        from repro.release.aptas import aptas

        inst = ReleaseInstance(self.rects(), K=1)
        res = aptas(inst, eps=1.0)
        validate_placement(inst, res.placement)
        assert res.height >= 3.0 - 1e-9


class TestExactlyFullShelf:
    def test_widths_summing_to_one(self):
        from repro.packing import nfdh

        rects = [Rect(rid=i, width=0.25, height=1.0) for i in range(8)]
        result = nfdh(rects)
        # 4 fit per level exactly; 2 levels.
        assert math.isclose(result.extent, 2.0)

    def test_shelf_next_fit_exact_fill(self):
        from repro.precedence.shelf_nextfit import shelf_next_fit

        rects = [Rect(rid=i, width=0.5, height=1.0) for i in range(4)]
        inst = PrecedenceInstance.without_constraints(rects)
        run = shelf_next_fit(inst)
        assert run.height == 2.0
        assert all(math.isclose(s.used_width, 1.0) for s in run.shelves)


class TestSingletonStructures:
    def test_dc_single_chain_element(self):
        from repro.precedence.dc import dc_pack

        inst = PrecedenceInstance([Rect(rid=0, width=0.5, height=2.0)], TaskDAG.empty([0]))
        result = dc_pack(inst)
        assert len(result.bands) == 1 and result.bands[0].ids == (0,)

    def test_exact_single(self):
        from repro.exact import solve_exact

        inst = StripPackingInstance([Rect(rid=0, width=0.5, height=1.0)])
        assert solve_exact(inst, K=2).height == 1.0

    def test_aptas_single_class_single_width(self):
        from repro.release.aptas import aptas

        inst = ReleaseInstance(
            [Rect(rid=i, width=0.5, height=1.0, release=1.0) for i in range(4)], K=2
        )
        res = aptas(inst, eps=1.0)
        validate_placement(inst, res.placement)
        # Two side-by-side pairs above the release; optimal is 3.0.
        assert res.height <= 3.0 + res.integral.n_occurrences


class TestZeroReleaseRegime:
    """All releases 0: Section 3 machinery must degenerate gracefully."""

    def rects(self):
        return [Rect(rid=i, width=0.25, height=0.5) for i in range(8)]

    def test_rounding_noop(self):
        from repro.release.rounding import round_releases_up

        inst = ReleaseInstance(self.rects(), K=4)
        assert round_releases_up(inst, 0.3) is inst

    def test_single_phase_lp(self):
        from repro.release.lp import phase_boundaries, solve_fractional

        inst = ReleaseInstance(self.rects(), K=4)
        assert phase_boundaries(inst) == (0.0,)
        sol = solve_fractional(inst)
        assert math.isclose(sol.height, 1.0, rel_tol=1e-6)  # 8 * 0.125 area

    def test_aptas_matches_plain_wrapper(self):
        from repro.packing.fractional import aptas_plain
        from repro.release.aptas import aptas

        inst = ReleaseInstance(self.rects(), K=4)
        res = aptas(inst, eps=1.0)
        plain = aptas_plain(StripPackingInstance(self.rects()), K=4, eps=1.0)
        assert math.isclose(res.height, plain.height, rel_tol=1e-9)


class TestTallChains:
    def test_deep_chain_dc_recursion(self):
        """A 200-element chain: recursion must stay within Python limits and
        produce exactly the serial height."""
        from repro.precedence.dc import dc_pack

        n = 200
        rects = [Rect(rid=i, width=0.1, height=1.0) for i in range(n)]
        inst = PrecedenceInstance(rects, TaskDAG.chain(list(range(n))))
        result = dc_pack(inst)
        assert math.isclose(result.height, float(n))

    def test_deep_chain_shelf(self):
        from repro.precedence.shelf_nextfit import shelf_next_fit

        n = 150
        rects = [Rect(rid=i, width=0.1, height=1.0) for i in range(n)]
        inst = PrecedenceInstance(rects, TaskDAG.chain(list(range(n))))
        run = shelf_next_fit(inst)
        assert run.height == float(n)
        assert run.n_skips == n


class TestGeometryBoundaries:
    def test_shelf_boundaries(self):
        from repro.core.placement import Placement
        from repro.geometry.occupancy import shelf_boundaries

        p = Placement()
        p.place(Rect(rid=0, width=1.0, height=2.5), 0.0, 0.0)
        bounds = shelf_boundaries(p, shelf_height=1.0)
        assert list(bounds) == [0.0, 1.0, 2.0, 3.0]

    def test_skyline_tiny_widths(self):
        from repro.geometry.skyline import Skyline

        sky = Skyline()
        for i in range(50):
            x, _ = sky.lowest_position(0.02)
            sky.place(x, 0.02, 1.0)
        assert math.isclose(sky.max_y, 1.0)

    def test_render_many_rects_cycles_glyphs(self):
        from repro.analysis.render import render_placement
        from repro.packing import nfdh

        rects = [Rect(rid=i, width=0.05, height=0.5) for i in range(70)]
        art = render_placement(nfdh(rects).placement)
        assert "height" in art.splitlines()[0]
