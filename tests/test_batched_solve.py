"""Batched stacked-instance solving: differential and semantics tests.

The stacked path (:mod:`repro.engine.stacked`) must be **bit-identical**
to K independent :func:`repro.engine.run` calls in every report field but
``wall_time`` — on the array tier and on the compiled tier (driven as
pure Python when numba is absent; see ``tests/test_kernel_tiers.py``).
Also pinned here: the stacked sort's per-segment equivalence, the
``stacked=None|True|False`` semantics of
:func:`repro.engine.batch.solve_many`, the portfolio split, and the
service micro-batcher engaging the path implicitly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.core.arrays import (
    RectArrays,
    StackedRectArrays,
    decreasing_order,
    stacked_decreasing_order,
)
from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance, StripPackingInstance
from repro.core.rectangle import Rect
from repro.dag.graph import TaskDAG
from repro.engine import portfolio, run, solve_many
from repro.engine.stacked import BATCHABLE, batchable, solve_batched
from repro.kernels import compiled
from repro.workloads.random_rects import powerlaw_rects, uniform_rects


@pytest.fixture(autouse=True)
def _pristine_registry():
    kernels._reset_for_testing()
    yield
    kernels._reset_for_testing()


def _instances(k, seed=0, lo=3, hi=40):
    rng = np.random.default_rng(seed)
    gens = (powerlaw_rects, uniform_rects)
    return [
        StripPackingInstance(gens[i % 2](int(rng.integers(lo, hi)), rng))
        for i in range(k)
    ]


def _same_report(a, b):
    """Field-for-field equality, wall_time excepted (it is a measurement)."""
    assert a.algorithm == b.algorithm and a.variant == b.variant
    assert a.n == b.n and a.params == b.params
    assert a.height == b.height
    assert a.lower_bound == b.lower_bound and dict(a.bounds) == dict(b.bounds)
    assert a.valid == b.valid and a.error == b.error
    assert a.label == b.label
    if a.placement is None or b.placement is None:
        assert a.placement is None and b.placement is None
        return
    da = dict(a.placement.items())
    db = dict(b.placement.items())
    assert set(da) == set(db)
    for rid, p in db.items():
        assert da[rid] == p, rid


# ----------------------------------------------------------------------
# stacked sort
# ----------------------------------------------------------------------


class TestStackedOrder:
    def test_segments_equal_per_instance_orders(self):
        parts = [inst.arrays() for inst in _instances(12, seed=3)]
        stacked = StackedRectArrays(parts)
        order = stacked_decreasing_order(stacked)
        for k, part in enumerate(parts):
            lo, hi = stacked.segment(k)
            assert np.array_equal(order[lo:hi] - lo, decreasing_order(part)), k

    def test_empty_parts_are_harmless(self):
        parts = [
            RectArrays([]),
            RectArrays([Rect(rid="a", width=0.5, height=0.5)]),
            RectArrays([]),
            RectArrays(
                [
                    Rect(rid="b", width=0.2, height=0.9),
                    Rect(rid="c", width=0.7, height=0.9),
                ]
            ),
        ]
        stacked = StackedRectArrays(parts)
        assert len(stacked) == 3
        assert stacked.segment(0) == (0, 0) and stacked.segment(2) == (1, 1)
        order = stacked_decreasing_order(stacked)
        assert list(order) == [0, 2, 1]  # c (wider) before b within part 3

    def test_all_empty(self):
        stacked = StackedRectArrays([RectArrays([])])
        assert len(stacked) == 0
        assert len(stacked_decreasing_order(stacked)) == 0

    def test_cross_part_id_ties_stay_segment_local(self):
        """Identical rects (same id string!) in different parts never mix."""
        twin = [Rect(rid="x", width=0.4, height=0.6), Rect(rid="y", width=0.4, height=0.6)]
        parts = [RectArrays(twin), RectArrays(list(reversed(twin)))]
        stacked = StackedRectArrays(parts)
        order = stacked_decreasing_order(stacked)
        assert list(order[:2]) == list(decreasing_order(parts[0]))
        assert list(order[2:] - 2) == list(decreasing_order(parts[1]))


# ----------------------------------------------------------------------
# bit-identity vs independent dispatch
# ----------------------------------------------------------------------


class TestBatchedIdentity:
    @pytest.mark.parametrize("algorithm", BATCHABLE)
    @pytest.mark.parametrize("tier", ["array", "compiled"])
    def test_identical_to_independent(self, monkeypatch, algorithm, tier):
        monkeypatch.setattr(compiled, "AVAILABLE", True)
        instances = _instances(10, seed=7)
        with kernels.use_tier(tier):
            batched = solve_many(instances, algorithm, stacked=True)
            independent = solve_many(instances, algorithm, stacked=False)
        assert len(batched) == len(independent) == 10
        for b, i in zip(batched, independent):
            _same_report(b, i)

    def test_identical_to_run_loop(self):
        instances = _instances(6, seed=11)
        batched = solve_many(instances, "ffdh", stacked=True)
        for k, (report, inst) in enumerate(zip(batched, instances)):
            direct = run(inst, "ffdh")
            assert report.label == str(k)
            _same_report(
                report, type(direct)(**{**direct.__dict__, "label": str(k)})
            )

    def test_labels_and_flags_pass_through(self):
        instances = _instances(3, seed=2)
        reports = solve_batched(
            instances,
            "nfdh",
            validate=False,
            compute_bounds=False,
            labels=["a", "b", "c"],
        )
        assert [r.label for r in reports] == ["a", "b", "c"]
        assert all(r.valid is None and r.lower_bound is None for r in reports)
        assert all(r.bounds == {} for r in reports)

    def test_mixed_algorithm_batch(self):
        """The portfolio shape: one instance, one report per entrant."""
        (instance,) = _instances(1, seed=4, lo=25, hi=26)
        reports = solve_batched(
            [instance] * 3, list(BATCHABLE), labels=list(BATCHABLE)
        )
        for name, report in zip(BATCHABLE, reports):
            direct = run(instance, name, label=name)
            _same_report(report, direct)


# ----------------------------------------------------------------------
# solve_many stacked= semantics
# ----------------------------------------------------------------------


class TestStackedSemantics:
    def test_auto_engages_on_eligible_batch(self, monkeypatch):
        calls = []
        import repro.engine.stacked as stacked_mod

        original = stacked_mod.solve_batched
        monkeypatch.setattr(
            stacked_mod,
            "solve_batched",
            lambda *a, **kw: calls.append(1) or original(*a, **kw),
        )
        instances = _instances(4, seed=5)
        solve_many(instances, "ffdh")
        assert calls == [1]

    def test_stacked_false_opts_out(self, monkeypatch):
        import repro.engine.stacked as stacked_mod

        monkeypatch.setattr(
            stacked_mod,
            "solve_batched",
            lambda *a, **kw: pytest.fail("stacked path must not engage"),
        )
        instances = _instances(3, seed=5)
        reports = solve_many(instances, "ffdh", stacked=False)
        assert all(r.valid for r in reports)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"algorithm": "bottom_left"},  # not a level packer
            {"algorithm": None},  # auto-selection is per instance
            {"algorithm": "ffdh", "backend": "thread"},  # parallel executor
        ],
    )
    def test_stacked_true_rejects_ineligible(self, kwargs):
        instances = _instances(3, seed=6)
        algorithm = kwargs.pop("algorithm")
        with pytest.raises(InvalidInstanceError, match="stacked=True"):
            solve_many(instances, algorithm, stacked=True, **kwargs)

    def test_stacked_true_rejects_params_and_reference_tier(self):
        instances = _instances(3, seed=6)
        with pytest.raises(InvalidInstanceError, match="stacked=True"):
            solve_many(instances, "ffdh", params={"ffdh": {"x": 1}}, stacked=True)
        with kernels.use_tier("reference"):
            with pytest.raises(InvalidInstanceError, match="stacked=True"):
                solve_many(instances, "ffdh", stacked=True)

    def test_stacked_true_rejects_empty_batch(self):
        with pytest.raises(InvalidInstanceError, match="non-empty"):
            solve_many([], "ffdh", stacked=True)

    def test_mixed_variants_not_batchable(self):
        rects = [Rect(rid=i, width=0.3, height=0.4) for i in range(4)]
        dag = TaskDAG([r.rid for r in rects], edges=[(0, 1)])
        batch = [StripPackingInstance(rects), PrecedenceInstance(rects, dag)]
        assert not batchable(batch, "ffdh", None)

    def test_solve_batched_validates_input(self):
        instances = _instances(2, seed=1)
        with pytest.raises(InvalidInstanceError, match="not batchable"):
            solve_batched(instances, "bottom_left")
        with pytest.raises(InvalidInstanceError, match="algorithms for"):
            solve_batched(instances, ["ffdh"])
        with pytest.raises(InvalidInstanceError, match="labels for"):
            solve_batched(instances, "ffdh", labels=["only-one"])


# ----------------------------------------------------------------------
# portfolio split
# ----------------------------------------------------------------------


class TestPortfolioBatching:
    def test_portfolio_identical_to_unbatched(self):
        (instance,) = _instances(1, seed=8, lo=30, hi=31)
        names = ["nfdh", "ffdh", "bfdh", "bottom_left"]
        serial = portfolio(instance, names)
        threaded = portfolio(instance, names, backend="thread", jobs=2)
        for s, t in zip(serial.reports, threaded.reports):
            _same_report(s, t)
        assert serial.best.algorithm == threaded.best.algorithm

    def test_portfolio_engages_stacked_for_level_packers(self, monkeypatch):
        calls = []
        import repro.engine.stacked as stacked_mod

        original = stacked_mod.solve_batched
        monkeypatch.setattr(
            stacked_mod,
            "solve_batched",
            lambda *a, **kw: calls.append(a[1]) or original(*a, **kw),
        )
        (instance,) = _instances(1, seed=9)
        portfolio(instance, ["nfdh", "ffdh", "bfdh", "bottom_left"])
        assert calls == [["nfdh", "ffdh", "bfdh"]]


# ----------------------------------------------------------------------
# the service micro-batcher inherits the path
# ----------------------------------------------------------------------


class TestServicePath:
    def test_micro_batcher_engages_stacked(self, monkeypatch):
        from repro.service.queue import MicroBatcher

        calls = []
        import repro.engine.stacked as stacked_mod

        original = stacked_mod.solve_batched
        monkeypatch.setattr(
            stacked_mod,
            "solve_batched",
            lambda *a, **kw: calls.append(1) or original(*a, **kw),
        )
        batcher = MicroBatcher(max_batch=8, maxsize=16)
        instances = _instances(5, seed=10)
        futures = [batcher.submit(inst, "ffdh") for inst in instances]
        assert batcher.drain_once() == 5
        assert calls == [1]
        for fut, inst in zip(futures, instances):
            report = fut.result(timeout=5)
            direct = run(inst, "ffdh", label="")
            _same_report(report, direct)
