"""Tests for the algorithm registry / solve() dispatcher."""

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.core.registry import available_algorithms, solve
from repro.dag.graph import TaskDAG


def plain_inst():
    return StripPackingInstance(
        [Rect(rid=i, width=0.25, height=1.0) for i in range(4)]
    )


class TestRegistry:
    def test_available_lists_all(self):
        names = available_algorithms()
        for expected in ("nfdh", "ffdh", "bfdh", "bottom_left", "dc",
                         "shelf_next_fit", "list_schedule", "aptas",
                         "release_shelf", "release_bl"):
            assert expected in names

    def test_unknown_algorithm(self):
        with pytest.raises(InvalidInstanceError, match="unknown algorithm"):
            solve(plain_inst(), "quantum_annealer")

    @pytest.mark.parametrize("name", ["nfdh", "ffdh", "bfdh", "bottom_left"])
    def test_plain_algorithms(self, name):
        inst = plain_inst()
        p = solve(inst, name)
        validate_placement(inst, p)

    def test_default_plain_is_nfdh(self):
        inst = plain_inst()
        assert solve(inst).height == solve(inst, "nfdh").height

    def test_default_precedence_is_dc(self, rng):
        from repro.workloads.dags import random_precedence_instance

        inst = random_precedence_instance(12, 0.2, rng)
        p = solve(inst)
        validate_placement(inst, p)

    def test_default_uniform_height_precedence_is_shelf(self):
        rects = [Rect(rid=i, width=0.4, height=1.0) for i in range(4)]
        inst = PrecedenceInstance(rects, TaskDAG(range(4), [(0, 1)]))
        p = solve(inst)
        validate_placement(inst, p)
        assert p.height == float(int(p.height))  # shelf solution

    def test_default_release_is_aptas(self, rng):
        from repro.workloads.releases import bursty_release_instance

        inst = bursty_release_instance(10, 4, rng, n_bursts=2)
        p = solve(inst, eps=1.0)
        validate_placement(inst, p)

    def test_aptas_requires_release_instance(self):
        with pytest.raises(InvalidInstanceError):
            solve(plain_inst(), "aptas")

    def test_release_heuristics_require_release_instance(self):
        for name in ("release_shelf", "release_bl"):
            with pytest.raises(InvalidInstanceError):
                solve(plain_inst(), name)

    def test_dc_on_plain_instance_wraps(self):
        inst = plain_inst()
        p = solve(inst, "dc")
        validate_placement(inst, p)

    def test_validate_false_skips_check(self):
        inst = plain_inst()
        p = solve(inst, "nfdh", validate=False)
        assert len(p) == 4
