"""Unit tests for TaskDAG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import InvalidInstanceError
from repro.dag.graph import TaskDAG

from .conftest import dags_over


class TestConstruction:
    def test_empty(self):
        dag = TaskDAG.empty([1, 2, 3])
        assert len(dag) == 3 and dag.n_edges == 0

    def test_chain(self):
        dag = TaskDAG.chain([1, 2, 3])
        assert dag.edges() == [(1, 2), (2, 3)]

    def test_unknown_endpoint(self):
        with pytest.raises(InvalidInstanceError):
            TaskDAG([1, 2], [(1, 3)])

    def test_self_loop(self):
        with pytest.raises(InvalidInstanceError):
            TaskDAG([1], [(1, 1)])

    def test_cycle_detected(self):
        with pytest.raises(InvalidInstanceError):
            TaskDAG([1, 2, 3], [(1, 2), (2, 3), (3, 1)])

    def test_duplicate_edge_ignored(self):
        dag = TaskDAG([1, 2], [(1, 2), (1, 2)])
        assert dag.n_edges == 1

    def test_add_edge_cycle_check(self):
        dag = TaskDAG([1, 2], [(1, 2)])
        with pytest.raises(InvalidInstanceError):
            dag.add_edge(2, 1)


class TestQueries:
    @pytest.fixture
    def diamond(self):
        # 1 -> {2, 3} -> 4
        return TaskDAG([1, 2, 3, 4], [(1, 2), (1, 3), (2, 4), (3, 4)])

    def test_neighbourhoods(self, diamond):
        assert diamond.successors(1) == {2, 3}
        assert diamond.predecessors(4) == {2, 3}
        assert diamond.in_degree(1) == 0 and diamond.out_degree(4) == 0

    def test_sources_sinks(self, diamond):
        assert diamond.sources() == [1]
        assert diamond.sinks() == [4]

    def test_reachability(self, diamond):
        assert diamond.reachable_from(1) == {2, 3, 4}
        assert diamond.ancestors(4) == {1, 2, 3}
        assert diamond.has_path(1, 4)
        assert not diamond.has_path(2, 3)

    def test_independence(self, diamond):
        assert diamond.independent(2, 3)
        assert not diamond.independent(1, 4)

    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for u, v in diamond.edges():
            assert pos[u] < pos[v]

    def test_induced(self, diamond):
        sub = diamond.induced([2, 3, 4])
        assert set(sub.nodes()) == {2, 3, 4}
        assert set(sub.edges()) == {(2, 4), (3, 4)}

    def test_induced_unknown_node(self, diamond):
        with pytest.raises(InvalidInstanceError):
            diamond.induced([2, 99])

    def test_transitive_reduction(self):
        dag = TaskDAG([1, 2, 3], [(1, 2), (2, 3), (1, 3)])
        assert set(dag.transitive_reduction_edges()) == {(1, 2), (2, 3)}

    def test_as_mapping(self, diamond):
        m = diamond.as_mapping()
        assert m[1] == {2, 3} and m[4] == frozenset()


@given(dags_over(8))
def test_topological_order_is_valid(dag):
    order = dag.topological_order()
    assert sorted(order) == sorted(dag.nodes())
    pos = {n: i for i, n in enumerate(order)}
    for u, v in dag.edges():
        assert pos[u] < pos[v]


@given(dags_over(7))
def test_reachability_consistent_with_ancestors(dag):
    for u in dag.nodes():
        for v in dag.reachable_from(u):
            assert u in dag.ancestors(v)


@given(dags_over(7), st.data())
def test_induced_preserves_edges(dag, data):
    keep = data.draw(st.sets(st.sampled_from(dag.nodes()), min_size=1))
    sub = dag.induced(keep)
    expected = {(u, v) for u, v in dag.edges() if u in keep and v in keep}
    assert set(sub.edges()) == expected


@given(dags_over(7))
def test_transitive_reduction_preserves_reachability(dag):
    reduced = TaskDAG(dag.nodes(), dag.transitive_reduction_edges())
    for u in dag.nodes():
        assert reduced.reachable_from(u) == dag.reachable_from(u)
