"""Tests for the exact precedence bin packing solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import BudgetExceededError
from repro.dag.graph import TaskDAG
from repro.exact.bin_packing_exact import solve_bin_packing_exact
from repro.precedence.bin_packing import (
    BinPackingInstance,
    chain_lower_bound,
    precedence_first_fit_decreasing,
    precedence_next_fit,
    size_lower_bound,
)
from repro.precedence.ggjy_first_fit import ggjy_first_fit

from .conftest import dags_over


def bp(sizes, edges=()):
    return BinPackingInstance(
        sizes=dict(enumerate(sizes)), dag=TaskDAG(range(len(sizes)), edges)
    )


class TestExactBinPacking:
    def test_empty(self):
        assert solve_bin_packing_exact(bp([])).n_bins == 0

    def test_single(self):
        a = solve_bin_packing_exact(bp([0.5]))
        assert a.n_bins == 1

    def test_perfect_pairs(self):
        a = solve_bin_packing_exact(bp([0.5, 0.5, 0.5, 0.5]))
        assert a.n_bins == 2

    def test_chain_forces_n_bins(self):
        inst = bp([0.1, 0.1, 0.1], edges=[(0, 1), (1, 2)])
        assert solve_bin_packing_exact(inst).n_bins == 3

    def test_beats_heuristic_on_adversarial_sizes(self):
        # sizes 0.6, 0.3, 0.3, 0.6: FFD-style can pair (0.6,0.3)(0.6,0.3),
        # optimal is 2 bins; next-fit may need 3 depending on order.
        inst = bp([0.6, 0.3, 0.3, 0.6])
        a = solve_bin_packing_exact(inst)
        assert a.n_bins == 2

    def test_diamond(self):
        inst = bp([0.4, 0.4, 0.4, 0.4], edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
        a = solve_bin_packing_exact(inst)
        # 0 alone, {1,2} together, 3 alone.
        assert a.n_bins == 3

    def test_budget(self):
        rng = np.random.default_rng(0)
        sizes = list(rng.uniform(0.05, 0.3, size=20))
        with pytest.raises(BudgetExceededError):
            solve_bin_packing_exact(bp(sizes), max_states=10)

    def test_at_most_every_heuristic(self, rng):
        from repro.dag.generators import random_order_dag

        for seed in range(5):
            r = np.random.default_rng(seed)
            n = 9
            sizes = dict(enumerate(r.uniform(0.15, 0.8, size=n)))
            dag = random_order_dag(n, 0.2, r)
            inst = BinPackingInstance(sizes=sizes, dag=dag)
            opt = solve_bin_packing_exact(inst).n_bins
            for algo in (precedence_next_fit, precedence_first_fit_decreasing, ggjy_first_fit):
                assert algo(inst).n_bins >= opt

    def test_matches_lower_bounds(self):
        inst = bp([0.8, 0.8, 0.2], edges=[(0, 1)])
        a = solve_bin_packing_exact(inst)
        assert a.n_bins >= max(size_lower_bound(inst), chain_lower_bound(inst))
        assert a.n_bins == 2  # bins {0, 0.2}, {1}


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.floats(min_value=0.1, max_value=1.0), min_size=1, max_size=8),
    st.data(),
)
def test_exact_sandwiched_by_bounds_and_heuristics(sizes, data):
    dag = data.draw(dags_over(len(sizes)))
    inst = BinPackingInstance(sizes=dict(enumerate(sizes)), dag=dag)
    opt = solve_bin_packing_exact(inst, max_states=100_000)
    lb = max(size_lower_bound(inst), chain_lower_bound(inst))
    assert lb <= opt.n_bins
    assert opt.n_bins <= precedence_next_fit(inst).n_bins
    # Theorem 2.6 transported to bins: next-fit within 3x the true optimum.
    assert precedence_next_fit(inst).n_bins <= 3 * opt.n_bins
