"""Tests for the workload generators (random, DAG, release, JPEG)."""

import math

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.workloads.dags import (
    layered_precedence_instance,
    random_precedence_instance,
    series_parallel_instance,
    uniform_height_precedence_instance,
)
from repro.workloads.jpeg import jpeg_pipeline_instance, jpeg_pipeline_tasks
from repro.workloads.random_rects import (
    columnar_rects,
    powerlaw_rects,
    uniform_rects,
    unit_height_rects,
)
from repro.workloads.releases import (
    bursty_release_instance,
    poisson_release_instance,
    staircase_release_instance,
)


class TestRandomRects:
    def test_uniform_in_range(self, rng):
        rects = uniform_rects(50, rng, w_range=(0.2, 0.6), h_range=(0.5, 1.0))
        assert len(rects) == 50
        for r in rects:
            assert 0.2 <= r.width <= 0.6 and 0.5 <= r.height <= 1.0

    def test_uniform_bad_range(self, rng):
        with pytest.raises(InvalidInstanceError):
            uniform_rects(5, rng, w_range=(0.0, 0.5))

    def test_columnar_on_grid(self, rng):
        K = 6
        rects = columnar_rects(40, K, rng)
        for r in rects:
            c = r.width * K
            assert abs(c - round(c)) < 1e-9 and 1 <= round(c) <= K

    def test_columnar_max_cols(self, rng):
        rects = columnar_rects(40, 8, rng, max_cols=2)
        assert all(r.width <= 0.25 + 1e-12 for r in rects)

    def test_powerlaw_clipped(self, rng):
        rects = powerlaw_rects(60, rng, w_min=0.05)
        assert all(0.05 <= r.width <= 1.0 for r in rects)

    def test_unit_heights(self, rng):
        assert all(r.height == 1.0 for r in unit_height_rects(20, rng))

    def test_reproducible(self):
        a = uniform_rects(10, np.random.default_rng(3))
        b = uniform_rects(10, np.random.default_rng(3))
        assert [(r.width, r.height) for r in a] == [(r.width, r.height) for r in b]


class TestDagInstances:
    def test_random_instance_shapes(self, rng):
        inst = random_precedence_instance(25, 0.1, rng)
        assert len(inst) == 25
        inst.dag.topological_order()

    def test_columnar_option(self, rng):
        inst = random_precedence_instance(15, 0.1, rng, columnar_K=4)
        for r in inst.rects:
            assert abs(r.width * 4 - round(r.width * 4)) < 1e-9

    def test_layered(self, rng):
        inst = layered_precedence_instance(30, 4, 0.3, rng)
        assert len(inst) == 30 and inst.dag.n_edges >= 30 - len(inst.dag.sources())

    def test_series_parallel(self, rng):
        inst = series_parallel_instance(20, rng)
        assert len(inst) == 20

    def test_uniform_height(self, rng):
        inst = uniform_height_precedence_instance(15, 0.2, rng)
        assert inst.uniform_height()


class TestReleaseWorkloads:
    def test_poisson_monotone_releases(self, rng):
        inst = poisson_release_instance(30, 4, rng, rate=2.0)
        rel = [r.release for r in inst.rects]
        assert rel == sorted(rel)
        assert rel[0] == 0.0
        inst.check_aptas_assumptions()

    def test_bursty_release_values(self, rng):
        inst = bursty_release_instance(40, 4, rng, n_bursts=3, burst_gap=2.0)
        assert {r.release for r in inst.rects} <= {0.0, 2.0, 4.0}
        inst.check_aptas_assumptions()

    def test_staircase_round_robin(self, rng):
        inst = staircase_release_instance(10, 4, rng, n_steps=5, step=1.0)
        assert [r.release for r in inst.rects] == [float(i % 5) for i in range(10)]

    def test_bad_rate(self, rng):
        with pytest.raises(InvalidInstanceError):
            poisson_release_instance(5, 4, rng, rate=0.0)


class TestJpeg:
    def test_structure(self):
        from repro.fpga.device import Device

        dev = Device(K=8)
        tasks = jpeg_pipeline_tasks(4, dev)
        ids = [t.tid for t in tasks]
        assert "rgb2ycbcr" in ids and "entropy" in ids and "bitstream" in ids
        assert sum(1 for t in ids if str(t).startswith("dct:")) == 4

    def test_instance_valid_dag(self):
        from repro.fpga.device import Device

        inst = jpeg_pipeline_instance(3, Device(K=8))
        order = inst.dag.topological_order()
        # entropy must come after all zigzags
        pos = {n: i for i, n in enumerate(order)}
        for i in range(3):
            assert pos[f"zigzag:{i}"] < pos["entropy"]

    def test_bad_tiles(self):
        from repro.fpga.device import Device

        with pytest.raises(InvalidInstanceError):
            jpeg_pipeline_tasks(0, Device(K=8))

    def test_dct_cols_cap(self):
        from repro.fpga.device import Device

        with pytest.raises(InvalidInstanceError):
            jpeg_pipeline_tasks(2, Device(K=4), dct_cols=8)
