"""Tests for the no-release fractional LP and plain APTAS wrapper."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.errors import InvalidInstanceError
from repro.core.instance import StripPackingInstance
from repro.core.placement import validate_placement
from repro.core.rectangle import Rect
from repro.exact.branch_and_bound import solve_exact
from repro.packing.fractional import aptas_plain, fractional_strip_height
from repro.packing.nfdh import nfdh

from .conftest import columnar_rect_lists


def crects(specs, K=4):
    return [Rect(rid=i, width=c / K, height=h) for i, (c, h) in enumerate(specs)]


class TestFractionalHeight:
    def test_single_full_width(self):
        assert math.isclose(fractional_strip_height(crects([(4, 1.0)]), 4), 1.0, rel_tol=1e-6)

    def test_parallel_fit(self):
        rects = crects([(1, 1.0)] * 4)
        assert math.isclose(fractional_strip_height(rects, 4), 1.0, rel_tol=1e-6)

    def test_equals_area_when_perfectly_divisible(self):
        # widths 1/2 each: fractional packing can always achieve exactly
        # the area bound by slicing.
        rects = crects([(2, 0.7), (2, 0.4), (2, 0.9)], K=4)
        area = sum(r.area for r in rects)
        assert math.isclose(fractional_strip_height(rects, 4), area, rel_tol=1e-6)

    def test_rejects_release_times(self):
        rects = [Rect(rid=0, width=0.5, height=1.0, release=1.0)]
        with pytest.raises(InvalidInstanceError):
            fractional_strip_height(rects, 2)

    def test_lower_bounds_every_packer(self, rng):
        from repro.workloads.random_rects import columnar_rects

        rects = columnar_rects(15, 4, rng)
        frac = fractional_strip_height(rects, 4)
        assert nfdh(rects).extent >= frac - 1e-6

    def test_lower_bounds_exact(self, rng):
        from repro.workloads.random_rects import columnar_rects

        rects = columnar_rects(6, 3, rng)
        inst = StripPackingInstance(rects)
        frac = fractional_strip_height(rects, 3)
        opt = solve_exact(inst, K=3).height
        assert opt >= frac - 1e-6


class TestAptasPlain:
    def test_valid_and_bounded(self, rng):
        from repro.workloads.random_rects import columnar_rects

        rects = columnar_rects(20, 4, rng)
        inst = StripPackingInstance(rects)
        p = aptas_plain(inst, K=4, eps=1.0)
        validate_placement(inst, p)
        frac = fractional_strip_height(rects, 4)
        # Theorem 3.5 with R = 0-ish: one phase, additive <= occurrences.
        assert p.height >= frac - 1e-6

    def test_heights_above_one_rejected(self):
        inst = StripPackingInstance([Rect(rid=0, width=0.5, height=2.0)])
        with pytest.raises(InvalidInstanceError):
            aptas_plain(inst, K=2, eps=1.0)


@settings(deadline=None, max_examples=20)
@given(columnar_rect_lists(K=3, min_size=1, max_size=8))
def test_fractional_sandwich(rects):
    """area <= OPT_f <= OPT <= NFDH for columnar instances."""
    inst = StripPackingInstance(rects)
    frac = fractional_strip_height(rects, 3)
    area = sum(r.area for r in rects)
    assert frac >= area - 1e-6
    assert nfdh(rects).extent >= frac - 1e-6
