#!/usr/bin/env python
"""The Section 2.2 workflow: uniform heights, shelves and bins.

Walks the full equivalence chain the paper uses for the uniform-height
special case:

 1. build a uniform-height precedence instance (hardware tasks that all
    run for one reconfiguration period);
 2. run Algorithm F (shelf Next-Fit) and show the red/green accounting of
    Theorem 2.6's proof on the actual run;
 3. reduce to precedence-constrained bin packing and compare next-fit,
    level-FFD and GGJY First Fit;
 4. certify everything against the exact optimum (ideal-lattice solver);
 5. take a *floating* placement from the greedy list scheduler and slide
    it down into a shelf solution, verifying the height never grows.

Run:  python examples/bin_packing_workflow.py [n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.report import Table
from repro.core.bounds import area_bound, critical_path_bound
from repro.core.placement import validate_placement
from repro.exact.bin_packing_exact import solve_bin_packing_exact
from repro.precedence.accounting import color_shelves, verify_accounting
from repro.precedence.bin_packing import (
    chain_lower_bound,
    precedence_first_fit_decreasing,
    precedence_next_fit,
    size_lower_bound,
    strip_to_bin_instance,
)
from repro.precedence.ggjy_first_fit import ggjy_first_fit
from repro.precedence.list_schedule import list_schedule
from repro.precedence.shelf_conversion import is_shelf_solution, to_shelf_solution
from repro.precedence.shelf_nextfit import shelf_next_fit
from repro.workloads.dags import uniform_height_precedence_instance


def main(n: int = 12) -> None:
    rng = np.random.default_rng(5)
    inst = uniform_height_precedence_instance(n, 0.15, rng)
    area = area_bound(inst)
    F = critical_path_bound(inst)
    print(f"{n} unit-height tasks, {inst.dag.n_edges} precedence edges")
    print(f"lower bounds: AREA = {area:.3f}, F (chain) = {F:.0f}\n")

    # --- Algorithm F with the proof's accounting -------------------------
    run = shelf_next_fit(inst)
    validate_placement(inst, run.placement)
    coloring = color_shelves(run)
    stats = verify_accounting(run, area=area, opt_lower=max(area, F))
    print(f"Algorithm F: {len(run.shelves)} shelves "
          f"({stats['red']:.0f} red, {stats['green']:.0f} green, "
          f"{run.n_skips} skips)")
    print(f"  Theorem 2.6 accounting: red <= 2*AREA = {2 * area:.2f}  OK; "
          f"green <= skips <= F = {F:.0f}  OK\n")

    # --- bin packing view --------------------------------------------------
    bin_inst = strip_to_bin_instance(inst)
    lb = max(size_lower_bound(bin_inst), chain_lower_bound(bin_inst))
    opt = solve_bin_packing_exact(bin_inst).n_bins
    table = Table(["algorithm", "bins", "vs OPT"], title="bin packing view")
    for name, algo in (
        ("next-fit (Algorithm F)", precedence_next_fit),
        ("level FFD", precedence_first_fit_decreasing),
        ("GGJY first fit", ggjy_first_fit),
    ):
        a = algo(bin_inst)
        a.validate(bin_inst)
        table.add_row([name, a.n_bins, a.n_bins / opt])
    table.add_row(["exact (ideal lattice)", opt, 1.0])
    table.print()
    print(f"(elementary lower bound: {lb} bins)\n")

    # --- slide-down conversion ----------------------------------------------
    floating = list_schedule(inst)
    validate_placement(inst, floating)
    shelved = to_shelf_solution(inst, floating, paranoid=True)
    validate_placement(inst, shelved)
    print("slide-down conversion (Section 2.2):")
    print(f"  list-schedule height {floating.height:.3f} "
          f"(shelf solution: {is_shelf_solution(floating, 1.0)})")
    print(f"  after conversion     {shelved.height:.3f} "
          f"(shelf solution: {is_shelf_solution(shelved, 1.0)})")
    assert shelved.height <= floating.height + 1e-9


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
