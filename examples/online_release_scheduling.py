#!/usr/bin/env python
"""Scheduling tasks with release times on a reconfigurable device.

The Section 3 scenario: an operating system for a reconfigurable platform
receives hardware tasks over time (release times) and must schedule each
on contiguous columns, no earlier than its release.  This example builds a
bursty arrival workload, runs the APTAS (Algorithm 2) against the two
heuristic baselines, verifies everything on the device simulator, and
shows how the APTAS's advantage is its *guarantee*: the measured height is
certified against the LP's fractional optimum.

Run:  python examples/online_release_scheduling.py [n_tasks] [K]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.render import render_placement
from repro.analysis.report import Table
from repro.core.placement import validate_placement
from repro.fpga.device import Device
from repro.fpga.schedule import schedule_from_placement
from repro.fpga.simulator import simulate
from repro.release.aptas import aptas
from repro.release.heuristics import release_bottom_left, release_shelf_pack
from repro.release.lp import optimal_fractional_height
from repro.workloads.releases import bursty_release_instance


def main(n_tasks: int = 40, K: int = 4) -> None:
    rng = np.random.default_rng(2026)
    inst = bursty_release_instance(n_tasks, K, rng, n_bursts=4, burst_gap=4.0)
    device = Device(K=K)
    print(f"{n_tasks} tasks on a {K}-column device, 4 arrival bursts")

    opt_f = optimal_fractional_height(inst)
    print(f"fractional optimum OPT_f = {opt_f:.3f}  (certified lower bound)\n")

    eps = 0.9
    res = aptas(inst, eps=eps)
    validate_placement(inst, res.placement)
    shelf = release_shelf_pack(inst)
    validate_placement(inst, shelf)
    bl = release_bottom_left(inst)
    validate_placement(inst, bl)

    table = Table(["algorithm", "height", "vs OPT_f", "guarantee"], title="results")
    table.add_row(["APTAS (eps=0.9)", res.height, res.height / opt_f,
                   f"(1+eps)*OPT_f + {res.integral.n_occurrences} occ"])
    table.add_row(["batch shelf", shelf.height, shelf.height / opt_f, "none"])
    table.add_row(["bottom-left", bl.height, bl.height / opt_f, "none"])
    table.print()
    print()

    # Everything executes on the simulated device.
    sched = schedule_from_placement(res.placement, device)
    sched.validate(releases={r.rid: r.release for r in inst.rects})
    rep = simulate(sched)
    print(f"simulated APTAS schedule: makespan {rep.makespan:.3f}, "
          f"utilisation {rep.utilisation(K):.1%}, {rep.n_tasks} tasks executed")
    print()

    print("APTAS pipeline internals:")
    print(f"  release classes after rounding (Lemma 3.1): "
          f"{len({r.release for r in res.rounded.rects})}")
    print(f"  distinct widths after grouping (Lemma 3.2): "
          f"{len({r.width for r in res.grouping.instance.rects})}")
    print(f"  LP configurations (Lemma 3.3): {res.fractional.config_set.Q}, "
          f"support {len(res.fractional.support())}")
    print(f"  integral occurrences (Lemma 3.4): {res.integral.n_occurrences}")
    print()
    print(render_placement(res.placement, width_chars=48, max_rows=20))


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(n, cols)
