#!/usr/bin/env python
"""Quickstart: the three problem variants in one sitting.

Builds a small instance of each variant the paper studies, solves it with
the paper's algorithm, validates the solution, and draws it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    PrecedenceInstance,
    Rect,
    ReleaseInstance,
    StripPackingInstance,
    TaskDAG,
    solve,
    validate_placement,
)
from repro.analysis.render import render_placement
from repro.core.bounds import combined_lower_bound


def plain_strip_packing() -> None:
    print("=" * 68)
    print("1. Plain strip packing (substrate): NFDH")
    print("=" * 68)
    rng = np.random.default_rng(7)
    rects = [
        Rect(rid=i, width=float(rng.uniform(0.15, 0.6)), height=float(rng.uniform(0.2, 1.0)))
        for i in range(10)
    ]
    inst = StripPackingInstance(rects)
    placement = solve(inst, "nfdh")
    validate_placement(inst, placement)
    print(f"lower bound {combined_lower_bound(inst):.3f}, NFDH height {placement.height:.3f}")
    print(render_placement(placement, width_chars=48, max_rows=14))
    print()


def precedence_strip_packing() -> None:
    print("=" * 68)
    print("2. Precedence constraints (Section 2): Algorithm DC")
    print("=" * 68)
    # A small fork-join pipeline: prepare -> {three parallel stages} -> merge.
    rects = [
        Rect(rid="prepare", width=0.8, height=0.5),
        Rect(rid="stage_a", width=0.3, height=1.0),
        Rect(rid="stage_b", width=0.3, height=1.5),
        Rect(rid="stage_c", width=0.3, height=0.75),
        Rect(rid="merge", width=0.6, height=0.5),
    ]
    dag = TaskDAG(
        [r.rid for r in rects],
        [
            ("prepare", "stage_a"),
            ("prepare", "stage_b"),
            ("prepare", "stage_c"),
            ("stage_a", "merge"),
            ("stage_b", "merge"),
            ("stage_c", "merge"),
        ],
    )
    inst = PrecedenceInstance(rects, dag)
    placement = solve(inst, "dc")
    validate_placement(inst, placement)
    print(f"critical path {combined_lower_bound(inst):.3f}, DC height {placement.height:.3f}")
    print(render_placement(placement, width_chars=48, max_rows=14))
    print()


def release_time_strip_packing() -> None:
    print("=" * 68)
    print("3. Release times (Section 3): the APTAS (Algorithm 2)")
    print("=" * 68)
    K = 4
    rects = [
        Rect(rid=0, width=2 / K, height=1.0, release=0.0),
        Rect(rid=1, width=2 / K, height=0.8, release=0.0),
        Rect(rid=2, width=1 / K, height=0.5, release=1.0),
        Rect(rid=3, width=3 / K, height=1.0, release=1.0),
        Rect(rid=4, width=1 / K, height=0.6, release=2.0),
        Rect(rid=5, width=4 / K, height=0.7, release=2.0),
    ]
    inst = ReleaseInstance(rects, K)
    placement = solve(inst, "aptas", eps=1.0)
    validate_placement(inst, placement)
    print(f"release bound {combined_lower_bound(inst):.3f}, APTAS height {placement.height:.3f}")
    print(render_placement(placement, width_chars=48, max_rows=14))
    print()


def engine_batch_and_portfolio() -> None:
    print("=" * 68)
    print("4. The solver engine: instrumented runs, batching, portfolios")
    print("=" * 68)
    from repro import portfolio, run, solve_many
    from repro.analysis.report import reports_table
    from repro.workloads import bursty_release_instance, mixed_instance_suite

    rng = np.random.default_rng(11)

    # One instrumented run: height, bounds, ratio, wall-time in one report.
    rel = bursty_release_instance(12, 4, rng, n_bursts=2)
    report = run(rel)
    print(f"run(): {report.algorithm} height {report.height:.3f}, "
          f"ratio {report.ratio:.3f}, {report.wall_time * 1e3:.1f} ms")

    # Race every release-capable algorithm; the best valid placement wins.
    race = portfolio(rel, jobs=2)
    print(reports_table(race.reports, title="portfolio race", label_header="entrant").render())
    print(f"winner: {race.best.algorithm} at height {race.best.height:.3f}")

    # Stream a mixed workload through the engine (deterministic under jobs>1).
    stream = mixed_instance_suite(6, rng)
    reports = solve_many(stream, jobs=2)
    assert all(r.valid for r in reports)
    print(reports_table(reports, title="solve_many over a mixed stream").render())
    print()


if __name__ == "__main__":
    plain_strip_packing()
    precedence_strip_packing()
    release_time_strip_packing()
    engine_batch_and_portfolio()
    print("done — all three placements validated; engine batch + portfolio ran.")
