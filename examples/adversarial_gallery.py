#!/usr/bin/env python
"""Gallery of the paper's adversarial constructions (Figs. 1 and 2).

Reproduces, at small scale, the two families that show why the paper's
approximation factors are what they are:

* Lemma 2.4 (Fig. 1): AREA and F stay at 1 while every valid packing pays
  Theta(log n) — so no algorithm judged against those bounds can prove an
  o(log n) factor;
* Lemma 2.7 (Fig. 2): uniform-height instances where the optimum is 3x
  both lower bounds — so the factor-3 analysis of Algorithm F is tight
  against them.

Run:  python examples/adversarial_gallery.py
"""

from __future__ import annotations

from repro.analysis.render import render_placement
from repro.analysis.report import Table
from repro.core.bounds import area_bound, critical_path_bound
from repro.core.placement import validate_placement
from repro.precedence.dc import dc_pack
from repro.precedence.shelf_nextfit import shelf_next_fit
from repro.workloads.adversarial import omega_log_n_instance, ratio3_instance


def fig1_gap() -> None:
    print("=" * 68)
    print("Fig. 1 / Lemma 2.4 — the Omega(log n) lower-bound gap")
    print("=" * 68)
    table = Table(["k", "n", "AREA", "F", "packed height", "ratio"])
    for k in range(2, 7):
        adv = omega_log_n_instance(k, eps=1e-7)
        result = dc_pack(adv.instance)
        validate_placement(adv.instance, result.placement)
        lb = max(area_bound(adv.instance), critical_path_bound(adv.instance))
        table.add_row(
            [k, adv.analytic["n"], area_bound(adv.instance),
             critical_path_bound(adv.instance), result.height, result.height / lb]
        )
    table.print()
    print("\nBoth lower bounds sit at 1 while the packed height climbs ~k/2:")
    print("the full-width sliver between consecutive chain elements forces")
    print("shelves, and each chain can reuse at most half the open shelves.\n")

    adv = omega_log_n_instance(3, eps=0.02)
    result = dc_pack(adv.instance)
    print("k=3 instance packed by DC (wide slivers exaggerated to eps=0.02):")
    print(render_placement(result.placement, width_chars=48, max_rows=18))
    print()


def fig2_ratio3() -> None:
    print("=" * 68)
    print("Fig. 2 / Lemma 2.7 — tightness of the factor 3 (uniform height)")
    print("=" * 68)
    table = Table(["k", "n", "AREA", "F", "OPT", "3(F-1)", "3*AREA-3n*eps"])
    eps = 1e-4
    for k in (2, 3, 4, 6):
        adv = ratio3_instance(k, eps=eps)
        a = adv.analytic
        table.add_row([k, a["n"], a["area"], a["F"], a["opt"],
                       3 * (a["F"] - 1), 3 * a["area"] - 3 * a["n"] * eps])
    table.print()
    print("\nThe 2n/3 wide rectangles (width 1/2+eps) cannot pair up, and all")
    print("precede the chain of n/3 narrow rectangles: full serialisation.\n")

    adv = ratio3_instance(3, eps=0.05)
    run = shelf_next_fit(adv.instance)
    validate_placement(adv.instance, run.placement)
    print(f"k=3 instance packed by Algorithm F (height {run.height:g} = OPT):")
    print(render_placement(run.placement, width_chars=48, max_rows=20))


if __name__ == "__main__":
    fig1_gap()
    fig2_ratio3()
