#!/usr/bin/env python
"""Scheduling a JPEG encoding pipeline on a reconfigurable FPGA.

The paper's motivating application (Section 1): image-processing task
graphs with precedence constraints scheduled onto a Virtex-II-style device
where each task occupies a contiguous set of columns.

This example:
 1. builds a synthetic JPEG encoder task graph (fan-out over tiles),
 2. schedules it with Algorithm DC (the O(log n)-approximation),
 3. converts the strip placement to a device schedule,
 4. runs the schedule through the event-driven device simulator,
 5. compares against the greedy list-scheduling baseline,
 6. prints the schedule timeline and per-column utilisation.

Run:  python examples/fpga_jpeg_pipeline.py [n_tiles] [K]
"""

from __future__ import annotations

import sys

from repro.analysis.render import render_placement
from repro.analysis.report import Table
from repro.core.bounds import area_bound, critical_path_bound, dc_guarantee
from repro.core.placement import validate_placement
from repro.fpga.device import Device
from repro.fpga.schedule import schedule_from_placement
from repro.fpga.simulator import simulate
from repro.precedence.dc import dc_pack
from repro.precedence.list_schedule import list_schedule
from repro.workloads.jpeg import jpeg_pipeline_instance


def main(n_tiles: int = 6, K: int = 16) -> None:
    device = Device(K=K)
    inst = jpeg_pipeline_instance(n_tiles, device)
    print(f"JPEG pipeline: {len(inst)} tasks on a {K}-column device, {n_tiles} tiles")
    print(f"  critical path F = {critical_path_bound(inst):.2f}")
    print(f"  total area      = {area_bound(inst):.2f}")
    print(f"  DC guarantee    = {dc_guarantee(len(inst), area_bound(inst), critical_path_bound(inst)):.2f}")
    print()

    # --- Algorithm DC ---------------------------------------------------
    result = dc_pack(inst)
    validate_placement(inst, result.placement)
    schedule = schedule_from_placement(result.placement, device)
    schedule.validate(dag=inst.dag)
    report = simulate(schedule)
    print(f"DC makespan  : {result.height:.2f}  (device utilisation {report.utilisation(K):.1%})")

    # --- baseline ---------------------------------------------------------
    baseline = list_schedule(inst)
    validate_placement(inst, baseline)
    print(f"list-schedule: {baseline.height:.2f}")
    print()

    # --- timeline ---------------------------------------------------------
    timeline = Table(["t", "event", "task", "columns"], title="simulated execution (first 14 events)")
    for e in report.events[:14]:
        timeline.add_row([e.time, e.kind, str(e.tid), f"{e.columns[0]}..{e.columns[1]}"])
    timeline.print()
    print()

    busy = Table(["column", "busy_time", "share"], title="per-column busy time (first 8 columns)")
    for c in range(min(8, K)):
        b = report.column_busy[c]
        busy.add_row([c, b, b / report.makespan if report.makespan else 0.0])
    busy.print()
    print()

    print(render_placement(result.placement, width_chars=64, max_rows=22))


if __name__ == "__main__":
    tiles = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(tiles, cols)
