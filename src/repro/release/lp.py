"""The Lemma 3.3 linear program, assembled and solved with SciPy/HiGHS.

Variables ``x[q][j]`` (height of configuration ``q`` in phase ``j``),
objective ``min sum_q x[q][R]``, constraints:

* packing (3.3): ``sum_q x[q][j] <= rho_{j+1} - rho_j`` for ``j < R``
  (phase ``R`` is unbounded above);
* covering (3.4): for every suffix ``k`` and width ``i``:
  ``sum_{j>=k} (A . X_j)_i >= sum_{j>=k} b^i_j``;
* non-negativity.

HiGHS's simplex returns a *basic* optimal solution, so the support-size
bound of Lemma 3.3 — at most ``(W + 1) * (R + 1)`` distinct occurrences of
configurations — holds for the solution object and is asserted in tests.

The module also derives the phase boundaries and demand matrix from an
instance, and exposes :func:`optimal_fractional_height` — the quantity
``OPT_f(P(R,W)) = rho_R + LP*`` that upper- and lower-bounds everything in
Section 3's analysis chain.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ..core import tol
from ..core.errors import SolverError
from ..core.instance import ReleaseInstance
from .configurations import ConfigurationSet, enumerate_configurations
from .fractional import FractionalSolution

__all__ = [
    "phase_boundaries",
    "build_demands",
    "solve_configuration_lp",
    "solve_fractional",
    "optimal_fractional_height",
]


def phase_boundaries(instance: ReleaseInstance) -> tuple[float, ...]:
    """Phase starts: ``rho_0 = 0`` plus every distinct release value."""
    values = sorted({r.release for r in instance.rects})
    if not values or values[0] > 0.0:
        values = [0.0] + values
    return tuple(values)


def build_demands(
    instance: ReleaseInstance,
    widths: tuple[float, ...],
    boundaries: tuple[float, ...],
) -> np.ndarray:
    """The demand matrix ``b^i_j``: summed heights of rectangles of width
    ``widths[i]`` released at ``boundaries[j]``.

    Every rectangle must match a width and a boundary exactly (the grouping
    and rounding reductions guarantee this); a mismatch raises
    :class:`SolverError` — it means the caller skipped a reduction.
    """
    W, P = len(widths), len(boundaries)
    demands = np.zeros((W, P))
    w_index = {round(w, 12): i for i, w in enumerate(widths)}
    b_index = {round(b, 12): j for j, b in enumerate(boundaries)}
    for r in instance.rects:
        wi = w_index.get(round(r.width, 12))
        if wi is None:
            raise SolverError(f"rect {r.rid!r}: width {r.width!r} not in the LP width list")
        bj = b_index.get(round(r.release, 12))
        if bj is None:
            raise SolverError(f"rect {r.rid!r}: release {r.release!r} not a phase boundary")
        demands[wi, bj] += r.height
    return demands


def solve_configuration_lp(
    config_set: ConfigurationSet,
    boundaries: tuple[float, ...],
    demands: np.ndarray,
) -> FractionalSolution:
    """Assemble and solve the LP; returns a verified fractional solution."""
    Q = config_set.Q
    P = len(boundaries)
    W = len(config_set.widths)
    if demands.shape != (W, P):
        raise SolverError(f"demands shape {demands.shape} != ({W}, {P})")
    if Q == 0:
        raise SolverError("empty configuration set")
    n = Q * P  # variable layout: x[q, j] at index q * P + j

    c = np.zeros(n)
    c[np.arange(Q) * P + (P - 1)] = 1.0  # minimise phase-R usage

    A_rows: list[np.ndarray] = []
    b_vals: list[float] = []

    # (3.3) packing constraints for phases 0..P-2.
    for j in range(P - 1):
        row = np.zeros(n)
        row[np.arange(Q) * P + j] = 1.0
        A_rows.append(row)
        b_vals.append(boundaries[j + 1] - boundaries[j])

    # (3.4) covering constraints: -(suffix supply) <= -(suffix demand).
    A_mat = config_set.matrix  # (W, Q)
    for k in range(P):
        for i in range(W):
            row = np.zeros(n)
            for j in range(k, P):
                row[np.arange(Q) * P + j] -= A_mat[i, :]
            A_rows.append(row)
            b_vals.append(-float(demands[i, k:].sum()))

    A_ub = np.vstack(A_rows) if A_rows else None
    b_ub = np.array(b_vals) if b_vals else None

    res = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    if not res.success:
        raise SolverError(f"configuration LP failed: {res.message}")

    x = np.maximum(res.x, 0.0).reshape(Q, P)
    sol = FractionalSolution(
        config_set=config_set,
        boundaries=tuple(boundaries),
        x=x,
        demands=demands,
    )
    sol.verify()
    return sol


def solve_fractional(
    instance: ReleaseInstance,
    *,
    max_configs: int = 500_000,
) -> FractionalSolution:
    """End-to-end: enumerate configurations over the instance's distinct
    widths, build demands, solve.  The instance must already have its final
    width/release structure (i.e. be a ``P(R,W)``-shaped instance — or any
    instance whose distinct widths/releases are few enough to afford)."""
    widths = tuple(sorted({r.width for r in instance.rects}, reverse=True))
    config_set = enumerate_configurations(widths, max_configs=max_configs)
    boundaries = phase_boundaries(instance)
    demands = build_demands(instance, config_set.widths, boundaries)
    return solve_configuration_lp(config_set, boundaries, demands)


def optimal_fractional_height(
    instance: ReleaseInstance, *, max_configs: int = 500_000
) -> float:
    """``OPT_f`` of the instance: ``rho_R + LP*`` (Lemma 3.3)."""
    return solve_fractional(instance, max_configs=max_configs).height
