"""Lemma 3.1 — bounding the number of distinct release times.

Given an error parameter ``eps_r`` let ``rmax = max_s r_s`` (a lower bound
on any solution, as some rectangle only starts then) and ``delta = eps_r *
rmax``.  The grid points are ``rho_j = j * delta``.  Two derived instances:

* ``P_down`` — each release rounded *down* to the grid;
* ``P_up``   — ``P_down`` shifted up by one grid step (rounded down, plus
  ``delta``).

Any solution of ``P_down`` lifts by ``delta`` to one of ``P_up`` and the
original releases are sandwiched between the two, giving::

    OPT_f(P_up) <= OPT_f(P) + delta = OPT_f(P) + eps_r * rmax <= (1 + eps_r) * OPT_f(P)

``P_up`` is the paper's ``P(R)``: at most ``R = ceil(1/eps_r)`` (+1 boundary
case) distinct positive release times, every release at or above the
original — so a valid placement for ``P_up`` is valid for ``P`` verbatim.
"""

from __future__ import annotations

import math

from ..core import tol
from ..core.errors import InvalidInstanceError
from ..core.instance import ReleaseInstance
from ..core.rectangle import Rect

__all__ = ["round_releases_up", "round_releases_down", "release_grid"]


def release_grid(instance: ReleaseInstance, eps_r: float) -> float:
    """The grid step ``delta = eps_r * rmax`` (0 when all releases are 0)."""
    if eps_r <= 0.0:
        raise InvalidInstanceError(f"eps_r must be positive, got {eps_r}")
    return eps_r * instance.rmax


def round_releases_down(instance: ReleaseInstance, eps_r: float) -> ReleaseInstance:
    """The ``P_down`` instance: releases rounded down to the grid.

    Release values become ``delta * floor(r / delta)``; dimensions and ids
    are untouched, preserving the paper's one-to-one correspondence.
    """
    delta = release_grid(instance, eps_r)
    if delta == 0.0:
        return instance
    rects = [
        r.replace(release=delta * math.floor(r.release / delta + tol.ATOL))
        for r in instance.rects
    ]
    return instance.with_rects(rects)


def round_releases_up(instance: ReleaseInstance, eps_r: float) -> ReleaseInstance:
    """The ``P_up`` = ``P(R)`` instance of Lemma 3.1.

    Every release becomes ``delta * (floor(r / delta) + 1)`` — strictly above
    the original, on the grid, with at most ``ceil(1/eps_r) + 1`` distinct
    values.  When all releases are zero the instance is returned unchanged
    (there is nothing to round and zero remains a valid release).
    """
    delta = release_grid(instance, eps_r)
    if delta == 0.0:
        return instance
    rects = [
        r.replace(release=delta * (math.floor(r.release / delta + tol.ATOL) + 1))
        for r in instance.rects
    ]
    out = instance.with_rects(rects)
    n_distinct = len({r.release for r in out.rects})
    budget = math.ceil(1.0 / eps_r) + 1
    assert n_distinct <= budget, (
        f"rounding produced {n_distinct} release values > budget {budget}"
    )
    return out
