"""Fractional solutions of the configuration LP (Lemma 3.3).

A fractional solution assigns to every (configuration, phase) pair a
non-negative height ``x[q][j]``.  Its interpretation: during phase ``j``
(the band between consecutive release boundaries) the strip's cross-section
is configuration ``q`` for a total height ``x[q][j]``; rectangles may be
sliced horizontally and split across occurrences, which is exactly the
fractional relaxation the paper defines at the start of Section 3.

The verifier checks the three LP constraint families *semantically*
(non-negativity, per-phase capacity, suffix covering) rather than trusting
the solver, and computes the realised fractional height
``rho_R + sum_q x[q][R]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import tol
from ..core.errors import SolverError
from .configurations import ConfigurationSet

__all__ = ["FractionalSolution"]


@dataclass(frozen=True)
class FractionalSolution:
    """LP solution: ``x[q, j]`` heights over configurations x phases.

    ``boundaries`` are the phase starts ``rho_0 = 0 < rho_1 < ... < rho_R``
    (the final phase is unbounded above); ``demands[i, j]`` is the paper's
    ``b^i_j`` — total height of width-``i`` rectangles released at
    ``rho_j``.
    """

    config_set: ConfigurationSet
    boundaries: tuple[float, ...]
    x: np.ndarray           # shape (Q, R+1)
    demands: np.ndarray     # shape (W, R+1)

    @property
    def n_phases(self) -> int:
        return len(self.boundaries)

    @property
    def objective(self) -> float:
        """Height packed above the last release boundary."""
        return float(self.x[:, -1].sum())

    @property
    def height(self) -> float:
        """Fractional packing height ``rho_R + objective`` (Lemma 3.3)."""
        return self.boundaries[-1] + self.objective

    def support(self) -> list[tuple[int, int, float]]:
        """Distinct occurrences: ``(phase j, config q, height)`` with
        positive height — Lemma 3.3 bounds their count by
        ``(W + 1) * (R + 1)``."""
        out = []
        Q, P = self.x.shape
        for j in range(P):
            for q in range(Q):
                if self.x[q, j] > tol.ATOL:
                    out.append((j, q, float(self.x[q, j])))
        return out

    def phase_gap(self, j: int) -> float:
        """Capacity of phase ``j`` (infinite for the last phase)."""
        if j == self.n_phases - 1:
            return float("inf")
        return self.boundaries[j + 1] - self.boundaries[j]

    def verify(self, atol: float = 1e-6) -> None:
        """Raise :class:`SolverError` on any constraint violation."""
        Q, P = self.x.shape
        if P != self.n_phases:
            raise SolverError(f"x has {P} phases, boundaries give {self.n_phases}")
        if (self.x < -atol).any():
            raise SolverError("negative configuration height")
        # (3.3) packing: per-phase capacity.
        for j in range(P - 1):
            used = float(self.x[:, j].sum())
            if used > self.phase_gap(j) + atol:
                raise SolverError(
                    f"phase {j} over capacity: {used:g} > {self.phase_gap(j):g}"
                )
        # (3.4) covering: suffix supply >= suffix demand per width.
        A = self.config_set.matrix           # (W, Q)
        supply = A @ self.x                  # (W, P) heights per width/phase
        for k in range(P):
            s = supply[:, k:].sum(axis=1)
            d = self.demands[:, k:].sum(axis=1)
            if (s < d - atol).any():
                i = int(np.argmax(d - s))
                raise SolverError(
                    f"covering violated at suffix k={k}, width index {i}: "
                    f"supply {s[i]:g} < demand {d[i]:g}"
                )
