"""Online scheduling with release times — the operating-system view.

The paper motivates release times through operating systems for
reconfigurable platforms (Steiger-Walder-Platzner, ref [23]): tasks arrive
over time and the scheduler must commit each placement *without seeing
future arrivals*.  This module provides that online counterpart to the
offline algorithms of Section 3:

:func:`online_first_fit` processes tasks in release order and assigns each,
immediately and irrevocably, to the contiguous column window that lets it
start earliest (ties: leftmost).  This is the natural online policy on a
K-column device and the baseline the offline APTAS is measured against in
the E10/A4 benchmarks — the gap between them is the *price of not knowing
the future*.

The scheduler works on the column grid: widths must be whole numbers of
columns (quantise first if needed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import InvalidInstanceError
from ..core.instance import ReleaseInstance
from ..core.placement import Placement

__all__ = ["OnlineScheduleResult", "online_first_fit"]


@dataclass(frozen=True)
class OnlineScheduleResult:
    """Placement plus the per-task commit trace (arrival order)."""

    placement: Placement
    commit_order: tuple


def online_first_fit(instance: ReleaseInstance) -> OnlineScheduleResult:
    """Schedule ``instance`` online, committing tasks in release order.

    For each arriving task needing ``c`` contiguous columns, every window
    ``[j, j+c)`` is scored by the earliest feasible start
    ``max(release, max_{col in window} free[col])``; the earliest (then
    leftmost) window wins and its columns' free times advance to the
    task's finish.  Decisions never look at unreleased tasks, and within
    one release batch ties are broken by taller-first (a common OS policy:
    long jobs first when they arrive together).
    """
    K = instance.K
    free = [0.0] * K
    placement = Placement()
    order = sorted(
        instance.rects, key=lambda r: (r.release, -r.height, str(r.rid))
    )
    committed = []
    for r in order:
        c_f = r.width * K
        c = round(c_f)
        if abs(c_f - c) > 1e-6 or c < 1:
            raise InvalidInstanceError(
                f"online scheduler needs whole-column widths; rect {r.rid!r} "
                f"has width {r.width!r} on a {K}-column device"
            )
        best_start = None
        best_col = None
        for j in range(K - c + 1):
            start = max([r.release] + free[j : j + c])
            if best_start is None or start < best_start - 1e-12:
                best_start, best_col = start, j
        assert best_start is not None and best_col is not None
        placement.place(r, best_col / K, best_start)
        for col in range(best_col, best_col + c):
            free[col] = best_start + r.height
        committed.append(r.rid)
    return OnlineScheduleResult(placement=placement, commit_order=tuple(committed))
