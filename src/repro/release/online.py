"""Online scheduling with release times — the operating-system view.

The paper motivates release times through operating systems for
reconfigurable platforms (Steiger-Walder-Platzner, ref [23]): tasks arrive
over time and the scheduler must commit each placement *without seeing
future arrivals*.  This module provides that online counterpart to the
offline algorithms of Section 3:

:func:`online_first_fit` processes tasks in release order and assigns each,
immediately and irrevocably, to the contiguous column window that lets it
start earliest (ties: leftmost).  This is the natural online policy on a
K-column device and the baseline the offline APTAS is measured against in
the E10/A4 benchmarks — the gap between them is the *price of not knowing
the future*.

The scheduler works on the column grid: widths must be whole numbers of
columns (quantise first if needed), checked with the shared
:func:`repro.core.tol.nearest_int` tolerance discipline.

The implementation lives in :mod:`repro.sim`: the decision rule is the
:class:`~repro.sim.policies.FirstFit` policy and this function is a replay
of the instance through the event loop — one of several pluggable policies
(``best_fit_column``, ``shelf_online``) the simulator can drive over the
same stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import ReleaseInstance
from ..core.placement import Placement

__all__ = ["OnlineScheduleResult", "online_first_fit"]


@dataclass(frozen=True)
class OnlineScheduleResult:
    """Placement plus the per-task commit trace (arrival order)."""

    placement: Placement
    commit_order: tuple


def online_first_fit(instance: ReleaseInstance) -> OnlineScheduleResult:
    """Schedule ``instance`` online, committing tasks in release order.

    For each arriving task needing ``c`` contiguous columns, every window
    ``[j, j+c)`` is scored by the earliest feasible start
    ``max(release, max_{col in window} free[col])``; the earliest (then
    leftmost) window wins and its columns' free times advance to the
    task's finish.  Decisions never look at unreleased tasks, and within
    one release batch ties are broken by taller-first (a common OS policy:
    long jobs first when they arrive together).
    """
    from ..sim import simulate_instance

    trace = simulate_instance(instance, "first_fit")
    return OnlineScheduleResult(
        placement=trace.placement,
        commit_order=tuple(e.rid for e in trace.events),
    )
