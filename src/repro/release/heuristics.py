"""Release-time baselines the APTAS is compared against (experiment E10).

* :func:`release_shelf_pack` — batch rectangles by release time and pack
  each batch with NFDH starting at ``max(release, current top)``.  Simple,
  fast, and the natural "operating system" policy for reconfigurable
  devices (cf. Steiger-Walder-Platzner, ref [23] in the paper).
* :func:`release_bottom_left` — skyline bottom-left lifted to honour
  releases (re-exported from :mod:`repro.packing.bottom_left`).

Neither has an approximation guarantee with release times; the benchmark
charts where the APTAS's (1+eps) asymptotics overtake them.
"""

from __future__ import annotations

from ..core.instance import ReleaseInstance
from ..core.placement import Placement
from ..packing.bottom_left import bottom_left_release
from ..packing.nfdh import nfdh

__all__ = ["release_shelf_pack", "release_bottom_left"]


def release_shelf_pack(instance: ReleaseInstance) -> Placement:
    """Batch-by-release NFDH.

    Rectangles are grouped by release time (ascending); each batch is packed
    with NFDH as a block starting at the maximum of its release time and the
    top of everything placed so far.  Valid by construction: batches never
    interleave vertically.
    """
    placement = Placement()
    top = 0.0
    for release, rects in instance.release_classes().items():
        start = max(release, top)
        result = nfdh(rects, y=start)
        placement.merge(result.placement)
        top = start + result.extent
    return placement


def release_bottom_left(instance: ReleaseInstance) -> Placement:
    """Skyline bottom-left honouring release times (see
    :func:`repro.packing.bottom_left.bottom_left_release`)."""
    return bottom_left_release(instance.rects).placement
