"""Configuration enumeration for the Lemma 3.3 linear program.

A *configuration* is a multiset of widths (drawn from the <= W distinct
widths of ``P(R,W)``) whose sum is at most 1 — one feasible horizontal
cross-section of the strip.  Because every width is at least ``1/K`` a
configuration holds at most ``K`` rectangles, so the configuration count is
exponential in ``K`` only (the paper's stated running-time caveat).

Configurations are represented as count vectors over the sorted width list;
the module enumerates all *maximal-or-not* multisets via DFS with a
monotone width order (non-increasing), which enumerates each multiset
exactly once.  ``max_configs`` guards against parameter choices that would
explode (raise, never silently truncate — a truncated configuration set
would silently break the LP's optimality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..core import tol
from ..core.errors import SolverError

__all__ = ["Configuration", "ConfigurationSet", "enumerate_configurations"]


@dataclass(frozen=True)
class Configuration:
    """One multiset of widths; ``counts[i]`` copies of ``widths[i]``."""

    counts: tuple[int, ...]
    total_width: float

    def n_items(self) -> int:
        return sum(self.counts)

    def is_empty(self) -> bool:
        return self.n_items() == 0


@dataclass(frozen=True)
class ConfigurationSet:
    """All configurations over a width list, plus the occurrence matrix.

    ``matrix`` is the paper's ``A``: shape ``(W, Q)``, entry ``(i, q)`` the
    number of occurrences of width ``i`` in configuration ``q``.
    """

    widths: tuple[float, ...]
    configs: tuple[Configuration, ...]

    @property
    def Q(self) -> int:
        return len(self.configs)

    @property
    def matrix(self) -> np.ndarray:
        A = np.zeros((len(self.widths), len(self.configs)), dtype=float)
        for q, cfg in enumerate(self.configs):
            for i, c in enumerate(cfg.counts):
                A[i, q] = c
        return A

    def config_index(self, counts: Sequence[int]) -> int:
        """Index of the configuration with the given count vector."""
        target = tuple(counts)
        for q, cfg in enumerate(self.configs):
            if cfg.counts == target:
                return q
        raise KeyError(f"no configuration with counts {target}")


def enumerate_configurations(
    widths: Sequence[float],
    *,
    include_empty: bool = False,
    max_configs: int = 500_000,
) -> ConfigurationSet:
    """Enumerate every multiset of ``widths`` with sum <= 1.

    Parameters
    ----------
    widths:
        Distinct width values (duplicates are rejected); any order.
    include_empty:
        Whether to include the empty configuration (the LP never needs it —
        empty height contributes nothing to covering and only pads phases).
    max_configs:
        Hard cap; exceeded -> :class:`SolverError` (never truncates).
    """
    ws = sorted(set(float(w) for w in widths), reverse=True)
    if len(ws) != len(list(widths)):
        raise SolverError("width list for configuration enumeration must be distinct")
    for w in ws:
        if not 0.0 < w <= 1.0 + tol.ATOL:
            raise SolverError(f"configuration widths must lie in (0,1], got {w}")

    configs: list[Configuration] = []
    counts = [0] * len(ws)

    def dfs(start: int, remaining: float) -> None:
        if len(configs) > max_configs:
            raise SolverError(
                f"configuration count exceeds max_configs={max_configs}; "
                "reduce W/K or raise the cap"
            )
        for i in range(start, len(ws)):
            if tol.leq(ws[i], remaining):
                counts[i] += 1
                configs.append(
                    Configuration(
                        counts=tuple(counts),
                        total_width=float(np.dot(counts, ws)),
                    )
                )
                dfs(i, remaining - ws[i])
                counts[i] -= 1

    dfs(0, 1.0)
    if include_empty:
        configs.insert(0, Configuration(counts=tuple([0] * len(ws)), total_width=0.0))
    return ConfigurationSet(widths=tuple(ws), configs=tuple(configs))
