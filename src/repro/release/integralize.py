"""Lemma 3.4 — converting a fractional LP solution to an integral packing.

For every positive variable ``x[q][j]`` (an *occurrence* of configuration
``q`` in phase ``j``) reserve a full-width slab; inside it every occurrence
of width ``w_i`` in ``q`` becomes a *column* of width ``w_i`` and capacity
``x[q][j]``.  Columns are greedily filled with whole rectangles of matching
width: the last rectangle may overflow the capacity by less than 1 (heights
are at most 1), the slab expands to cover its columns, and everything above
shifts up.  With ``k`` occurrences the final height is at most
``OPT_f + k``; Lemma 3.3 bounds ``k <= (W + 1)(R + 1)``, giving the additive
term of Theorem 3.5.

Rectangle-to-column assignment processes phases from *latest to earliest*
and always picks the available rectangle with the latest release (ties:
tallest first).  The suffix-covering constraints guarantee this greedy
assigns every rectangle (the classic staircase-transportation argument);
the implementation still verifies exhaustively and raises on any leftover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..core import tol
from ..core.errors import SolverError
from ..core.instance import ReleaseInstance
from ..core.placement import Placement
from ..core.rectangle import Rect
from .fractional import FractionalSolution

__all__ = ["IntegralizeResult", "integralize"]

Node = Hashable


@dataclass(frozen=True)
class ColumnFill:
    """One column: which rectangles it received, bottom-up."""

    phase: int
    config: int
    width_index: int
    capacity: float
    rects: tuple[Rect, ...]

    @property
    def used_height(self) -> float:
        return sum(r.height for r in self.rects)


@dataclass
class IntegralizeResult:
    """Integral packing plus the per-column trace (for tests/rendering)."""

    placement: Placement
    columns: list[ColumnFill] = field(default_factory=list)
    n_occurrences: int = 0

    @property
    def height(self) -> float:
        return self.placement.height


def integralize(
    solution: FractionalSolution,
    instance: ReleaseInstance,
) -> IntegralizeResult:
    """Convert ``solution`` into an integral placement of ``instance``.

    ``instance`` must be the same ``P(R,W)``-shaped instance the LP was
    built from: every rectangle's width must be one of the solution's width
    values and every release one of its phase boundaries.
    """
    widths = solution.config_set.widths
    boundaries = solution.boundaries
    P = len(boundaries)
    w_index = {round(w, 12): i for i, w in enumerate(widths)}
    b_index = {round(b, 12): j for j, b in enumerate(boundaries)}

    # Pools: per width index, rectangles grouped by release phase.
    pools: dict[int, dict[int, list[Rect]]] = {i: {} for i in range(len(widths))}
    for r in instance.rects:
        wi = w_index.get(round(r.width, 12))
        bj = b_index.get(round(r.release, 12))
        if wi is None or bj is None:
            raise SolverError(
                f"rect {r.rid!r} (w={r.width}, r={r.release}) does not match the LP "
                "width/boundary structure — run the reductions first"
            )
        pools[wi].setdefault(bj, []).append(r)
    # Deterministic pop order: tallest first within a release class.
    for wi in pools:
        for bj in pools[wi]:
            pools[wi][bj].sort(key=lambda r: (r.height, str(r.rid)))  # pop() = tallest

    support = solution.support()  # (phase, config, height), ascending phase

    # ------------------------------------------------------------------
    # 1. assign rectangles to columns, phases descending, latest release
    #    first.
    # ------------------------------------------------------------------
    assignments: dict[tuple[int, int, int, int], list[Rect]] = {}

    def take(wi: int, max_phase: int) -> Rect | None:
        """Pop the available width-``wi`` rectangle with the latest release
        <= phase ``max_phase`` (then tallest)."""
        classes = pools[wi]
        for bj in sorted(classes, reverse=True):
            if bj <= max_phase and classes[bj]:
                return classes[bj].pop()
        return None

    for j, q, h in sorted(support, key=lambda t: -t[0]):
        counts = solution.config_set.configs[q].counts
        for wi, cnt in enumerate(counts):
            for occ in range(cnt):
                filled = 0.0
                got: list[Rect] = []
                while tol.lt(filled, h):
                    r = take(wi, j)
                    if r is None:
                        break
                    got.append(r)
                    filled += r.height
                assignments[(j, q, wi, occ)] = got

    leftover = sum(len(v) for cls in pools.values() for v in cls.values())
    if leftover:
        raise SolverError(
            f"{leftover} rectangles unassigned after greedy fill — covering "
            "constraints of the fractional solution do not hold"
        )

    # ------------------------------------------------------------------
    # 2. realise the placement bottom-up, expanding reserved areas.
    # ------------------------------------------------------------------
    result = IntegralizeResult(placement=Placement())
    result.n_occurrences = len(support)
    cur_top = 0.0
    for j, q, h in support:  # ascending phase, stable config order
        y0 = max(boundaries[j], cur_top)
        counts = solution.config_set.configs[q].counts
        x_cursor = 0.0
        occ_top = y0
        for wi, cnt in enumerate(counts):
            for occ in range(cnt):
                col_rects = assignments.get((j, q, wi, occ), [])
                y = y0
                for r in col_rects:
                    result.placement.place(r, tol.clamp(x_cursor, 0.0, 1.0 - r.width), y)
                    y += r.height
                result.columns.append(
                    ColumnFill(
                        phase=j,
                        config=q,
                        width_index=wi,
                        capacity=h,
                        rects=tuple(col_rects),
                    )
                )
                occ_top = max(occ_top, y)
                x_cursor += widths[wi]
        if tol.gt(x_cursor, 1.0):
            raise SolverError(f"configuration {q} wider than the strip: {x_cursor}")
        cur_top = occ_top
    return result
