"""Algorithm 2 — the asymptotic PTAS for strip packing with release times.

Pipeline (Theorem 3.5), for input instance ``P`` and error ``eps``::

    eps' = eps / 3
    R    = ceil(1 / eps')                     # release-time budget
    W    = ceil(1 / eps') * K * (R + 1)       # width budget
    P(R)    = round_releases_up(P, eps')      # Lemma 3.1
    P(R,W)  = group_widths(P(R), W)           # Lemma 3.2
    x*      = configuration LP on P(R,W)      # Lemma 3.3
    S(R,W)  = integralize(x*)                 # Lemma 3.4

yielding ``S(R,W) <= (1 + eps) * OPT_f(P) + (W + 1)(R + 1)``.  Because the
reductions only *raise* releases and *widen* widths while preserving ids,
``S(R,W)``'s coordinates are reused verbatim for the original rectangles,
giving a valid solution of ``P``.

The theoretical ``W`` grows like ``K / eps^2`` and the configuration count
is exponential in ``K``; the implementation computes the faithful defaults
but accepts explicit ``R``/``W`` overrides so experiments can chart quality
against budget on tractable sizes (the standard engineering
parameterization for APTAS reproductions — see DESIGN.md).  ``W`` is always
snapped to a feasible multiple of the realised number of release classes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import InvalidInstanceError
from ..core.instance import ReleaseInstance
from ..core.placement import Placement
from .fractional import FractionalSolution
from .grouping import GroupingResult, group_widths
from .integralize import IntegralizeResult, integralize
from .lp import solve_fractional
from .rounding import round_releases_up

__all__ = ["APTASResult", "aptas_parameters", "aptas"]


@dataclass(frozen=True)
class APTASResult:
    """Everything Algorithm 2 produced, end to end.

    ``placement`` is the final solution *of the original instance*; the
    intermediate artifacts are retained because the experiments verify each
    lemma's inequality on them.
    """

    placement: Placement
    height: float
    eps: float
    R: int
    W: int
    rounded: ReleaseInstance          # P(R)
    grouping: GroupingResult          # P(R,W) and its trace
    fractional: FractionalSolution    # LP solution on P(R,W)
    integral: IntegralizeResult       # S(R,W)

    @property
    def additive_budget(self) -> float:
        """The Theorem 3.5 additive term ``(W + 1) * (R + 1)`` — with the
        realised occurrence count (<= the bound) available via
        ``integral.n_occurrences``."""
        return (self.W + 1) * (self.R + 1)


def aptas_parameters(eps: float, K: int) -> tuple[int, int]:
    """The faithful Algorithm-2 parameters ``(R, W)`` for error ``eps``."""
    if eps <= 0.0:
        raise InvalidInstanceError(f"eps must be positive, got {eps}")
    eps_prime = eps / 3.0
    R = math.ceil(1.0 / eps_prime)
    W = math.ceil(1.0 / eps_prime) * K * (R + 1)
    return R, W


def aptas(
    instance: ReleaseInstance,
    eps: float,
    *,
    W: int | None = None,
    groups_per_class: int | None = None,
    max_configs: int = 500_000,
) -> APTASResult:
    """Run Algorithm 2 on ``instance`` with error parameter ``eps``.

    Parameters
    ----------
    instance:
        Must satisfy the standard assumptions (``h <= 1``, ``w >= 1/K``);
        checked up front.
    eps:
        Target asymptotic error; ``eps' = eps/3`` drives both reductions.
    W:
        Optional explicit width budget (snapped up to a multiple of the
        realised release-class count).  Default: the faithful
        ``ceil(1/eps') * K * (R+1)``.
    groups_per_class:
        Alternative to ``W``: directly set ``G = W / n_classes``.
    max_configs:
        Safety cap on configuration enumeration (raises, never truncates).
    """
    instance.check_aptas_assumptions()
    eps_prime = eps / 3.0
    R_budget, W_default = aptas_parameters(eps, instance.K)

    # Lemma 3.1 — at most ceil(1/eps') (+1) distinct release times.
    rounded = round_releases_up(instance, eps_prime)
    n_classes = max(1, len({r.release for r in rounded.rects}))

    # Lemma 3.2 — width budget, snapped to a multiple of the class count.
    if groups_per_class is not None:
        if groups_per_class <= 0:
            raise InvalidInstanceError("groups_per_class must be positive")
        W_eff = groups_per_class * n_classes
    else:
        W_req = W if W is not None else W_default
        W_eff = max(n_classes, (W_req // n_classes) * n_classes)
        if W_eff < W_req:
            W_eff += n_classes
    grouping = group_widths(rounded, W_eff)

    # Lemma 3.3 — configuration LP on P(R,W).
    fractional = solve_fractional(grouping.instance, max_configs=max_configs)

    # Lemma 3.4 — integral conversion.
    integral = integralize(fractional, grouping.instance)

    # Coordinates transfer verbatim to the original rectangles: the grouped
    # rectangle at (x, y) is wider and later-released than the original, so
    # the original fits at the same spot.
    by_id = instance.by_id()
    placement = Placement()
    for rid, pr in integral.placement.items():
        placement.place(by_id[rid], pr.x, pr.y)

    return APTASResult(
        placement=placement,
        height=placement.height,
        eps=eps,
        R=R_budget,
        W=W_eff,
        rounded=rounded,
        grouping=grouping,
        fractional=fractional,
        integral=integral,
    )
