"""Section 3: the APTAS for strip packing with release times and its
reduction pipeline (rounding, grouping, configuration LP, integralization),
plus the heuristic baselines."""

from .aptas import APTASResult, aptas, aptas_parameters
from .configurations import Configuration, ConfigurationSet, enumerate_configurations
from .fractional import FractionalSolution
from .grouping import GroupedClass, GroupingResult, group_widths
from .heuristics import release_bottom_left, release_shelf_pack
from .online import OnlineScheduleResult, online_first_fit
from .integralize import IntegralizeResult, integralize
from .lp import (
    build_demands,
    optimal_fractional_height,
    phase_boundaries,
    solve_configuration_lp,
    solve_fractional,
)
from .rounding import release_grid, round_releases_down, round_releases_up

__all__ = [
    "aptas",
    "aptas_parameters",
    "APTASResult",
    "round_releases_up",
    "round_releases_down",
    "release_grid",
    "group_widths",
    "GroupingResult",
    "GroupedClass",
    "enumerate_configurations",
    "Configuration",
    "ConfigurationSet",
    "solve_fractional",
    "solve_configuration_lp",
    "optimal_fractional_height",
    "phase_boundaries",
    "build_demands",
    "FractionalSolution",
    "integralize",
    "IntegralizeResult",
    "release_shelf_pack",
    "release_bottom_left",
    "online_first_fit",
    "OnlineScheduleResult",
]
