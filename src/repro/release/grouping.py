"""Lemma 3.2 — bounding the number of distinct widths (linear grouping).

The instance ``P(R)`` is partitioned into release classes ``P_i`` (all
rectangles released at ``rho_i``).  Per class, build the *stacking* (the
rectangles left-justified, non-increasing width bottom-up, Fig. 3) and cut
it with ``G = W / n_classes`` horizontal lines at heights
``l * H(P_i) / G``.  A rectangle is a **threshold** rectangle when a cut
line passes through its interior or aligns with its base; thresholds start
*groups*, and every rectangle's width is rounded up to its group's threshold
width ``w_{i,l}``.

The resulting ``P(R,W)`` has at most ``G`` distinct widths per class —
``W`` in total — and the containment chain of Fig. 4::

    P_inf ⊆ P(R) ⊆ P(R,W) ⊆ P_sup

(with ``P_inf``/``P_sup`` the ``G``-rectangle staircase under/over-
approximations) yields::

    OPT_f(P(R,W)) <= (1 + K * n_classes / W) * OPT_f(P(R))

because ``P_sup`` exceeds ``P_inf`` by one ``H(P_i) * (R+1)/W`` slab of
width <= 1 per class and the width floor ``1/K`` converts stacked height to
area: ``H(P(R))/K <= AREA <= OPT_f``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core import tol
from ..core.errors import InvalidInstanceError
from ..core.instance import ReleaseInstance
from ..core.rectangle import Rect
from ..geometry.stacking import Stacking, stack

__all__ = ["GroupedClass", "GroupingResult", "group_widths"]


@dataclass(frozen=True)
class GroupedClass:
    """Grouping outcome for one release class.

    ``group_of`` maps rid -> group index; ``thresholds`` holds the group
    widths ``w_{i,l}`` in stacking order (non-increasing).
    """

    release: float
    stacking: Stacking
    thresholds: tuple[float, ...]
    group_of: dict

    @property
    def n_groups(self) -> int:
        return len(self.thresholds)


@dataclass(frozen=True)
class GroupingResult:
    """Outcome of the Lemma 3.2 reduction.

    ``instance`` is ``P(R,W)`` (same rids, widths rounded up);
    ``sup_rects``/``inf_rects`` realise the ``P_sup``/``P_inf`` staircase
    instances used by the containment proof (ids are synthetic).
    """

    instance: ReleaseInstance
    classes: tuple[GroupedClass, ...]
    sup_rects: tuple[Rect, ...]
    inf_rects: tuple[Rect, ...]

    @property
    def n_distinct_widths(self) -> int:
        return len({r.width for r in self.instance.rects})


def group_widths(instance: ReleaseInstance, W: int) -> GroupingResult:
    """Apply the Lemma 3.2 grouping with a budget of ``W`` distinct widths.

    ``W`` must be a positive multiple of the number of release classes
    (the paper requires ``W`` to be an integer multiple of ``R + 1``).
    """
    classes = instance.release_classes()
    n_classes = max(1, len(classes))
    if W <= 0 or W % n_classes != 0:
        raise InvalidInstanceError(
            f"W must be a positive multiple of the number of release classes "
            f"({n_classes}), got {W}"
        )
    G = W // n_classes

    new_rects: dict = {}
    grouped: list[GroupedClass] = []
    sup_rects: list[Rect] = []
    inf_rects: list[Rect] = []

    for ci, (release, rects) in enumerate(classes.items()):
        st = stack(rects)
        H = st.height
        # Stacking order mirrors geometry.stacking.stack's deterministic sort.
        ordered = sorted(rects, key=lambda r: (-r.width, -r.height, str(r.rid)))
        cuts = [ell * H / G for ell in range(G)]
        # Walk the stack bottom-up; a rectangle is a threshold if any cut
        # line lands in [base, base + h) — interior or exactly at its base.
        thresholds: list[float] = []
        group_of: dict = {}
        y = 0.0
        cut_idx = 0
        for r in ordered:
            is_threshold = False
            while cut_idx < len(cuts) and tol.lt(cuts[cut_idx], y + r.height):
                # cut falls below the rectangle's top; if at/above its base
                # the rectangle is a threshold.
                if tol.geq(cuts[cut_idx], y):
                    is_threshold = True
                cut_idx += 1
            if is_threshold or not thresholds:
                thresholds.append(r.width)
            group_of[r.rid] = len(thresholds) - 1
            y += r.height
        for r in ordered:
            w_new = thresholds[group_of[r.rid]]
            assert tol.geq(w_new, r.width), "grouping must round widths up"
            new_rects[r.rid] = r.replace(width=min(1.0, w_new))
        grouped.append(
            GroupedClass(
                release=release,
                stacking=st,
                thresholds=tuple(thresholds),
                group_of=group_of,
            )
        )
        # P_sup / P_inf staircases: G slabs of height H/G; widths w_{i,l}
        # (sup) vs w_{i,l+1} with w_{i,G} = 0 (inf -> slab omitted).
        if H > 0.0:
            # Slab widths come from the stacking's width profile at the cut
            # heights: sup slab l covers [c_l, c_{l+1}) at the profile value
            # of its *bottom* (over-approximation), inf at its *top*
            # (under-approximation; the top of the last slab is H, width 0).
            slab_h = H / G
            for ell in range(G):
                w_sup = st.width_at(cuts[ell])
                sup_rects.append(
                    Rect(rid=f"sup:{ci}:{ell}", width=w_sup, height=slab_h, release=release)
                )
                w_inf = st.width_at(cuts[ell + 1]) if ell + 1 < G else 0.0
                if w_inf > 0.0:
                    inf_rects.append(
                        Rect(rid=f"inf:{ci}:{ell}", width=w_inf, height=slab_h, release=release)
                    )

    out = instance.with_rects([new_rects[r.rid] for r in instance.rects])
    result = GroupingResult(
        instance=out,
        classes=tuple(grouped),
        sup_rects=tuple(sup_rects),
        inf_rects=tuple(inf_rects),
    )
    if result.n_distinct_widths > W:
        raise AssertionError(
            f"grouping produced {result.n_distinct_widths} widths > budget {W}"
        )
    return result
