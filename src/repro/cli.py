"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library version, problem variants, and the algorithm table rendered
    live from the engine's spec registry.
``demo``
    Solve one built-in instance of each variant and draw the packings.
``solve INSTANCE.json [--algorithm NAME] [--eps E] [--output OUT.json]``
    Solve a JSON instance (format: :mod:`repro.core.serialize`), validate,
    print the :class:`~repro.engine.report.SolveReport` summary and
    optionally write the placement JSON.
``bounds INSTANCE.json``
    Print the elementary lower bounds for an instance.
``batch DIR [--algorithm NAME] [--jobs N] [--backend B] [--glob PATTERN]``
    Solve every instance JSON under ``DIR`` through the engine's
    :func:`~repro.engine.batch.solve_many`; ``--backend serial | thread |
    process`` picks the :class:`~repro.engine.batch.Executor` (default:
    serial, or a thread pool when ``--jobs N`` > 1, as before);
    per-instance height/ratio/wall-time plus a summary.
``portfolio INSTANCE.json [--algorithms a,b,c] [--jobs N] [--backend B]``
    Race candidate algorithms on one instance; report every entrant and
    the minimum-height valid winner.
``simulate STREAM [--policy P] [--seed S] [--n N] [--K K] [--rate R]``
    Event-driven online scheduling through :mod:`repro.sim`: ``STREAM`` is
    a synthetic arrival process (``poisson`` | ``bursty`` | ``staircase``)
    or a path to a release-instance JSON file / trace directory to replay.
    Prints the :class:`~repro.sim.trace.SimTrace` summary (makespan, queue
    depth, utilization) and its engine-report ratio.
``bench [NAME ...|--all] [--quick] [--out DIR] [--compare BASELINE.json]``
    Run registered benchmarks (:mod:`repro.bench`) and write one
    schema-validated ``BENCH_<name>.json`` artifact each; ``--list``
    prints the bench registry, ``--quick`` restricts each spec to its
    smoke sizes, and ``--compare`` diffs the fresh artifact against a
    baseline, exiting 1 when a regression is flagged.  ``bench trend``
    is the history gate (:mod:`repro.obs.trend`): it loads every
    artifact under ``--artifacts`` plus optional ``--history`` dirs,
    builds per-series median timelines, writes ``BENCH_trend.json`` to
    ``--out``, and exits 1 on *sustained* drift (the last ``--window``
    runs all slower than baseline by ``--drift-threshold``×).
``serve [--host H] [--port P] [--workers N] [--backend B --jobs N] [--cache-dir DIR]``
    Run the asyncio JSON-over-HTTP solve service (:mod:`repro.service`):
    ``POST /solve`` and ``POST /portfolio`` with micro-batching and a
    content-addressed result cache, ``GET /healthz`` / ``GET /metrics``
    for operations.  ``--workers N`` (N > 1) shards the service over N
    worker processes behind a consistent-hash router
    (:mod:`repro.service.router`).  ``--log-format json|text`` and
    ``--log-file`` route the service's structured event log
    (:mod:`repro.obs.logging`) to a JSON-lines or text sink shared by
    the router and every worker.  Runs until interrupted; SIGTERM or
    Ctrl-C drains gracefully (accepted requests are answered) and exits 0.
``loadtest [--url URL] [--mode closed|open] [--requests N] [--quick] [--workers-sweep 1,2,4]``
    Drive a solve service with the load generator
    (:mod:`repro.service.loadgen`); without ``--url`` an in-process
    server is started on an ephemeral port.  Prints throughput,
    latency percentiles, and a latency histogram.  ``--workers-sweep``
    measures the scaling curve: one closed-loop step per worker count.

``repro --version`` prints the package version (single-sourced from
pyproject via :mod:`repro._version`).

Bad inputs (missing files, malformed JSON, invalid parameters, an
unbindable serve port) exit with code 2 and a one-line message — never a
traceback.

The CLI is a thin shell over the library; every code path it exercises is
covered by unit tests through :func:`main`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import __version__
from .analysis.render import render_placement
from .analysis.report import Table, reports_table
from .core.bounds import combined_lower_bound
from .core.errors import ReproError
from .core.serialize import loads_instance, placement_to_dict
from .engine import default_params, portfolio, run, solve_many

__all__ = ["main", "build_parser"]


class _CliInputError(Exception):
    """A user-input problem the CLI reports as a message + exit code 2."""


def _aptas_default_eps() -> float:
    return float(default_params("aptas")["eps"])


def _check_jobs(jobs: int | None) -> None:
    """``--jobs`` must name a positive worker count — 0/negative used to
    silently mean "serial", which hid typos; now it is a usage error."""
    if jobs is not None and jobs < 1:
        raise _CliInputError(f"--jobs must be a positive worker count, got {jobs}")


def _add_executor_args(parser) -> None:
    """The shared ``--jobs`` / ``--backend`` pair of the executor seam."""
    parser.add_argument("--jobs", type=int, default=1, help="pool workers (1 = serial)")
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default=None,
        help="execution backend (default: serial, or thread when --jobs > 1)",
    )


def _add_kernel_tier_arg(parser) -> None:
    """The shared ``--kernel-tier`` selector (:mod:`repro.kernels`)."""
    from . import kernels

    parser.add_argument(
        "--kernel-tier",
        choices=kernels.TIER_CHOICES,
        default="auto",
        help="kernel tier: auto (compiled when the [speed] extra is "
        "installed, else array), or force reference/array/compiled",
    )


def _load_instance(path: Path):
    """Read and parse one instance JSON, mapping failures to CLI errors."""
    try:
        text = path.read_text()
    except OSError as exc:
        raise _CliInputError(f"cannot read {path}: {exc}") from exc
    try:
        return loads_instance(text)
    except json.JSONDecodeError as exc:
        raise _CliInputError(f"malformed JSON in {path}: {exc}") from exc
    except ReproError as exc:
        raise _CliInputError(f"invalid instance in {path}: {exc}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Strip packing with precedence constraints and release times "
        "(Augustine-Banerjee-Irani reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and available algorithms")
    sub.add_parser("demo", help="solve a built-in instance of each variant")

    p_solve = sub.add_parser("solve", help="solve a JSON instance file")
    p_solve.add_argument("instance", type=Path, help="path to instance JSON")
    p_solve.add_argument("--algorithm", default=None, help="algorithm name (default: per-variant)")
    p_solve.add_argument(
        "--eps",
        type=float,
        default=None,
        help=f"APTAS error parameter (default from spec: {_aptas_default_eps():g})",
    )
    p_solve.add_argument("--output", type=Path, default=None, help="write placement JSON here")
    p_solve.add_argument("--render", action="store_true", help="draw the packing")

    p_bounds = sub.add_parser("bounds", help="print lower bounds for a JSON instance")
    p_bounds.add_argument("instance", type=Path)

    p_batch = sub.add_parser("batch", help="solve every instance JSON in a directory")
    p_batch.add_argument("directory", type=Path, help="directory of instance JSON files")
    p_batch.add_argument("--algorithm", default=None, help="algorithm name (default: per-variant)")
    _add_executor_args(p_batch)
    _add_kernel_tier_arg(p_batch)
    p_batch.add_argument("--glob", default="*.json", help="instance file pattern")

    p_port = sub.add_parser("portfolio", help="race algorithms on one instance")
    p_port.add_argument("instance", type=Path, help="path to instance JSON")
    p_port.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated entrants (default: every spec matching the variant)",
    )
    _add_executor_args(p_port)
    _add_kernel_tier_arg(p_port)
    p_port.add_argument("--output", type=Path, default=None, help="write winning placement JSON here")

    from .sim import policy_names

    p_sim = sub.add_parser("simulate", help="event-driven online scheduling simulation")
    p_sim.add_argument(
        "stream",
        help="poisson | bursty | staircase, or a path to a release-instance "
        "JSON file / directory of traces to replay",
    )
    p_sim.add_argument(
        "--policy", default="first_fit", choices=policy_names(), help="online policy"
    )
    p_sim.add_argument("--seed", type=int, default=0, help="RNG seed for synthetic streams")
    p_sim.add_argument("--n", type=int, default=40, help="tasks to simulate (synthetic streams)")
    p_sim.add_argument("--K", type=int, default=8, help="device columns (synthetic streams)")
    p_sim.add_argument("--rate", type=float, default=1.0, help="poisson arrival rate")
    p_sim.add_argument("--events", action="store_true", help="print the per-event commit log")
    p_sim.add_argument("--output", type=Path, default=None, help="write the SimTrace JSON here")

    p_bench = sub.add_parser("bench", help="run registered benchmarks into BENCH_*.json artifacts")
    p_bench.add_argument("names", nargs="*", help="bench spec names (see --list)")
    p_bench.add_argument("--all", action="store_true", help="run every registered bench")
    p_bench.add_argument("--list", action="store_true", help="print the bench registry and exit")
    p_bench.add_argument("--quick", action="store_true", help="smoke sizes only (CI mode)")
    p_bench.add_argument(
        "--out", type=Path, default=Path("."), help="artifact directory (default: cwd)"
    )
    p_bench.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE.json",
        help="diff the fresh artifact against this baseline; exit 1 on regression",
    )
    p_bench.add_argument(
        "--repetitions", type=int, default=None, help="override the spec's repetition count"
    )
    p_bench.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="slowdown factor flagged as a regression (default 1.5)",
    )
    p_bench.add_argument(
        "--artifacts", type=Path, default=Path("benchmarks/artifacts"),
        metavar="DIR",
        help="bench trend: committed artifact directory "
             "(default benchmarks/artifacts)",
    )
    p_bench.add_argument(
        "--history", type=Path, action="append", default=None, metavar="DIR",
        help="bench trend: extra history directories of older artifacts "
             "(repeatable)",
    )
    p_bench.add_argument(
        "--window", type=int, default=None,
        help="bench trend: consecutive drifting runs required to fail "
             "the gate (default 3)",
    )
    p_bench.add_argument(
        "--drift-threshold", type=float, default=None,
        help="bench trend: sustained slowdown ratio vs the series "
             "baseline (default 1.25)",
    )
    _add_executor_args(p_bench)
    _add_kernel_tier_arg(p_bench)

    p_serve = sub.add_parser("serve", help="run the async JSON-over-HTTP solve service")
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes behind a consistent-hash router "
             "(default 1 = single-process, no router)",
    )
    _add_executor_args(p_serve)
    _add_kernel_tier_arg(p_serve)
    p_serve.add_argument(
        "--max-batch", type=int, default=16,
        help="most requests one micro-batch drains (default 16)",
    )
    p_serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="longest a lone request waits for batch-mates (default 2 ms)",
    )
    p_serve.add_argument(
        "--queue-size", type=int, default=512,
        help="pending-request bound; beyond it requests get 503 (default 512)",
    )
    p_serve.add_argument(
        "--cache-bytes", type=int, default=None,
        help="result cache memory budget in bytes (default 32 MiB)",
    )
    p_serve.add_argument(
        "--cache-dir", type=Path, default=None,
        help="spill evicted results to this directory (persistent warm cache)",
    )
    p_serve.add_argument(
        "--warm-delta", type=float, default=None,
        help="enable warm-start delta solving: repair the nearest cached "
             "neighbor's placement when the repair height stays within "
             "(1 + WARM_DELTA) of the lower bound (default: off)",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=None,
        help="router-to-worker timeout in seconds; a slow worker is retried, "
             "then the request fails over (default: no timeout; --workers > 1 only)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=2,
        help="same-worker retries after a timeout before failing over (default 2)",
    )
    p_serve.add_argument(
        "--backoff-ms", type=float, default=50.0,
        help="base of the seeded exponential retry backoff (default 50 ms)",
    )
    p_serve.add_argument(
        "--log-format", choices=("json", "text"), default=None,
        help="structured event log format (default: plain stdlib logging; "
             "json = one JSON object per line)",
    )
    p_serve.add_argument(
        "--log-file", type=Path, default=None,
        help="append structured events to this file instead of stderr "
             "(workers share it; whole-line writes interleave cleanly)",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="replay a fault plan against an in-process fleet and verify "
             "the service invariants (zero lost requests, byte-identical answers)",
    )
    p_chaos.add_argument("plan", type=Path, metavar="PLAN.json",
                         help="FaultPlan file: {\"seed\": N, \"faults\": [...]}")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="fleet size (default 2; 1 = single-process seams only)")
    p_chaos.add_argument("--requests", type=int, default=40,
                         help="total requests driven through the fleet (default 40)")
    p_chaos.add_argument("--distinct", type=int, default=None,
                         help="distinct payloads cycled (default min(requests, 8))")
    p_chaos.add_argument("--rects", type=int, default=40,
                         help="rectangles per generated instance (default 40)")
    p_chaos.add_argument("--concurrency", type=int, default=4,
                         help="closed-loop client threads (default 4)")
    p_chaos.add_argument("--sessions", type=int, default=None,
                         help="run the session scenario instead: this many "
                              "concurrent sessions replay growing-prefix "
                              "streams while the plan fires")
    p_chaos.add_argument("--steps", type=int, default=6,
                         help="steps per session in the session scenario "
                              "(default 6; only with --sessions)")
    p_chaos.add_argument("--algorithm", default="bottom_left",
                         help="algorithm solved per request (default bottom_left)")
    p_chaos.add_argument("--seed", type=int, default=0, help="payload RNG seed")
    p_chaos.add_argument("--request-timeout", type=float, default=None,
                         help="router-to-worker timeout in seconds")
    p_chaos.add_argument("--retries", type=int, default=2,
                         help="same-worker retries after a timeout (default 2)")
    p_chaos.add_argument("--backoff-ms", type=float, default=50.0,
                         help="retry backoff base (default 50 ms)")
    p_chaos.add_argument("--max-restarts", type=int, default=5,
                         help="supervisor respawn budget per worker (default 5)")
    p_chaos.add_argument("--cache-bytes", type=int, default=None,
                         help="per-worker cache memory budget in bytes")
    p_chaos.add_argument("--cache-dir", type=Path, default=None,
                         help="shared L2 spill directory for the fleet")
    p_chaos.add_argument("--allow-degraded", action="store_true",
                         help="waive the /healthz-recovers-to-ok check (for plans "
                              "that deliberately exhaust max_restarts)")
    p_chaos.add_argument("--health-deadline", type=float, default=30.0,
                         help="longest wait for /healthz to recover (default 30 s)")
    p_chaos.add_argument("--output", type=Path, default=None,
                         help="write the chaos report JSON here")

    p_load = sub.add_parser("loadtest", help="drive a solve service with generated traffic")
    p_load.add_argument(
        "--url", default=None,
        help="target service (default: start an in-process server)",
    )
    p_load.add_argument(
        "--mode", choices=("closed", "open", "session"), default="closed",
        help="closed loop (saturation), open loop (fixed offered rate), or "
             "session (long-lived sessions replaying growing-prefix streams)",
    )
    p_load.add_argument("--requests", type=int, default=None, help="total requests (default 1000)")
    p_load.add_argument("--concurrency", type=int, default=None,
                        help="closed-loop workers (default 8)")
    p_load.add_argument("--rate", type=float, default=100.0,
                        help="open-loop arrival rate, req/s (default 100)")
    p_load.add_argument("--distinct", type=int, default=None,
                        help="distinct instances cycled over the run (default 8)")
    p_load.add_argument("--rects", type=int, default=12,
                        help="rectangles per generated instance (default 12)")
    p_load.add_argument("--algorithm", default=None, help="algorithm name (default: per-variant)")
    p_load.add_argument("--seed", type=int, default=0, help="payload/arrival RNG seed")
    p_load.add_argument("--sessions", type=int, default=None,
                        help="session mode: concurrent sessions (default 4)")
    p_load.add_argument("--steps", type=int, default=None,
                        help="session mode: steps per session (default 8)")
    p_load.add_argument("--warm-delta", type=float, default=None,
                        help="enable warm-start repair on the in-process "
                             "server (ignored with --url)")
    p_load.add_argument("--quick", action="store_true",
                        help="CI smoke preset: 200 requests, 4 workers, 2 distinct instances")
    p_load.add_argument("--workers-sweep", default=None, metavar="N,N,...",
                        help="run one closed-loop step per worker count against "
                             "in-process sharded servers (e.g. 1,2,4) and report "
                             "per-step rps/p95 in one JSON document")
    p_load.add_argument("--output", type=Path, default=None,
                        help="write the load result JSON here")
    return parser


def _cmd_info(out) -> int:
    from . import kernels
    from .engine import spec_table_rows

    print(f"repro {__version__}", file=out)
    print("variants: plain | precedence | release", file=out)
    info = kernels.tier_info()
    numba = info["numba"] or "not installed"
    print(
        f"kernel tier: {info['active']} (requested {info['requested']}, "
        f"numba {numba})",
        file=out,
    )
    table = Table(["algorithm", "variants", "guarantee", "flags", "defaults"], title="registry")
    for row in spec_table_rows():
        table.add_row(list(row))
    print(table.render(), file=out)
    return 0


def _cmd_demo(out) -> int:
    import numpy as np

    from .workloads.dags import random_precedence_instance
    from .workloads.releases import bursty_release_instance

    rng = np.random.default_rng(0)
    prec = random_precedence_instance(12, 0.15, rng)
    r1 = run(prec)
    print(f"precedence demo: n={len(prec)}, DC height {r1.height:.3f}", file=out)
    print(render_placement(r1.placement, width_chars=40, max_rows=12), file=out)

    rel = bursty_release_instance(10, 4, rng, n_bursts=2)
    r2 = run(rel, params={"eps": 1.0})
    print(f"\nrelease demo: n={len(rel)}, APTAS height {r2.height:.3f}", file=out)
    print(render_placement(r2.placement, width_chars=40, max_rows=12), file=out)
    return 0


def _solve_params(instance, name, eps):
    """Pass ``eps`` only where the aptas spec will consume it."""
    from .core.instance import ReleaseInstance

    if eps is None:
        return None
    if isinstance(instance, ReleaseInstance) and (name is None or name == "aptas"):
        return {"eps": eps}
    return None


def _cmd_solve(args, out) -> int:
    instance = _load_instance(args.instance)
    report = run(instance, args.algorithm, params=_solve_params(instance, args.algorithm, args.eps))
    print(f"algorithm: {report.algorithm}", file=out)
    print(f"n = {report.n}, height = {report.height:.6g}, "
          f"lower bound = {report.lower_bound:.6g}", file=out)
    ratio = "-" if report.ratio is None else f"{report.ratio:.4g}"
    print(f"ratio = {ratio}, wall time = {report.wall_time:.4g}s, "
          f"valid = {'yes' if report.valid else 'no'}", file=out)
    if args.render:
        print(render_placement(report.placement), file=out)
    if args.output is not None:
        args.output.write_text(json.dumps(placement_to_dict(report.placement), indent=2))
        print(f"placement written to {args.output}", file=out)
    return 0


def _cmd_bounds(args, out) -> int:
    from .core.bounds import area_bound, hmax_bound

    instance = _load_instance(args.instance)
    print(f"n        = {len(instance)}", file=out)
    print(f"area     = {area_bound(instance):.6g}", file=out)
    print(f"hmax     = {hmax_bound(instance):.6g}", file=out)
    print(f"combined = {combined_lower_bound(instance):.6g}", file=out)
    return 0


def _cmd_batch(args, out) -> int:
    from .workloads.suite import read_instance_dir

    _check_jobs(args.jobs)
    if not args.directory.is_dir():
        print(f"not a directory: {args.directory}", file=out)
        return 2
    try:
        paths, instances = read_instance_dir(args.directory, pattern=args.glob)
    except (json.JSONDecodeError, ReproError) as exc:
        raise _CliInputError(f"invalid instance file under {args.directory}: {exc}") from exc
    if not instances:
        print(f"no instances matching {args.glob!r} under {args.directory}", file=out)
        return 2
    reports = solve_many(
        instances,
        args.algorithm,
        jobs=args.jobs,
        backend=args.backend,
        labels=[p.name for p in paths],
        strict=False,
    )
    from .engine import resolve_executor

    backend = resolve_executor(args.backend, args.jobs).backend
    title = (
        f"batch {args.directory} ({len(reports)} instances, "
        f"backend={backend}, jobs={args.jobs})"
    )
    print(reports_table(reports, title=title, label_header="instance").render(), file=out)
    ok = [r for r in reports if r.valid]
    total_time = sum(r.wall_time for r in reports)
    print(f"\nsolved {len(ok)}/{len(reports)} valid, "
          f"total solver time = {total_time:.4g}s", file=out)
    return 0 if len(ok) == len(reports) else 1


def _cmd_portfolio(args, out) -> int:
    _check_jobs(args.jobs)
    instance = _load_instance(args.instance)
    names = args.algorithms.split(",") if args.algorithms else None
    result = portfolio(instance, names, jobs=args.jobs, backend=args.backend)
    title = f"portfolio {args.instance.name} (n={len(instance)})"
    print(reports_table(result.reports, title=title, label_header="entrant").render(), file=out)
    if result.best is None:
        print("\nno entrant produced a valid placement", file=out)
        return 1
    best = result.best
    ratio = "-" if best.ratio is None else f"{best.ratio:.4g}"
    print(f"\nwinner: {best.algorithm} with height = {best.height:.6g} "
          f"(ratio = {ratio}, wall time = {best.wall_time:.4g}s)", file=out)
    if args.output is not None:
        args.output.write_text(json.dumps(placement_to_dict(best.placement), indent=2))
        print(f"placement written to {args.output}", file=out)
    return 0


def _simulate_stream(args):
    """Build the TaskStream for ``repro simulate`` from the CLI arguments.

    Returns ``(stream, max_tasks)``: only the endless poisson generator is
    capped at ``--n`` — finite streams (synthetic instances, file/directory
    replays) always run to exhaustion.
    """
    import numpy as np

    from .core.instance import ReleaseInstance
    from .sim import InstanceStream, ReplayStream, poisson_stream
    from .workloads.releases import bursty_release_instance, staircase_release_instance

    if args.n <= 0:
        raise _CliInputError(f"--n must be positive, got {args.n}")
    if args.K <= 0:
        raise _CliInputError(f"--K must be positive, got {args.K}")
    if args.rate <= 0:
        raise _CliInputError(f"--rate must be positive, got {args.rate:g}")
    rng = np.random.default_rng(args.seed)
    if args.stream == "poisson":
        return poisson_stream(args.K, rng, rate=args.rate), args.n
    if args.stream == "bursty":
        return InstanceStream(bursty_release_instance(args.n, args.K, rng)), None
    if args.stream == "staircase":
        return InstanceStream(staircase_release_instance(args.n, args.K, rng)), None
    path = Path(args.stream)
    if path.is_dir():
        from .workloads.suite import read_release_traces

        try:
            traces = read_release_traces(path)
        except (OSError, json.JSONDecodeError, ReproError) as exc:
            raise _CliInputError(f"invalid trace file under {path}: {exc}") from exc
        if not traces:
            raise _CliInputError(f"no release instances to replay under {path}")
        return ReplayStream(traces), None
    if path.is_file():
        instance = _load_instance(path)
        if not isinstance(instance, ReleaseInstance):
            raise _CliInputError(
                f"{path} is a {type(instance).__name__}; simulate needs a release instance"
            )
        return InstanceStream(instance), None
    raise _CliInputError(
        f"unknown stream {args.stream!r}: expected poisson | bursty | staircase "
        "or an existing file/directory"
    )


def _cmd_simulate(args, out) -> int:
    from .core.errors import InvalidInstanceError
    from .sim import simulate

    try:
        stream, max_tasks = _simulate_stream(args)
        trace = simulate(stream, args.policy, max_tasks=max_tasks)
    except InvalidInstanceError as exc:
        # Input problems in the stream itself (off-grid widths, mixed-K
        # trace directories) are the user's data, not a crash.
        raise _CliInputError(str(exc)) from exc
    report = trace.to_report()
    print(f"policy = {trace.policy}, stream = {args.stream} (seed {args.seed})", file=out)
    print(
        f"tasks = {trace.n_tasks}, K = {trace.K}, makespan = {trace.makespan:.6g}",
        file=out,
    )
    print(
        f"queue depth mean/max = {trace.mean_queue_depth:.3g}/{trace.max_queue_depth}, "
        f"mean utilization = {trace.mean_utilization:.3g}",
        file=out,
    )
    ratio = "-" if report.ratio is None else f"{report.ratio:.4g}"
    print(
        f"lower bound = {report.lower_bound:.6g}, ratio = {ratio}, "
        f"valid = {'yes' if report.valid else 'no'}",
        file=out,
    )
    if args.events:
        table = Table(
            ["seq", "time", "task", "x", "start", "finish", "queued"],
            title=f"events ({trace.policy})",
        )
        for e in trace.events:
            table.add_row([e.seq, e.time, str(e.rid), e.x, e.start, e.finish, e.queue_depth])
        print(table.render(), file=out)
    if args.output is not None:
        args.output.write_text(json.dumps(trace.to_dict(), indent=2))
        print(f"trace written to {args.output}", file=out)
    return 0 if report.valid else 1


def _cmd_bench(args, out) -> int:
    from .analysis.report import Table
    from .bench import (
        BenchArtifactError,
        artifact_table,
        bench_names,
        bench_table_rows,
        compare_artifacts,
        get_bench,
        load_artifact,
        run_bench,
        run_bench_named,
        write_artifact,
    )
    from .bench.compare import DEFAULT_THRESHOLD

    _check_jobs(args.jobs)
    if args.names == ["trend"] and not args.all:
        # "trend" is a bench *verb*, not a registered spec: gate on the
        # committed artifact history instead of running anything.
        return _cmd_bench_trend(args, out)
    if args.list:
        from . import kernels

        table = Table(["bench", "entries", "sizes", "reps", "source"], title="bench registry")
        for row in bench_table_rows():
            table.add_row(list(row))
        print(table.render(), file=out)
        print(
            f"kernel tier: {kernels.active_tier()} "
            f"(requested {kernels.requested_tier()}) — recorded in every "
            "artifact's kernel_tier field",
            file=out,
        )
        return 0
    if args.all and args.names:
        raise _CliInputError("pass bench names or --all, not both")
    names = bench_names() if args.all else list(args.names)
    if not names:
        raise _CliInputError("nothing to run: pass bench names, --all, or --list")
    if args.repetitions is not None and args.repetitions < 1:
        raise _CliInputError(f"--repetitions must be positive, got {args.repetitions}")
    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    if threshold <= 1.0:
        raise _CliInputError(f"--threshold must be > 1, got {threshold:g}")
    try:
        specs = [get_bench(name) for name in names]
    except ReproError as exc:
        raise _CliInputError(str(exc)) from exc
    baseline = None
    if args.compare is not None:
        try:
            baseline = load_artifact(args.compare)
        except OSError as exc:
            raise _CliInputError(f"cannot read {args.compare}: {exc}") from exc
        except BenchArtifactError as exc:
            raise _CliInputError(str(exc)) from exc
        if baseline["name"] not in names:
            raise _CliInputError(
                f"baseline {args.compare} is for bench {baseline['name']!r}, "
                f"which is not being run"
            )

    def emit(spec, artifact) -> int:
        """Write/print one finished artifact; return flagged regressions."""
        path = write_artifact(artifact, args.out)
        print(artifact_table(artifact).render(), file=out)
        print(f"artifact written to {path}\n", file=out)
        if baseline is None or baseline["name"] != spec.name:
            return 0
        try:
            result = compare_artifacts(baseline, artifact, threshold=threshold)
        except ValueError as exc:
            # e.g. quick run vs full-sweep baseline: nothing overlaps
            raise _CliInputError(str(exc)) from exc
        print(result.table().render(), file=out)
        if result.tier_note:
            print(result.tier_note, file=out)
        if result.regressions:
            print(f"{len(result.regressions)} regression(s) flagged", file=out)
        else:
            print("no regressions", file=out)
        print("", file=out)
        return len(result.regressions)

    from .engine import resolve_executor

    executor = resolve_executor(args.backend, args.jobs)
    regressions = 0
    if executor.backend == "serial":
        # Run-then-write per spec, so an interrupted long sweep keeps every
        # artifact finished so far.
        for spec in specs:
            artifact = run_bench(
                spec,
                quick=args.quick,
                repetitions=args.repetitions,
                progress=lambda line: print(f"  {line}", file=out),
            )
            regressions += emit(spec, artifact)
    else:
        # Parallel backends fan whole specs out by *name* (picklable) and
        # forgo per-point progress lines.  Only the process backend keeps
        # timings trustworthy (each spec times inside its own worker);
        # threads share the GIL, so concurrent CPU-bound sweeps inflate
        # each other's wall times.
        if executor.backend == "thread":
            print(
                "warning: thread backend shares the GIL — concurrent specs "
                "inflate each other's timings; use --backend process for "
                "trustworthy parallel measurements",
                file=out,
            )
        import functools

        worker = functools.partial(
            run_bench_named, quick=args.quick, repetitions=args.repetitions
        )
        artifacts = executor.map(worker, [spec.name for spec in specs])
        for spec, artifact in zip(specs, artifacts):
            regressions += emit(spec, artifact)
    return 1 if regressions else 0


def _cmd_bench_trend(args, out) -> int:
    """``repro bench trend``: the sustained-drift gate over bench history."""
    from .obs.trend import (
        DEFAULT_DRIFT_THRESHOLD,
        DEFAULT_WINDOW,
        TREND_FILENAME,
        run_trend,
        trend_table,
    )

    window = DEFAULT_WINDOW if args.window is None else args.window
    threshold = (
        DEFAULT_DRIFT_THRESHOLD if args.drift_threshold is None else args.drift_threshold
    )
    if window < 1:
        raise _CliInputError(f"--window must be >= 1, got {window}")
    if threshold <= 1.0:
        raise _CliInputError(f"--drift-threshold must be > 1, got {threshold:g}")
    directories = [args.artifacts, *(args.history or [])]
    for directory in directories:
        if not directory.is_dir():
            raise _CliInputError(f"not a directory: {directory}")
    document, drifts = run_trend(
        directories, window=window, threshold=threshold, out_dir=args.out
    )
    if document["artifacts"] == 0:
        raise _CliInputError(
            f"no BENCH_*.json artifacts under {', '.join(map(str, directories))}"
        )
    print(trend_table(document).render(), file=out)
    for error in document["load_errors"]:
        print(f"warning: skipped invalid artifact: {error}", file=out)
    print(f"\ntrend document written to {args.out / TREND_FILENAME}", file=out)
    if drifts:
        for drift in drifts:
            print(
                f"DRIFT: {drift['bench']}/{drift['entry']} size {drift['size']}: "
                f"last {drift['window']} runs all > {threshold:g}x baseline "
                f"({drift['baseline_s']:.4g}s -> {drift['latest_s']:.4g}s, "
                f"{drift['ratio']:.2f}x)",
                file=out,
            )
        print(f"{len(drifts)} drifting series flagged", file=out)
        return 1
    print("no sustained drift", file=out)
    return 0


def _build_server(args):
    """A server from serve CLI flags — :class:`SolveServer` for
    ``--workers 1``, a sharded :class:`RouterServer` above — mapping
    configuration mistakes to exit-2 errors."""
    from .core.errors import InvalidInstanceError
    from .service import RouterServer, SolveServer
    from .service.cache import DEFAULT_CACHE_BYTES

    _check_jobs(args.jobs)
    if not 0 <= args.port <= 65535:
        raise _CliInputError(f"--port must be in [0, 65535], got {args.port}")
    workers = getattr(args, "workers", 1)
    if workers < 1:
        raise _CliInputError(f"--workers must be >= 1, got {workers}")
    if workers > 1 and args.backend == "process":
        # Worker processes are daemonic (so a dead router leaks nothing)
        # and daemonic processes cannot have children of their own; the
        # fleet already provides the process parallelism anyway.
        raise _CliInputError(
            "--backend process cannot nest inside --workers > 1; "
            "workers already provide process parallelism "
            "(use --backend thread or drop --backend)"
        )
    retries = getattr(args, "retries", 2)
    if retries < 0:
        raise _CliInputError(f"--retries must be >= 0, got {retries}")
    backoff_ms = getattr(args, "backoff_ms", 50.0)
    if backoff_ms < 0:
        raise _CliInputError(f"--backoff-ms must be >= 0, got {backoff_ms:g}")
    request_timeout = getattr(args, "request_timeout", None)
    if request_timeout is not None and request_timeout <= 0:
        raise _CliInputError(
            f"--request-timeout must be > 0, got {request_timeout:g}"
        )
    cache_bytes = DEFAULT_CACHE_BYTES if args.cache_bytes is None else args.cache_bytes
    config = dict(
        backend=args.backend,
        jobs=args.jobs if args.jobs > 1 or args.backend else None,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        queue_size=args.queue_size,
        cache_bytes=cache_bytes,
        cache_dir=args.cache_dir,
        warm_delta=getattr(args, "warm_delta", None),
    )
    try:
        if workers > 1:
            # Validate the per-worker config here (exit 2 at the CLI)
            # rather than inside the first spawned child (exit 1 + noise).
            SolveServer(**config).close()
            # Worker processes start fresh interpreters: forward the tier
            # request so each shard re-applies it (worker.py pops the key).
            tier = getattr(args, "kernel_tier", None)
            if tier is not None and tier != "auto":
                config = dict(config, kernel_tier=tier)
            # The structured-log sink rides the same way: every worker
            # configures the same format/file, so one fleet shares one log.
            log_format = getattr(args, "log_format", None)
            log_file = getattr(args, "log_file", None)
            if log_format is not None or log_file is not None:
                config = dict(
                    config,
                    log_format=log_format,
                    log_file=None if log_file is None else str(log_file),
                )
            return RouterServer(
                workers=workers,
                worker_config=config,
                request_timeout=request_timeout,
                retries=retries,
                backoff_ms=backoff_ms,
            )
        return SolveServer(**config)
    except (InvalidInstanceError, OSError) as exc:
        raise _CliInputError(str(exc)) from exc


def _cmd_serve(args, out) -> int:
    import asyncio
    import signal as _signal

    log_format = getattr(args, "log_format", None)
    log_file = getattr(args, "log_file", None)
    if log_format is not None or log_file is not None:
        # Configure this process's sink (the solo server's, or the
        # router's own events); _build_server forwards the same config
        # into every worker process.
        from .obs import configure_logging

        configure_logging(
            log_format,
            None if log_file is None else str(log_file),
            stream=sys.stderr if log_file is None else None,
        )
    server = _build_server(args)
    workers = getattr(args, "workers", 1)

    def ready() -> None:
        print(
            f"repro {__version__} serving on http://{server.host}:{server.port} "
            f"(workers {workers}, queue {args.queue_size}, batch {args.max_batch}, "
            f"backend {args.backend or 'serial'}) — Ctrl-C to stop",
            file=out,
            flush=True,
        )

    async def _serve_until_signal() -> None:
        bound = await server.start(args.host, args.port)
        ready()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        registered: list[int] = []
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                registered.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                # No signal support here (Windows event loops, non-main
                # threads): Ctrl-C falls back to KeyboardInterrupt below.
                pass
        try:
            await stop.wait()
            print("draining: refusing new requests, flushing queue", file=out)
            # Graceful drain: answer everything already accepted, flush
            # the micro-batcher (and, sharded, every worker's), then exit.
            await server.drain(bound)
        finally:
            for sig in registered:
                loop.remove_signal_handler(sig)

    try:
        asyncio.run(_serve_until_signal())
    except KeyboardInterrupt:
        print("shutting down", file=out)
        return 0
    except OSError as exc:
        raise _CliInputError(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    finally:
        server.close()
    print("drained, exiting", file=out)
    return 0


def _cmd_chaos(args, out) -> int:
    import json as _json

    from .core.errors import ReproError as _ReproError
    from .service.chaos import run_chaos, run_session_chaos
    from .service.faults import FaultPlan

    if args.requests < 1:
        raise _CliInputError(f"--requests must be positive, got {args.requests}")
    if args.concurrency < 1:
        raise _CliInputError(f"--concurrency must be positive, got {args.concurrency}")
    if args.rects < 1:
        raise _CliInputError(f"--rects must be positive, got {args.rects}")
    if args.sessions is not None and args.sessions < 1:
        raise _CliInputError(f"--sessions must be positive, got {args.sessions}")
    if args.steps < 1:
        raise _CliInputError(f"--steps must be positive, got {args.steps}")
    try:
        plan = FaultPlan.load(args.plan)
    except _ReproError as exc:
        raise _CliInputError(str(exc)) from exc
    try:
        if args.sessions is not None:
            report = run_session_chaos(
                plan,
                workers=args.workers,
                sessions=args.sessions,
                steps=args.steps,
                seed=args.seed,
                algorithm=args.algorithm,
                request_timeout=args.request_timeout,
                retries=args.retries,
                backoff_ms=args.backoff_ms,
                max_restarts=args.max_restarts,
                expect_final_ok=not args.allow_degraded,
                health_deadline_s=args.health_deadline,
            )
        else:
            report = run_chaos(
                plan,
                workers=args.workers,
                requests=args.requests,
                distinct=args.distinct,
                n_rects=args.rects,
                concurrency=args.concurrency,
                seed=args.seed,
                algorithm=args.algorithm,
                request_timeout=args.request_timeout,
                retries=args.retries,
                backoff_ms=args.backoff_ms,
                max_restarts=args.max_restarts,
                cache_bytes=args.cache_bytes,
                cache_dir=args.cache_dir,
                expect_final_ok=not args.allow_degraded,
                health_deadline_s=args.health_deadline,
            )
    except (_ReproError, OSError, RuntimeError) as exc:
        raise _CliInputError(str(exc)) from exc
    for line in report.summary_lines():
        print(line, file=out, flush=True)
    if args.output is not None:
        args.output.write_text(_json.dumps(report.to_dict(), indent=2))
        print(f"report written to {args.output}", file=out)
    return 0 if report.passed else 1


def _cmd_loadtest(args, out) -> int:
    import json as _json

    from .core.errors import ReproError as _ReproError
    from .service.loadgen import (
        run_closed_loop,
        run_open_loop,
        run_session_loop,
        solve_payloads,
    )

    # --quick is the CI smoke preset; explicit flags still win.
    requests = args.requests if args.requests is not None else (200 if args.quick else 1000)
    concurrency = args.concurrency if args.concurrency is not None else (4 if args.quick else 8)
    distinct = args.distinct if args.distinct is not None else (2 if args.quick else 8)
    sessions = args.sessions if args.sessions is not None else (2 if args.quick else 4)
    steps = args.steps if args.steps is not None else (3 if args.quick else 8)
    if requests < 1:
        raise _CliInputError(f"--requests must be positive, got {requests}")
    if concurrency < 1:
        raise _CliInputError(f"--concurrency must be positive, got {concurrency}")
    if args.mode == "open" and args.rate <= 0:
        raise _CliInputError(f"--rate must be positive, got {args.rate:g}")
    if sessions < 1:
        raise _CliInputError(f"--sessions must be positive, got {sessions}")
    if steps < 1:
        raise _CliInputError(f"--steps must be positive, got {steps}")
    if args.warm_delta is not None and args.warm_delta < 0:
        raise _CliInputError(f"--warm-delta must be >= 0, got {args.warm_delta:g}")
    if args.algorithm is not None:
        from .engine import get_spec

        try:
            get_spec(args.algorithm)
        except _ReproError as exc:
            raise _CliInputError(str(exc)) from exc
    try:
        payloads = solve_payloads(
            distinct, n_rects=args.rects, seed=args.seed, algorithm=args.algorithm
        )
    except _ReproError as exc:
        raise _CliInputError(str(exc)) from exc

    if args.workers_sweep is not None:
        return _run_workers_sweep(args, out, payloads, requests, concurrency, distinct)

    def drive(url: str):
        if args.mode == "session":
            return run_session_loop(
                url, sessions=sessions, steps=steps, seed=args.seed,
                algorithm=args.algorithm,
            )
        if args.mode == "open":
            return run_open_loop(
                url, payloads, requests=requests, rate=args.rate, seed=args.seed
            )
        return run_closed_loop(url, payloads, requests=requests, concurrency=concurrency)

    def preflight(url: str) -> None:
        """Fail fast (exit 2) when the target is not a live solve service,
        instead of timing out request by request."""
        import http.client

        from .service.loadgen import _parse_url

        host, port = _parse_url(url)
        try:
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/healthz")
            status = conn.getresponse().status
            conn.close()
        except (OSError, http.client.HTTPException) as exc:
            raise _CliInputError(f"cannot reach {url}: {exc}") from exc
        if status != 200:
            raise _CliInputError(f"{url}/healthz answered {status}, not a solve service")

    try:
        if args.url is None:
            from .service import InProcessServer, SolveServer

            server = (
                SolveServer(warm_delta=args.warm_delta)
                if args.warm_delta is not None
                else None
            )
            with InProcessServer(server) as srv:
                print(f"in-process server on {srv.url}", file=out)
                result = drive(srv.url)
        else:
            preflight(args.url)
            result = drive(args.url)
    except (_ReproError, OSError) as exc:
        raise _CliInputError(str(exc)) from exc

    if args.mode == "session":
        print(f"target = {args.url or 'in-process'}, sessions = {sessions}, "
              f"steps = {steps}, seed = {args.seed}", file=out)
    else:
        print(f"target = {args.url or 'in-process'}, requests = {requests}, "
              f"distinct instances = {distinct}, seed = {args.seed}", file=out)
    for line in result.summary_lines():
        print(line, file=out)
    print("\nlatency histogram:", file=out)
    for line in result.histogram_lines():
        print(f"  {line}", file=out)
    if args.output is not None:
        args.output.write_text(_json.dumps(result.to_dict(), indent=2))
        print(f"\nresult written to {args.output}", file=out)
    return 0 if result.errors == 0 else 1


def _run_workers_sweep(args, out, payloads, requests, concurrency, distinct) -> int:
    """``repro loadtest --workers-sweep 1,2,4``: one closed-loop step per
    worker count, same payloads throughout, one JSON document out."""
    import json as _json

    from .core.errors import ReproError as _ReproError
    from .service.loadgen import sweep_workers

    if args.url is not None:
        raise _CliInputError(
            "--workers-sweep builds its own in-process servers; drop --url"
        )
    if args.mode != "closed":
        raise _CliInputError(
            f"--workers-sweep is closed-loop only; drop --mode {args.mode}"
        )
    try:
        counts = [int(part) for part in args.workers_sweep.split(",") if part.strip()]
    except ValueError:
        raise _CliInputError(
            f"--workers-sweep wants comma-separated integers, got {args.workers_sweep!r}"
        ) from None
    if not counts or any(count < 1 for count in counts):
        raise _CliInputError(
            f"--workers-sweep counts must be positive, got {args.workers_sweep!r}"
        )

    print(
        f"workers sweep {counts}: {requests} requests each, "
        f"concurrency {concurrency}, distinct instances = {distinct}, "
        f"seed = {args.seed}",
        file=out,
        flush=True,
    )
    try:
        stepped = sweep_workers(
            counts, payloads, requests=requests, concurrency=concurrency
        )
    except (_ReproError, OSError, RuntimeError) as exc:
        raise _CliInputError(str(exc)) from exc

    base_rps = None
    steps = []
    for count, result in stepped:
        if base_rps is None:
            base_rps = result.throughput_rps or 1.0
        speedup = result.throughput_rps / base_rps
        print(
            f"workers = {count}: {result.throughput_rps:8.1f} req/s, "
            f"p95 = {result.latency_ms(95):7.2f} ms, "
            f"errors = {result.errors}, speedup = {speedup:.2f}x",
            file=out,
            flush=True,
        )
        steps.append({"workers": count, "speedup": speedup, **result.to_dict()})
    document = {"sweep": steps}
    if args.output is not None:
        args.output.write_text(_json.dumps(document, indent=2))
        print(f"\nresult written to {args.output}", file=out)
    return 0 if all(step["errors"] == 0 for step in steps) else 1


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    tier = getattr(args, "kernel_tier", None)
    if tier is not None:
        from . import kernels

        kernels.set_tier(tier)
    commands = {
        "info": lambda: _cmd_info(out),
        "demo": lambda: _cmd_demo(out),
        "solve": lambda: _cmd_solve(args, out),
        "bounds": lambda: _cmd_bounds(args, out),
        "batch": lambda: _cmd_batch(args, out),
        "portfolio": lambda: _cmd_portfolio(args, out),
        "simulate": lambda: _cmd_simulate(args, out),
        "bench": lambda: _cmd_bench(args, out),
        "serve": lambda: _cmd_serve(args, out),
        "chaos": lambda: _cmd_chaos(args, out),
        "loadtest": lambda: _cmd_loadtest(args, out),
    }
    handler = commands[args.command]  # argparse enforces the choices
    try:
        return handler()
    except _CliInputError as exc:
        print(f"error: {exc}", file=out)
        return 2
