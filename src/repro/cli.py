"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library version, available algorithms and problem variants.
``demo``
    Solve one built-in instance of each variant and draw the packings.
``solve INSTANCE.json [--algorithm NAME] [--eps E] [--output OUT.json]``
    Solve a JSON instance (format: :mod:`repro.core.serialize`), validate,
    print the height and optionally write the placement JSON.
``bounds INSTANCE.json``
    Print the elementary lower bounds for an instance.

The CLI is a thin shell over the library; every code path it exercises is
covered by unit tests through :func:`main`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import __version__
from .analysis.render import render_placement
from .core.bounds import combined_lower_bound
from .core.registry import available_algorithms, solve
from .core.serialize import loads_instance, placement_to_dict

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Strip packing with precedence constraints and release times "
        "(Augustine-Banerjee-Irani reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and available algorithms")
    sub.add_parser("demo", help="solve a built-in instance of each variant")

    p_solve = sub.add_parser("solve", help="solve a JSON instance file")
    p_solve.add_argument("instance", type=Path, help="path to instance JSON")
    p_solve.add_argument("--algorithm", default=None, help="algorithm name (default: per-variant)")
    p_solve.add_argument("--eps", type=float, default=0.9, help="APTAS error parameter")
    p_solve.add_argument("--output", type=Path, default=None, help="write placement JSON here")
    p_solve.add_argument("--render", action="store_true", help="draw the packing")

    p_bounds = sub.add_parser("bounds", help="print lower bounds for a JSON instance")
    p_bounds.add_argument("instance", type=Path)
    return parser


def _cmd_info(out) -> int:
    print(f"repro {__version__}", file=out)
    print("algorithms: " + ", ".join(available_algorithms()), file=out)
    print("variants: plain | precedence | release", file=out)
    return 0


def _cmd_demo(out) -> int:
    import numpy as np

    from .workloads.dags import random_precedence_instance
    from .workloads.releases import bursty_release_instance

    rng = np.random.default_rng(0)
    prec = random_precedence_instance(12, 0.15, rng)
    p1 = solve(prec)
    print(f"precedence demo: n={len(prec)}, DC height {p1.height:.3f}", file=out)
    print(render_placement(p1, width_chars=40, max_rows=12), file=out)

    rel = bursty_release_instance(10, 4, rng, n_bursts=2)
    p2 = solve(rel, eps=1.0)
    print(f"\nrelease demo: n={len(rel)}, APTAS height {p2.height:.3f}", file=out)
    print(render_placement(p2, width_chars=40, max_rows=12), file=out)
    return 0


def _cmd_solve(args, out) -> int:
    instance = loads_instance(args.instance.read_text())
    kwargs = {}
    from .core.instance import ReleaseInstance

    name = args.algorithm
    if isinstance(instance, ReleaseInstance) and (name is None or name == "aptas"):
        kwargs["eps"] = args.eps
    placement = solve(instance, name, **kwargs)
    print(f"algorithm: {name or 'default'}", file=out)
    print(f"n = {len(instance)}, height = {placement.height:.6g}, "
          f"lower bound = {combined_lower_bound(instance):.6g}", file=out)
    if args.render:
        print(render_placement(placement), file=out)
    if args.output is not None:
        args.output.write_text(json.dumps(placement_to_dict(placement), indent=2))
        print(f"placement written to {args.output}", file=out)
    return 0


def _cmd_bounds(args, out) -> int:
    from .core.bounds import area_bound, hmax_bound

    instance = loads_instance(args.instance.read_text())
    print(f"n        = {len(instance)}", file=out)
    print(f"area     = {area_bound(instance):.6g}", file=out)
    print(f"hmax     = {hmax_bound(instance):.6g}", file=out)
    print(f"combined = {combined_lower_bound(instance):.6g}", file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(out)
    if args.command == "demo":
        return _cmd_demo(out)
    if args.command == "solve":
        return _cmd_solve(args, out)
    if args.command == "bounds":
        return _cmd_bounds(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
