"""JSON (de)serialization for instances and placements.

The on-disk format is deliberately plain so downstream users can generate
instances from any tooling::

    {
      "type": "precedence",            # "plain" | "precedence" | "release"
      "K": 8,                          # release instances only
      "rects": [
        {"id": "dct:0", "width": 0.25, "height": 2.0, "release": 0.0},
        ...
      ],
      "edges": [["tile_split", "dct:0"], ...]   # precedence only
    }

Placements serialise as ``{"placements": [{"id":..., "x":..., "y":...}]}``.
Round-tripping is exact for ids and floats (no quantisation is applied).

The module also owns the **canonical fingerprint** used by the serving
layer's content-addressed result cache (:mod:`repro.service`):
:func:`canonical_instance_dict` reduces an instance to a form that is
insensitive to rectangle order and to float noise below the shared
geometric tolerance (:data:`repro.core.tol.ATOL`), :func:`canonical_hash`
is its SHA-256, and :func:`result_key` combines the hash with an algorithm
name and its parameter overrides into the cache key for one solve.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping

from .errors import InvalidInstanceError
from .instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from .placement import Placement
from .rectangle import Rect
from .tol import ATOL

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "dumps_instance",
    "loads_instance",
    "placement_to_dict",
    "placement_from_dict",
    "canonical_instance_dict",
    "canonical_hash",
    "canonical_params",
    "result_key",
]


def instance_to_dict(instance: StripPackingInstance) -> dict[str, Any]:
    """Serialise any instance variant to a JSON-ready dict."""
    rects = [
        {"id": r.rid, "width": r.width, "height": r.height, "release": r.release}
        for r in instance.rects
    ]
    if isinstance(instance, ReleaseInstance):
        return {"type": "release", "K": instance.K, "rects": rects}
    if isinstance(instance, PrecedenceInstance):
        return {
            "type": "precedence",
            "rects": rects,
            "edges": [[u, v] for u, v in instance.dag.edges()],
        }
    return {"type": "plain", "rects": rects}


def instance_from_dict(data: dict[str, Any]) -> StripPackingInstance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    if not isinstance(data, dict):
        raise InvalidInstanceError(
            f"instance JSON must be an object, got {type(data).__name__}"
        )
    kind = data.get("type")
    if kind not in ("plain", "precedence", "release"):
        raise InvalidInstanceError(f"unknown instance type {kind!r}")
    try:
        rects = [
            Rect(
                rid=entry["id"],
                width=float(entry["width"]),
                height=float(entry["height"]),
                release=float(entry.get("release", 0.0)),
            )
            for entry in data["rects"]
        ]
    except KeyError as exc:
        raise InvalidInstanceError(f"rect entry missing field {exc}") from exc
    if kind == "plain":
        return StripPackingInstance(rects)
    if kind == "release":
        if "K" not in data:
            raise InvalidInstanceError("release instance requires 'K'")
        return ReleaseInstance(rects, int(data["K"]))
    from ..dag.graph import TaskDAG

    edges = [tuple(e) for e in data.get("edges", [])]
    return PrecedenceInstance(rects, TaskDAG([r.rid for r in rects], edges))


def dumps_instance(instance: StripPackingInstance, **json_kwargs: Any) -> str:
    """Instance -> JSON string."""
    return json.dumps(instance_to_dict(instance), **json_kwargs)


def loads_instance(text: str) -> StripPackingInstance:
    """JSON string -> instance."""
    return instance_from_dict(json.loads(text))


def placement_to_dict(placement: Placement) -> dict[str, Any]:
    """Serialise a placement (sorted by id string for stable output)."""
    return {
        "height": placement.height,
        "placements": sorted(
            ({"id": rid, "x": pr.x, "y": pr.y} for rid, pr in placement.items()),
            key=lambda e: str(e["id"]),
        ),
    }


# ----------------------------------------------------------------------
# canonical fingerprinting (the serving layer's cache identity)
# ----------------------------------------------------------------------

def _ticks(value: float, atol: float) -> int:
    """Quantise ``value`` onto the ``atol`` grid (integer tick count).

    Two dimensions that differ by less than half a tolerance step land on
    the same tick, so float noise far below any geometric decision
    threshold never splits the cache; genuinely different dimensions are
    many ticks apart (see :mod:`repro.core.tol` for why ``ATOL`` separates
    the two regimes).  Non-finite values (``json.loads`` accepts NaN and
    Infinity) have no tick and are rejected.
    """
    value = float(value)
    if not math.isfinite(value):
        raise InvalidInstanceError(f"cannot canonicalise non-finite value {value!r}")
    return int(round(value / atol))


def _canonical_json(value: Any) -> str:
    """Deterministic JSON used both for hashing and as a sort key."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def canonical_instance_dict(
    instance: StripPackingInstance, *, atol: float = ATOL
) -> dict[str, Any]:
    """Reduce ``instance`` to its canonical, fingerprint-ready dict.

    Properties the serving cache relies on:

    * **order-insensitive** — rectangles (and precedence edges) are sorted
      canonically, so permuting ``instance.rects`` does not change the
      result;
    * **tolerance-aware** — ``width``/``height``/``release`` are quantised
      to integer ticks on the ``atol`` grid, so float noise below the
      library's geometric tolerance maps to the same form;
    * **variant-complete** — the instance type, ``K`` (release), and the
      DAG edges (precedence) are part of the form, so instances that would
      solve differently never collide by construction.

    Ids are preserved verbatim (placements and precedence edges refer to
    them), which makes the fingerprint intentionally *not* invariant under
    id renaming.
    """
    rects = sorted(
        (
            {
                "id": r.rid,
                "w": _ticks(r.width, atol),
                "h": _ticks(r.height, atol),
                "r": _ticks(r.release, atol),
            }
            for r in instance.rects
        ),
        key=_canonical_json,
    )
    data: dict[str, Any] = {"v": 1, "type": "plain", "rects": rects}
    if isinstance(instance, ReleaseInstance):
        data["type"] = "release"
        data["K"] = instance.K
    elif isinstance(instance, PrecedenceInstance):
        data["type"] = "precedence"
        data["edges"] = sorted(
            ([u, v] for u, v in instance.dag.edges()), key=_canonical_json
        )
    return data


def canonical_hash(instance: StripPackingInstance, *, atol: float = ATOL) -> str:
    """SHA-256 hex digest of the canonical dict form of ``instance``.

    Equal canonical dicts hash equal (the digest is a pure function of
    :func:`canonical_instance_dict`); hash inequality therefore implies the
    canonical dicts differ.
    """
    payload = _canonical_json(canonical_instance_dict(instance, atol=atol))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_params(
    params: Mapping[str, Any] | None, *, atol: float = ATOL
) -> str:
    """Parameter overrides as deterministic JSON (``None`` == no overrides).

    Numbers (ints and floats alike) are quantised to the same ``atol``
    grid as geometry and rendered as tagged ``"n:<ticks>"`` strings: an
    ``eps`` that differs by float noise does not split the cache, and
    ``4`` and ``4.0`` (JSON clients emit either) share one key.  String
    values get an ``"s:"`` tag so no string can ever alias a number's
    canonical form.  Nested lists/dicts are canonicalised recursively;
    bools and ``None`` pass through (JSON keeps them distinct from every
    tagged string).
    """

    def canon(value: Any) -> Any:
        if isinstance(value, bool) or value is None:
            return value
        if isinstance(value, str):
            return f"s:{value}"
        if isinstance(value, (int, float)):
            return f"n:{_ticks(value, atol)}"
        if isinstance(value, Mapping):
            return {str(k): canon(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [canon(v) for v in value]
        raise InvalidInstanceError(
            f"parameter value {value!r} is not JSON-canonicalisable"
        )

    return _canonical_json(canon(dict(params) if params else {}))


def result_key(
    instance: StripPackingInstance,
    spec_name: str,
    params: Mapping[str, Any] | None = None,
    *,
    atol: float = ATOL,
) -> str:
    """The content-addressed cache key for one ``(instance, spec, params)``.

    ``spec_name`` must be the *resolved* algorithm name (callers that let
    the engine pick a per-variant default resolve it first, via
    :func:`repro.engine.default_algorithm`), so an explicit request and a
    defaulted request for the same solve share one cache entry.  Two solves
    with the same key are the same solve: same canonical instance, same
    algorithm, same (quantised) parameter overrides.
    """
    if not spec_name:
        raise InvalidInstanceError("result_key needs a non-empty spec name")
    return "|".join(
        (canonical_hash(instance, atol=atol), spec_name, canonical_params(params, atol=atol))
    )


def placement_from_dict(
    data: dict[str, Any], instance: StripPackingInstance
) -> Placement:
    """Rebuild a placement against ``instance`` (ids must match)."""
    by_id = instance.by_id()
    placement = Placement()
    for entry in data["placements"]:
        rid = entry["id"]
        if rid not in by_id:
            raise InvalidInstanceError(f"placement references unknown rect {rid!r}")
        placement.place(by_id[rid], float(entry["x"]), float(entry["y"]))
    return placement
