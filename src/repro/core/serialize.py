"""JSON (de)serialization for instances and placements.

The on-disk format is deliberately plain so downstream users can generate
instances from any tooling::

    {
      "type": "precedence",            # "plain" | "precedence" | "release"
      "K": 8,                          # release instances only
      "rects": [
        {"id": "dct:0", "width": 0.25, "height": 2.0, "release": 0.0},
        ...
      ],
      "edges": [["tile_split", "dct:0"], ...]   # precedence only
    }

Placements serialise as ``{"placements": [{"id":..., "x":..., "y":...}]}``.
Round-tripping is exact for ids and floats (no quantisation is applied).

The module also owns the **canonical fingerprint** used by the serving
layer's content-addressed result cache (:mod:`repro.service`):
:func:`canonical_instance_dict` reduces an instance to a form that is
insensitive to rectangle order and to float noise below the shared
geometric tolerance (:data:`repro.core.tol.ATOL`), :func:`canonical_hash`
is its SHA-256, and :func:`result_key` combines the hash with an algorithm
name and its parameter overrides into the cache key for one solve.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping

from .errors import InvalidInstanceError
from .instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from .placement import Placement
from .rectangle import Rect
from .tol import ATOL

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "dumps_instance",
    "loads_instance",
    "placement_to_dict",
    "placement_from_dict",
    "canonical_instance_dict",
    "canonical_hash",
    "canonical_params",
    "result_key",
    "instance_sketch",
    "instance_delta",
    "SKETCH_HASHES",
    "SKETCH_BANDS",
]


def instance_to_dict(instance: StripPackingInstance) -> dict[str, Any]:
    """Serialise any instance variant to a JSON-ready dict."""
    rects = [
        {"id": r.rid, "width": r.width, "height": r.height, "release": r.release}
        for r in instance.rects
    ]
    if isinstance(instance, ReleaseInstance):
        return {"type": "release", "K": instance.K, "rects": rects}
    if isinstance(instance, PrecedenceInstance):
        return {
            "type": "precedence",
            "rects": rects,
            "edges": [[u, v] for u, v in instance.dag.edges()],
        }
    return {"type": "plain", "rects": rects}


def instance_from_dict(data: dict[str, Any]) -> StripPackingInstance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    if not isinstance(data, dict):
        raise InvalidInstanceError(
            f"instance JSON must be an object, got {type(data).__name__}"
        )
    kind = data.get("type")
    if kind not in ("plain", "precedence", "release"):
        raise InvalidInstanceError(f"unknown instance type {kind!r}")
    try:
        rects = [
            Rect(
                rid=entry["id"],
                width=float(entry["width"]),
                height=float(entry["height"]),
                release=float(entry.get("release", 0.0)),
            )
            for entry in data["rects"]
        ]
    except KeyError as exc:
        raise InvalidInstanceError(f"rect entry missing field {exc}") from exc
    if kind == "plain":
        return StripPackingInstance(rects)
    if kind == "release":
        if "K" not in data:
            raise InvalidInstanceError("release instance requires 'K'")
        return ReleaseInstance(rects, int(data["K"]))
    from ..dag.graph import TaskDAG

    edges = [tuple(e) for e in data.get("edges", [])]
    return PrecedenceInstance(rects, TaskDAG([r.rid for r in rects], edges))


def dumps_instance(instance: StripPackingInstance, **json_kwargs: Any) -> str:
    """Instance -> JSON string."""
    return json.dumps(instance_to_dict(instance), **json_kwargs)


def loads_instance(text: str) -> StripPackingInstance:
    """JSON string -> instance."""
    return instance_from_dict(json.loads(text))


def placement_to_dict(placement: Placement) -> dict[str, Any]:
    """Serialise a placement (sorted by id string for stable output)."""
    return {
        "height": placement.height,
        "placements": sorted(
            ({"id": rid, "x": pr.x, "y": pr.y} for rid, pr in placement.items()),
            key=lambda e: str(e["id"]),
        ),
    }


# ----------------------------------------------------------------------
# canonical fingerprinting (the serving layer's cache identity)
# ----------------------------------------------------------------------

def _ticks(value: float, atol: float) -> int:
    """Quantise ``value`` onto the ``atol`` grid (integer tick count).

    Two dimensions that differ by less than half a tolerance step land on
    the same tick, so float noise far below any geometric decision
    threshold never splits the cache; genuinely different dimensions are
    many ticks apart (see :mod:`repro.core.tol` for why ``ATOL`` separates
    the two regimes).  Non-finite values (``json.loads`` accepts NaN and
    Infinity) have no tick and are rejected.
    """
    value = float(value)
    if not math.isfinite(value):
        raise InvalidInstanceError(f"cannot canonicalise non-finite value {value!r}")
    return int(round(value / atol))


def _canonical_json(value: Any) -> str:
    """Deterministic JSON used both for hashing and as a sort key."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def canonical_instance_dict(
    instance: StripPackingInstance, *, atol: float = ATOL
) -> dict[str, Any]:
    """Reduce ``instance`` to its canonical, fingerprint-ready dict.

    Properties the serving cache relies on:

    * **order-insensitive** — rectangles (and precedence edges) are sorted
      canonically, so permuting ``instance.rects`` does not change the
      result;
    * **tolerance-aware** — ``width``/``height``/``release`` are quantised
      to integer ticks on the ``atol`` grid, so float noise below the
      library's geometric tolerance maps to the same form;
    * **variant-complete** — the instance type, ``K`` (release), and the
      DAG edges (precedence) are part of the form, so instances that would
      solve differently never collide by construction.

    Ids are preserved verbatim (placements and precedence edges refer to
    them), which makes the fingerprint intentionally *not* invariant under
    id renaming.

    At the default ``atol`` the result is cached on the (frozen) instance
    — the serving hot path canonicalises once per request even though both
    the cache key and the neighbor sketch need the form.  The memo is
    bounded to exactly that one entry per instance: a call with a
    non-default ``atol`` neither reads nor writes it (it computes fresh),
    so an exotic-tolerance caller can never poison the grid the serving
    cache keys on.  Callers must treat the returned dict as immutable.
    """
    if atol == ATOL:
        cached = instance.__dict__.get("_canonical_dict")
        if cached is not None:
            return cached
    rects = sorted(
        (
            {
                "id": r.rid,
                "w": _ticks(r.width, atol),
                "h": _ticks(r.height, atol),
                "r": _ticks(r.release, atol),
            }
            for r in instance.rects
        ),
        key=_canonical_json,
    )
    data: dict[str, Any] = {"v": 1, "type": "plain", "rects": rects}
    if isinstance(instance, ReleaseInstance):
        data["type"] = "release"
        data["K"] = instance.K
    elif isinstance(instance, PrecedenceInstance):
        data["type"] = "precedence"
        data["edges"] = sorted(
            ([u, v] for u, v in instance.dag.edges()), key=_canonical_json
        )
    if atol == ATOL:
        object.__setattr__(instance, "_canonical_dict", data)
    return data


def canonical_hash(instance: StripPackingInstance, *, atol: float = ATOL) -> str:
    """SHA-256 hex digest of the canonical dict form of ``instance``.

    Equal canonical dicts hash equal (the digest is a pure function of
    :func:`canonical_instance_dict`); hash inequality therefore implies the
    canonical dicts differ.
    """
    payload = _canonical_json(canonical_instance_dict(instance, atol=atol))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_params(
    params: Mapping[str, Any] | None, *, atol: float = ATOL
) -> str:
    """Parameter overrides as deterministic JSON (``None`` == no overrides).

    Numbers (ints and floats alike) are quantised to the same ``atol``
    grid as geometry and rendered as tagged ``"n:<ticks>"`` strings: an
    ``eps`` that differs by float noise does not split the cache, and
    ``4`` and ``4.0`` (JSON clients emit either) share one key.  String
    values get an ``"s:"`` tag so no string can ever alias a number's
    canonical form.  Nested lists/dicts are canonicalised recursively;
    bools and ``None`` pass through (JSON keeps them distinct from every
    tagged string).
    """

    def canon(value: Any) -> Any:
        if isinstance(value, bool) or value is None:
            return value
        if isinstance(value, str):
            return f"s:{value}"
        if isinstance(value, (int, float)):
            return f"n:{_ticks(value, atol)}"
        if isinstance(value, Mapping):
            return {str(k): canon(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [canon(v) for v in value]
        raise InvalidInstanceError(
            f"parameter value {value!r} is not JSON-canonicalisable"
        )

    return _canonical_json(canon(dict(params) if params else {}))


def result_key(
    instance: StripPackingInstance,
    spec_name: str,
    params: Mapping[str, Any] | None = None,
    *,
    atol: float = ATOL,
) -> str:
    """The content-addressed cache key for one ``(instance, spec, params)``.

    ``spec_name`` must be the *resolved* algorithm name (callers that let
    the engine pick a per-variant default resolve it first, via
    :func:`repro.engine.default_algorithm`), so an explicit request and a
    defaulted request for the same solve share one cache entry.  Two solves
    with the same key are the same solve: same canonical instance, same
    algorithm, same (quantised) parameter overrides.
    """
    if not spec_name:
        raise InvalidInstanceError("result_key needs a non-empty spec name")
    return "|".join(
        (canonical_hash(instance, atol=atol), spec_name, canonical_params(params, atol=atol))
    )


# ----------------------------------------------------------------------
# locality-sensitive sketching (the serving layer's neighbor index)
# ----------------------------------------------------------------------

#: MinHash signature length; grouped into bands of ``SKETCH_HASHES //
#: SKETCH_BANDS`` rows each for LSH banding.
SKETCH_HASHES = 16
SKETCH_BANDS = 4

# 2^64 - 1: the identity of ``min`` over 8-byte hash values.
_SKETCH_MAX = (1 << 64) - 1

# One odd multiplier + offset per MinHash row (derived once from SHA-256 of
# the row index).  Each token is SHA-256-hashed a single time; row ``i``'s
# hash is the affine mix ``(a_i * h + b_i) mod 2^64`` of that digest — the
# standard universal-hashing trick that keeps the sketch O(tokens) instead
# of O(rows * tokens) sha256 calls.
def _row_mixers(rows: int) -> tuple[tuple[int, int], ...]:
    out = []
    for row in range(rows):
        digest = hashlib.sha256(f"sketch-row|{row}".encode("ascii")).digest()
        a = int.from_bytes(digest[:8], "big") | 1  # odd => bijective mod 2^64
        b = int.from_bytes(digest[8:16], "big")
        out.append((a, b))
    return tuple(out)


_SKETCH_MIXERS = _row_mixers(SKETCH_HASHES)


def instance_sketch(
    instance: StripPackingInstance, *, atol: float = ATOL
) -> tuple[str, ...]:
    """Locality-sensitive sketch of ``instance``: a tuple of LSH band keys.

    The sketch is a banded MinHash over the canonical rect entries of
    :func:`canonical_instance_dict` (id + quantised dims, so the token set
    changes by exactly the rects a delta touches).  Two instances that
    share *any* band key are near-duplicate candidates: with
    ``SKETCH_HASHES=16`` hashes in ``SKETCH_BANDS=4`` bands of 4 rows, a
    pair at Jaccard similarity ``s`` collides on at least one band with
    probability ``1-(1-s^4)^4`` — ~97% at ``s=0.9`` (a small delta on a
    mid-size instance), ~4% at ``s=0.4`` (mostly different rect sets).

    Band keys embed the instance type (and ``K`` for release variants), so
    instances of different variants never collide by construction.  The
    sketch is a pure function of the canonical dict — order-insensitive
    and tolerance-aware exactly like :func:`canonical_hash`.
    """
    import numpy as np

    canon = canonical_instance_dict(instance, atol=atol)
    # Tokens are the canonical entries flattened to plain strings (the
    # entries are {"id", "w", "h", "r"} with integer ticks, so formatting
    # is lossless) — hashed once each; rows come from the affine mixers.
    hashes = np.fromiter(
        (
            int.from_bytes(
                hashlib.blake2b(
                    f"{entry['id']!r}|{entry['w']}|{entry['h']}|{entry['r']}".encode(
                        "utf-8"
                    ),
                    digest_size=8,
                ).digest(),
                "big",
            )
            for entry in canon["rects"]
        ),
        dtype=np.uint64,
        count=len(canon["rects"]),
    )
    if hashes.size:
        signature = [
            int((hashes * np.uint64(a) + np.uint64(b)).min()) for a, b in _SKETCH_MIXERS
        ]
    else:
        signature = [_SKETCH_MAX] * SKETCH_HASHES
    variant = canon["type"] if canon["type"] != "release" else f"release/{canon['K']}"
    rows = SKETCH_HASHES // SKETCH_BANDS
    bands = []
    for band in range(SKETCH_BANDS):
        chunk = ",".join(str(v) for v in signature[band * rows : (band + 1) * rows])
        digest = hashlib.sha256(chunk.encode("ascii")).hexdigest()[:16]
        bands.append(f"{variant}|{band}:{digest}")
    return tuple(bands)


def instance_delta(
    old: StripPackingInstance,
    new: StripPackingInstance,
    *,
    atol: float = ATOL,
) -> dict[str, Any]:
    """Rect-level diff between two instances, keyed by rect id.

    Returns ``{"compatible", "added", "removed", "resized", "unchanged"}``
    where the id lists are sorted (by string form) and disjoint:

    * ``added``     — ids present only in ``new``;
    * ``removed``   — ids present only in ``old``;
    * ``resized``   — ids in both whose quantised ``width``/``height``/
      ``release`` ticks differ (sub-tolerance float noise is *not* a
      resize, matching the cache's equality notion);
    * ``unchanged`` — ids in both with identical ticks.

    ``compatible`` is ``False`` when the variants differ (or two release
    instances disagree on ``K``) — a warm-start repair across variants is
    meaningless, but the rect lists are still reported for diagnostics.
    """

    def entries(instance: StripPackingInstance) -> dict[Any, tuple[int, int, int]]:
        return {
            r.rid: (_ticks(r.width, atol), _ticks(r.height, atol), _ticks(r.release, atol))
            for r in instance.rects
        }

    old_entries, new_entries = entries(old), entries(new)
    added = sorted(set(new_entries) - set(old_entries), key=str)
    removed = sorted(set(old_entries) - set(new_entries), key=str)
    shared = set(old_entries) & set(new_entries)
    resized = sorted((rid for rid in shared if old_entries[rid] != new_entries[rid]), key=str)
    unchanged = sorted((rid for rid in shared if old_entries[rid] == new_entries[rid]), key=str)
    compatible = type(old) is type(new) and not (
        isinstance(old, ReleaseInstance)
        and isinstance(new, ReleaseInstance)
        and old.K != new.K
    )
    return {
        "compatible": compatible,
        "added": added,
        "removed": removed,
        "resized": resized,
        "unchanged": unchanged,
    }


def placement_from_dict(
    data: dict[str, Any], instance: StripPackingInstance
) -> Placement:
    """Rebuild a placement against ``instance`` (ids must match)."""
    by_id = instance.by_id()
    placement = Placement()
    for entry in data["placements"]:
        rid = entry["id"]
        if rid not in by_id:
            raise InvalidInstanceError(f"placement references unknown rect {rid!r}")
        placement.place(by_id[rid], float(entry["x"]), float(entry["y"]))
    return placement
