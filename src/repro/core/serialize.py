"""JSON (de)serialization for instances and placements.

The on-disk format is deliberately plain so downstream users can generate
instances from any tooling::

    {
      "type": "precedence",            # "plain" | "precedence" | "release"
      "K": 8,                          # release instances only
      "rects": [
        {"id": "dct:0", "width": 0.25, "height": 2.0, "release": 0.0},
        ...
      ],
      "edges": [["tile_split", "dct:0"], ...]   # precedence only
    }

Placements serialise as ``{"placements": [{"id":..., "x":..., "y":...}]}``.
Round-tripping is exact for ids and floats (no quantisation is applied).
"""

from __future__ import annotations

import json
from typing import Any

from .errors import InvalidInstanceError
from .instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from .placement import Placement
from .rectangle import Rect

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "dumps_instance",
    "loads_instance",
    "placement_to_dict",
    "placement_from_dict",
]


def instance_to_dict(instance: StripPackingInstance) -> dict[str, Any]:
    """Serialise any instance variant to a JSON-ready dict."""
    rects = [
        {"id": r.rid, "width": r.width, "height": r.height, "release": r.release}
        for r in instance.rects
    ]
    if isinstance(instance, ReleaseInstance):
        return {"type": "release", "K": instance.K, "rects": rects}
    if isinstance(instance, PrecedenceInstance):
        return {
            "type": "precedence",
            "rects": rects,
            "edges": [[u, v] for u, v in instance.dag.edges()],
        }
    return {"type": "plain", "rects": rects}


def instance_from_dict(data: dict[str, Any]) -> StripPackingInstance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    if not isinstance(data, dict):
        raise InvalidInstanceError(
            f"instance JSON must be an object, got {type(data).__name__}"
        )
    kind = data.get("type")
    if kind not in ("plain", "precedence", "release"):
        raise InvalidInstanceError(f"unknown instance type {kind!r}")
    try:
        rects = [
            Rect(
                rid=entry["id"],
                width=float(entry["width"]),
                height=float(entry["height"]),
                release=float(entry.get("release", 0.0)),
            )
            for entry in data["rects"]
        ]
    except KeyError as exc:
        raise InvalidInstanceError(f"rect entry missing field {exc}") from exc
    if kind == "plain":
        return StripPackingInstance(rects)
    if kind == "release":
        if "K" not in data:
            raise InvalidInstanceError("release instance requires 'K'")
        return ReleaseInstance(rects, int(data["K"]))
    from ..dag.graph import TaskDAG

    edges = [tuple(e) for e in data.get("edges", [])]
    return PrecedenceInstance(rects, TaskDAG([r.rid for r in rects], edges))


def dumps_instance(instance: StripPackingInstance, **json_kwargs: Any) -> str:
    """Instance -> JSON string."""
    return json.dumps(instance_to_dict(instance), **json_kwargs)


def loads_instance(text: str) -> StripPackingInstance:
    """JSON string -> instance."""
    return instance_from_dict(json.loads(text))


def placement_to_dict(placement: Placement) -> dict[str, Any]:
    """Serialise a placement (sorted by id string for stable output)."""
    return {
        "height": placement.height,
        "placements": sorted(
            ({"id": rid, "x": pr.x, "y": pr.y} for rid, pr in placement.items()),
            key=lambda e: str(e["id"]),
        ),
    }


def placement_from_dict(
    data: dict[str, Any], instance: StripPackingInstance
) -> Placement:
    """Rebuild a placement against ``instance`` (ids must match)."""
    by_id = instance.by_id()
    placement = Placement()
    for entry in data["placements"]:
        rid = entry["id"]
        if rid not in by_id:
            raise InvalidInstanceError(f"placement references unknown rect {rid!r}")
        placement.place(by_id[rid], float(entry["x"]), float(entry["y"]))
    return placement
