"""Lower bounds on the optimal packing height.

The paper's analyses rest on a small set of elementary lower bounds:

* ``AREA(S)`` — total area (strip width is 1, so area = average height);
* ``h_max``  — any single rectangle's height;
* ``F(S)``   — critical-path bound for the precedence variant (Section 2);
* ``r_max + min-height-above`` — release-time bound for Section 3;
* the fractional LP optimum ``OPT_f`` (computed in :mod:`repro.release.lp`)
  which lower-bounds the integral optimum.

These functions are used by benchmarks to report achieved/lower-bound
ratios on instances too large for the exact solver, exactly as the paper's
proofs compare against ``max(AREA, F)``.
"""

from __future__ import annotations

import math
from typing import Hashable

from ..dag.critical_path import F_of_set
from .instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance

__all__ = [
    "area_bound",
    "hmax_bound",
    "critical_path_bound",
    "release_bound",
    "combined_lower_bound",
]

Node = Hashable


def area_bound(instance: StripPackingInstance) -> float:
    """``AREA(S)``: since the strip has width 1, the covered area equals the
    average occupied height, so no packing can be shorter."""
    return instance.area


def hmax_bound(instance: StripPackingInstance) -> float:
    """Tallest rectangle: it must fit somewhere."""
    return instance.hmax


def critical_path_bound(instance: PrecedenceInstance) -> float:
    """``F(S)`` — Section 2's recursive bound: along any precedence chain the
    heights add up, regardless of widths."""
    return F_of_set(instance.dag, instance.heights())


def release_bound(instance: ReleaseInstance) -> float:
    """Release-time bound: every rectangle's top is at least
    ``r_s + h_s``, and the whole packing additionally covers ``AREA`` of
    strip; we return the max of those two simple facts."""
    per_rect = max((r.release + r.height for r in instance.rects), default=0.0)
    return max(per_rect, instance.area)


def combined_lower_bound(instance: StripPackingInstance) -> float:
    """The strongest elementary bound available for the instance's type.

    * plain: ``max(AREA, h_max)``
    * precedence: ``max(AREA, F)``  (F >= h_max always)
    * release: ``max(AREA, h_max, max_s r_s + h_s)``
    """
    best = max(area_bound(instance), hmax_bound(instance))
    if isinstance(instance, PrecedenceInstance):
        best = max(best, critical_path_bound(instance))
    if isinstance(instance, ReleaseInstance):
        best = max(best, release_bound(instance))
    return best


def dc_guarantee(n: int, area: float, f: float) -> float:
    """The height bound proved for Algorithm 1 (Theorem 2.3):
    ``DC(S) <= log2(n+1) * F(S) + 2 * AREA(S)``.

    Benchmarks assert the measured height never exceeds this.
    """
    if n <= 0:
        return 0.0
    return math.log2(n + 1) * f + 2.0 * area
