"""The rectangle (task) primitive shared by every problem variant.

A :class:`Rect` models one task in the paper's scheduling interpretation:

* ``width``   — fraction of the linearly-arranged resource the task occupies,
  normalised so the full device has width 1 (``0 < width <= 1``);
* ``height``  — execution time of the task;
* ``release`` — earliest time (strip height) at which the task may start,
  ``0`` when the variant has no release times (Section 3 of the paper);
* ``rid``     — stable identifier used by placements and precedence DAGs.

Rectangles are immutable; the reductions of Section 3 (which raise release
times and widen widths) create *new* rectangles via :meth:`Rect.replace`,
preserving the one-to-one correspondence the paper's Lemmas 3.1-3.2 rely on
through the shared ``rid``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as _dc_replace
from typing import Iterable, Iterator, Mapping, Sequence

from .errors import InvalidInstanceError

__all__ = [
    "Rect",
    "arrival_order",
    "decreasing_height_order",
    "total_area",
    "max_height",
    "max_width",
    "check_rects",
]


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle / task.

    Parameters
    ----------
    rid:
        Identifier, unique within an instance.  Any hashable value works;
        generators use small integers.
    width:
        Resource requirement, in ``(0, 1]`` (strip width is normalised to 1).
    height:
        Duration; strictly positive.
    release:
        Release time ``r_s >= 0``; the base of the rectangle must satisfy
        ``y_s >= release`` in any valid placement.
    """

    rid: int | str
    width: float
    height: float
    release: float = 0.0

    def __post_init__(self) -> None:
        if not (isinstance(self.width, (int, float)) and math.isfinite(self.width)):
            raise InvalidInstanceError(f"rect {self.rid!r}: width must be finite, got {self.width!r}")
        if not (isinstance(self.height, (int, float)) and math.isfinite(self.height)):
            raise InvalidInstanceError(f"rect {self.rid!r}: height must be finite, got {self.height!r}")
        if not math.isfinite(self.release):
            raise InvalidInstanceError(f"rect {self.rid!r}: release must be finite, got {self.release!r}")
        if self.width <= 0.0 or self.width > 1.0:
            raise InvalidInstanceError(
                f"rect {self.rid!r}: width must be in (0, 1], got {self.width!r}"
            )
        if self.height <= 0.0:
            raise InvalidInstanceError(
                f"rect {self.rid!r}: height must be positive, got {self.height!r}"
            )
        if self.release < 0.0:
            raise InvalidInstanceError(
                f"rect {self.rid!r}: release must be non-negative, got {self.release!r}"
            )

    @property
    def area(self) -> float:
        """Area ``width * height`` of the rectangle."""
        return self.width * self.height

    def replace(self, **changes: object) -> "Rect":
        """Return a copy with the given fields changed (keeps ``rid`` unless
        explicitly overridden) — used by the Section-3 reductions."""
        return _dc_replace(self, **changes)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        r = f", r={self.release:g}" if self.release else ""
        return f"Rect({self.rid!r}, w={self.width:g}, h={self.height:g}{r})"


def arrival_order(rect: Rect) -> tuple[float, float, str]:
    """Sort key for processing tasks in release order.

    ``(release, -height, str(rid))``: arrivals by release time, taller
    tasks first within one release batch (the common OS policy: long jobs
    first when they arrive together), ids as the final deterministic
    tie-break.  The online simulator's streams and the release-aware
    packers share this one definition so their commit orders stay
    identical.
    """
    return (rect.release, -rect.height, str(rect.rid))


def decreasing_height_order(rects: Iterable[Rect]) -> list[Rect]:
    """Rectangles sorted for the decreasing-height packers (NFDH/FFDH/BFDH).

    Key ``(-height, -width, str(rid))``: tallest first, wider-first within
    a height tie, then ids as the final deterministic tie-break.  The id
    tie-break is *intentionally lexicographic on the string form* (so
    ``'10' < '9'`` and ids of mixed types compare uniformly) — it has been
    the packers' observable order since the seed and the differential
    suites pin it, so it must not be "fixed" to numeric order.  The
    array kernels share this exact ordering through
    :func:`repro.core.arrays.decreasing_order`.
    """
    return sorted(rects, key=lambda r: (-r.height, -r.width, str(r.rid)))


def total_area(rects: Iterable[Rect]) -> float:
    """``AREA(S')`` from the paper: the sum of rectangle areas.

    This is one of the two elementary lower bounds on the optimal height used
    throughout Section 2 (the other being the critical-path bound ``F``).
    """
    return math.fsum(r.area for r in rects)


def max_height(rects: Iterable[Rect]) -> float:
    """Maximum rectangle height, 0 for an empty collection."""
    return max((r.height for r in rects), default=0.0)


def max_width(rects: Iterable[Rect]) -> float:
    """Maximum rectangle width, 0 for an empty collection."""
    return max((r.width for r in rects), default=0.0)


def check_rects(rects: Sequence[Rect]) -> Mapping[int | str, Rect]:
    """Validate a rectangle collection and return an id -> rect mapping.

    Raises
    ------
    InvalidInstanceError
        If two rectangles share a ``rid`` (each dataclass already validated
        its own fields on construction).
    """
    by_id: dict[int | str, Rect] = {}
    for r in rects:
        if r.rid in by_id:
            raise InvalidInstanceError(f"duplicate rectangle id {r.rid!r}")
        by_id[r.rid] = r
    return by_id


def iter_ids(rects: Iterable[Rect]) -> Iterator[int | str]:
    """Yield the ids of ``rects`` in order."""
    for r in rects:
        yield r.rid
