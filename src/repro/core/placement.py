"""Placements (solutions) and the shared validity checker.

A placement assigns the lower-left corner ``(x_s, y_s)`` to each rectangle.
Validity, following the paper's definition verbatim:

1. containment: ``0 <= x_s <= 1 - w_s`` and ``y_s >= 0``;
2. no two rectangles overlap (open-interior intersection test — shared
   edges are allowed);
3. *(precedence variant)* for every edge ``(s, s')``: ``y_s + h_s <= y_{s'}``;
4. *(release variant)* ``y_s >= r_s``.

Algorithms in this library never self-certify: each returns a
:class:`Placement` and the test-suite (and the benchmark harness) re-checks
it with :func:`validate_placement`, which dispatches on the instance type.

The overlap check offers two engines: an O(n^2) pairwise reference and an
interval-sweep over y-events that is near-linear for the shelf-structured
packings the algorithms produce; the validator cross-checks them in tests.
At scale (``n >= 64``) the validator switches to a columnar fast path:
the placement's x/y columns are gathered once and containment, overlap,
precedence, and release checks all run as vectorized passes — the same
tolerance predicates, evaluated elementwise, so accept/reject decisions
are identical to the scalar loops.

Kernel tiers (:mod:`repro.kernels`): the ``reference`` tier forces the
scalar loops at every ``n`` (the columnar path is the array-tier
optimization); the ``compiled`` tier runs the containment and overlap
sweeps as ``@njit`` scans (:mod:`repro.kernels.compiled`) with the same
predicates in the same visit order, so all three tiers accept/reject —
and report the same first offender — identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

import numpy as np

from .. import kernels as _kernels
from . import tol
from .errors import InvalidPlacementError
from .instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from .rectangle import Rect

__all__ = [
    "PlacedRect",
    "Placement",
    "validate_placement",
    "find_overlap",
    "find_overlap_columns",
]

Node = Hashable

#: Below this many rectangles the scalar loops win (no column-gather cost).
_COLUMNAR_MIN_N = 64


@dataclass(frozen=True, slots=True)
class PlacedRect:
    """A rectangle together with its lower-left placement point."""

    rect: Rect
    x: float
    y: float

    @property
    def x2(self) -> float:
        """Right edge ``x + w``."""
        return self.x + self.rect.width

    @property
    def y2(self) -> float:
        """Top edge ``y + h``."""
        return self.y + self.rect.height

    def overlaps(self, other: "PlacedRect", atol: float = tol.ATOL) -> bool:
        """Open-interior overlap test (shared edges do not overlap)."""
        return (
            tol.lt(self.x, other.x2, atol)
            and tol.lt(other.x, self.x2, atol)
            and tol.lt(self.y, other.y2, atol)
            and tol.lt(other.y, self.y2, atol)
        )


class Placement:
    """A (partial or complete) solution: id -> placement point.

    The object is mutable during construction (algorithms ``place`` into it)
    and exposes read-only queries afterwards; :func:`validate_placement`
    checks completeness against an instance.
    """

    __slots__ = ("_placed",)

    def __init__(self, placed: Mapping[Node, PlacedRect] | None = None) -> None:
        self._placed: dict[Node, PlacedRect] = dict(placed or {})

    # -- construction ---------------------------------------------------
    def place(self, rect: Rect, x: float, y: float) -> None:
        """Record rectangle ``rect`` at lower-left point ``(x, y)``."""
        if rect.rid in self._placed:
            raise InvalidPlacementError(f"rectangle {rect.rid!r} placed twice")
        if not (math.isfinite(x) and math.isfinite(y)):
            raise InvalidPlacementError(f"non-finite placement for {rect.rid!r}: ({x}, {y})")
        self._placed[rect.rid] = PlacedRect(rect, x, y)

    def merge(self, other: "Placement") -> None:
        """Absorb another placement (disjoint id sets required)."""
        for rid, pr in other.items():
            if rid in self._placed:
                raise InvalidPlacementError(f"rectangle {rid!r} placed twice (merge)")
            self._placed[rid] = pr

    def shifted(self, dy: float) -> "Placement":
        """A copy with every rectangle moved up by ``dy``."""
        return Placement(
            {rid: PlacedRect(pr.rect, pr.x, pr.y + dy) for rid, pr in self._placed.items()}
        )

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._placed)

    def __contains__(self, rid: Node) -> bool:
        return rid in self._placed

    def __getitem__(self, rid: Node) -> PlacedRect:
        return self._placed[rid]

    def items(self) -> Iterable[tuple[Node, PlacedRect]]:
        return self._placed.items()

    def __iter__(self) -> Iterator[PlacedRect]:
        return iter(self._placed.values())

    @property
    def height(self) -> float:
        """Height of the packing: ``max_s (y_s + h_s)``, 0 when empty."""
        return max((pr.y2 for pr in self._placed.values()), default=0.0)

    @property
    def base(self) -> float:
        """Lowest base ``min_s y_s`` (0 when empty)."""
        return min((pr.y for pr in self._placed.values()), default=0.0)

    def extent(self) -> float:
        """Vertical extent ``height - base`` — the quantity the paper's
        subroutine contract ``A(y, S')`` reports."""
        return self.height - self.base if self._placed else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Placement(n={len(self)}, height={self.height:.4g})"


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def find_overlap(
    placed: Iterable[PlacedRect], atol: float = tol.ATOL
) -> tuple[PlacedRect, PlacedRect] | None:
    """Return an overlapping pair, or ``None``.

    Sweep over y: sort rectangles by base, keep an active list pruned by top
    edge; pairwise-test only rectangles whose y-ranges intersect.  Worst case
    O(n^2) (all rectangles stacked in one band) but near-linear on real
    packings; exact same predicate as :meth:`PlacedRect.overlaps`.
    """
    items = sorted(placed, key=lambda pr: pr.y)
    active: list[PlacedRect] = []
    for pr in items:
        still = []
        for a in active:
            if tol.gt(a.y2, pr.y, atol):  # a's top strictly above pr's base
                still.append(a)
                if pr.overlaps(a, atol):
                    return (a, pr)
        active = still
        active.append(pr)
    return None


def find_overlap_columns(
    xs: np.ndarray,
    ys: np.ndarray,
    x2: np.ndarray,
    y2: np.ndarray,
    atol: float = tol.ATOL,
    *,
    pair_budget: int = 1 << 20,
) -> tuple[int, int] | None:
    """Columnar twin of :func:`find_overlap`: row indices of an overlapping
    pair, or ``None``.

    Rows are sorted by base ``y``; for each row the candidate partners —
    the later rows whose base lies below this row's top, found by one
    ``searchsorted`` — are tested against the full four-inequality
    predicate of :meth:`PlacedRect.overlaps` in vectorized batches of at
    most ``pair_budget`` candidate pairs (bounding temporary memory).
    Exactly the predicate of the scalar sweep, so the two engines agree on
    overlap existence; which *pair* is reported may differ when several
    overlap.
    """
    n = len(xs)
    order = np.argsort(ys, kind="stable")
    xs_s, ys_s = xs[order], ys[order]
    x2_s, y2_s = x2[order], y2[order]
    # Candidate partners for row k: rows k+1 .. his[k]-1 (bases below k's
    # top, beyond tolerance — the y-condition tol.lt(y_j, y2_k) verbatim).
    his = np.searchsorted(ys_s, y2_s - atol, side="left")
    if _kernels.use_compiled():
        from ..kernels.compiled import overlap_scan

        k, j = overlap_scan(xs_s, ys_s, x2_s, y2_s, his, atol)
        if k < 0:
            return None
        return int(order[k]), int(order[j])
    counts = np.maximum(his - np.arange(1, n + 1), 0)
    start = 0
    while start < n:
        end = start + 1
        total = int(counts[start])
        while end < n and total + counts[end] <= pair_budget:
            total += int(counts[end])
            end += 1
        if total:
            c = counts[start:end]
            kk = np.repeat(np.arange(start, end), c)
            base = np.cumsum(c) - c
            jj = np.arange(total) - np.repeat(base, c) + kk + 1
            hit = (
                (xs_s[kk] < x2_s[jj] - atol)
                & (xs_s[jj] < x2_s[kk] - atol)
                & (ys_s[kk] < y2_s[jj] - atol)
            )
            h = int(hit.argmax())
            if hit[h]:
                return int(order[kk[h]]), int(order[jj[h]])
        start = end
    return None


def _placement_columns(pairs: list[tuple[Node, PlacedRect]]):
    """Gather x/y/x2/y2 columns from placement items (one pass)."""
    n = len(pairs)
    xs = np.empty(n)
    ys = np.empty(n)
    x2 = np.empty(n)
    y2 = np.empty(n)
    for i, (_, pr) in enumerate(pairs):
        xs[i] = pr.x
        ys[i] = pr.y
        x2[i] = pr.x + pr.rect.width
        y2[i] = pr.y + pr.rect.height
    return xs, ys, x2, y2


def validate_placement(
    instance: StripPackingInstance,
    placement: Placement,
    *,
    atol: float = tol.ATOL,
    max_height: float | None = None,
) -> None:
    """Raise :class:`InvalidPlacementError` unless ``placement`` is a valid,
    complete solution of ``instance``.

    Checks, in order: completeness (every rectangle placed exactly once, no
    strays), strip containment, pairwise non-overlap, then the constraints
    of the specific variant (precedence edges / release times).  Optionally
    enforces a height budget ``max_height``.
    """
    ids = {r.rid for r in instance.rects}
    placed_ids = {rid for rid, _ in placement.items()}
    missing = ids - placed_ids
    if missing:
        raise InvalidPlacementError(f"{len(missing)} rectangles unplaced, e.g. {next(iter(missing))!r}")
    stray = placed_ids - ids
    if stray:
        raise InvalidPlacementError(f"placement contains unknown ids, e.g. {next(iter(stray))!r}")

    by_id = instance.by_id()
    for rid, pr in placement.items():
        r = by_id[rid]
        if pr.rect is not r and pr.rect != r:
            raise InvalidPlacementError(
                f"rectangle {rid!r} was placed with altered dimensions "
                f"({pr.rect} != {r})"
            )

    pairs = list(placement.items())
    # The columnar path is the array-tier optimization: the reference
    # kernel tier keeps the scalar loops at every n (same verdicts).
    if len(pairs) >= _COLUMNAR_MIN_N and not _kernels.use_reference():
        _validate_columnar(instance, placement, pairs, atol, max_height)
        return

    for rid, pr in pairs:
        if tol.lt(pr.x, 0.0, atol) or tol.gt(pr.x2, 1.0, atol):
            raise InvalidPlacementError(
                f"rectangle {rid!r} sticks out horizontally: x in [{pr.x:.6g}, {pr.x2:.6g}]"
            )
        if tol.lt(pr.y, 0.0, atol):
            raise InvalidPlacementError(f"rectangle {rid!r} below the strip base: y={pr.y:.6g}")
        if max_height is not None and tol.gt(pr.y2, max_height, atol):
            raise InvalidPlacementError(
                f"rectangle {rid!r} exceeds height budget {max_height:g}: top={pr.y2:.6g}"
            )

    bad = find_overlap((pr for _, pr in pairs), atol)
    if bad is not None:
        _raise_overlap(*bad)

    if isinstance(instance, PrecedenceInstance):
        for u, v in instance.dag.edges():
            pu, pv = placement[u], placement[v]
            if tol.gt(pu.y2, pv.y, atol):
                _raise_precedence(u, v, pu, pv)

    if isinstance(instance, ReleaseInstance):
        for rid, pr in pairs:
            if tol.lt(pr.y, pr.rect.release, atol):
                _raise_release(rid, pr)


def _raise_containment(
    check: int, pair: tuple[Node, PlacedRect], max_height: float | None
) -> None:
    """Shared containment error messages (checks 0/1/2 of the columnar and
    compiled engines — horizontal, below-base, height budget)."""
    rid, pr = pair
    if check == 0:
        raise InvalidPlacementError(
            f"rectangle {rid!r} sticks out horizontally: x in [{pr.x:.6g}, {pr.x2:.6g}]"
        )
    if check == 1:
        raise InvalidPlacementError(f"rectangle {rid!r} below the strip base: y={pr.y:.6g}")
    raise InvalidPlacementError(
        f"rectangle {rid!r} exceeds height budget {max_height:g}: top={pr.y2:.6g}"
    )


def _raise_overlap(a: PlacedRect, b: PlacedRect) -> None:
    raise InvalidPlacementError(
        f"rectangles {a.rect.rid!r} and {b.rect.rid!r} overlap: "
        f"[{a.x:.4g},{a.x2:.4g}]x[{a.y:.4g},{a.y2:.4g}] vs "
        f"[{b.x:.4g},{b.x2:.4g}]x[{b.y:.4g},{b.y2:.4g}]"
    )


def _raise_precedence(u: Node, v: Node, pu: PlacedRect, pv: PlacedRect) -> None:
    raise InvalidPlacementError(
        f"precedence violated: top({u!r})={pu.y2:.6g} > base({v!r})={pv.y:.6g}"
    )


def _raise_release(rid: Node, pr: PlacedRect) -> None:
    raise InvalidPlacementError(
        f"release violated: {rid!r} starts at {pr.y:.6g} < r={pr.rect.release:.6g}"
    )


def _validate_columnar(
    instance: StripPackingInstance,
    placement: Placement,
    pairs: list[tuple[Node, PlacedRect]],
    atol: float,
    max_height: float | None,
) -> None:
    """Vectorized containment/overlap/precedence/release checks.

    Every comparison is the elementwise image of the scalar tolerance
    predicate (``tol.lt(a, b)`` becomes ``a < b - atol`` on whole
    columns), so the accept/reject outcome matches the scalar path
    exactly; only *which* offender is reported may differ when a
    placement violates several constraints at once.
    """
    xs, ys, x2, y2 = _placement_columns(pairs)

    if _kernels.use_compiled():
        from ..kernels.compiled import containment_scan

        check, i = containment_scan(
            xs, ys, x2, y2, atol,
            0.0 if max_height is None else max_height,
            max_height is not None,
        )
        if check >= 0:
            _raise_containment(int(check), pairs[int(i)], max_height)
    else:
        viol = (xs < 0.0 - atol) | (x2 > 1.0 + atol)
        i = int(viol.argmax())
        if viol[i]:
            _raise_containment(0, pairs[i], max_height)
        viol = ys < 0.0 - atol
        i = int(viol.argmax())
        if viol[i]:
            _raise_containment(1, pairs[i], max_height)
        if max_height is not None:
            viol = y2 > max_height + atol
            i = int(viol.argmax())
            if viol[i]:
                _raise_containment(2, pairs[i], max_height)

    bad = find_overlap_columns(xs, ys, x2, y2, atol)
    if bad is not None:
        _raise_overlap(pairs[bad[0]][1], pairs[bad[1]][1])

    if isinstance(instance, PrecedenceInstance):
        edges = list(instance.dag.edges())
        if edges:
            pos = {rid: i for i, (rid, _) in enumerate(pairs)}
            ui = np.fromiter((pos[u] for u, _ in edges), np.intp, count=len(edges))
            vi = np.fromiter((pos[v] for _, v in edges), np.intp, count=len(edges))
            viol = y2[ui] > ys[vi] + atol
            k = int(viol.argmax())
            if viol[k]:
                u, v = edges[k]
                _raise_precedence(u, v, placement[u], placement[v])

    if isinstance(instance, ReleaseInstance):
        rel = np.fromiter((pr.rect.release for _, pr in pairs), float, count=len(pairs))
        viol = ys < rel - atol
        i = int(viol.argmax())
        if viol[i]:
            rid, pr = pairs[i]
            _raise_release(rid, pr)
