"""Placements (solutions) and the shared validity checker.

A placement assigns the lower-left corner ``(x_s, y_s)`` to each rectangle.
Validity, following the paper's definition verbatim:

1. containment: ``0 <= x_s <= 1 - w_s`` and ``y_s >= 0``;
2. no two rectangles overlap (open-interior intersection test — shared
   edges are allowed);
3. *(precedence variant)* for every edge ``(s, s')``: ``y_s + h_s <= y_{s'}``;
4. *(release variant)* ``y_s >= r_s``.

Algorithms in this library never self-certify: each returns a
:class:`Placement` and the test-suite (and the benchmark harness) re-checks
it with :func:`validate_placement`, which dispatches on the instance type.

The overlap check offers two engines: an O(n^2) pairwise reference and an
interval-sweep over y-events that is near-linear for the shelf-structured
packings the algorithms produce; the validator cross-checks them in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

from . import tol
from .errors import InvalidPlacementError
from .instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from .rectangle import Rect

__all__ = [
    "PlacedRect",
    "Placement",
    "validate_placement",
    "find_overlap",
]

Node = Hashable


@dataclass(frozen=True, slots=True)
class PlacedRect:
    """A rectangle together with its lower-left placement point."""

    rect: Rect
    x: float
    y: float

    @property
    def x2(self) -> float:
        """Right edge ``x + w``."""
        return self.x + self.rect.width

    @property
    def y2(self) -> float:
        """Top edge ``y + h``."""
        return self.y + self.rect.height

    def overlaps(self, other: "PlacedRect", atol: float = tol.ATOL) -> bool:
        """Open-interior overlap test (shared edges do not overlap)."""
        return (
            tol.lt(self.x, other.x2, atol)
            and tol.lt(other.x, self.x2, atol)
            and tol.lt(self.y, other.y2, atol)
            and tol.lt(other.y, self.y2, atol)
        )


class Placement:
    """A (partial or complete) solution: id -> placement point.

    The object is mutable during construction (algorithms ``place`` into it)
    and exposes read-only queries afterwards; :func:`validate_placement`
    checks completeness against an instance.
    """

    __slots__ = ("_placed",)

    def __init__(self, placed: Mapping[Node, PlacedRect] | None = None) -> None:
        self._placed: dict[Node, PlacedRect] = dict(placed or {})

    # -- construction ---------------------------------------------------
    def place(self, rect: Rect, x: float, y: float) -> None:
        """Record rectangle ``rect`` at lower-left point ``(x, y)``."""
        if rect.rid in self._placed:
            raise InvalidPlacementError(f"rectangle {rect.rid!r} placed twice")
        if not (math.isfinite(x) and math.isfinite(y)):
            raise InvalidPlacementError(f"non-finite placement for {rect.rid!r}: ({x}, {y})")
        self._placed[rect.rid] = PlacedRect(rect, x, y)

    def merge(self, other: "Placement") -> None:
        """Absorb another placement (disjoint id sets required)."""
        for rid, pr in other.items():
            if rid in self._placed:
                raise InvalidPlacementError(f"rectangle {rid!r} placed twice (merge)")
            self._placed[rid] = pr

    def shifted(self, dy: float) -> "Placement":
        """A copy with every rectangle moved up by ``dy``."""
        return Placement(
            {rid: PlacedRect(pr.rect, pr.x, pr.y + dy) for rid, pr in self._placed.items()}
        )

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._placed)

    def __contains__(self, rid: Node) -> bool:
        return rid in self._placed

    def __getitem__(self, rid: Node) -> PlacedRect:
        return self._placed[rid]

    def items(self) -> Iterable[tuple[Node, PlacedRect]]:
        return self._placed.items()

    def __iter__(self) -> Iterator[PlacedRect]:
        return iter(self._placed.values())

    @property
    def height(self) -> float:
        """Height of the packing: ``max_s (y_s + h_s)``, 0 when empty."""
        return max((pr.y2 for pr in self._placed.values()), default=0.0)

    @property
    def base(self) -> float:
        """Lowest base ``min_s y_s`` (0 when empty)."""
        return min((pr.y for pr in self._placed.values()), default=0.0)

    def extent(self) -> float:
        """Vertical extent ``height - base`` — the quantity the paper's
        subroutine contract ``A(y, S')`` reports."""
        return self.height - self.base if self._placed else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Placement(n={len(self)}, height={self.height:.4g})"


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def find_overlap(
    placed: Iterable[PlacedRect], atol: float = tol.ATOL
) -> tuple[PlacedRect, PlacedRect] | None:
    """Return an overlapping pair, or ``None``.

    Sweep over y: sort rectangles by base, keep an active list pruned by top
    edge; pairwise-test only rectangles whose y-ranges intersect.  Worst case
    O(n^2) (all rectangles stacked in one band) but near-linear on real
    packings; exact same predicate as :meth:`PlacedRect.overlaps`.
    """
    items = sorted(placed, key=lambda pr: pr.y)
    active: list[PlacedRect] = []
    for pr in items:
        still = []
        for a in active:
            if tol.gt(a.y2, pr.y, atol):  # a's top strictly above pr's base
                still.append(a)
                if pr.overlaps(a, atol):
                    return (a, pr)
        active = still
        active.append(pr)
    return None


def validate_placement(
    instance: StripPackingInstance,
    placement: Placement,
    *,
    atol: float = tol.ATOL,
    max_height: float | None = None,
) -> None:
    """Raise :class:`InvalidPlacementError` unless ``placement`` is a valid,
    complete solution of ``instance``.

    Checks, in order: completeness (every rectangle placed exactly once, no
    strays), strip containment, pairwise non-overlap, then the constraints
    of the specific variant (precedence edges / release times).  Optionally
    enforces a height budget ``max_height``.
    """
    ids = {r.rid for r in instance.rects}
    placed_ids = {rid for rid, _ in placement.items()}
    missing = ids - placed_ids
    if missing:
        raise InvalidPlacementError(f"{len(missing)} rectangles unplaced, e.g. {next(iter(missing))!r}")
    stray = placed_ids - ids
    if stray:
        raise InvalidPlacementError(f"placement contains unknown ids, e.g. {next(iter(stray))!r}")

    by_id = instance.by_id()
    for rid, pr in placement.items():
        if pr.rect != by_id[rid]:
            raise InvalidPlacementError(
                f"rectangle {rid!r} was placed with altered dimensions "
                f"({pr.rect} != {by_id[rid]})"
            )
        if tol.lt(pr.x, 0.0, atol) or tol.gt(pr.x2, 1.0, atol):
            raise InvalidPlacementError(
                f"rectangle {rid!r} sticks out horizontally: x in [{pr.x:.6g}, {pr.x2:.6g}]"
            )
        if tol.lt(pr.y, 0.0, atol):
            raise InvalidPlacementError(f"rectangle {rid!r} below the strip base: y={pr.y:.6g}")
        if max_height is not None and tol.gt(pr.y2, max_height, atol):
            raise InvalidPlacementError(
                f"rectangle {rid!r} exceeds height budget {max_height:g}: top={pr.y2:.6g}"
            )

    bad = find_overlap((pr for _, pr in placement.items()), atol)
    if bad is not None:
        a, b = bad
        raise InvalidPlacementError(
            f"rectangles {a.rect.rid!r} and {b.rect.rid!r} overlap: "
            f"[{a.x:.4g},{a.x2:.4g}]x[{a.y:.4g},{a.y2:.4g}] vs "
            f"[{b.x:.4g},{b.x2:.4g}]x[{b.y:.4g},{b.y2:.4g}]"
        )

    if isinstance(instance, PrecedenceInstance):
        for u, v in instance.dag.edges():
            pu, pv = placement[u], placement[v]
            if tol.gt(pu.y2, pv.y, atol):
                raise InvalidPlacementError(
                    f"precedence violated: top({u!r})={pu.y2:.6g} > base({v!r})={pv.y:.6g}"
                )

    if isinstance(instance, ReleaseInstance):
        for rid, pr in placement.items():
            if tol.lt(pr.y, pr.rect.release, atol):
                raise InvalidPlacementError(
                    f"release violated: {rid!r} starts at {pr.y:.6g} < r={pr.rect.release:.6g}"
                )
