"""Problem-instance types for the three variants studied in the paper.

* :class:`StripPackingInstance` — classical strip packing (the substrate);
* :class:`PrecedenceInstance`   — Section 2: a DAG constrains vertical order;
* :class:`ReleaseInstance`      — Section 3: per-rectangle release times,
  with the paper's standard assumptions (heights at most 1, widths at least
  ``1/K``) checked by :meth:`ReleaseInstance.check_aptas_assumptions`.

Instances are immutable containers: algorithms read them and return
:class:`~repro.core.placement.Placement` objects; the shared validators in
:mod:`repro.core.placement` check every constraint an instance carries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping, Sequence

from ..dag.graph import TaskDAG
from ..dag.validate import check_same_universe
from .errors import InvalidInstanceError
from .rectangle import Rect, check_rects, max_height, total_area

__all__ = [
    "StripPackingInstance",
    "PrecedenceInstance",
    "ReleaseInstance",
]

Node = Hashable


@dataclass(frozen=True)
class StripPackingInstance:
    """Classical strip packing: rectangles in a width-1 strip, no rotation.

    The strip width is always normalised to 1; callers modelling a K-column
    device express column counts as widths ``c/K``
    (see :mod:`repro.fpga.device`).
    """

    rects: tuple[Rect, ...]

    def __init__(self, rects: Sequence[Rect]):
        object.__setattr__(self, "rects", tuple(rects))
        check_rects(self.rects)

    # -- shared helpers -------------------------------------------------
    def __len__(self) -> int:
        return len(self.rects)

    def __iter__(self) -> Iterator[Rect]:
        return iter(self.rects)

    def by_id(self) -> Mapping[Node, Rect]:
        """Mapping id -> rectangle."""
        return {r.rid: r for r in self.rects}

    def arrays(self):
        """Columnar view of the rectangles (built once, then cached).

        Returns the instance's :class:`~repro.core.arrays.RectArrays` —
        parallel ``width``/``height``/``release`` numpy columns over
        ``self.rects``.  Kernels and validators that batch over the whole
        instance read these columns instead of walking ``Rect`` objects;
        the cache means repeated solves (portfolio races, benchmark
        repetitions) share one copy.
        """
        cached = self.__dict__.get("_arrays")
        if cached is None:
            from .arrays import RectArrays

            cached = RectArrays(self.rects)
            object.__setattr__(self, "_arrays", cached)
        return cached

    def heights(self) -> dict[Node, float]:
        """Mapping id -> height (used by DAG critical-path computations)."""
        return {r.rid: r.height for r in self.rects}

    @property
    def area(self) -> float:
        """``AREA(S)`` — sum of rectangle areas (elementary lower bound)."""
        return total_area(self.rects)

    @property
    def hmax(self) -> float:
        """Maximum rectangle height (elementary lower bound)."""
        return max_height(self.rects)

    def subset(self, ids: Sequence[Node]) -> "StripPackingInstance":
        """Instance restricted to the given rectangle ids (order of ``ids``)."""
        by_id = self.by_id()
        return StripPackingInstance([by_id[i] for i in ids])


@dataclass(frozen=True)
class PrecedenceInstance(StripPackingInstance):
    """Strip packing with precedence constraints (Section 2).

    ``dag`` must be over exactly the rectangle ids; an edge ``(s, s')``
    requires ``y_s + h_s <= y_{s'}`` in any valid placement.
    """

    dag: TaskDAG = field(default=None)  # type: ignore[assignment]

    def __init__(self, rects: Sequence[Rect], dag: TaskDAG):
        StripPackingInstance.__init__(self, rects)
        check_same_universe(dag, (r.rid for r in self.rects))
        object.__setattr__(self, "dag", dag)

    @classmethod
    def without_constraints(cls, rects: Sequence[Rect]) -> "PrecedenceInstance":
        """Wrap plain rectangles in an edgeless DAG."""
        return cls(rects, TaskDAG.empty([r.rid for r in rects]))

    def uniform_height(self) -> bool:
        """Whether all rectangles share one height (the Section 2.2 case)."""
        hs = {r.height for r in self.rects}
        return len(hs) <= 1

    def induced(self, ids: Sequence[Node]) -> "PrecedenceInstance":
        """Sub-instance on ``ids`` with the induced precedence subgraph."""
        by_id = self.by_id()
        return PrecedenceInstance([by_id[i] for i in ids], self.dag.induced(ids))


@dataclass(frozen=True)
class ReleaseInstance(StripPackingInstance):
    """Strip packing with release times (Section 3).

    Every rectangle carries its release in ``Rect.release``; ``K`` records
    the column count of the motivating FPGA (used only to *check* the width
    assumption ``w >= 1/K`` — algorithms read widths directly).
    """

    K: int = 0

    def __init__(self, rects: Sequence[Rect], K: int):
        if K <= 0:
            raise InvalidInstanceError(f"K must be a positive integer, got {K!r}")
        StripPackingInstance.__init__(self, rects)
        object.__setattr__(self, "K", int(K))

    @property
    def rmax(self) -> float:
        """Largest release time — itself a lower bound on any solution when
        some rectangle is released then (its top sits above ``rmax``)."""
        return max((r.release for r in self.rects), default=0.0)

    def release_classes(self) -> dict[float, list[Rect]]:
        """Rectangles grouped by release time, keys ascending."""
        groups: dict[float, list[Rect]] = {}
        for r in self.rects:
            groups.setdefault(r.release, []).append(r)
        return dict(sorted(groups.items()))

    def check_aptas_assumptions(self) -> None:
        """Enforce the paper's standard assumptions for the APTAS:
        ``h_s <= 1`` and ``w_s in [1/K, 1]`` for every rectangle."""
        lo = 1.0 / self.K
        for r in self.rects:
            if r.height > 1.0 + 1e-12:
                raise InvalidInstanceError(
                    f"APTAS requires heights <= 1; rect {r.rid!r} has h={r.height!r}"
                )
            if r.width < lo - 1e-12:
                raise InvalidInstanceError(
                    f"APTAS requires widths >= 1/K = {lo:g}; rect {r.rid!r} has w={r.width!r}"
                )

    def with_rects(self, rects: Sequence[Rect]) -> "ReleaseInstance":
        """Same ``K``, new rectangles (used by the Section 3 reductions)."""
        return ReleaseInstance(rects, self.K)


def _is_finite_positive(x: float) -> bool:
    return isinstance(x, (int, float)) and math.isfinite(x) and x > 0
