"""Floating-point comparison discipline used throughout the library.

Strip packing algorithms make combinatorial decisions ("does this rectangle
fit in the remaining width?") from floating-point arithmetic.  A stray
``1e-17`` must never flip such a decision, so every geometric comparison in
the library goes through the helpers in this module with a single shared
absolute tolerance.

The default tolerance is deliberately coarse relative to machine epsilon but
far finer than any meaningful rectangle dimension: instances normalise the
strip width to 1 and the paper's constructions use widths no finer than
``1/K`` with ``K <= a few hundred``, so ``1e-9`` separates "genuinely equal"
from "genuinely different" by many orders of magnitude.
"""

from __future__ import annotations

#: Default absolute tolerance for geometric comparisons.
ATOL: float = 1e-9


def leq(a: float, b: float, atol: float = ATOL) -> bool:
    """Return ``True`` when ``a <= b`` up to tolerance (``a <= b + atol``)."""
    return a <= b + atol


def geq(a: float, b: float, atol: float = ATOL) -> bool:
    """Return ``True`` when ``a >= b`` up to tolerance (``a >= b - atol``)."""
    return a >= b - atol


def lt(a: float, b: float, atol: float = ATOL) -> bool:
    """Return ``True`` when ``a`` is strictly below ``b`` beyond tolerance."""
    return a < b - atol


def gt(a: float, b: float, atol: float = ATOL) -> bool:
    """Return ``True`` when ``a`` is strictly above ``b`` beyond tolerance."""
    return a > b + atol


def eq(a: float, b: float, atol: float = ATOL) -> bool:
    """Return ``True`` when ``a`` equals ``b`` up to tolerance."""
    return abs(a - b) <= atol


def is_zero(a: float, atol: float = ATOL) -> bool:
    """Return ``True`` when ``a`` is zero up to tolerance."""
    return abs(a) <= atol


def nearest_int(a: float, atol: float = ATOL) -> int | None:
    """The nearest integer when ``a`` is integral up to tolerance, else ``None``.

    The column-grid quantisation used across the stack (online scheduling,
    the exact branch-and-bound): a width ``w`` on a ``K``-column device
    must satisfy ``w * K == c`` for a whole ``c`` up to float noise.
    """
    c = round(a)
    return int(c) if abs(a - c) <= atol else None


def clamp(a: float, lo: float, hi: float) -> float:
    """Clamp ``a`` into ``[lo, hi]``.

    Used to snap values that drifted marginally outside their legal interval
    (e.g. an ``x`` coordinate of ``1.0000000000000002 - w``) back in, after a
    tolerance-aware check has established the drift is mere float noise.
    """
    if a < lo:
        return lo
    if a > hi:
        return hi
    return a
