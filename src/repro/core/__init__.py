"""Core types: rectangles, instances, placements, bounds, tolerances."""

from . import tol
from .arrays import PlacementBuilder, RectArrays, decreasing_order
from .bounds import (
    area_bound,
    combined_lower_bound,
    critical_path_bound,
    dc_guarantee,
    hmax_bound,
    release_bound,
)
from .errors import (
    BudgetExceededError,
    InvalidInstanceError,
    InvalidPlacementError,
    ReproError,
    SolverError,
)
from .instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from .placement import (
    PlacedRect,
    Placement,
    find_overlap,
    find_overlap_columns,
    validate_placement,
)
from .rectangle import (
    Rect,
    decreasing_height_order,
    max_height,
    max_width,
    total_area,
)
from .serialize import (
    dumps_instance,
    instance_from_dict,
    instance_to_dict,
    loads_instance,
    placement_from_dict,
    placement_to_dict,
)

__all__ = [
    "tol",
    "Rect",
    "RectArrays",
    "PlacementBuilder",
    "decreasing_order",
    "decreasing_height_order",
    "total_area",
    "max_height",
    "max_width",
    "StripPackingInstance",
    "PrecedenceInstance",
    "ReleaseInstance",
    "Placement",
    "PlacedRect",
    "validate_placement",
    "find_overlap",
    "find_overlap_columns",
    "area_bound",
    "hmax_bound",
    "critical_path_bound",
    "release_bound",
    "combined_lower_bound",
    "dc_guarantee",
    "instance_to_dict",
    "instance_from_dict",
    "dumps_instance",
    "loads_instance",
    "placement_to_dict",
    "placement_from_dict",
    "ReproError",
    "InvalidInstanceError",
    "InvalidPlacementError",
    "SolverError",
    "BudgetExceededError",
]
