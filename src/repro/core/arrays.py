"""Columnar (structure-of-arrays) view of a rectangle collection.

The object model (:class:`~repro.core.rectangle.Rect`, frozen dataclasses)
is the right interface for algorithms that reason about individual tasks,
but the offline subroutines the paper's reductions call repeatedly —
NFDH/FFDH/BFDH and the uniform-height algorithm F — iterate over *every*
rectangle of an instance thousands of times.  Per-object attribute access
dominates their runtime long before the algorithmic work does.

:class:`RectArrays` is the columnar twin: parallel numpy ``float64``
columns (``width``/``height``/``release``) plus the original rectangle
tuple for materialisation at the boundary.  Kernels address rectangles by
*position* (an integer row index), not by object, and only convert back to
the object world once, through :class:`PlacementBuilder`.

Discipline shared with the skyline kernel (:mod:`repro.geometry.skyline`):
columnar compute must be *observationally identical* to the object-based
reference — numpy ``float64`` arithmetic is IEEE-754 double arithmetic, so
an elementwise ``used + w`` equals the scalar Python sum bit for bit, and
the differential suite (``tests/test_levels_differential.py``) holds the
kernels to that standard placement-for-placement.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from .errors import InvalidPlacementError
from .placement import PlacedRect, Placement
from .rectangle import Rect

__all__ = [
    "RectArrays",
    "StackedRectArrays",
    "PlacementBuilder",
    "decreasing_order",
    "stacked_decreasing_order",
]

Node = Hashable


class RectArrays:
    """Parallel columns over a fixed rectangle tuple.

    ``width``/``height``/``release`` are read-only ``float64`` arrays with
    row ``i`` describing ``rects[i]``; ``rids`` and :meth:`index` map
    between row positions and rectangle ids.  Instances are immutable —
    :meth:`repro.core.instance.StripPackingInstance.arrays` builds one per
    instance and caches it, so every kernel run over the same instance
    shares one copy of the columns.
    """

    __slots__ = ("rects", "width", "height", "release", "_index", "_sids")

    def __init__(self, rects: Sequence[Rect]):
        self.rects: tuple[Rect, ...] = tuple(rects)
        n = len(self.rects)
        width = np.empty(n, dtype=np.float64)
        height = np.empty(n, dtype=np.float64)
        release = np.empty(n, dtype=np.float64)
        for i, r in enumerate(self.rects):
            width[i] = r.width
            height[i] = r.height
            release[i] = r.release
        width.setflags(write=False)
        height.setflags(write=False)
        release.setflags(write=False)
        self.width = width
        self.height = height
        self.release = release
        self._index: dict[Node, int] | None = None
        self._sids: np.ndarray | None = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_rects(cls, rects: Sequence[Rect]) -> "RectArrays":
        """Columnar view of a plain rectangle sequence."""
        return cls(rects)

    @classmethod
    def coerce(cls, rects) -> "RectArrays":
        """Adapt any packer input to columns.

        Accepts a :class:`RectArrays` (returned as-is), anything with an
        ``arrays()`` method (instances, which cache the columns), or a
        plain rectangle sequence (columns built on the spot).
        """
        if isinstance(rects, RectArrays):
            return rects
        arrays = getattr(rects, "arrays", None)
        if callable(arrays):
            return arrays()
        return cls(rects)

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rects)

    @property
    def rids(self) -> tuple[Node, ...]:
        """Rectangle ids, in row order."""
        return tuple(r.rid for r in self.rects)

    def index(self) -> dict[Node, int]:
        """Mapping rid -> row position (built lazily, then reused)."""
        if self._index is None:
            self._index = {r.rid: i for i, r in enumerate(self.rects)}
        return self._index

    def sid_column(self) -> np.ndarray:
        """String form of the ids, in row order (the lexicographic
        tie-break key of :func:`decreasing_order`; built lazily, then
        reused — instances cache their ``RectArrays``, so repeated
        solves skip the per-rect ``str()`` pass)."""
        if self._sids is None:
            self._sids = np.array([str(r.rid) for r in self.rects])
        return self._sids

    def __getstate__(self):
        # Drop the lazy index; numpy columns pickle fine (process backend).
        return (self.rects,)

    def __setstate__(self, state) -> None:
        self.__init__(state[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RectArrays(n={len(self)})"


def decreasing_order(arrays: RectArrays) -> np.ndarray:
    """Row permutation sorting by non-increasing height.

    The array-native twin of
    :func:`repro.core.rectangle.decreasing_height_order`: ties in height
    break by wider-first, then by the *lexicographic string form* of the
    id (same intentional tie-break — see that function's docstring).
    ``np.lexsort`` is stable, exactly like ``sorted``, so rows that tie on
    all three keys keep their input order and the two orderings agree
    permutation-for-permutation.
    """
    if not len(arrays):
        return np.empty(0, dtype=np.intp)
    # lexsort sorts by the *last* key first: height desc, width desc, sid asc.
    return np.lexsort((arrays.sid_column(), -arrays.width, -arrays.height))


class StackedRectArrays:
    """K instances' columns concatenated into one arena.

    The batched solve path (:mod:`repro.engine.stacked`) stacks every
    instance of a batch into single ``width``/``height`` columns with
    ``offsets`` marking the K+1 segment bounds, so one stacked sort and
    one kernel invocation replace K independent dispatches.  Row
    ``offsets[k] + i`` of the stack is row ``i`` of ``parts[k]``; the
    per-part :class:`RectArrays` are kept for materialising placements
    at the object boundary.
    """

    __slots__ = ("parts", "width", "height", "offsets")

    def __init__(self, parts: Sequence):
        self.parts: tuple[RectArrays, ...] = tuple(
            RectArrays.coerce(p) for p in parts
        )
        counts = np.array([len(p) for p in self.parts], dtype=np.int64)
        offsets = np.zeros(len(self.parts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self.offsets = offsets
        if self.parts and offsets[-1]:
            self.width = np.concatenate([p.width for p in self.parts])
            self.height = np.concatenate([p.height for p in self.parts])
        else:
            self.width = np.empty(0, dtype=np.float64)
            self.height = np.empty(0, dtype=np.float64)

    def __len__(self) -> int:
        """Total stacked row count (sum over parts)."""
        return int(self.offsets[-1])

    def segment(self, k: int) -> tuple[int, int]:
        """Global row bounds ``[lo, hi)`` of part ``k``."""
        return int(self.offsets[k]), int(self.offsets[k + 1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StackedRectArrays(parts={len(self.parts)}, n={len(self)})"


def stacked_decreasing_order(stacked: StackedRectArrays) -> np.ndarray:
    """Stacked row permutation: per-part decreasing-height order, parts
    kept contiguous and in input order.

    One ``lexsort`` with the part index as the *major* key; the minor
    keys are exactly :func:`decreasing_order`'s.  ``np.lexsort`` is
    stable, so slicing the result at ``stacked.offsets`` yields, segment
    by segment, the same permutation :func:`decreasing_order` computes
    for each part alone (shifted by the part's row offset) — the
    stacked-order differential test pins this equivalence.
    """
    n = len(stacked)
    if not n:
        return np.empty(0, dtype=np.intp)
    # Empty parts are skipped: their sid column is a float64 empty array
    # (numpy's default for ``np.array([])``) and would poison the
    # concatenated string dtype while contributing no rows.
    sids = np.concatenate([p.sid_column() for p in stacked.parts if len(p)])
    part_idx = np.repeat(
        np.arange(len(stacked.parts), dtype=np.int64), np.diff(stacked.offsets)
    )
    return np.lexsort((sids, -stacked.width, -stacked.height, part_idx))


class PlacementBuilder:
    """Array-native placement accumulator.

    Kernels append ``(row, x, y)`` triples — plain Python floats, already
    clamped — and :meth:`build` materialises the one
    :class:`~repro.core.placement.Placement` at the object boundary.  The
    accumulation order is preserved, so the built placement iterates in
    exactly the order the kernel placed (the object-based packers place
    into a dict in the same order, which keeps the two worlds
    byte-comparable).
    """

    __slots__ = ("arrays", "_rows", "_xs", "_ys")

    def __init__(self, arrays: RectArrays):
        self.arrays = arrays
        self._rows: list[int] = []
        self._xs: list[float] = []
        self._ys: list[float] = []

    def put(self, row: int, x: float, y: float) -> None:
        """Record the rectangle at row ``row`` with lower-left ``(x, y)``."""
        self._rows.append(row)
        self._xs.append(x)
        self._ys.append(y)

    def __len__(self) -> int:
        return len(self._rows)

    def build(self, dy: float = 0.0) -> Placement:
        """Materialise the accumulated columns into a :class:`Placement`,
        optionally shifting every ``y`` up by ``dy``."""
        rects = self.arrays.rects
        placed: dict[Node, PlacedRect] = {}
        if dy:
            for row, x, y in zip(self._rows, self._xs, self._ys):
                r = rects[row]
                placed[r.rid] = PlacedRect(r, x, y + dy)
        else:
            for row, x, y in zip(self._rows, self._xs, self._ys):
                r = rects[row]
                placed[r.rid] = PlacedRect(r, x, y)
        if len(placed) != len(self._rows):
            raise InvalidPlacementError("placement builder saw a rectangle twice")
        return Placement(placed)
