"""Algorithm registry and the one-call :func:`solve` dispatcher.

The public entry point for users who just want a packing: pick an algorithm
by name (or let the dispatcher choose a sensible default for the instance's
variant) and get a validated :class:`~repro.core.placement.Placement` back.

Registered algorithms (see DESIGN.md for guarantees):

====================  ===========================  ==============================
name                  instance type                guarantee
====================  ===========================  ==============================
``nfdh``              plain                        ``2*AREA + hmax``
``ffdh``              plain                        ``1.7*OPT + hmax`` (asymptotic)
``bfdh``              plain                        heuristic
``bottom_left``       plain                        heuristic
``dc``                precedence                   ``(2 + log2(n+1)) * OPT``
``shelf_next_fit``    precedence (uniform h)       ``3 * OPT``
``list_schedule``     precedence                   heuristic
``aptas``             release                      ``(1+eps)*OPT_f + (W+1)(R+1)``
``release_shelf``     release                      heuristic
``release_bl``        release                      heuristic
``online_ff``         release (columnar)           online policy (no lookahead)
====================  ===========================  ==============================
"""

from __future__ import annotations

from typing import Callable

from .errors import InvalidInstanceError
from .instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from .placement import Placement, validate_placement

__all__ = ["available_algorithms", "solve"]


def _plain(packer_name: str) -> Callable[[StripPackingInstance], Placement]:
    def run(instance: StripPackingInstance, **kw) -> Placement:
        from .. import packing

        packer = getattr(packing, packer_name)
        return packer(list(instance.rects), **kw).placement

    return run


def _dc(instance: StripPackingInstance, **kw) -> Placement:
    from ..precedence.dc import dc_pack

    if not isinstance(instance, PrecedenceInstance):
        instance = PrecedenceInstance.without_constraints(list(instance.rects))
    return dc_pack(instance, **kw).placement


def _shelf_next_fit(instance: StripPackingInstance, **kw) -> Placement:
    from ..precedence.shelf_nextfit import shelf_next_fit

    if not isinstance(instance, PrecedenceInstance):
        instance = PrecedenceInstance.without_constraints(list(instance.rects))
    return shelf_next_fit(instance, **kw).placement


def _list_schedule(instance: StripPackingInstance, **kw) -> Placement:
    from ..precedence.list_schedule import list_schedule

    if not isinstance(instance, PrecedenceInstance):
        instance = PrecedenceInstance.without_constraints(list(instance.rects))
    return list_schedule(instance, **kw)


def _aptas(instance: StripPackingInstance, eps: float = 0.5, **kw) -> Placement:
    from ..release.aptas import aptas

    if not isinstance(instance, ReleaseInstance):
        raise InvalidInstanceError("aptas requires a ReleaseInstance")
    return aptas(instance, eps, **kw).placement


def _release_shelf(instance: StripPackingInstance, **kw) -> Placement:
    from ..release.heuristics import release_shelf_pack

    if not isinstance(instance, ReleaseInstance):
        raise InvalidInstanceError("release_shelf requires a ReleaseInstance")
    return release_shelf_pack(instance, **kw)


def _release_bl(instance: StripPackingInstance, **kw) -> Placement:
    from ..release.heuristics import release_bottom_left

    if not isinstance(instance, ReleaseInstance):
        raise InvalidInstanceError("release_bl requires a ReleaseInstance")
    return release_bottom_left(instance, **kw)


def _online_ff(instance: StripPackingInstance, **kw) -> Placement:
    from ..release.online import online_first_fit

    if not isinstance(instance, ReleaseInstance):
        raise InvalidInstanceError("online_ff requires a ReleaseInstance")
    return online_first_fit(instance, **kw).placement


_REGISTRY: dict[str, Callable] = {
    "nfdh": _plain("nfdh"),
    "ffdh": _plain("ffdh"),
    "bfdh": _plain("bfdh"),
    "bottom_left": _plain("bottom_left"),
    "dc": _dc,
    "shelf_next_fit": _shelf_next_fit,
    "list_schedule": _list_schedule,
    "aptas": _aptas,
    "release_shelf": _release_shelf,
    "release_bl": _release_bl,
    "online_ff": _online_ff,
}


def available_algorithms() -> list[str]:
    """Names accepted by :func:`solve`."""
    return sorted(_REGISTRY)


def _default_for(instance: StripPackingInstance) -> str:
    if isinstance(instance, ReleaseInstance):
        return "aptas"
    if isinstance(instance, PrecedenceInstance):
        if instance.dag.n_edges and instance.uniform_height():
            return "shelf_next_fit"
        return "dc"
    return "nfdh"


def solve(
    instance: StripPackingInstance,
    algorithm: str | None = None,
    *,
    validate: bool = True,
    **kwargs,
) -> Placement:
    """Solve ``instance`` with the named (or default) algorithm.

    The returned placement is validated against the instance unless
    ``validate=False`` (benchmarks validate separately to keep timing pure).
    """
    name = algorithm or _default_for(instance)
    if name not in _REGISTRY:
        raise InvalidInstanceError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        )
    placement = _REGISTRY[name](instance, **kwargs)
    if validate:
        validate_placement(instance, placement)
    return placement
