"""Back-compat dispatch API: :func:`solve` and :func:`available_algorithms`.

Historically this module owned a closure table mapping algorithm names to
runners.  That table is now the declarative spec registry in
:mod:`repro.engine.spec` (one :class:`~repro.engine.spec.AlgorithmSpec`
per algorithm, with variant, guarantee, and default-parameter metadata),
and :func:`solve` is a thin shim over :func:`repro.engine.run` that
returns just the placement.  Existing callers keep working unchanged; new
code that wants timing, bounds, and ratios should call the engine and
read the :class:`~repro.engine.report.SolveReport` instead.

Registered algorithms (``repro info`` prints the live table):

====================  ===========================  ==============================
name                  instance type                guarantee
====================  ===========================  ==============================
``nfdh``              plain                        ``2*AREA + hmax``
``ffdh``              plain                        ``1.7*OPT + hmax`` (asymptotic)
``bfdh``              plain                        heuristic
``bottom_left``       plain                        heuristic
``dc``                precedence                   ``(2 + log2(n+1)) * OPT``
``shelf_next_fit``    precedence (uniform h)       ``3 * OPT``
``list_schedule``     precedence                   heuristic
``aptas``             release                      ``(1+eps)*OPT_f + (W+1)(R+1)``
``release_shelf``     release                      heuristic
``release_bl``        release                      heuristic
``online_ff``         release (columnar)           online policy (no lookahead)
====================  ===========================  ==============================
"""

from __future__ import annotations

from .errors import InvalidPlacementError
from .instance import StripPackingInstance
from .placement import Placement

__all__ = ["available_algorithms", "solve"]


def available_algorithms() -> list[str]:
    """Names accepted by :func:`solve` (sorted)."""
    from ..engine.spec import all_specs

    return [s.name for s in all_specs()]


def solve(
    instance: StripPackingInstance,
    algorithm: str | None = None,
    *,
    validate: bool = True,
    **kwargs,
) -> Placement:
    """Solve ``instance`` with the named (or default) algorithm.

    The returned placement is validated against the instance unless
    ``validate=False`` (benchmarks validate separately to keep timing pure).
    Keyword arguments override the algorithm spec's defaults (e.g.
    ``eps=...`` for the APTAS).
    """
    from ..engine.runner import run

    report = run(
        instance,
        algorithm,
        params=kwargs,
        validate=validate,
        compute_bounds=False,
    )
    if validate and not report.valid:
        raise InvalidPlacementError(report.error or "placement failed validation")
    return report.placement
