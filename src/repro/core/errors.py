"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing input problems (:class:`InvalidInstanceError`) from
output problems (:class:`InvalidPlacementError`) and solver-side issues
(:class:`SolverError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class InvalidInstanceError(ReproError, ValueError):
    """An instance violates its problem definition.

    Examples: a rectangle with non-positive height, a width outside
    ``(0, 1]``, a precedence graph with a cycle, a negative release time, or
    an APTAS input breaking the standard assumptions (``h <= 1`` and
    ``w >= 1/K``).
    """


class InvalidPlacementError(ReproError, ValueError):
    """A placement violates the validity conditions of its instance.

    Raised by the validators in :mod:`repro.core.placement` when a packing
    overlaps, sticks out of the strip, breaks a precedence edge or starts a
    rectangle below its release time.
    """


class SolverError(ReproError, RuntimeError):
    """An internal solver failed (LP infeasible/unbounded, B&B overflow...)."""


class BudgetExceededError(SolverError):
    """An exact solver exceeded its node or time budget before proving
    optimality.

    The exact branch-and-bound solvers are meant for small ratio-study
    instances; instead of silently returning a possibly sub-optimal height
    they raise this error when their search budget runs out.
    """
