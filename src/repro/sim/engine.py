"""The discrete-event loop: release tasks, dispatch, record.

:func:`simulate` is the subsystem's single entry point.  It walks a
:class:`~repro.sim.stream.TaskStream` in arrival order, hands each released
task to the policy for an immediate, irrevocable commit, and records every
commit as a :class:`~repro.sim.trace.SimEvent` — producing one
:class:`~repro.sim.trace.SimTrace` per run.

The loop is the trust boundary between streams, policies, and the rest of
the system: it rejects streams that travel back in time
(:class:`~repro.core.errors.InvalidInstanceError`) and policies that break
the commit contract — starting a task before its release or placing it
outside the strip (:class:`~repro.core.errors.SolverError`).  Overlap
freedom is *not* checked per-commit (that would be quadratic in the hot
loop); it is certified afterwards by
:meth:`~repro.sim.trace.SimTrace.to_report` or the shared
:func:`~repro.core.placement.validate_placement`, exactly as the offline
algorithms are audited.

``max_tasks`` and ``horizon`` bound the run, which is what makes infinite
generator streams consumable; finite streams simply exhaust.
"""

from __future__ import annotations

import heapq
import time

from ..core import tol
from ..core.errors import InvalidInstanceError, SolverError
from ..core.instance import ReleaseInstance
from ..core.placement import Placement
from .policies import OnlinePolicy, make_policy
from .stream import InstanceStream, TaskStream
from .trace import SimEvent, SimTrace

__all__ = ["simulate", "simulate_instance"]


def simulate(
    stream: TaskStream,
    policy: "str | OnlinePolicy" = "first_fit",
    *,
    max_tasks: int | None = None,
    horizon: float | None = None,
) -> SimTrace:
    """Run ``stream`` through ``policy`` and return the full trace.

    ``policy`` is a registered name (see
    :func:`~repro.sim.policies.policy_names`) or an
    :class:`~repro.sim.policies.OnlinePolicy` instance.  ``max_tasks``
    stops after that many commits; ``horizon`` stops at the first arrival
    strictly beyond it.  At least one bound is required for infinite
    streams — there is no way to detect "infinite" up front, so unbounded
    runs simply never return.
    """
    if max_tasks is not None and max_tasks < 0:
        raise InvalidInstanceError(f"max_tasks must be non-negative, got {max_tasks}")
    pol = make_policy(policy)
    K = stream.K
    pol.start(K)

    placement = Placement()
    events: list[SimEvent] = []
    waiting: list[float] = []  # committed future starts (min-heap)
    now = 0.0

    t0 = time.perf_counter()
    for rect in stream:
        if max_tasks is not None and len(events) >= max_tasks:
            break
        t = rect.release
        if tol.lt(t, now):
            raise InvalidInstanceError(
                f"stream is not in arrival order: rect {rect.rid!r} released at "
                f"{t:g} after time {now:g}"
            )
        if horizon is not None and tol.gt(t, horizon):
            break
        now = max(now, t)

        x, y = pol.place(rect)
        if tol.lt(y, rect.release):
            raise SolverError(
                f"policy {pol.name!r} started rect {rect.rid!r} at {y:g}, "
                f"before its release {rect.release:g}"
            )
        if tol.lt(x, 0.0) or tol.gt(x + rect.width, 1.0) or tol.lt(y, 0.0):
            raise SolverError(
                f"policy {pol.name!r} placed rect {rect.rid!r} outside the "
                f"strip: x={x:g}, y={y:g}, w={rect.width:g}"
            )
        placement.place(rect, x, y)

        heapq.heappush(waiting, y)
        while waiting and tol.leq(waiting[0], now):
            heapq.heappop(waiting)  # started (or finished) — no longer queued
        events.append(
            SimEvent(
                seq=len(events),
                time=t,
                rid=rect.rid,
                x=x,
                start=y,
                finish=y + rect.height,
                queue_depth=len(waiting),
            )
        )
    wall = time.perf_counter() - t0

    return SimTrace(
        policy=pol.name,
        K=K,
        events=tuple(events),
        placement=placement,
        wall_time=wall,
    )


def simulate_instance(
    instance: ReleaseInstance,
    policy: "str | OnlinePolicy" = "first_fit",
    *,
    max_tasks: int | None = None,
    horizon: float | None = None,
) -> SimTrace:
    """Replay a finite release instance through ``policy``.

    The one-liner the spec registry's online entries are built on:
    ``simulate(InstanceStream(instance), policy)``.
    """
    return simulate(
        InstanceStream(instance), policy, max_tasks=max_tasks, horizon=horizon
    )
