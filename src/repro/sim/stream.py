"""Task streams: where online arrivals come from.

A *task stream* is anything the event loop can iterate for
:class:`~repro.core.rectangle.Rect` tasks in nondecreasing release order,
plus a ``K`` attribute naming the column grid of the device being fed
(:class:`TaskStream` spells out the protocol).  Three sources ship:

* :class:`InstanceStream` — replay a finite
  :class:`~repro.core.instance.ReleaseInstance` (the offline benchmarks'
  instances, now arriving one event at a time);
* :class:`GeneratorStream` — wrap any (possibly infinite) rectangle
  generator; :func:`poisson_stream` builds the canonical seeded example,
  the arrival process of :func:`~repro.workloads.releases.poisson_release_instance`
  without the need to fix ``n`` up front;
* :class:`ReplayStream` — concatenate recorded traces (e.g. the release
  instances of a :func:`~repro.workloads.suite.mixed_instance_suite`
  directory) back-to-back on one timeline, the way a day of logged traffic
  replays against a new policy.

Streams are single-use iterables in general (generators exhaust); build a
fresh one per simulation run.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from ..core.errors import InvalidInstanceError
from ..core.instance import ReleaseInstance
from ..core.rectangle import Rect, arrival_order

__all__ = [
    "TaskStream",
    "InstanceStream",
    "GeneratorStream",
    "ReplayStream",
    "poisson_stream",
]


@runtime_checkable
class TaskStream(Protocol):
    """The protocol the event loop consumes.

    Implementations yield tasks in nondecreasing ``release`` order (the
    loop enforces this and raises on violations) and expose the column
    count ``K`` of the device the tasks target.
    """

    K: int

    def __iter__(self) -> Iterator[Rect]: ...  # pragma: no cover - protocol


class InstanceStream:
    """Replay a finite :class:`~repro.core.instance.ReleaseInstance`.

    Arrival order is ``(release, -height, str(rid))``: release times first,
    and within one release batch taller tasks first — the OS convention
    (long jobs first when they arrive together) that
    :func:`~repro.release.online.online_first_fit` has always used, kept
    here so the refactored scheduler is commit-for-commit identical.
    """

    __slots__ = ("instance", "K")

    def __init__(self, instance: ReleaseInstance) -> None:
        if not isinstance(instance, ReleaseInstance):
            raise InvalidInstanceError(
                f"InstanceStream needs a ReleaseInstance, got {type(instance).__name__}"
            )
        self.instance = instance
        self.K = instance.K

    def __iter__(self) -> Iterator[Rect]:
        return iter(sorted(self.instance.rects, key=arrival_order))

    def __len__(self) -> int:
        return len(self.instance)


class GeneratorStream:
    """Wrap an arbitrary rectangle iterable (finite or infinite).

    The event loop's ``max_tasks`` / ``horizon`` caps are what make
    infinite generators consumable; the stream itself just carries ``K``
    and defers to the underlying iterable.
    """

    __slots__ = ("K", "_rects")

    def __init__(self, K: int, rects: Iterable[Rect]) -> None:
        if K <= 0:
            raise InvalidInstanceError(f"K must be a positive integer, got {K!r}")
        self.K = int(K)
        self._rects = rects

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._rects)


def poisson_stream(
    K: int,
    rng,
    *,
    rate: float = 1.0,
    max_cols: int | None = None,
) -> GeneratorStream:
    """An endless Poisson arrival process on a ``K``-column device.

    Inter-arrival gaps are exponential(1/``rate``); widths are whole
    columns in ``[1, max_cols or K]`` and heights uniform in ``[0.1, 1]``,
    matching :func:`~repro.workloads.releases.poisson_release_instance` so
    finite offline instances and the infinite online stream are drawn from
    the same traffic model.  Everything derives from ``rng`` — a fixed seed
    reproduces the exact stream.
    """
    if rate <= 0:
        raise InvalidInstanceError(f"rate must be positive, got {rate!r}")
    if K <= 0:
        raise InvalidInstanceError(f"K must be a positive integer, got {K!r}")
    hi_c = max_cols if max_cols is not None else K
    if not 1 <= hi_c <= K:
        raise InvalidInstanceError(f"max_cols must be in [1, K={K}], got {max_cols!r}")

    def arrivals() -> Iterator[Rect]:
        t = 0.0
        i = 0
        while True:
            c = int(rng.integers(1, hi_c + 1))
            h = float(rng.uniform(0.1, 1.0))
            yield Rect(rid=i, width=c / K, height=h, release=t)
            t += float(rng.exponential(1.0 / rate))
            i += 1

    return GeneratorStream(K, arrivals())


class ReplayStream:
    """Recorded traces concatenated back-to-back on one timeline.

    Each trace is a ``(label, ReleaseInstance)`` pair; trace ``i+1``'s
    arrivals are shifted to begin where trace ``i``'s arrivals ended, and
    task ids are namespaced as ``"<label>:<rid>"`` so replayed days never
    collide.  All traces must share one column count ``K``.
    """

    __slots__ = ("traces", "K")

    def __init__(self, traces: Sequence[tuple[str, ReleaseInstance]]) -> None:
        traces = list(traces)
        if not traces:
            raise InvalidInstanceError("ReplayStream needs at least one trace")
        ks = {inst.K for _, inst in traces}
        if len(ks) != 1:
            raise InvalidInstanceError(
                f"replayed traces must share one K, got {sorted(ks)}"
            )
        self.traces = traces
        (self.K,) = ks

    @classmethod
    def from_dir(cls, path, *, pattern: str = "*.json") -> "ReplayStream":
        """Replay every release instance under ``path`` (sorted by name).

        Non-release instances in a mixed suite directory are skipped — a
        batch directory doubles as a trace archive.
        """
        from ..workloads.suite import read_release_traces

        return cls(read_release_traces(path, pattern=pattern))

    def __iter__(self) -> Iterator[Rect]:
        offset = 0.0
        for label, inst in self.traces:
            for r in sorted(inst.rects, key=arrival_order):
                yield r.replace(rid=f"{label}:{r.rid}", release=offset + r.release)
            offset += inst.rmax

    def __len__(self) -> int:
        return sum(len(inst) for _, inst in self.traces)
