"""Event-driven online simulation: streams, policies, the event loop.

The paper motivates release times through operating systems for
reconfigurable platforms (Steiger-Walder-Platzner, its ref [23]): tasks
arrive over time and the scheduler commits each placement without seeing
future arrivals.  This subsystem is that operating system in miniature:

* :mod:`repro.sim.stream`   — arrival sources (:class:`TaskStream`):
  finite instances, seeded infinite generators, replayed trace archives;
* :mod:`repro.sim.policies` — pluggable :class:`OnlinePolicy` deciders
  (``first_fit``, ``best_fit_column``, ``shelf_online``);
* :mod:`repro.sim.engine`   — :func:`simulate`, the discrete-event loop;
* :mod:`repro.sim.trace`    — :class:`SimTrace` / :class:`SimEvent`
  records, bridging to :class:`~repro.engine.report.SolveReport`.

Online policies are also registered as engine specs (``online_ff``,
``online_best_fit``, ``online_shelf``), so they race in
:func:`repro.engine.portfolio` and batch through
:func:`repro.engine.solve_many` next to the offline algorithms; the CLI
front-end is ``repro simulate``.
"""

from .engine import simulate, simulate_instance
from .policies import (
    POLICIES,
    BestFitColumn,
    FirstFit,
    OnlinePolicy,
    ShelfOnline,
    make_policy,
    policy_names,
)
from .stream import (
    GeneratorStream,
    InstanceStream,
    ReplayStream,
    TaskStream,
    poisson_stream,
)
from .trace import SimEvent, SimTrace

__all__ = [
    "simulate",
    "simulate_instance",
    "SimTrace",
    "SimEvent",
    "TaskStream",
    "InstanceStream",
    "GeneratorStream",
    "ReplayStream",
    "poisson_stream",
    "OnlinePolicy",
    "FirstFit",
    "BestFitColumn",
    "ShelfOnline",
    "POLICIES",
    "policy_names",
    "make_policy",
]
