"""Pluggable online placement policies.

A policy is the decision-maker inside the event loop: for each arriving
task it must return an ``(x, y)`` commit *immediately and irrevocably*,
seeing only the tasks that have already arrived.  The engine enforces the
commit contract (within the strip, never before the release time); the
policy owns whatever state it needs between commits.

Three policies ship, mirroring the offline families:

* :class:`FirstFit` — the column scheduler of
  :func:`~repro.release.online.online_first_fit`: earliest feasible start,
  leftmost window on ties;
* :class:`BestFitColumn` — like first fit, but among the candidate windows
  it picks the one wasting the least column idle time (the *best fitting*
  window), falling back to earliest/leftmost on ties;
* :class:`ShelfOnline` — next-fit shelves adapted from
  :mod:`repro.geometry.levels`: fill the current shelf left to right, open
  a new shelf (at or above the arrival time) when the task does not fit.

Column policies quantise widths to the ``1/K`` grid through
:func:`repro.core.tol.nearest_int` — the same tolerance discipline as the
rest of the geometry stack.
"""

from __future__ import annotations

from typing import Callable

from ..core import tol
from ..core.errors import InvalidInstanceError
from ..core.rectangle import Rect
from ..geometry.levels import Level

__all__ = [
    "OnlinePolicy",
    "FirstFit",
    "BestFitColumn",
    "ShelfOnline",
    "POLICIES",
    "policy_names",
    "make_policy",
]


class OnlinePolicy:
    """Base class for online placement policies.

    Subclasses set ``name`` and implement :meth:`start` (reset state for a
    ``K``-column device) and :meth:`place` (commit one arriving task).
    """

    name: str = ""

    def start(self, K: int) -> None:
        raise NotImplementedError

    def place(self, rect: Rect) -> tuple[float, float]:
        """Return the committed lower-left ``(x, y)`` for ``rect``."""
        raise NotImplementedError


class _ColumnPolicy(OnlinePolicy):
    """Shared state for policies scheduling on the ``K``-column grid:
    per-column earliest-free times, advanced on every commit."""

    def start(self, K: int) -> None:
        self.K = K
        self.free = [0.0] * K

    def _columns(self, rect: Rect) -> int:
        c = tol.nearest_int(rect.width * self.K)
        if c is None or c < 1:
            raise InvalidInstanceError(
                f"{self.name} needs whole-column widths; rect {rect.rid!r} "
                f"has width {rect.width!r} on a {self.K}-column device"
            )
        return c

    def _commit(self, rect: Rect, col: int, start: float) -> tuple[float, float]:
        for j in range(col, col + self._columns(rect)):
            self.free[j] = start + rect.height
        return col / self.K, start


class FirstFit(_ColumnPolicy):
    """Earliest feasible start; leftmost window breaks ties."""

    name = "first_fit"

    def place(self, rect: Rect) -> tuple[float, float]:
        c = self._columns(rect)
        best_start: float | None = None
        best_col = 0
        for j in range(self.K - c + 1):
            start = max([rect.release] + self.free[j : j + c])
            if best_start is None or tol.lt(start, best_start, atol=1e-12):
                best_start, best_col = start, j
        if best_start is None:
            raise InvalidInstanceError(
                f"rect {rect.rid!r} needs {c} columns on a {self.K}-column device"
            )
        return self._commit(rect, best_col, best_start)


class BestFitColumn(_ColumnPolicy):
    """Least wasted idle time; earliest start, then leftmost, break ties.

    The idle cost of window ``[j, j+c)`` starting at ``t`` is
    ``sum(t - free[col])`` over its columns — the column-time the commit
    leaves unusable below it.  First fit ignores this and can strand short
    columns under a tall start; best fit prefers windows that are already
    level with the task's start time.
    """

    name = "best_fit_column"

    def place(self, rect: Rect) -> tuple[float, float]:
        c = self._columns(rect)
        best: tuple[float, float, int] | None = None  # (idle, start, col)
        for j in range(self.K - c + 1):
            window = self.free[j : j + c]
            start = max([rect.release] + window)
            idle = sum(start - f for f in window)
            if (
                best is None
                or tol.lt(idle, best[0], atol=1e-12)
                or (
                    tol.eq(idle, best[0], atol=1e-12)
                    and tol.lt(start, best[1], atol=1e-12)
                )
            ):
                best = (idle, start, j)
        if best is None:
            raise InvalidInstanceError(
                f"rect {rect.rid!r} needs {c} columns on a {self.K}-column device"
            )
        return self._commit(rect, best[2], best[1])


class ShelfOnline(OnlinePolicy):
    """Next-fit shelves over release events.

    The active (topmost) shelf fills left to right; a task goes on it only
    if it fits the remaining width, is no taller than the shelf, and the
    shelf base is at or above the task's release time.  Otherwise a new
    shelf opens at ``max(stack top, release)`` with the task's height —
    the online cousin of the Section 2.2 shelf algorithms, reusing the
    :class:`~repro.geometry.levels.Level` bookkeeping.

    Unlike the column policies this one needs no ``1/K`` grid: any widths
    in ``(0, 1]`` are accepted.
    """

    name = "shelf_online"

    def start(self, K: int) -> None:
        self.K = K
        self.levels: list[Level] = []

    def place(self, rect: Rect) -> tuple[float, float]:
        lvl = self.levels[-1] if self.levels else None
        if (
            lvl is not None
            and lvl.fits(rect)
            and tol.leq(rect.height, lvl.height)
            and tol.geq(lvl.y, rect.release)
        ):
            return lvl.push(rect), lvl.y
        top = self.levels[-1].top if self.levels else 0.0
        lvl = Level(y=max(top, rect.release), height=rect.height)
        self.levels.append(lvl)
        return lvl.push(rect), lvl.y


#: Registered policy factories, by name (the CLI's ``--policy`` choices and
#: the spec registry's online entries both read this).
POLICIES: dict[str, Callable[[], OnlinePolicy]] = {
    FirstFit.name: FirstFit,
    BestFitColumn.name: BestFitColumn,
    ShelfOnline.name: ShelfOnline,
}


def policy_names() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(POLICIES)


def make_policy(policy: "str | OnlinePolicy") -> OnlinePolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, OnlinePolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        known = ", ".join(policy_names())
        raise InvalidInstanceError(
            f"unknown online policy {policy!r}; available: {known}"
        ) from None
