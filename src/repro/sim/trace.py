"""Simulation traces: the instrumented record of one online run.

A :class:`SimTrace` is to the simulator what
:class:`~repro.engine.report.SolveReport` is to the offline engine: the
complete, deterministic record of one run.  Every commit becomes a
:class:`SimEvent` (arrival time, chosen position, start/finish, queue depth
at commit), and the trace derives the serving-layer statistics from them —
makespan, queue-depth profile, and utilization over time.

Determinism contract: two runs of the same stream under the same policy
produce *equal* traces (``==`` compares the event sequence; wall-clock time
and the placement object are excluded from comparison).  The seeded-stream
tests and the CLI's ``--seed`` reproducibility rely on this.

:meth:`SimTrace.to_report` bridges into the offline engine: it wraps the
trace as a :class:`~repro.engine.report.SolveReport` over the *realized*
instance (the arrivals the simulation actually saw), so online runs render
in the same tables, ratios, and validity checks as every offline solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

from ..core.placement import Placement

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.instance import ReleaseInstance
    from ..engine.report import SolveReport

__all__ = ["SimEvent", "SimTrace"]

Node = Hashable


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One irrevocable commit of the online policy.

    ``queue_depth`` counts tasks already released at ``time`` whose
    committed start lies strictly in the future — the backlog an operating
    system would see at this instant, measured right after this commit.
    """

    seq: int
    time: float
    rid: Node
    x: float
    start: float
    finish: float
    queue_depth: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "time": self.time,
            "rid": self.rid,
            "x": self.x,
            "start": self.start,
            "finish": self.finish,
            "queue_depth": self.queue_depth,
        }


@dataclass(frozen=True)
class SimTrace:
    """The full record of one event-driven simulation run."""

    policy: str
    K: int
    events: tuple[SimEvent, ...]
    placement: Placement = field(compare=False, repr=False)
    wall_time: float = field(default=0.0, compare=False, repr=False)

    # -- headline statistics --------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of committed tasks."""
        return len(self.events)

    @property
    def makespan(self) -> float:
        """Latest finish time (0 for an empty run)."""
        return max((e.finish for e in self.events), default=0.0)

    @property
    def max_queue_depth(self) -> int:
        """Largest backlog observed at any commit."""
        return max((e.queue_depth for e in self.events), default=0)

    @property
    def mean_queue_depth(self) -> float:
        """Backlog averaged over commits (0 for an empty run)."""
        if not self.events:
            return 0.0
        return sum(e.queue_depth for e in self.events) / len(self.events)

    @property
    def mean_utilization(self) -> float:
        """Time-averaged busy width fraction over ``[0, makespan]``.

        Equal to committed area / makespan because the strip width is
        normalised to 1.
        """
        span = self.makespan
        if span <= 0:
            return 0.0
        area = sum(self.placement[e.rid].rect.area for e in self.events)
        return area / span

    def utilization_profile(self) -> tuple[tuple[float, float], ...]:
        """Busy-width step function as ``(time, busy_fraction)`` breakpoints.

        Each entry gives the fraction of the strip width occupied from that
        time until the next breakpoint; the final breakpoint (the makespan)
        always carries 0.
        """
        deltas: dict[float, float] = {}
        for e in self.events:
            w = self.placement[e.rid].rect.width
            deltas[e.start] = deltas.get(e.start, 0.0) + w
            deltas[e.finish] = deltas.get(e.finish, 0.0) - w
        profile: list[tuple[float, float]] = []
        busy = 0.0
        for t in sorted(deltas):
            busy += deltas[t]
            # Clamp float dust: busy is a signed sum of widths that returns
            # to exactly 0 only in exact arithmetic.
            profile.append((t, min(1.0, max(0.0, busy))))
        return tuple(profile)

    # -- bridges ---------------------------------------------------------
    def realized_instance(self) -> "ReleaseInstance":
        """The :class:`~repro.core.instance.ReleaseInstance` this run saw.

        For generator-backed (possibly infinite) streams this is how the
        simulated prefix becomes a first-class instance: offline algorithms
        and lower bounds can then run on exactly the arrivals the online
        policy had to serve.
        """
        from ..core.instance import ReleaseInstance

        rects = [self.placement[e.rid].rect for e in self.events]
        return ReleaseInstance(rects, self.K)

    def to_report(
        self, instance: "ReleaseInstance | None" = None, *, label: str = ""
    ) -> "SolveReport":
        """Wrap the trace as an engine :class:`~repro.engine.report.SolveReport`.

        Bounds and validation run against ``instance`` (default: the
        realized instance), so the report's ``ratio`` is the policy's price
        over the offline lower bound and ``valid`` certifies the commits.
        """
        from ..core.errors import InvalidPlacementError
        from ..core.placement import validate_placement
        from ..engine.report import SolveReport
        from ..engine.runner import bound_components

        inst = instance if instance is not None else self.realized_instance()
        bounds = bound_components(inst)
        lb = max(bounds.values()) if bounds else None
        try:
            validate_placement(inst, self.placement)
            valid, error = True, None
        except InvalidPlacementError as exc:
            valid, error = False, str(exc)
        return SolveReport(
            algorithm=f"sim:{self.policy}",
            variant="release",
            n=len(inst),
            placement=self.placement,
            height=self.placement.height,
            wall_time=self.wall_time,
            lower_bound=lb,
            bounds=bounds,
            valid=valid,
            error=error,
            label=label or self.policy,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary plus the full event log."""
        return {
            "policy": self.policy,
            "K": self.K,
            "n_tasks": self.n_tasks,
            "makespan": self.makespan,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "mean_utilization": self.mean_utilization,
            "events": [e.to_dict() for e in self.events],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        span = self.makespan
        span_s = "inf" if math.isinf(span) else f"{span:.4g}"
        return (
            f"SimTrace({self.policy}, n={self.n_tasks}, K={self.K}, "
            f"makespan={span_s})"
        )
