"""Exact reference solvers for small instances (ratio measurement)."""

from .bin_packing_exact import solve_bin_packing_exact
from .branch_and_bound import ExactResult, columns_of, solve_exact

__all__ = ["solve_exact", "ExactResult", "columns_of", "solve_bin_packing_exact"]
