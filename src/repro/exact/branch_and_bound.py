"""Exact branch-and-bound for small *columnar* instances.

The ratio experiments need true optima.  For instances whose widths are
multiples of ``1/K`` (the paper's FPGA setting) optimal solutions exist in
*canonical form*: enumerate rectangles in lexicographically increasing
``(y, x)`` order, with every ``x`` on the ``1/K`` grid and every ``y`` the
minimal feasible height at that ``x`` given the rectangle's floor (release
time and predecessor tops).  Correctness of the canonicalisation: in any
optimal packing, repeatedly lowering the first (in ``(y, x)`` order)
rectangle that is not at its minimal feasible height cannot collide with
later rectangles (any x-overlapping later rectangle starts above the
lowered top) and strictly decreases the total of the ``y``'s over a finite
candidate set, so a fixpoint packing of the same height exists and is
enumerated by the search.

Pruning:

* global lower bounds (area, critical path, per-rectangle ``floor + h``),
* band bound: all unplaced rectangles start at or above the last placed
  base ``y_last``, so ``H >= y_last + remaining_area + placed_area_above``,
* symmetry: among unplaced rectangles identical in (width, height, floor,
  successor-set-freeness) only the smallest id branches,
* node budget (:class:`BudgetExceededError` instead of silent suboptima).

This is deliberately a reference solver: exponential, for ``n`` up to about
10-14 depending on structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from ..core import tol
from ..core.bounds import combined_lower_bound
from ..core.errors import BudgetExceededError, InvalidInstanceError
from ..core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from ..core.placement import PlacedRect, Placement

__all__ = ["ExactResult", "solve_exact", "columns_of"]

Node = Hashable


@dataclass(frozen=True)
class ExactResult:
    """Optimal height and one optimal placement."""

    height: float
    placement: Placement
    nodes: int


def columns_of(width: float, K: int) -> int:
    """Column count of a width on the ``1/K`` grid; raises when off-grid."""
    ci = tol.nearest_int(width * K)
    if ci is None or ci <= 0:
        raise InvalidInstanceError(
            f"width {width!r} is not a positive multiple of 1/{K}"
        )
    return ci


def solve_exact(
    instance: StripPackingInstance,
    K: int,
    *,
    upper_bound: float | None = None,
    max_nodes: int = 2_000_000,
) -> ExactResult:
    """Exact optimum of a columnar instance (widths multiples of ``1/K``).

    Works for all three variants: plain, precedence (y-floors from
    predecessor tops), release (y-floors from release times).

    Parameters
    ----------
    upper_bound:
        Optional incumbent height (e.g. from a heuristic); solutions are
        only accepted strictly below it, so pass a *valid achievable* value
        or ``None``.
    max_nodes:
        Search budget; exceeding it raises :class:`BudgetExceededError`.
    """
    rects = list(instance.rects)
    n = len(rects)
    if n == 0:
        return ExactResult(0.0, Placement(), 0)
    cols = {r.rid: columns_of(r.width, K) for r in rects}
    by_id = instance.by_id()

    dag = instance.dag if isinstance(instance, PrecedenceInstance) else None
    preds: dict[Node, tuple[Node, ...]] = {
        r.rid: tuple(dag.predecessors(r.rid)) if dag is not None else ()
        for r in rects
    }
    base_floor = {r.rid: r.release for r in rects}

    total_area = instance.area
    global_lb = combined_lower_bound(instance)

    best_height = math.inf if upper_bound is None else upper_bound + 1e-12
    best_placement: list[tuple[Node, float, float]] | None = None
    nodes = 0

    placed: list[tuple[Node, float, float]] = []  # (rid, x, y) in (y, x) order
    placed_area = 0.0

    def min_feasible_y(x: float, w: float, h: float, floor: float) -> float:
        """Lowest y >= floor at column position x avoiding all placed."""
        y = floor
        moved = True
        while moved:
            moved = False
            for rid2, x2, y2 in placed:
                r2 = by_id[rid2]
                if tol.lt(x, x2 + r2.width) and tol.lt(x2, x + w):
                    if tol.lt(y, y2 + r2.height) and tol.lt(y2, y + h):
                        y = y2 + r2.height
                        moved = True
        return y

    def signature(r) -> tuple:
        """Symmetry key: rects with equal keys are interchangeable *iff*
        they also have identical precedence context; we conservatively
        include sorted pred/succ tuples."""
        succs = tuple(sorted(map(str, dag.successors(r.rid)))) if dag is not None else ()
        ps = tuple(sorted(map(str, preds[r.rid])))
        return (r.width, r.height, r.release, ps, succs)

    def dfs(last_key: tuple[float, float], unplaced: set[Node]) -> None:
        nonlocal nodes, best_height, best_placement, placed_area
        nodes += 1
        if nodes > max_nodes:
            raise BudgetExceededError(
                f"exact solver exceeded {max_nodes} nodes (n={n}, K={K})"
            )
        cur_height = max((y + by_id[rid].height for rid, _, y in placed), default=0.0)
        if not unplaced:
            if cur_height < best_height - 1e-12:
                best_height = cur_height
                best_placement = list(placed)
            return
        # --- pruning ---------------------------------------------------
        y_last = last_key[0]
        placed_above = sum(
            by_id[rid].width * max(0.0, (y + by_id[rid].height) - y_last)
            for rid, _, y in placed
        )
        rem_area = total_area - placed_area
        lb = max(
            cur_height,
            global_lb,
            y_last + rem_area + placed_above,
            max(base_floor[rid] + by_id[rid].height for rid in unplaced),
        )
        if lb >= best_height - 1e-12:
            return
        # --- branch ----------------------------------------------------
        seen_sigs: set[tuple] = set()
        ready = sorted(
            (rid for rid in unplaced if all(p not in unplaced for p in preds[rid])),
            key=str,
        )
        for rid in ready:
            r = by_id[rid]
            sig = signature(r)
            if sig in seen_sigs:
                continue
            seen_sigs.add(sig)
            floor = base_floor[rid]
            if preds[rid]:
                tops = [y + by_id[p].height for p, _, y in placed if p in preds[rid]]
                floor = max([floor] + tops)
            w_cols = cols[rid]
            for c in range(0, K - w_cols + 1):
                x = c / K
                y = min_feasible_y(x, r.width, r.height, floor)
                if (y, x) <= last_key:
                    continue
                if y + r.height >= best_height - 1e-12:
                    # This rectangle alone already busts the incumbent.
                    continue
                placed.append((rid, x, y))
                placed_area += r.area
                unplaced.discard(rid)
                dfs((y, x), unplaced)
                unplaced.add(rid)
                placed_area -= r.area
                placed.pop()

    dfs((-math.inf, -math.inf), {r.rid for r in rects})

    if best_placement is None:
        raise InvalidInstanceError(
            "no solution found below the provided upper bound — "
            "was the upper bound actually achievable?"
        )
    out = Placement()
    for rid, x, y in best_placement:
        out.place(by_id[rid], x, y)
    return ExactResult(height=best_height, placement=out, nodes=nodes)
