"""Exact precedence-constrained bin packing via ideal-lattice search.

Used by the E5 experiments to measure *true* ratios for the uniform-height
special case (Section 2.2).  State space: the downward-closed sets
("ideals") of the precedence order — exactly the sets of tasks that can be
fully completed.  A transition fills one more bin with a subset of the
currently-available tasks respecting the unit capacity; restricting to
*maximal* feasible subsets preserves optimality:

    Take an optimal bin sequence and a non-maximal bin B: any available
    task t (predecessors strictly before B) fits; moving t into B keeps
    t's predecessors strictly earlier and t's successors strictly later,
    and deleting t from its old bin never breaks feasibility.  Iterating
    yields an optimum whose bins are maximal.

Breadth-first search over ideals (uniform edge cost 1) finds the minimum
bin count; node and ideal budgets guard against exponential blow-ups
(:class:`~repro.core.errors.BudgetExceededError`, never a silent
suboptimum).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from ..core import tol
from ..core.errors import BudgetExceededError
from ..precedence.bin_packing import BinAssignment, BinPackingInstance

__all__ = ["solve_bin_packing_exact"]

Node = Hashable


def _maximal_fills(
    available: list[Node], sizes, cap: float = 1.0
) -> list[tuple[Node, ...]]:
    """All maximal subsets of ``available`` with total size <= cap.

    DFS in a fixed order; a subset is maximal when no *remaining* item fits,
    checked against the smallest leftover item.
    """
    available = sorted(available, key=lambda t: (-sizes[t], str(t)))
    out: list[tuple[Node, ...]] = []
    chosen: list[Node] = []

    def dfs(i: int, load: float) -> None:
        extended = False
        for j in range(i, len(available)):
            t = available[j]
            if tol.leq(load + sizes[t], cap):
                extended = True
                chosen.append(t)
                dfs(j + 1, load + sizes[t])
                chosen.pop()
        if not extended:
            # No further item fits given choices from index i onward; the
            # subset is maximal *w.r.t. items not yet considered* only if
            # no skipped earlier item fits either.
            for j in range(0, i):
                t = available[j]
                if t not in chosen and tol.leq(load + sizes[t], cap):
                    return  # not maximal: an earlier skipped item fits
            out.append(tuple(chosen))

    dfs(0, 0.0)
    return out


def solve_bin_packing_exact(
    instance: BinPackingInstance,
    *,
    max_states: int = 200_000,
) -> BinAssignment:
    """Minimum-bin assignment for a precedence bin packing instance.

    Exponential in general; intended for ratio studies with n up to ~15.
    """
    sizes = instance.sizes
    dag = instance.dag
    all_tasks = frozenset(sizes)
    if not all_tasks:
        return BinAssignment(bins=[])

    start: frozenset = frozenset()
    # BFS layer by layer; parent pointers reconstruct the bins.
    parent: dict[frozenset, tuple[frozenset, tuple[Node, ...]]] = {}
    seen = {start}
    frontier: deque[frozenset] = deque([start])
    states = 0
    while frontier:
        ideal = frontier.popleft()
        states += 1
        if states > max_states:
            raise BudgetExceededError(
                f"exact bin packing exceeded {max_states} ideals (n={len(sizes)})"
            )
        available = [
            t
            for t in sizes
            if t not in ideal and all(p in ideal for p in dag.predecessors(t))
        ]
        for fill in _maximal_fills(available, sizes):
            nxt = ideal | frozenset(fill)
            if nxt in seen:
                continue
            seen.add(nxt)
            parent[nxt] = (ideal, fill)
            if nxt == all_tasks:
                bins: list[list[Node]] = []
                cur = nxt
                while cur != start:
                    prev, chosen = parent[cur]
                    bins.append(list(chosen))
                    cur = prev
                bins.reverse()
                result = BinAssignment(bins=bins)
                result.validate(instance)
                return result
            frontier.append(nxt)
    raise AssertionError("BFS exhausted without reaching the full ideal")  # pragma: no cover
