"""Numba ``@njit`` twins of the array-tier hot loops (the ``[speed]`` extra).

Each kernel here is a line-for-line transcription of the decision
procedure it replaces — the same :mod:`repro.core.tol` predicates
(``used + w <= 1 + atol``, ``a < b - atol``), the same tie-breaks
(first-occurrence minima, ascending scan order), the same clamps — so a
placement computed on the compiled tier is **bit-identical** to the array
tier's (and, transitively, the reference tier's).  IEEE-754 double
arithmetic is the same scalar-by-scalar whether numpy, numba, or plain
Python evaluates it; what the differential suites pin is that the
*control flow* around that arithmetic never diverges.

When numba is not importable, ``AVAILABLE`` is ``False`` and ``njit``
degrades to a pass-through decorator: every kernel stays callable as
plain Python.  The tier registry never *selects* this module without
numba (it falls back to the array tier), but the differential tests run
the pure-Python bodies regardless — the logic is verified on every
machine, the machine code only where the ``[speed]`` extra is installed.

Kernel map (array-tier original → compiled twin):

* ``LevelArray.first_fit``       → :func:`level_first_fit`
* ``LevelArray.best_fit``        → :func:`level_best_fit`
* ``Skyline.lowest_position``    → :func:`skyline_lowest`
* ``find_overlap_columns``       → :func:`overlap_scan`
* ``_validate_columnar`` checks  → :func:`containment_scan`
* batched stacked level packing  → :func:`batched_level_pack`
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "AVAILABLE",
    "NUMBA_VERSION",
    "level_first_fit",
    "level_best_fit",
    "skyline_lowest",
    "overlap_scan",
    "containment_scan",
    "batched_level_pack",
]

try:  # pragma: no cover - exercised only with the [speed] extra installed
    import numba as _numba
    from numba import njit

    AVAILABLE = True
    NUMBA_VERSION: str | None = _numba.__version__
except ImportError:
    AVAILABLE = False
    NUMBA_VERSION = None

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Pass-through decorator: kernels stay plain Python without numba."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def deco(fn):
            return fn

        return deco


# ----------------------------------------------------------------------
# level scans (LevelArray.first_fit / best_fit)
# ----------------------------------------------------------------------

@njit(cache=True)
def level_first_fit(used, n, width, atol):
    """Lowest level with room for ``width``, or ``-1``.

    Scalar short-circuit image of the array tier's mask + ``argmax``:
    the first ``i`` with ``used[i] + width <= 1 + atol`` (the exact
    reference predicate), without building the mask.
    """
    for i in range(n):
        if used[i] + width <= 1.0 + atol:
            return i
    return -1


@njit(cache=True)
def level_best_fit(used, n, width, atol):
    """Fitting level with the least residual ``(1 - used) - width``, or ``-1``.

    Strict-improvement scan — identical to the array tier's masked
    ``argmin`` (first occurrence wins ties) and the reference kernel's
    ``resid < best_resid`` loop.
    """
    best = -1
    best_resid = np.inf
    for i in range(n):
        if used[i] + width <= 1.0 + atol:
            resid = (1.0 - used[i]) - width
            if resid < best_resid:
                best = i
                best_resid = resid
    return best


# ----------------------------------------------------------------------
# skyline candidate sweep (Skyline.lowest_position)
# ----------------------------------------------------------------------

@njit(cache=True)
def skyline_lowest(xs, ws, ys, width, atol):
    """Bottom-left candidate over segment columns: ``(found, x, y)``.

    Full transcription of ``Skyline.lowest_position`` — the
    lowest-segment fast path (``_fit_in_segment`` predicates verbatim),
    then the sorted-candidate generation (``_candidate_xs`` clamps
    verbatim) and the monotonic-deque sweep with the same
    ``y <= ymin`` early break.  ``found`` is 0.0 when there is no
    candidate (caller raises the reference ``ValueError``).
    """
    m = xs.shape[0]
    lim = 1.0 - width

    ymin = ys[0]
    for k in range(1, m):
        if ys[k] < ymin:
            ymin = ys[k]

    # -- lowest-segment fast path (Skyline._fit_in_segment, verbatim) --
    if lim >= 0.0 and width > 2.0 * atol:
        for k in range(m):
            if ys[k] != ymin:
                continue
            xk = xs[k]
            if ws[k] <= atol:  # the segment excludes itself from its own window
                continue
            has = False
            best = 0.0
            if (
                xk <= lim
                and (k + 1 >= m or xs[k + 1] >= xk + width - atol)
                and (k == 0 or xs[k - 1] + ws[k - 1] <= xk + atol)
            ):
                best = xk
                has = True
            xr = xk + ws[k] - width
            if xr >= -atol:
                if xr < 0.0:
                    xr = 0.0
                if xr > lim:
                    xr = lim
                if (
                    (not has or xr < best)
                    and xk + ws[k] > xr + atol
                    and xk < xr + width - atol
                    and (k + 1 >= m or xs[k + 1] >= xr + width - atol)
                    and (k == 0 or xs[k - 1] + ws[k - 1] <= xr + atol)
                ):
                    best = xr
                    has = True
            if has:
                return 1.0, best, ymin

    # -- candidate generation (Skyline._candidate_xs, verbatim) --------
    cands = np.empty(2 * m + 2, np.float64)
    nc = 0
    for k in range(m):
        x = xs[k]
        if x + width <= 1.0 + atol:
            cands[nc] = x if x <= lim else lim
            nc += 1
        xr = x + ws[k] - width
        if xr >= -atol:
            if xr < 0.0:
                xr = 0.0
            cands[nc] = xr if xr <= lim else lim
            nc += 1
    if width <= 1.0 + atol:
        # tol.clamp(0, 0, lim) and tol.clamp(lim, 0, lim) respectively.
        cands[nc] = 0.0 if lim >= 0.0 else lim
        nc += 1
        cands[nc] = lim if lim >= 0.0 else 0.0
        nc += 1
    if nc == 0:
        return 0.0, 0.0, 0.0
    c = np.sort(cands[:nc])

    # -- monotonic-deque sweep (Skyline._sweep, verbatim) --------------
    wa = width - atol
    hi = 0
    dq = np.empty(m, np.int64)
    head = 0
    ntail = 0
    found = False
    best_x = 0.0
    best_y = 0.0
    for ci in range(nc):
        x = c[ci]
        right = x + wa
        while hi < m and xs[hi] < right:
            yk = ys[hi]
            while ntail > head and ys[dq[ntail - 1]] <= yk:
                ntail -= 1
            dq[ntail] = hi
            ntail += 1
            hi += 1
        left = x + atol
        while head < ntail:
            j = dq[head]
            if xs[j] + ws[j] <= left:
                head += 1
            else:
                break
        y = ys[dq[head]] if head < ntail else 0.0
        if not found or y < best_y:
            best_x = x
            best_y = y
            found = True
            if y <= ymin:
                break  # no candidate can rest below the lowest segment
    if not found:
        return 0.0, 0.0, 0.0
    return 1.0, best_x, best_y


# ----------------------------------------------------------------------
# columnar validator (containment + overlap sweeps)
# ----------------------------------------------------------------------

@njit(cache=True)
def containment_scan(xs, ys, x2, y2, atol, max_height, check_height):
    """First containment offender as ``(check, index)``, or ``(-1, -1)``.

    Check order matches ``_validate_columnar`` exactly: all horizontal
    violations first (check 0), then below-base (check 1), then the
    optional height budget (check 2) — each reporting its first index,
    like ``argmax`` over the violation mask.
    """
    n = xs.shape[0]
    for i in range(n):
        if xs[i] < 0.0 - atol or x2[i] > 1.0 + atol:
            return 0, i
    for i in range(n):
        if ys[i] < 0.0 - atol:
            return 1, i
    if check_height:
        for i in range(n):
            if y2[i] > max_height + atol:
                return 2, i
    return -1, -1


@njit(cache=True)
def overlap_scan(xs_s, ys_s, x2_s, y2_s, his, atol):
    """First overlapping pair over y-sorted columns, or ``(-1, -1)``.

    Indices are in the *sorted* order (the caller maps back through its
    argsort permutation).  The k-major, ascending-j scan visits candidate
    pairs in exactly the order ``find_overlap_columns`` materialises its
    batches, so both engines report the same first hit; the
    four-inequality predicate is ``PlacedRect.overlaps`` verbatim (the
    ``ys_s[j] < y2_s[k]`` leg is implied by ``j < his[k]``).
    """
    n = xs_s.shape[0]
    for k in range(n):
        hk = his[k]
        for j in range(k + 1, hk):
            if (
                xs_s[k] < x2_s[j] - atol
                and xs_s[j] < x2_s[k] - atol
                and ys_s[k] < y2_s[j] - atol
            ):
                return k, j
    return -1, -1


# ----------------------------------------------------------------------
# batched stacked-instance level packing (one arena, K instances)
# ----------------------------------------------------------------------

#: ``modes`` values for :func:`batched_level_pack`.
MODE_NFDH = 0
MODE_FFDH = 1
MODE_BFDH = 2


@njit(cache=True)
def batched_level_pack(width, height, order, offsets, modes, atol):
    """Pack K stacked instances in one invocation; ``(xs, ys, extents)``.

    ``width``/``height`` are the stacked columns, ``order`` the stacked
    decreasing-height permutation, ``offsets`` the K+1 segment bounds
    into ``order``, ``modes[k]`` the per-instance algorithm
    (:data:`MODE_NFDH`/:data:`MODE_FFDH`/:data:`MODE_BFDH`).  Outputs are
    aligned with ``order`` (``xs[t]`` places row ``order[t]``).

    Per instance this is the exact packer loop of
    ``repro.packing.nfdh/ffdh/bfdh`` over a reset scratch level arena:
    NFDH pre-opens the first level with the tallest rectangle's height
    and only ever consults the open level; FFDH/BFDH run the
    first-fit/best-fit scans of :func:`level_first_fit` /
    :func:`level_best_fit`; placement clamps with ``tol.clamp``'s
    if-chain.  Differential tests pin the outputs row-for-row against K
    independent solves.
    """
    K = offsets.shape[0] - 1
    n_total = order.shape[0]
    out_x = np.empty(n_total, np.float64)
    out_y = np.empty(n_total, np.float64)
    extents = np.zeros(K, np.float64)

    max_n = 0
    for k in range(K):
        c = offsets[k + 1] - offsets[k]
        if c > max_n:
            max_n = c
    lv_y = np.empty(max_n, np.float64)
    lv_h = np.empty(max_n, np.float64)
    lv_used = np.empty(max_n, np.float64)

    for k in range(K):
        lo = offsets[k]
        hi = offsets[k + 1]
        if hi <= lo:
            continue
        mode = modes[k]
        nlev = 0
        cur = -1
        if mode == MODE_NFDH:
            # nfdh opens the first level for the tallest rectangle up front.
            lv_y[0] = 0.0
            lv_h[0] = height[order[lo]]
            lv_used[0] = 0.0
            nlev = 1
            cur = 0
        for t in range(lo, hi):
            row = order[t]
            w = width[row]
            idx = -1
            if mode == MODE_NFDH:
                if lv_used[cur] + w <= 1.0 + atol:
                    idx = cur
            elif mode == MODE_FFDH:
                for i in range(nlev):
                    if lv_used[i] + w <= 1.0 + atol:
                        idx = i
                        break
            else:
                best_resid = np.inf
                for i in range(nlev):
                    if lv_used[i] + w <= 1.0 + atol:
                        resid = (1.0 - lv_used[i]) - w
                        if resid < best_resid:
                            idx = i
                            best_resid = resid
            if idx < 0:
                top = lv_y[nlev - 1] + lv_h[nlev - 1] if nlev > 0 else 0.0
                lv_y[nlev] = top
                lv_h[nlev] = height[row]
                lv_used[nlev] = 0.0
                idx = nlev
                nlev += 1
                cur = idx
            used = lv_used[idx]
            lim = 1.0 - w
            x = used
            if x < 0.0:
                x = 0.0
            elif x > lim:
                x = lim
            lv_used[idx] = used + w
            out_x[t] = x
            out_y[t] = lv_y[idx]
        extents[k] = lv_y[nlev - 1] + lv_h[nlev - 1]
    return out_x, out_y, extents
