"""Kernel-tier registry: ``reference`` → ``array`` → ``compiled``.

Every hot loop in the library exists at up to three rungs of the same
ladder, and all rungs are **bit-identical** — same :mod:`repro.core.tol`
predicates, same tie-breaks, placement-for-placement equal (enforced by
the differential suites ``tests/test_skyline_differential.py`` /
``tests/test_levels_differential.py`` and the tier tests in
``tests/test_kernel_tiers.py``):

* ``reference`` — the executable specifications
  (:mod:`repro.geometry.skyline_reference`,
  :mod:`repro.geometry.levels_reference`, the scalar validator loops):
  obviously-correct object code, never optimized;
* ``array`` — the columnar numpy kernels
  (:class:`repro.geometry.levels.LevelArray`,
  :class:`repro.geometry.skyline.Skyline`,
  :func:`repro.core.placement.find_overlap_columns`) — the default;
* ``compiled`` — the Numba ``@njit`` twins in
  :mod:`repro.kernels.compiled`, shipped as the optional ``[speed]``
  extra (``pip install .[speed]``).

Tier selection is process-global (``--kernel-tier`` on the CLI maps
here).  ``auto`` — the default — resolves to ``compiled`` when numba
imports and ``array`` otherwise.  Requesting ``compiled`` on a machine
without numba **degrades gracefully to the array tier** and logs a
single warning line; nothing else changes, because the tiers agree
bit-for-bit on every decision.

Hot paths call :func:`use_compiled` / :func:`use_reference` — cheap
module-global reads — so tier dispatch costs nanoseconds next to the
kernels it selects.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager

__all__ = [
    "TIERS",
    "TIER_CHOICES",
    "set_tier",
    "requested_tier",
    "active_tier",
    "compiled_available",
    "use_compiled",
    "use_reference",
    "tier_info",
    "use_tier",
]

#: The three rungs, slowest (most obvious) to fastest.
TIERS = ("reference", "array", "compiled")

#: What the CLI accepts: the rungs plus ``auto``.
TIER_CHOICES = ("auto",) + TIERS

logger = logging.getLogger("repro.kernels")

_requested: str = "auto"
#: The resolved tier, or ``None`` before first resolution (lazy so that
#: importing repro never pays the numba import unless a kernel runs).
_active: str | None = None
_fallback_logged: bool = False


def compiled_available() -> bool:
    """Whether the numba-compiled tier can actually run.

    Read dynamically from :mod:`repro.kernels.compiled` (tests simulate
    a missing numba by patching ``compiled.AVAILABLE``).
    """
    from . import compiled

    return compiled.AVAILABLE


def set_tier(tier: str) -> None:
    """Request a kernel tier (``auto`` or one of :data:`TIERS`).

    Resolution is lazy — an explicit ``compiled`` request on a machine
    without numba degrades to ``array`` at first use, with one log line.
    """
    if tier not in TIER_CHOICES:
        raise ValueError(
            f"unknown kernel tier {tier!r}; expected one of {', '.join(TIER_CHOICES)}"
        )
    global _requested, _active
    _requested = tier
    _active = None  # re-resolve on next use


def requested_tier() -> str:
    """The tier as requested (``auto`` until someone picks explicitly)."""
    return _requested


def active_tier() -> str:
    """The tier kernels actually run on (resolves ``auto``/fallback)."""
    global _active
    if _active is None:
        _active = _resolve(_requested)
    return _active


def _resolve(requested: str) -> str:
    if requested in ("reference", "array"):
        return requested
    if compiled_available():
        return "compiled"
    if requested == "compiled":
        _log_fallback_once(
            "compiled kernel tier requested but numba is not importable; "
            "falling back to the array tier (results are identical — "
            "install the [speed] extra for the compiled kernels)"
        )
    else:  # auto
        _log_fallback_once(
            "kernel tier auto: numba not importable, using the array tier "
            "(install the [speed] extra for the compiled kernels)"
        )
    return "array"


def _log_fallback_once(message: str) -> None:
    global _fallback_logged
    if not _fallback_logged:
        _fallback_logged = True
        # Through the obs structured logger (single logging path): with no
        # explicit sink configured this lands on the stdlib "repro.kernels"
        # logger at WARNING, preserving the historical behaviour.
        from ..obs import get_logger

        get_logger().event(
            "kernel_fallback", logger=logger.name, message=message
        )


def use_compiled() -> bool:
    """Fast hot-path check: is the compiled tier active?"""
    a = _active
    if a is None:
        a = active_tier()
    return a == "compiled"


def use_reference() -> bool:
    """Fast hot-path check: is the reference tier active?"""
    a = _active
    if a is None:
        a = active_tier()
    return a == "reference"


def tier_info() -> dict:
    """Snapshot for ``repro info`` and the service ``/metrics``."""
    from . import compiled

    return {
        "requested": _requested,
        "active": active_tier(),
        "compiled_available": compiled.AVAILABLE,
        "numba": compiled.NUMBA_VERSION,
    }


@contextmanager
def use_tier(tier: str):
    """Temporarily pin the requested tier (tests, per-entry bench races)."""
    prev = _requested
    set_tier(tier)
    try:
        yield active_tier()
    finally:
        set_tier(prev)


def _reset_for_testing(tier: str = "auto") -> None:
    """Restore pristine registry state (tests only)."""
    global _requested, _active, _fallback_logged
    _requested = tier
    _active = None
    _fallback_logged = False
