"""Random rectangle generators.

All generators are seeded through a ``numpy.random.Generator`` and return
plain rectangle lists with integer ids ``0..n-1``; instance wrappers are the
caller's choice.  Distributions:

* ``uniform_rects``  — widths/heights uniform in configurable ranges;
* ``columnar_rects`` — widths are whole columns of a K-column device
  (the paper's FPGA regime, also what the exact solver requires);
* ``powerlaw_rects`` — heavy-tailed widths (a few near-full-width hogs,
  many slivers), stressing shelf fragmentation;
* ``unit_height_rects`` — the Section 2.2 uniform-height regime.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidInstanceError
from ..core.rectangle import Rect

__all__ = [
    "uniform_rects",
    "columnar_rects",
    "powerlaw_rects",
    "unit_height_rects",
]


def _check(n: int) -> None:
    if n < 0:
        raise InvalidInstanceError(f"n must be non-negative, got {n}")


def uniform_rects(
    n: int,
    rng: np.random.Generator,
    *,
    w_range: tuple[float, float] = (0.05, 1.0),
    h_range: tuple[float, float] = (0.05, 1.0),
) -> list[Rect]:
    """Widths/heights independently uniform in the given ranges."""
    _check(n)
    lo_w, hi_w = w_range
    lo_h, hi_h = h_range
    if not (0.0 < lo_w <= hi_w <= 1.0):
        raise InvalidInstanceError(f"invalid width range {w_range}")
    if not (0.0 < lo_h <= hi_h):
        raise InvalidInstanceError(f"invalid height range {h_range}")
    ws = rng.uniform(lo_w, hi_w, size=n)
    hs = rng.uniform(lo_h, hi_h, size=n)
    return [Rect(rid=i, width=float(ws[i]), height=float(hs[i])) for i in range(n)]


def columnar_rects(
    n: int,
    K: int,
    rng: np.random.Generator,
    *,
    max_cols: int | None = None,
    h_range: tuple[float, float] = (0.1, 1.0),
) -> list[Rect]:
    """Widths drawn as ``c/K`` for ``c`` uniform in ``1..max_cols`` (default
    ``K``); heights uniform — the FPGA/APTAS regime with ``w >= 1/K``."""
    _check(n)
    if K <= 0:
        raise InvalidInstanceError(f"K must be positive, got {K}")
    hi_c = max_cols if max_cols is not None else K
    if not 1 <= hi_c <= K:
        raise InvalidInstanceError(f"max_cols must be in 1..{K}, got {hi_c}")
    cs = rng.integers(1, hi_c + 1, size=n)
    hs = rng.uniform(h_range[0], h_range[1], size=n)
    return [Rect(rid=i, width=int(cs[i]) / K, height=float(hs[i])) for i in range(n)]


def powerlaw_rects(
    n: int,
    rng: np.random.Generator,
    *,
    alpha: float = 1.5,
    w_min: float = 0.02,
    h_range: tuple[float, float] = (0.1, 1.0),
) -> list[Rect]:
    """Pareto-tailed widths clipped to ``[w_min, 1]``: a few hogs, many
    slivers — the worst case for level-oriented packers."""
    _check(n)
    if alpha <= 0:
        raise InvalidInstanceError(f"alpha must be positive, got {alpha}")
    raw = (1.0 + rng.pareto(alpha, size=n)) * w_min
    ws = np.clip(raw, w_min, 1.0)
    hs = rng.uniform(h_range[0], h_range[1], size=n)
    return [Rect(rid=i, width=float(ws[i]), height=float(hs[i])) for i in range(n)]


def unit_height_rects(
    n: int,
    rng: np.random.Generator,
    *,
    w_range: tuple[float, float] = (0.05, 1.0),
) -> list[Rect]:
    """Uniform-height (=1) rectangles for the Section 2.2 experiments."""
    _check(n)
    ws = rng.uniform(w_range[0], w_range[1], size=n)
    return [Rect(rid=i, width=float(ws[i]), height=1.0) for i in range(n)]
