"""Release-time workload generators (Section 3 experiments).

The operating-system motivation ([23] in the paper) is an online task queue
for a reconfigurable device; the synthetic equivalents here are:

* :func:`poisson_release_instance` — tasks arrive as a Poisson process;
* :func:`bursty_release_instance`  — batched arrivals (frames/batches
  landing together), the shape image-pipeline front-ends produce;
* :func:`staircase_release_instance` — adversarially regular arrivals that
  keep every phase of the LP non-trivial (used by the LP tests).

All produce K-columnar widths and heights <= 1 so the APTAS's standard
assumptions hold by construction.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InvalidInstanceError
from ..core.instance import ReleaseInstance
from ..core.rectangle import Rect

__all__ = [
    "poisson_release_instance",
    "bursty_release_instance",
    "staircase_release_instance",
]


def _columnar_dims(
    n: int, K: int, rng: np.random.Generator, max_cols: int | None
) -> tuple[np.ndarray, np.ndarray]:
    hi_c = max_cols if max_cols is not None else K
    cs = rng.integers(1, hi_c + 1, size=n)
    hs = rng.uniform(0.1, 1.0, size=n)
    return cs, hs


def poisson_release_instance(
    n: int,
    K: int,
    rng: np.random.Generator,
    *,
    rate: float = 1.0,
    max_cols: int | None = None,
) -> ReleaseInstance:
    """Arrivals with exponential(1/rate) inter-arrival times."""
    if n < 0:
        raise InvalidInstanceError(f"n must be non-negative, got {n}")
    if rate <= 0:
        raise InvalidInstanceError(f"rate must be positive, got {rate}")
    gaps = rng.exponential(1.0 / rate, size=n)
    releases = np.cumsum(gaps) - gaps[0] if n else np.array([])
    cs, hs = _columnar_dims(n, K, rng, max_cols)
    rects = [
        Rect(rid=i, width=int(cs[i]) / K, height=float(hs[i]), release=float(releases[i]))
        for i in range(n)
    ]
    return ReleaseInstance(rects, K)


def bursty_release_instance(
    n: int,
    K: int,
    rng: np.random.Generator,
    *,
    n_bursts: int = 4,
    burst_gap: float = 2.0,
    max_cols: int | None = None,
) -> ReleaseInstance:
    """Tasks arrive in ``n_bursts`` batches separated by ``burst_gap``."""
    if n_bursts <= 0:
        raise InvalidInstanceError(f"n_bursts must be positive, got {n_bursts}")
    burst_of = rng.integers(0, n_bursts, size=n)
    cs, hs = _columnar_dims(n, K, rng, max_cols)
    rects = [
        Rect(
            rid=i,
            width=int(cs[i]) / K,
            height=float(hs[i]),
            release=float(burst_of[i]) * burst_gap,
        )
        for i in range(n)
    ]
    return ReleaseInstance(rects, K)


def staircase_release_instance(
    n: int,
    K: int,
    rng: np.random.Generator,
    *,
    n_steps: int = 5,
    step: float = 1.0,
    max_cols: int | None = None,
) -> ReleaseInstance:
    """Round-robin releases over ``n_steps`` equally spaced times — every LP
    phase receives demand, exercising the full covering-constraint suffix
    structure."""
    if n_steps <= 0:
        raise InvalidInstanceError(f"n_steps must be positive, got {n_steps}")
    cs, hs = _columnar_dims(n, K, rng, max_cols)
    rects = [
        Rect(
            rid=i,
            width=int(cs[i]) / K,
            height=float(hs[i]),
            release=float(i % n_steps) * step,
        )
        for i in range(n)
    ]
    return ReleaseInstance(rects, K)
