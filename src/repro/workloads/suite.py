"""Mixed-variant instance streams for batch execution and serving tests.

The engine's :func:`~repro.engine.batch.solve_many` consumes a stream of
heterogeneous instances; this module generates such streams (round-robin
over the three variants, sizes drawn from a range) and writes/reads them
as directories of instance JSON files — the on-disk shape the
``repro batch DIR/`` CLI command operates on.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.instance import ReleaseInstance, StripPackingInstance
from ..core.serialize import dumps_instance, loads_instance
from .dags import random_precedence_instance
from .random_rects import uniform_rects
from .releases import bursty_release_instance

__all__ = [
    "mixed_instance_suite",
    "write_instance_dir",
    "read_instance_dir",
    "read_release_traces",
]


def mixed_instance_suite(
    n_instances: int,
    rng: np.random.Generator,
    *,
    size_range: tuple[int, int] = (8, 24),
    K: int = 4,
) -> list[StripPackingInstance]:
    """Round-robin plain / precedence / release instances.

    Sizes are drawn uniformly from ``size_range``; everything is derived
    from ``rng``, so a fixed seed reproduces the exact stream (the batch
    determinism tests rely on this).
    """
    if n_instances < 0:
        raise ValueError(f"n_instances must be non-negative, got {n_instances}")
    lo, hi = size_range
    instances: list[StripPackingInstance] = []
    for i in range(n_instances):
        n = int(rng.integers(lo, hi + 1))
        kind = i % 3
        if kind == 0:
            instances.append(StripPackingInstance(uniform_rects(n, rng)))
        elif kind == 1:
            instances.append(random_precedence_instance(n, 0.15, rng))
        else:
            instances.append(bursty_release_instance(n, K, rng, n_bursts=2))
    return instances


def write_instance_dir(path: Path | str, instances, *, prefix: str = "instance") -> list[Path]:
    """Write each instance as ``<prefix>_<idx>.json`` under ``path``."""
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    items = list(instances)
    width = max(3, len(str(max(len(items) - 1, 0))))
    paths = []
    for i, inst in enumerate(items):
        p = root / f"{prefix}_{i:0{width}d}.json"
        p.write_text(dumps_instance(inst, indent=2))
        paths.append(p)
    return paths


def read_instance_dir(path: Path | str, *, pattern: str = "*.json"):
    """Load every instance JSON under ``path`` (sorted by file name).

    Returns ``(paths, instances)`` so callers can label reports by file.
    """
    root = Path(path)
    paths = sorted(root.glob(pattern))
    return paths, [loads_instance(p.read_text()) for p in paths]


def read_release_traces(
    path: Path | str, *, pattern: str = "*.json"
) -> list[tuple[str, ReleaseInstance]]:
    """The release instances under ``path``, as ``(name, instance)`` traces.

    Plain/precedence instances in a mixed suite directory are skipped, so
    a ``repro batch`` directory doubles as a trace archive the simulator's
    :class:`~repro.sim.stream.ReplayStream` can consume.
    """
    paths, instances = read_instance_dir(path, pattern=pattern)
    return [
        (p.stem, inst)
        for p, inst in zip(paths, instances)
        if isinstance(inst, ReleaseInstance)
    ]
