"""Composite workload builders: rectangles + DAGs in one call.

Thin conveniences over :mod:`repro.dag.generators` and
:mod:`repro.workloads.random_rects`, producing ready-to-solve
:class:`~repro.core.instance.PrecedenceInstance` objects for the Section 2
experiments.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import PrecedenceInstance
from ..dag.generators import layered_dag, random_order_dag, series_parallel_dag
from .random_rects import columnar_rects, uniform_rects, unit_height_rects

__all__ = [
    "random_precedence_instance",
    "layered_precedence_instance",
    "series_parallel_instance",
    "uniform_height_precedence_instance",
]


def random_precedence_instance(
    n: int,
    p: float,
    rng: np.random.Generator,
    *,
    columnar_K: int | None = None,
) -> PrecedenceInstance:
    """G(n, p) DAG over uniform (or K-columnar) rectangles."""
    rects = (
        columnar_rects(n, columnar_K, rng)
        if columnar_K is not None
        else uniform_rects(n, rng)
    )
    return PrecedenceInstance(rects, random_order_dag(n, p, rng))


def layered_precedence_instance(
    n: int,
    n_layers: int,
    p: float,
    rng: np.random.Generator,
    *,
    columnar_K: int | None = None,
) -> PrecedenceInstance:
    """Layered (pipeline-shaped) DAG over random rectangles."""
    rects = (
        columnar_rects(n, columnar_K, rng)
        if columnar_K is not None
        else uniform_rects(n, rng)
    )
    return PrecedenceInstance(rects, layered_dag(n, n_layers, p, rng))


def series_parallel_instance(
    n: int,
    rng: np.random.Generator,
    *,
    series_bias: float = 0.5,
) -> PrecedenceInstance:
    """Series-parallel DAG over uniform rectangles."""
    return PrecedenceInstance(
        uniform_rects(n, rng), series_parallel_dag(n, rng, series_bias=series_bias)
    )


def uniform_height_precedence_instance(
    n: int,
    p: float,
    rng: np.random.Generator,
) -> PrecedenceInstance:
    """Unit-height rectangles with a G(n, p) DAG (Section 2.2 regime)."""
    return PrecedenceInstance(unit_height_rects(n, rng), random_order_dag(n, p, rng))
