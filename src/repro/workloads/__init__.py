"""Workload generators: random rectangles, DAG instances, release-time
arrivals, the JPEG pipeline, and the paper's adversarial constructions."""

from .adversarial import AdversarialInstance, omega_log_n_instance, ratio3_instance
from .dags import (
    layered_precedence_instance,
    random_precedence_instance,
    series_parallel_instance,
    uniform_height_precedence_instance,
)
from .jpeg import jpeg_pipeline_instance, jpeg_pipeline_tasks
from .random_rects import columnar_rects, powerlaw_rects, uniform_rects, unit_height_rects
from .releases import (
    bursty_release_instance,
    poisson_release_instance,
    staircase_release_instance,
)
from .suite import (
    mixed_instance_suite,
    read_instance_dir,
    read_release_traces,
    write_instance_dir,
)

__all__ = [
    "omega_log_n_instance",
    "ratio3_instance",
    "AdversarialInstance",
    "uniform_rects",
    "columnar_rects",
    "powerlaw_rects",
    "unit_height_rects",
    "random_precedence_instance",
    "layered_precedence_instance",
    "series_parallel_instance",
    "uniform_height_precedence_instance",
    "poisson_release_instance",
    "bursty_release_instance",
    "staircase_release_instance",
    "jpeg_pipeline_tasks",
    "jpeg_pipeline_instance",
    "mixed_instance_suite",
    "write_instance_dir",
    "read_instance_dir",
    "read_release_traces",
]
