"""The paper's two adversarial constructions (Fig. 1 and Fig. 2).

* :func:`omega_log_n_instance` — Lemma 2.4: a family where both elementary
  lower bounds (``AREA`` and ``F``) stay ~1 while the optimum grows like
  ``k/2 = Theta(log n)``.  Structure: ``k`` chains; chain ``i`` alternates
  ``2^(i-1)`` *tall* rectangles (height ``1/2^(i-1)``, width ``1/k``) with
  full-width, height-``eps`` *wide* rectangles.  The wides force shelf
  boundaries, so each chain needs ~``1/2`` of fresh height.

* :func:`ratio3_instance` — Lemma 2.7: uniform-height family with
  ``OPT = 3(F - 1) = 3*AREA - 3*n*eps``: ``2n/3`` wide rectangles (width
  ``1/2 + eps``) all preceding a chain of ``n/3`` narrow rectangles (width
  ``eps``), forcing full serialisation.

Both return the instance plus the analytic quantities the benchmarks plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.instance import PrecedenceInstance
from ..core.rectangle import Rect
from ..dag.graph import TaskDAG

__all__ = [
    "AdversarialInstance",
    "omega_log_n_instance",
    "ratio3_instance",
]


@dataclass(frozen=True)
class AdversarialInstance:
    """Instance plus the construction's analytic quantities."""

    instance: PrecedenceInstance
    analytic: dict


def omega_log_n_instance(k: int, eps: float = 1e-6) -> AdversarialInstance:
    """Build the Lemma 2.4 instance for chain count ``k`` (``n = 2^(k+1)-2``).

    Analytic facts recorded:

    * ``F``     -> ``1 + O(eps)`` (each chain's heights sum to 1);
    * ``area``  -> ``1 + O(eps)`` (tall rectangles cover exactly area 1);
    * ``opt_lb = k/2`` — the shelf argument of the lemma's proof;
    * ``n`` and ``k``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0,1), got {eps}")

    rects: list[Rect] = []
    edges: list[tuple[str, str]] = []
    n_tall = 2**k - 1          # = n/2
    tall_width = 1.0 / k

    wide_counter = 0

    def new_wide() -> str:
        nonlocal wide_counter
        rid = f"wide:{wide_counter}"
        wide_counter += 1
        rects.append(Rect(rid=rid, width=1.0, height=eps))
        return rid

    # Chain i (1-based): 2^(i-1) tall rectangles of height 1/2^(i-1),
    # sandwiching a wide rectangle between each contiguous pair.
    for i in range(1, k + 1):
        count = 2 ** (i - 1)
        height = 1.0 / 2 ** (i - 1)
        prev: str | None = None
        for j in range(count):
            rid = f"tall:{i}:{j}"
            rects.append(Rect(rid=rid, width=tall_width, height=height))
            if prev is not None:
                w = new_wide()
                edges.append((prev, w))
                edges.append((w, rid))
            prev = rid

    # The unused wide rectangles (to reach exactly n/2 wides) form their own
    # chain, which adds only O(n * eps) height.
    extra = n_tall - wide_counter
    extra_ids = [new_wide() for _ in range(extra)]
    edges.extend(zip(extra_ids, extra_ids[1:]))

    n = len(rects)
    assert n == 2 ** (k + 1) - 2, f"construction size mismatch: {n}"

    instance = PrecedenceInstance(rects, TaskDAG([r.rid for r in rects], edges))
    analytic = {
        "k": k,
        "n": n,
        "eps": eps,
        "F": 1.0 + (2 ** (k - 1) - 1) * eps,  # longest chain: chain k
        "area": 1.0 + n_tall * eps,
        "opt_lb": k / 2.0,
    }
    return AdversarialInstance(instance=instance, analytic=analytic)


def ratio3_instance(k: int, eps: float = 1e-6) -> AdversarialInstance:
    """Build the Lemma 2.7 instance for ``n = 3k`` uniform-height rectangles.

    ``2k`` wide rectangles (width ``1/2 + eps``) each precede the head of a
    chain of ``k`` narrow rectangles (width ``eps``).  Recorded analytics:
    ``opt = n`` (full serialisation), ``F = n/3 + 1``, ``area = n/3 + n*eps``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0.0 < eps < 0.5:
        raise ValueError(f"eps must be in (0, 0.5), got {eps}")
    n = 3 * k
    rects: list[Rect] = []
    edges: list[tuple[str, str]] = []

    narrow_ids = [f"narrow:{j}" for j in range(k)]
    for rid in narrow_ids:
        rects.append(Rect(rid=rid, width=eps, height=1.0))
    edges.extend(zip(narrow_ids, narrow_ids[1:]))

    for j in range(2 * k):
        rid = f"wide:{j}"
        rects.append(Rect(rid=rid, width=0.5 + eps, height=1.0))
        edges.append((rid, narrow_ids[0]))

    instance = PrecedenceInstance(rects, TaskDAG([r.rid for r in rects], edges))
    analytic = {
        "k": k,
        "n": n,
        "eps": eps,
        "opt": float(n),
        "F": n / 3.0 + 1.0,
        "area": n / 3.0 + n * eps,
    }
    return AdversarialInstance(instance=instance, analytic=analytic)
