"""Synthetic JPEG-encoder pipeline — the paper's motivating application.

The introduction motivates precedence-constrained strip packing with
image-processing pipelines on reconfigurable fabric (ref [4]).  Real JPEG
task graphs and their per-stage resource profiles are not public, so this
module builds the closest synthetic equivalent (see DESIGN.md,
substitutions): the classic blocked encoder

    rgb->ycbcr  ->  tile split  ->  per-tile { DCT -> quantise -> zigzag }
                ->  entropy (Huffman) coding  ->  bitstream assembly

with a fan-out over ``n_tiles`` parallel tile chains and a reconvergence at
entropy coding.  Column counts and durations follow the usual hardware
intuition: DCT is area-hungry (wide), quantisation cheap (narrow, fast),
entropy coding serial (narrow, long).  All knobs are parameters.
"""

from __future__ import annotations

from ..core.errors import InvalidInstanceError
from ..fpga.device import Device
from ..fpga.tasks import FPGATask, build_precedence_instance

__all__ = ["jpeg_pipeline_tasks", "jpeg_pipeline_instance"]


def jpeg_pipeline_tasks(
    n_tiles: int,
    device: Device,
    *,
    dct_cols: int | None = None,
    time_scale: float = 1.0,
) -> list[FPGATask]:
    """Build the pipeline's task list for ``n_tiles`` parallel tiles.

    ``dct_cols`` defaults to roughly a quarter of the device (at least 2
    columns); the colour-conversion front-end takes half the device, and
    entropy coding runs on a single column for four time units — numbers
    chosen to make resource contention (not the critical path) the binding
    constraint for moderate ``n_tiles``, as in the paper's motivation.
    """
    if n_tiles <= 0:
        raise InvalidInstanceError(f"n_tiles must be positive, got {n_tiles}")
    K = device.K
    if K < 2:
        raise InvalidInstanceError("the pipeline needs at least a 2-column device")
    dct = dct_cols if dct_cols is not None else max(2, K // 4)
    if dct > K:
        raise InvalidInstanceError(f"dct_cols {dct} exceeds device width {K}")
    t = time_scale

    tasks: list[FPGATask] = [
        FPGATask(tid="rgb2ycbcr", columns=max(1, K // 2), duration=1.0 * t),
        FPGATask(tid="tile_split", columns=1, duration=0.5 * t, deps=("rgb2ycbcr",)),
    ]
    entropy_deps: list[str] = []
    for i in range(n_tiles):
        dct_id = f"dct:{i}"
        q_id = f"quant:{i}"
        z_id = f"zigzag:{i}"
        tasks.append(FPGATask(tid=dct_id, columns=dct, duration=2.0 * t, deps=("tile_split",)))
        tasks.append(FPGATask(tid=q_id, columns=1, duration=0.5 * t, deps=(dct_id,)))
        tasks.append(FPGATask(tid=z_id, columns=1, duration=0.5 * t, deps=(q_id,)))
        entropy_deps.append(z_id)
    tasks.append(
        FPGATask(tid="entropy", columns=1, duration=4.0 * t, deps=tuple(entropy_deps))
    )
    tasks.append(FPGATask(tid="bitstream", columns=1, duration=0.5 * t, deps=("entropy",)))
    return tasks


def jpeg_pipeline_instance(n_tiles: int, device: Device, **kwargs):
    """Convenience: tasks -> :class:`repro.core.PrecedenceInstance`."""
    return build_precedence_instance(jpeg_pipeline_tasks(n_tiles, device, **kwargs), device)
