"""Executes a :class:`~repro.bench.spec.BenchSpec` into an artifact dict.

For every size in the sweep the runner builds the workload once (seeded
from the spec), then times each entry ``warmup + repetitions`` times on
that shared input:

* ``engine`` entries go through :func:`repro.engine.run`; the recorded
  time is the report's ``wall_time`` (pure solver time — bounds and
  validation stay outside the timer, per the engine's timing discipline),
  and the final repetition also contributes height/ratio/valid metrics;
* ``sim`` entries stream the instance through
  :func:`repro.sim.simulate`; the event loop is timed with
  ``perf_counter`` and the trace's makespan/queue/utilization plus its
  engine-report ratio become the metrics;
* ``callable`` entries time a plain function call and harvest whatever
  metrics the return value naturally offers (placements report heights,
  numbers report themselves).

Median/p95/mean/min are computed over the repetition wall times; p95 is
the linear-interpolated percentile, which degrades gracefully to the max
for small repetition counts.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from ..core.errors import InvalidInstanceError
from ..core.instance import StripPackingInstance
from .artifact import new_artifact_header
from .spec import BenchEntry, BenchSpec

__all__ = ["run_bench", "run_bench_named", "percentile"]


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated ``q``-percentile (q in [0, 100]) of ``values``."""
    if not values:
        raise ValueError("percentile of an empty sample")
    xs = sorted(values)
    if len(xs) == 1:
        return xs[0]
    pos = (q / 100.0) * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def _require_instance(spec: BenchSpec, entry: BenchEntry, workload_out: Any):
    if not isinstance(workload_out, StripPackingInstance):
        raise InvalidInstanceError(
            f"bench {spec.name!r}: {entry.kind} entry {entry.label!r} needs the "
            f"workload to build a StripPackingInstance, got "
            f"{type(workload_out).__name__}"
        )
    return workload_out


def _time_engine(spec: BenchSpec, entry: BenchEntry, workload_out: Any, final: bool):
    from ..engine import run

    instance = _require_instance(spec, entry, workload_out)
    report = run(
        instance,
        entry.algorithm,
        params=dict(entry.params),
        validate=final,
        compute_bounds=final,
    )
    metrics: dict[str, Any] = {}
    if final:
        metrics = {
            "height": report.height,
            "ratio": report.ratio,
            "valid": report.valid,
            "lower_bound": report.lower_bound,
        }
    return report.wall_time, metrics


def _time_sim(spec: BenchSpec, entry: BenchEntry, workload_out: Any, final: bool):
    from ..sim import InstanceStream, simulate

    instance = _require_instance(spec, entry, workload_out)
    t0 = time.perf_counter()
    trace = simulate(InstanceStream(instance), entry.policy, **dict(entry.params))
    wall = time.perf_counter() - t0
    metrics: dict[str, Any] = {}
    if final:
        report = trace.to_report()
        metrics = {
            "height": trace.makespan,
            "ratio": report.ratio,
            "valid": report.valid,
            "max_queue_depth": trace.max_queue_depth,
            "mean_utilization": trace.mean_utilization,
        }
    return wall, metrics


def _callable_metrics(out: Any) -> dict[str, Any]:
    """Harvest metrics a callable's return value naturally offers."""
    placement = getattr(out, "placement", None)
    if placement is not None and hasattr(placement, "height"):
        return {"height": placement.height}
    if hasattr(out, "height") and isinstance(getattr(out, "height"), (int, float)):
        return {"height": out.height}
    if isinstance(out, (int, float)) and not isinstance(out, bool):
        return {"value": float(out)}
    if isinstance(out, dict) and all(
        isinstance(v, (int, float, bool, str, type(None))) for v in out.values()
    ):
        return dict(out)
    return {}


def _time_callable(spec: BenchSpec, entry: BenchEntry, workload_out: Any, final: bool):
    t0 = time.perf_counter()
    out = entry.fn(workload_out, **dict(entry.params))
    wall = time.perf_counter() - t0
    return wall, (_callable_metrics(out) if final else {})


_TIMERS: dict[str, Callable] = {
    "engine": _time_engine,
    "sim": _time_sim,
    "callable": _time_callable,
}


def _json_params(params) -> dict[str, Any]:
    """Entry params as JSON-able values (callables collapse to their name)."""
    out = {}
    for k, v in dict(params).items():
        if isinstance(v, (int, float, bool, str, type(None))):
            out[k] = v
        else:
            out[k] = getattr(v, "__name__", None) or repr(v)
    return out


def run_bench_named(
    name: str, *, quick: bool = False, repetitions: int | None = None
) -> dict[str, Any]:
    """Look up a registered spec by name and run it.

    The picklable work unit ``repro bench --backend thread|process`` maps
    over an :class:`~repro.engine.batch.Executor`: only the *name*
    crosses the pool boundary (spec objects close over workload
    functions, which need not survive pickling), and the worker resolves
    it against its own registry.
    """
    from .spec import get_bench

    return run_bench(get_bench(name), quick=quick, repetitions=repetitions)


def run_bench(
    spec: BenchSpec,
    *,
    quick: bool = False,
    repetitions: int | None = None,
    warmup: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Execute ``spec`` and return the artifact dict (not yet written).

    ``quick`` restricts the sweep to the spec's quick sizes;
    ``repetitions``/``warmup`` override the spec's defaults (CI smoke runs
    pass ``repetitions=1``).  ``progress`` receives one line per measured
    point.
    """
    reps = spec.repetitions if repetitions is None else max(1, repetitions)
    warm = spec.warmup if warmup is None else max(0, warmup)
    sizes = spec.sweep(quick)
    artifact = new_artifact_header(
        spec, quick=quick, sizes=sizes, repetitions=reps, warmup=warm
    )
    points = artifact["points"]
    for size in sizes:
        rng = np.random.default_rng(spec.seed)
        workload_out = spec.workload(int(size), rng)
        for entry in spec.entries:
            timer = _TIMERS[entry.kind]
            for _ in range(warm):
                timer(spec, entry, workload_out, False)
            times: list[float] = []
            metrics: dict[str, Any] = {}
            for rep in range(reps):
                final = rep == reps - 1
                wall, metrics = timer(spec, entry, workload_out, final)
                times.append(wall)
            point = {
                "label": entry.label,
                "kind": entry.kind,
                "size": int(size),
                "params": _json_params(entry.params),
                "times_s": times,
                "median_s": percentile(times, 50.0),
                "p95_s": percentile(times, 95.0),
                "mean_s": sum(times) / len(times),
                "min_s": min(times),
                "metrics": metrics,
            }
            points.append(point)
            if progress is not None:
                progress(
                    f"{spec.name}: {entry.label} {spec.size_name}={size} "
                    f"median={point['median_s']:.4g}s"
                )
    return artifact
