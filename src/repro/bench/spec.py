"""Declarative benchmark specifications and the bench registry.

A :class:`BenchSpec` describes one reproducible measurement: a *workload*
(a seeded generator mapping ``(size, rng)`` to an instance), a tuple of
*entries* (the things to time on that workload — engine algorithms, online
simulation policies, or plain callables), and a *size sweep*.  The spec is
purely declarative; :mod:`repro.bench.runner` executes it with warmup and
repetitions and :mod:`repro.bench.artifact` freezes the result into a
``BENCH_<name>.json`` artifact.

Specs are registered once at import time by :mod:`repro.bench.specs`
(mirroring how :mod:`repro.engine.specs` populates the algorithm
registry); ``repro bench`` and the benchmark scripts look them up by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..core.errors import InvalidInstanceError

__all__ = [
    "ENTRY_KINDS",
    "BenchEntry",
    "BenchSpec",
    "register_bench",
    "get_bench",
    "all_benches",
    "bench_names",
    "bench_table_rows",
]

#: How a :class:`BenchEntry` is executed by the runner.
ENTRY_KINDS = ("engine", "sim", "callable")


@dataclass(frozen=True)
class BenchEntry:
    """One timed contender within a bench spec.

    ``kind`` selects the execution path:

    * ``"engine"`` — ``repro.engine.run(instance, algorithm, params=params)``;
      the measured time is the report's pure solver wall time;
    * ``"sim"`` — ``repro.sim.simulate`` over an
      :class:`~repro.sim.stream.InstanceStream` of the workload instance
      with ``policy``;
    * ``"callable"`` — ``fn(workload_output, **params)``, for subroutine
      benchmarks (LP solves, rounding, grouping, kernel comparisons) that
      have no engine spec.
    """

    label: str
    kind: str = "engine"
    algorithm: str | None = None
    policy: str | None = None
    fn: Callable[..., Any] | None = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("a BenchEntry needs a label")
        if self.kind not in ENTRY_KINDS:
            raise ValueError(
                f"entry {self.label!r}: kind must be one of {ENTRY_KINDS}, got {self.kind!r}"
            )
        if self.kind == "engine" and not self.algorithm:
            raise ValueError(f"engine entry {self.label!r} needs an algorithm name")
        if self.kind == "sim" and not self.policy:
            raise ValueError(f"sim entry {self.label!r} needs a policy name")
        if self.kind == "callable" and self.fn is None:
            raise ValueError(f"callable entry {self.label!r} needs fn")


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: workload x entries x size sweep.

    ``workload(size, rng)`` builds the object handed to every entry at that
    size — a :class:`~repro.core.instance.StripPackingInstance` (or
    subclass) for ``engine``/``sim`` entries; ``callable`` entries accept
    whatever the workload returns.  The same instance is shared by all
    entries and repetitions of a size, so contenders race on identical
    inputs and artifacts are deterministic per seed (wall times aside).

    ``sizes`` is the full sweep; ``quick_sizes`` (defaulting to the first
    two sizes) is what ``repro bench --quick`` and CI smoke runs use.
    ``size_name`` is cosmetic — what the sweep parameter means (``n``,
    ``k``, ``K``...).
    """

    name: str
    title: str
    workload: Callable[[int, Any], Any]
    entries: tuple[BenchEntry, ...]
    sizes: tuple[int, ...]
    quick_sizes: tuple[int, ...] | None = None
    size_name: str = "n"
    repetitions: int = 3
    warmup: int = 1
    seed: int = 0
    source: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a BenchSpec needs a name")
        if not self.entries:
            raise ValueError(f"bench {self.name!r}: needs at least one entry")
        if not self.sizes:
            raise ValueError(f"bench {self.name!r}: needs at least one size")
        if self.repetitions < 1:
            raise ValueError(f"bench {self.name!r}: repetitions must be >= 1")
        if self.warmup < 0:
            raise ValueError(f"bench {self.name!r}: warmup must be >= 0")
        labels = [e.label for e in self.entries]
        if len(set(labels)) != len(labels):
            raise ValueError(f"bench {self.name!r}: duplicate entry labels {labels}")

    def sweep(self, quick: bool = False) -> tuple[int, ...]:
        """The sizes a run visits: the full sweep, or the quick subset."""
        if not quick:
            return self.sizes
        if self.quick_sizes is not None:
            return self.quick_sizes
        return self.sizes[:2]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_BENCHES: dict[str, BenchSpec] = {}


def register_bench(spec: BenchSpec) -> BenchSpec:
    """Add ``spec`` to the registry (re-registration is an error)."""
    if spec.name in _BENCHES:
        raise ValueError(f"bench {spec.name!r} registered twice")
    _BENCHES[spec.name] = spec
    return spec


def get_bench(name: str) -> BenchSpec:
    """Look up a bench spec by name (canonical unknown-name error)."""
    _load_benches()
    try:
        return _BENCHES[name]
    except KeyError:
        known = ", ".join(sorted(_BENCHES))
        raise InvalidInstanceError(
            f"unknown bench {name!r}; available: {known}"
        ) from None


def all_benches() -> list[BenchSpec]:
    """Every registered bench spec, sorted by name."""
    _load_benches()
    return [_BENCHES[name] for name in sorted(_BENCHES)]


def bench_names() -> list[str]:
    """Sorted names of every registered bench spec."""
    _load_benches()
    return sorted(_BENCHES)


def bench_table_rows() -> list[tuple[str, str, str, str, str]]:
    """(name, entries, sizes, reps, source) rows for ``repro bench --list``."""
    rows = []
    for s in all_benches():
        rows.append(
            (
                s.name,
                ",".join(e.label for e in s.entries),
                f"{s.size_name}={','.join(str(n) for n in s.sizes)}",
                f"{s.repetitions}+{s.warmup}w",
                s.source or "-",
            )
        )
    return rows


def _load_benches() -> None:
    # Bench specs live in repro.bench.specs; importing it populates the
    # registry.  Deferred for the same cycle/thread-safety reasons as
    # repro.engine.spec._load_specs.
    from . import specs  # noqa: F401
