"""``BENCH_<name>.json`` artifacts: schema, writer, reader, validation.

An artifact is the machine-readable output of one bench run — the unit the
comparison mode diffs and CI uploads.  Schema (``repro-bench/1``):

.. code-block:: text

    {
      "schema": "repro-bench/1",
      "name": str,              # bench spec name
      "title": str,
      "source": str,            # which benchmarks/ script it ports
      "quick": bool,            # quick subset or full sweep
      "seed": int,
      "created": str,           # ISO-8601 UTC
      "machine": {"python": str, "platform": str, "numpy": str},
      "kernel_tier": str,       # active repro.kernels tier during the run
                                # (absent in pre-tier artifacts; readers
                                # use .get and treat None as "array")
      "config": {"sizes": [int], "size_name": str,
                 "repetitions": int, "warmup": int, "entries": [str]},
      "points": [
        {"label": str, "kind": str, "size": int, "params": {..},
         "times_s": [float],    # one wall time per repetition
         "median_s": float, "p95_s": float, "mean_s": float, "min_s": float,
         "metrics": {..}}       # height/ratio/valid/... (may be empty)
      ]
    }

:func:`validate_artifact` checks structure, not values: every consumer
(``--compare``, CI, the tests) can assume a validated artifact has the
fields above with the right types.
"""

from __future__ import annotations

import json
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from ..core.errors import ReproError

__all__ = [
    "SCHEMA",
    "BenchArtifactError",
    "machine_info",
    "artifact_path",
    "write_artifact",
    "load_artifact",
    "validate_artifact",
    "artifact_table",
]

#: Current artifact schema identifier.
SCHEMA = "repro-bench/1"


class BenchArtifactError(ReproError):
    """A bench artifact is malformed (wrong schema, missing/ill-typed fields)."""


def machine_info() -> dict[str, str]:
    """The environment fingerprint embedded in every artifact."""
    import numpy as np

    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
    }


def artifact_path(directory: Path | str, name: str) -> Path:
    """Canonical artifact location: ``<directory>/BENCH_<name>.json``."""
    return Path(directory) / f"BENCH_{name}.json"


def write_artifact(artifact: dict[str, Any], directory: Path | str) -> Path:
    """Validate ``artifact`` and write it to its canonical path."""
    validate_artifact(artifact)
    path = artifact_path(directory, artifact["name"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: Path | str) -> dict[str, Any]:
    """Read and validate one artifact file."""
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchArtifactError(f"{path}: not JSON: {exc}") from exc
    validate_artifact(data, where=str(path))
    return data


def new_artifact_header(spec, *, quick: bool, sizes, repetitions: int, warmup: int) -> dict:
    """The non-measurement part of an artifact for ``spec``.

    ``kernel_tier`` records the tier active when the run started, so two
    artifacts are never silently compared across tiers (the comparator
    warns on a mismatch) and committed-artifact gates can condition on
    how the numbers were produced.
    """
    from .. import kernels

    return {
        "schema": SCHEMA,
        "name": spec.name,
        "title": spec.title,
        "source": spec.source,
        "quick": bool(quick),
        "seed": spec.seed,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_info(),
        "kernel_tier": kernels.active_tier(),
        "config": {
            "sizes": [int(n) for n in sizes],
            "size_name": spec.size_name,
            "repetitions": int(repetitions),
            "warmup": int(warmup),
            "entries": [e.label for e in spec.entries],
        },
        "points": [],
    }


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

_POINT_STATS = ("median_s", "p95_s", "mean_s", "min_s")


def _fail(where: str, msg: str) -> None:
    prefix = f"{where}: " if where else ""
    raise BenchArtifactError(f"{prefix}{msg}")


def validate_artifact(data: Any, *, where: str = "") -> None:
    """Raise :class:`BenchArtifactError` unless ``data`` matches the schema."""
    if not isinstance(data, dict):
        _fail(where, f"artifact must be an object, got {type(data).__name__}")
    if data.get("schema") != SCHEMA:
        _fail(where, f"unknown schema {data.get('schema')!r} (expected {SCHEMA!r})")
    for key, typ in (
        ("name", str), ("title", str), ("quick", bool), ("seed", int),
        ("created", str), ("machine", dict), ("config", dict), ("points", list),
    ):
        if key not in data:
            _fail(where, f"missing field {key!r}")
        if not isinstance(data[key], typ):
            _fail(where, f"field {key!r} must be {typ.__name__}, "
                         f"got {type(data[key]).__name__}")
    # Optional field (absent in pre-tier artifacts), typed when present.
    if "kernel_tier" in data and not isinstance(data["kernel_tier"], str):
        _fail(where, "field 'kernel_tier' must be str")
    config = data["config"]
    for key, typ in (
        ("sizes", list), ("size_name", str),
        ("repetitions", int), ("warmup", int), ("entries", list),
    ):
        if key not in config:
            _fail(where, f"config missing {key!r}")
        if not isinstance(config[key], typ):
            _fail(where, f"config.{key} must be {typ.__name__}")
    for i, pt in enumerate(data["points"]):
        ctx = f"points[{i}]"
        if not isinstance(pt, dict):
            _fail(where, f"{ctx} must be an object")
        for key, typ in (
            ("label", str), ("kind", str), ("size", int),
            ("params", dict), ("times_s", list), ("metrics", dict),
        ):
            if key not in pt:
                _fail(where, f"{ctx} missing {key!r}")
            if not isinstance(pt[key], typ):
                _fail(where, f"{ctx}.{key} must be {typ.__name__}")
        if not pt["times_s"]:
            _fail(where, f"{ctx}.times_s is empty")
        if not all(isinstance(t, (int, float)) and t >= 0 for t in pt["times_s"]):
            _fail(where, f"{ctx}.times_s must be non-negative numbers")
        for key in _POINT_STATS:
            if not isinstance(pt.get(key), (int, float)):
                _fail(where, f"{ctx}.{key} must be a number")


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def artifact_table(artifact: dict[str, Any]):
    """The artifact's points as an :class:`~repro.analysis.report.Table`."""
    from ..analysis.report import Table

    size_name = artifact["config"].get("size_name", "n")
    table = Table(
        ["entry", size_name, "median_s", "p95_s", "min_s", "height", "ratio"],
        title=f"BENCH {artifact['name']}" + (" (quick)" if artifact["quick"] else ""),
    )
    for pt in artifact["points"]:
        metrics = pt["metrics"]
        height = metrics.get("height")
        ratio = metrics.get("ratio")
        table.add_row([
            pt["label"],
            pt["size"],
            pt["median_s"],
            pt["p95_s"],
            pt["min_s"],
            "-" if height is None else height,
            "-" if ratio is None else ratio,
        ])
    return table
