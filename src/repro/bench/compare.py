"""Comparison mode: diff two bench artifacts and flag regressions.

``repro bench NAME --compare BASELINE.json`` (and CI) use this to answer
"did this change make anything slower?" without eyeballing JSON.  Points
are matched by ``(label, size)``; a point regresses when its median slowed
down by more than ``threshold`` *and* by more than ``min_delta_s`` —
the absolute floor keeps microsecond-scale noise from tripping the
ratio test on trivially fast points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .artifact import validate_artifact

__all__ = ["ComparisonRow", "ComparisonResult", "compare_artifacts"]

#: A current median this many times the baseline median is a regression...
DEFAULT_THRESHOLD = 1.5
#: ...provided it also slowed down by at least this many seconds.
DEFAULT_MIN_DELTA_S = 1e-3


@dataclass(frozen=True)
class ComparisonRow:
    """One matched (or unmatched) point pair."""

    label: str
    size: int
    baseline_s: float | None
    current_s: float | None
    ratio: float | None  # current / baseline median
    status: str  # "ok" | "improved" | "regression" | "new" | "missing"


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of diffing one artifact pair."""

    name: str
    rows: tuple[ComparisonRow, ...]
    threshold: float
    #: Loud non-failure warning when the artifacts were produced on
    #: different kernel tiers (a cross-tier "regression" is usually just
    #: the tier difference, and a cross-tier "ok" can hide a real one).
    tier_note: str | None = None

    @property
    def regressions(self) -> tuple[ComparisonRow, ...]:
        return tuple(r for r in self.rows if r.status == "regression")

    @property
    def ok(self) -> bool:
        """No regression found (new/missing points are not failures)."""
        return not self.regressions

    def table(self):
        """Rendered summary (an :class:`~repro.analysis.report.Table`)."""
        from ..analysis.report import Table

        table = Table(
            ["entry", "size", "baseline_s", "current_s", "ratio", "status"],
            title=f"compare {self.name} (threshold {self.threshold:g}x)",
        )
        for r in self.rows:
            table.add_row([
                r.label,
                r.size,
                "-" if r.baseline_s is None else r.baseline_s,
                "-" if r.current_s is None else r.current_s,
                "-" if r.ratio is None else r.ratio,
                r.status,
            ])
        return table


def _points_by_key(artifact: dict[str, Any]) -> dict[tuple[str, int], dict]:
    return {(pt["label"], pt["size"]): pt for pt in artifact["points"]}


def compare_artifacts(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
) -> ComparisonResult:
    """Diff ``current`` against ``baseline`` (both artifact dicts).

    The artifacts must describe the same bench spec (matching ``name``);
    mismatched names raise ``ValueError`` because a cross-spec diff is
    meaningless.  So do sweeps with **zero** overlapping ``(label, size)``
    points (e.g. a quick artifact against a full one) — otherwise the
    regression gate would pass vacuously on rows that are all
    ``new``/``missing``.  Rows come back in the current artifact's point
    order, with baseline-only points appended as ``missing``.
    """
    validate_artifact(baseline, where="baseline")
    validate_artifact(current, where="current")
    if baseline["name"] != current["name"]:
        raise ValueError(
            f"cannot compare different benches: baseline is "
            f"{baseline['name']!r}, current is {current['name']!r}"
        )
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold:g}")
    base_points = _points_by_key(baseline)
    rows: list[ComparisonRow] = []
    seen: set[tuple[str, int]] = set()
    for pt in current["points"]:
        key = (pt["label"], pt["size"])
        seen.add(key)
        cur = float(pt["median_s"])
        base_pt = base_points.get(key)
        if base_pt is None:
            rows.append(ComparisonRow(pt["label"], pt["size"], None, cur, None, "new"))
            continue
        base = float(base_pt["median_s"])
        ratio = cur / base if base > 0 else None
        if ratio is not None and ratio > threshold and cur - base > min_delta_s:
            status = "regression"
        elif ratio is not None and ratio < 1.0 / threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(ComparisonRow(pt["label"], pt["size"], base, cur, ratio, status))
    for key, base_pt in base_points.items():
        if key not in seen:
            rows.append(
                ComparisonRow(key[0], key[1], float(base_pt["median_s"]), None, None, "missing")
            )
    if not (seen & base_points.keys()):
        raise ValueError(
            f"no overlapping (entry, size) points between the artifacts for "
            f"{current['name']!r} — comparing different sweeps? "
            f"(baseline quick={baseline['quick']}, current quick={current['quick']})"
        )
    # Pre-tier artifacts (no kernel_tier field) ran the array kernels.
    base_tier = baseline.get("kernel_tier") or "array"
    cur_tier = current.get("kernel_tier") or "array"
    tier_note = None
    if base_tier != cur_tier:
        tier_note = (
            f"warning: comparing across kernel tiers (baseline ran "
            f"{base_tier!r}, current ran {cur_tier!r}) — timing deltas "
            f"reflect the tier change, not just the code change"
        )
    return ComparisonResult(current["name"], tuple(rows), threshold, tier_note)
