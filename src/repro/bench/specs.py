"""Bench registrations: every ``benchmarks/bench_*.py`` script as a spec.

Importing this module populates the registry in :mod:`repro.bench.spec`.
Each of the 18 benchmark scripts maps to one spec (named in ``source``),
plus ``skyline_bottom_left`` — the kernel before/after race whose artifact
records the speedup of :class:`repro.geometry.skyline.Skyline` over the
reference implementation.

Conventions:

* workloads are seeded closures over :mod:`repro.workloads`; the sweep
  parameter (``size``) means whatever ``size_name`` says — ``n`` (tasks),
  ``k`` (adversarial family index), ``K`` (device columns), or ``tiles``;
* engine/sim entries name registry specs/policies; callable entries wrap
  the subroutine a script times (LP solve, rounding, grouping, kernels);
* quick sizes are small enough for CI smoke (``repro bench --all --quick``
  finishes in well under a minute).
"""

from __future__ import annotations

from .spec import BenchEntry, BenchSpec, register_bench

__all__: list[str] = []


# ----------------------------------------------------------------------
# workloads (size, rng) -> instance / prepared object
# ----------------------------------------------------------------------

def _plain_powerlaw(n, rng):
    from ..core.instance import StripPackingInstance
    from ..workloads.random_rects import powerlaw_rects

    return StripPackingInstance(powerlaw_rects(n, rng))


def _plain_uniform(n, rng):
    from ..core.instance import StripPackingInstance
    from ..workloads.random_rects import uniform_rects

    return StripPackingInstance(uniform_rects(n, rng))


def _omega_log_n(k, rng):
    from ..workloads.adversarial import omega_log_n_instance

    return omega_log_n_instance(k, eps=1e-7).instance


def _ratio3(k, rng):
    from ..workloads.adversarial import ratio3_instance

    return ratio3_instance(k, eps=1e-6).instance


def _random_dag(n, rng):
    from ..workloads.dags import random_precedence_instance

    return random_precedence_instance(n, 0.1, rng)


def _uniform_height_dag(n, rng):
    from ..workloads.dags import uniform_height_precedence_instance

    return uniform_height_precedence_instance(n, 0.05, rng)


def _bursty_release(n, rng):
    from ..workloads.releases import bursty_release_instance

    return bursty_release_instance(n, 4, rng, n_bursts=3, burst_gap=float(n) / 8.0)


def _poisson_release(n, rng):
    from ..workloads.releases import poisson_release_instance

    return poisson_release_instance(n, 4, rng, rate=1.5, max_cols=4)


def _staircase_release(n, rng):
    from ..workloads.releases import staircase_release_instance

    return staircase_release_instance(n, 4, rng, n_steps=3)


def _jpeg_pipeline(tiles, rng):
    from ..fpga.device import Device
    from ..workloads.jpeg import jpeg_pipeline_instance

    return jpeg_pipeline_instance(tiles, Device(K=16))


def _bin_instance(n, rng):
    from ..precedence.bin_packing import strip_to_bin_instance
    from ..workloads.dags import uniform_height_precedence_instance

    return strip_to_bin_instance(uniform_height_precedence_instance(n, 0.05, rng))


def _rounded_release(n, rng):
    from ..release.rounding import round_releases_up
    from ..workloads.releases import bursty_release_instance

    return round_releases_up(bursty_release_instance(n, 6, rng, n_bursts=3), 0.5)


def _jpeg_with_schedule(tiles, rng):
    """JPEG instance + its DC placement, for latency-dilation timing."""
    from ..fpga.device import Device
    from ..precedence.dc import dc_pack

    device = Device(K=16, reconfig_latency=0.25)
    instance = _jpeg_pipeline(tiles, rng)
    placement = dc_pack(instance).placement
    return {"instance": instance, "device": device, "placement": placement}


def _instance_suite(n, rng):
    from ..workloads.suite import mixed_instance_suite

    return mixed_instance_suite(n, rng)


# ----------------------------------------------------------------------
# callable entry targets
# ----------------------------------------------------------------------

def _bl_reference(instance):
    from ..geometry.skyline_reference import ReferenceSkyline
    from ..packing.bottom_left import bottom_left

    return bottom_left(list(instance.rects), skyline_cls=ReferenceSkyline)


def _level_reference(name):
    def run(instance):
        from ..geometry import levels_reference

        return getattr(levels_reference, f"reference_{name}")(list(instance.rects))

    run.__name__ = f"reference_{name}"
    return run


def _dc_with_subroutine(name):
    def run(instance):
        from .. import packing
        from ..precedence.dc import dc_pack

        return dc_pack(instance, subroutine=getattr(packing, name))

    run.__name__ = f"dc[{name}]"
    return run


def _ffd_bins(bin_inst):
    from ..precedence.bin_packing import precedence_first_fit_decreasing

    return precedence_first_fit_decreasing(bin_inst)


def _next_fit_bins(bin_inst):
    from ..precedence.bin_packing import precedence_next_fit

    return precedence_next_fit(bin_inst)


def _round_releases(instance, eps=0.25):
    from ..release.rounding import round_releases_up

    return round_releases_up(instance, eps)


def _group_widths(instance, budget_factor=2):
    from ..release.grouping import group_widths

    n_classes = len({r.release for r in instance.rects})
    return group_widths(instance, budget_factor * n_classes)


def _solve_lp(instance):
    from ..release.lp import solve_fractional

    return solve_fractional(instance)


def _fractional_height(instance):
    from ..release.lp import optimal_fractional_height

    return optimal_fractional_height(instance)


def _dilate(prepared):
    from ..fpga.latency import dilate_for_reconfiguration

    return dilate_for_reconfiguration(
        prepared["placement"], prepared["device"], dag=prepared["instance"].dag
    )


def _portfolio_first(instances):
    from ..engine import portfolio

    return portfolio(instances[0])


def _solve_many(jobs):
    def run(instances):
        from ..engine import solve_many

        return solve_many(instances, jobs=jobs, validate=False)

    run.__name__ = f"solve_many[jobs={jobs}]"
    return run


def _engine(label, algorithm, **params):
    return BenchEntry(label=label, kind="engine", algorithm=algorithm, params=params)


def _sim(label, policy, **params):
    return BenchEntry(label=label, kind="sim", policy=policy, params=params)


def _call(label, fn, **params):
    return BenchEntry(label=label, kind="callable", fn=fn, params=params)


# ----------------------------------------------------------------------
# the tentpole artifact: optimized skyline kernel vs reference
# ----------------------------------------------------------------------

register_bench(BenchSpec(
    name="skyline_bottom_left",
    title="Bottom-left skyline kernel: optimized vs reference implementation",
    workload=_plain_powerlaw,
    entries=(
        _engine("optimized", "bottom_left"),
        _call("reference", _bl_reference),
    ),
    sizes=(1_000, 10_000, 100_000),
    quick_sizes=(500, 2_000),
    repetitions=2,
    warmup=0,
    source="benchmarks/bench_subroutine_a.py (kernel), geometry/skyline.py",
))

register_bench(BenchSpec(
    name="level_packers",
    title="Level-packing kernels: columnar LevelArray vs object-based reference",
    workload=_plain_powerlaw,
    entries=(
        _engine("nfdh", "nfdh"),
        _engine("ffdh", "ffdh"),
        _engine("bfdh", "bfdh"),
        _call("reference_nfdh", _level_reference("nfdh")),
        _call("reference_ffdh", _level_reference("ffdh")),
        _call("reference_bfdh", _level_reference("bfdh")),
    ),
    # The full sweep shares size 2000 with the quick sweep on purpose: CI
    # runs `repro bench level_packers --quick --compare` against the
    # committed artifact, and compare_artifacts needs overlapping points.
    sizes=(2_000, 10_000, 100_000),
    quick_sizes=(500, 2_000),
    repetitions=2,
    warmup=0,
    source="benchmarks/bench_subroutine_a.py (kernels), geometry/levels.py",
))

# ----------------------------------------------------------------------
# paper experiments E1..E13
# ----------------------------------------------------------------------

register_bench(BenchSpec(
    name="dc_ratio",
    title="E1: DC height vs Theorem 2.3 guarantee on random DAGs",
    workload=_random_dag,
    entries=(_engine("dc", "dc"),),
    sizes=(50, 100, 200, 400),
    quick_sizes=(30, 60),
    source="benchmarks/bench_dc_ratio.py (E1)",
))

register_bench(BenchSpec(
    name="fig1_gap",
    title="E2/Fig.1: Omega(log n) lower-bound gap family",
    workload=_omega_log_n,
    entries=(_engine("dc", "dc"),),
    sizes=(3, 4, 5, 6, 7),
    quick_sizes=(3, 4),
    size_name="k",
    source="benchmarks/bench_fig1_gap.py (E2)",
))

register_bench(BenchSpec(
    name="shelf_nextfit",
    title="E3: Algorithm F (shelf next fit) on uniform-height DAGs",
    workload=_uniform_height_dag,
    entries=(_engine("shelf_next_fit", "shelf_next_fit"), _engine("dc", "dc")),
    sizes=(64, 128, 256),
    quick_sizes=(32, 64),
    source="benchmarks/bench_shelf_nextfit.py (E3)",
))

register_bench(BenchSpec(
    name="fig2_ratio3",
    title="E4/Fig.2: tightness of the factor-3 analysis",
    workload=_ratio3,
    entries=(_engine("shelf_next_fit", "shelf_next_fit"),),
    sizes=(4, 8, 16),
    quick_sizes=(4,),
    size_name="k",
    source="benchmarks/bench_fig2_ratio3.py (E4)",
))

register_bench(BenchSpec(
    name="bin_packing",
    title="E5: precedence-constrained bin packing (NF vs FFD)",
    workload=_bin_instance,
    entries=(_call("next_fit", _next_fit_bins), _call("ffd", _ffd_bins)),
    sizes=(32, 64, 128),
    quick_sizes=(16, 32),
    source="benchmarks/bench_bin_packing.py (E5)",
))

register_bench(BenchSpec(
    name="rounding",
    title="E6/Lemma 3.1: release rounding",
    workload=_poisson_release,
    entries=(_call("round_releases", _round_releases, eps=0.25),),
    sizes=(24, 48, 96),
    quick_sizes=(12, 24),
    source="benchmarks/bench_rounding.py (E6)",
))

register_bench(BenchSpec(
    name="grouping",
    title="E7/Lemma 3.2: width grouping on rounded instances",
    workload=_rounded_release,
    entries=(_call("group_widths", _group_widths, budget_factor=2),),
    sizes=(30, 60, 120),
    quick_sizes=(15, 30),
    source="benchmarks/bench_grouping.py (E7)",
))

register_bench(BenchSpec(
    name="lp_configs",
    title="E8/Lemma 3.3: configuration LP solve",
    workload=_staircase_release,
    entries=(_call("solve_fractional", _solve_lp),),
    sizes=(12, 24, 36),
    quick_sizes=(8, 12),
    source="benchmarks/bench_lp_configs.py (E8)",
))

register_bench(BenchSpec(
    name="aptas",
    title="E9/Theorem 3.5: end-to-end APTAS",
    workload=_bursty_release,
    entries=(_engine("aptas", "aptas", eps=0.9),),
    sizes=(10, 20, 40, 80),
    quick_sizes=(10, 20),
    source="benchmarks/bench_aptas.py (E9)",
))

register_bench(BenchSpec(
    name="release_baselines",
    title="E10: release-time baselines vs the APTAS",
    workload=_bursty_release,
    entries=(
        _engine("release_shelf", "release_shelf"),
        _engine("release_bl", "release_bl"),
        _engine("aptas", "aptas", eps=0.9),
    ),
    sizes=(10, 20, 40, 80),
    quick_sizes=(10, 20),
    source="benchmarks/bench_release_baselines.py (E10)",
))

register_bench(BenchSpec(
    name="packers",
    title="E11: unconstrained packers (subroutine-A candidates)",
    workload=_plain_uniform,
    entries=(
        _engine("nfdh", "nfdh"),
        _engine("ffdh", "ffdh"),
        _engine("bfdh", "bfdh"),
        _engine("bottom_left", "bottom_left"),
    ),
    sizes=(100, 400, 1_600),
    quick_sizes=(50, 100),
    source="benchmarks/bench_subroutine_a.py (E11)",
))

register_bench(BenchSpec(
    name="fpga_jpeg",
    title="E12: JPEG pipelines scheduled with DC on a 16-column device",
    workload=_jpeg_pipeline,
    entries=(_engine("dc", "dc"),),
    sizes=(2, 4, 8),
    quick_sizes=(2, 4),
    size_name="tiles",
    source="benchmarks/bench_fpga_jpeg.py (E12)",
))

register_bench(BenchSpec(
    name="portfolio",
    title="E13: engine batch and portfolio execution",
    workload=_instance_suite,
    entries=(
        _call("solve_many[serial]", _solve_many(1)),
        _call("solve_many[jobs=4]", _solve_many(4)),
        _call("portfolio[first]", _portfolio_first),
    ),
    sizes=(6, 12, 24),
    quick_sizes=(4, 6),
    size_name="instances",
    source="benchmarks/bench_engine_portfolio.py (E13)",
))

# ----------------------------------------------------------------------
# online / simulator benches A4, A5
# ----------------------------------------------------------------------

register_bench(BenchSpec(
    name="online_vs_offline",
    title="A4: price of online first fit vs offline baselines",
    workload=_bursty_release,
    entries=(
        _engine("online_ff", "online_ff"),
        _engine("release_bl", "release_bl"),
        _engine("aptas", "aptas", eps=0.9),
    ),
    sizes=(10, 20, 40),
    quick_sizes=(10, 20),
    source="benchmarks/bench_online_vs_offline.py (A4)",
))

register_bench(BenchSpec(
    name="online_policies",
    title="A5: online policy shoot-out through the event-driven simulator",
    workload=_bursty_release,
    entries=(
        _sim("first_fit", "first_fit"),
        _sim("best_fit_column", "best_fit_column"),
        _sim("shelf_online", "shelf_online"),
    ),
    sizes=(20, 40, 80),
    quick_sizes=(10, 20),
    source="benchmarks/bench_online_policies.py (A5)",
))

# ----------------------------------------------------------------------
# ablations A1..A3
# ----------------------------------------------------------------------

register_bench(BenchSpec(
    name="dc_subroutine",
    title="A1: DC with swapped subroutine-A packers",
    workload=_random_dag,
    entries=(
        _call("nfdh", _dc_with_subroutine("nfdh")),
        _call("ffdh", _dc_with_subroutine("ffdh")),
        _call("bfdh", _dc_with_subroutine("bfdh")),
        _call("bottom_left", _dc_with_subroutine("bottom_left")),
    ),
    sizes=(50, 100, 200),
    quick_sizes=(30, 50),
    source="benchmarks/bench_ablation_dc_subroutine.py (A1)",
))

register_bench(BenchSpec(
    name="aptas_budget",
    title="A2: APTAS width-budget knob (groups per class)",
    workload=_bursty_release,
    entries=(
        _engine("g=1", "aptas", eps=0.9, groups_per_class=1),
        _engine("g=2", "aptas", eps=0.9, groups_per_class=2),
        _engine("g=4", "aptas", eps=0.9, groups_per_class=4),
    ),
    sizes=(10, 20, 40),
    quick_sizes=(10,),
    source="benchmarks/bench_ablation_aptas_budget.py (A2)",
))

register_bench(BenchSpec(
    name="latency_dilation",
    title="A3: reconfiguration-latency dilation on the JPEG pipeline",
    workload=_jpeg_with_schedule,
    entries=(_call("dilate", _dilate),),
    sizes=(2, 4, 6),
    quick_sizes=(2, 4),
    size_name="tiles",
    source="benchmarks/bench_ablation_latency.py (A3)",
))

# ----------------------------------------------------------------------
# serving layer: request throughput through the async solve service
# ----------------------------------------------------------------------

def _service_workload(n, rng):
    """Prepared request traffic for ``n`` posts against a fresh server.

    ``cached`` cycles one instance (after the first solve every request is
    a content-addressed cache hit — the serving hot path); ``cold`` posts
    ``n`` distinct instances (every request pays queue + batcher + solve).
    The rng argument is unused: payloads are seeded internally so both
    entries and all repetitions replay identical traffic.
    """
    from ..service.loadgen import solve_payloads

    return {
        "requests": n,
        "cached": solve_payloads(1, n_rects=16, seed=0, algorithm="ffdh"),
        "cold": solve_payloads(n, n_rects=16, seed=0, algorithm="ffdh"),
    }


def _service_loadtest(mode):
    def run(prepared):
        from ..service.loadgen import run_closed_loop
        from ..service.server import InProcessServer

        with InProcessServer() as srv:
            result = run_closed_loop(
                srv.url,
                prepared[mode],
                requests=prepared["requests"],
                concurrency=4,
            )
        return {
            "rps": result.throughput_rps,
            "p50_ms": result.latency_ms(50),
            "p95_ms": result.latency_ms(95),
            "ok": result.errors == 0,
            "hit_rate": result.cache_hits / result.requests,
        }

    run.__name__ = f"loadtest[{mode}]"
    return run


register_bench(BenchSpec(
    name="service_throughput",
    title="Solve service: closed-loop request throughput (cached vs cold)",
    workload=_service_workload,
    entries=(
        _call("cached", _service_loadtest("cached")),
        _call("cold", _service_loadtest("cold")),
    ),
    # The full sweep shares size 200 with the quick sweep (like
    # level_packers) so CI can `--quick --compare` the committed artifact.
    sizes=(200, 400, 800),
    quick_sizes=(100, 200),
    size_name="requests",
    repetitions=2,
    warmup=0,
    source="service/server.py + service/loadgen.py (repro serve / loadtest)",
))


def _scaling_workload(n, rng):
    """Traffic for the worker-count sweep at ``n`` requests per step.

    ``cached`` cycles 8 small instances — the router's per-worker L1s stay
    hot and the measurement is pure front-end + routing overhead.
    ``cold`` posts ``n`` distinct 300-rect ``bottom_left`` solves (tens of
    milliseconds each), so solver CPU dominates and extra worker
    processes can actually buy throughput.  The rng argument is unused:
    payloads are seeded so every entry and repetition replays identical
    traffic.
    """
    from ..service.loadgen import solve_payloads

    return {
        "requests": n,
        "cached": solve_payloads(8, n_rects=16, seed=0, algorithm="ffdh"),
        "cold": solve_payloads(n, n_rects=300, seed=0, algorithm="bottom_left"),
    }


def _scaling_step(mode, workers):
    def run(prepared):
        import os

        from ..service.loadgen import sweep_workers

        ((_, result),) = sweep_workers(
            [workers], prepared[mode], requests=prepared["requests"], concurrency=4
        )
        return {
            "rps": result.throughput_rps,
            "p95_ms": result.latency_ms(95),
            "ok": result.errors == 0,
            "workers": workers,
            # Scaling claims are meaningless without the core count the
            # curve was measured on; the artifact-pinning test gates the
            # 4-worker speedup only when cpus >= 4.
            "cpus": os.cpu_count() or 1,
        }

    run.__name__ = f"scaling[{mode} w={workers}]"
    return run


#: The chaos-tax plan for the ``faulty[w2]`` point: a burst of connection
#: resets (each benches a live worker until the supervisor re-rings it)
#: plus two stalled solves.  Counter-triggered, so every run replays the
#: same storm; all of it is survivable, so ``ok`` must stay True.
_SCALING_FAULT_PLAN = {
    "seed": 5,
    "faults": [
        {"site": "router.send", "kind": "conn_reset", "after": 5, "count": 3},
        {"site": "worker.pre_solve", "kind": "slow", "after": 2, "count": 2,
         "delay_s": 0.2},
    ],
}


def _scaling_faulty_step(workers):
    """The cached sweep with the fault plan armed: same traffic as
    ``cached[wN]``, so the rps gap between the two points is the price of
    riding out the injected storm (retries, failovers, re-ring ticks)."""

    def run(prepared):
        import os

        from ..service.loadgen import sweep_workers

        ((_, result),) = sweep_workers(
            [workers], prepared["cached"], requests=prepared["requests"],
            concurrency=4,
            router_config={
                "fault_plan": _SCALING_FAULT_PLAN,
                "request_timeout": 5.0,
                "retries": 1,
            },
        )
        return {
            "rps": result.throughput_rps,
            "p95_ms": result.latency_ms(95),
            "ok": result.errors == 0,
            "workers": workers,
            "cpus": os.cpu_count() or 1,
        }

    run.__name__ = f"scaling[faulty w={workers}]"
    return run


register_bench(BenchSpec(
    name="service_scaling",
    title="Sharded solve service: throughput vs worker count (cached vs cold)",
    workload=_scaling_workload,
    entries=tuple(
        _call(f"{mode}[w{workers}]", _scaling_step(mode, workers))
        for mode in ("cached", "cold")
        for workers in (1, 2, 4)
    ) + (_call("faulty[w2]", _scaling_faulty_step(2)),),
    # Size 60 is shared between full and quick (like service_throughput)
    # so CI can `--quick --compare` the committed artifact.
    sizes=(60, 120),
    quick_sizes=(30, 60),
    size_name="requests",
    repetitions=1,
    warmup=0,
    source="service/router.py + service/loadgen.py "
           "(repro serve --workers / loadtest --workers-sweep)",
))

def _sessions_workload(n, rng):
    """Traffic for the warm-start triad at ``n`` rects per instance.

    ``cached`` repeats one instance (verbatim payload reuse), ``warm``
    posts distinct 2-rect deltas of a primed base (each request is a
    cache miss whose answer is a neighbor repair), ``cold`` posts fully
    distinct instances.  All three solve ``bottom_left`` so the cold
    point costs real solver CPU and the repair's edge is visible.  The
    rng argument is unused: payloads are seeded so every entry and
    repetition replays identical traffic.
    """
    import json as _json

    import numpy as np

    from ..core.instance import StripPackingInstance
    from ..core.serialize import instance_to_dict
    from ..service.loadgen import solve_payloads
    from ..workloads.random_rects import powerlaw_rects

    requests = 20

    def body(rects):
        doc = {
            "instance": instance_to_dict(StripPackingInstance(rects)),
            "algorithm": "bottom_left",
        }
        return _json.dumps(doc).encode("utf-8")

    # One rect pool so base and extras have distinct ids: each warm body
    # is the base plus its own pair of unseen rects — a pure "added" delta.
    pool = list(powerlaw_rects(n + 2 * requests, np.random.default_rng(0)))
    base_rects = pool[:n]
    base = body(base_rects)
    warm_bodies = [
        body(base_rects + pool[n + 2 * i : n + 2 * (i + 1)]) for i in range(requests)
    ]
    return {
        "requests": requests,
        "base": base,
        "cached": [base],
        "warm": warm_bodies,
        "cold": solve_payloads(requests, n_rects=n, seed=1, algorithm="bottom_left"),
    }


def _sessions_step(mode):
    """One triad point: a fresh server per mode, warm-start armed only
    where the mode needs it (``cold`` must never find a neighbor)."""

    def run(prepared):
        from ..service.loadgen import run_closed_loop
        from ..service.server import InProcessServer, SolveServer

        server = (
            SolveServer(warm_delta=0.75) if mode in ("warm", "cached") else SolveServer()
        )
        with InProcessServer(server) as srv:
            if mode in ("warm", "cached"):
                # Prime (uncounted): the base solve seeds the neighbor
                # index / result cache every measured request leans on.
                run_closed_loop(srv.url, [prepared["base"]], requests=1, concurrency=1)
            result = run_closed_loop(
                srv.url, prepared[mode], requests=prepared["requests"], concurrency=1
            )
        return {
            "rps": result.throughput_rps,
            "p50_ms": result.latency_ms(50),
            "p95_ms": result.latency_ms(95),
            "ok": result.errors == 0,
            "hit_rate": result.cache_hits / result.requests,
            "warm_rate": result.warm_hits / result.requests,
        }

    run.__name__ = f"sessions[{mode}]"
    return run


register_bench(BenchSpec(
    name="service_sessions",
    title="Warm-start delta solving: cached vs warm repair vs cold solve",
    workload=_sessions_workload,
    entries=(
        _call("cached", _sessions_step("cached")),
        _call("warm", _sessions_step("warm")),
        _call("cold", _sessions_step("cold")),
    ),
    # Size 200 is shared between full and quick (like service_throughput)
    # so CI can `--quick --compare` the committed artifact.
    sizes=(200, 300),
    quick_sizes=(120, 200),
    size_name="rects",
    repetitions=1,
    warmup=0,
    source="engine/warmstart.py + service/server.py "
           "(repro serve --warm-delta / loadtest --mode session)",
))

# ----------------------------------------------------------------------
# kernel tiers: array vs compiled on the three compiled hot loops
# ----------------------------------------------------------------------

def _tier_workload(n, rng):
    """A plain instance plus a valid FFDH placement of it.

    The packer entries time the level/skyline kernels on the instance;
    the ``validate`` entries time the columnar validator's containment +
    overlap sweeps on the shared placement.
    """
    from ..packing import ffdh

    instance = _plain_powerlaw(n, rng)
    return {"instance": instance, "placement": ffdh(instance.arrays()).placement}


def _tier_pack(packer, tier):
    """Run one packer under a forced kernel tier.

    Without the ``[speed]`` extra a ``compiled`` request degrades to the
    array tier (so both labels time the same kernels); the ``tier``
    metric records what actually ran, and the committed-artifact test
    gates the >= 2x expectation only on artifacts whose header says
    ``compiled``.
    """

    def run(prepared):
        from .. import kernels, packing

        instance = prepared["instance"]
        arg = instance.rects if packer == "bottom_left" else instance.arrays()
        with kernels.use_tier(tier) as active:
            result = getattr(packing, packer)(arg)
        return {"height": result.extent, "tier": active}

    run.__name__ = f"{packer}[{tier}]"
    return run


def _tier_validate(tier):
    def run(prepared):
        from .. import kernels
        from ..core.placement import validate_placement

        with kernels.use_tier(tier) as active:
            validate_placement(prepared["instance"], prepared["placement"])
        return {"tier": active, "ok": True}

    run.__name__ = f"validate[{tier}]"
    return run


register_bench(BenchSpec(
    name="kernel_tiers",
    title="Kernel tiers: array vs compiled (level scans, skyline sweep, validator)",
    workload=_tier_workload,
    entries=tuple(
        _call(f"{packer}[{tier}]", _tier_pack(packer, tier))
        for packer in ("ffdh", "bottom_left")
        for tier in ("array", "compiled")
    ) + tuple(
        _call(f"validate[{tier}]", _tier_validate(tier))
        for tier in ("array", "compiled")
    ),
    # Size 2000 is shared between full and quick (like level_packers) so
    # CI can `--quick --compare` the committed artifact.  The warmup rep
    # keeps numba's one-time JIT/cache-load out of the recorded times.
    sizes=(2_000, 10_000, 100_000),
    quick_sizes=(500, 2_000),
    repetitions=2,
    warmup=1,
    source="kernels/compiled.py (the [speed] extra), geometry + core hot loops",
))


# ----------------------------------------------------------------------
# batched stacked-instance solving: one arena pass vs K dispatches
# ----------------------------------------------------------------------

def _stacked_workload(k, rng):
    """``k`` small plain instances (16 rects each) for the batch race.

    Instances are deliberately small: batching amortises the *per
    dispatch* fixed cost (spec lookup, sort, level-array allocation,
    report assembly), so the smaller each instance, the larger the
    fraction of the wall time the stacked path saves.
    """
    from ..core.instance import StripPackingInstance
    from ..workloads.random_rects import powerlaw_rects

    return [
        StripPackingInstance(powerlaw_rects(16, rng)) for _ in range(k)
    ]


def _stacked_solve(stacked):
    """solve_many with the stacked path forced on or off.

    Bounds/validation are skipped on both sides so the measurement
    isolates what batching changes: K sorts + K dispatches vs one
    stacked sort + one arena pass.
    """

    def run(instances):
        from ..engine import solve_many

        reports = solve_many(
            instances,
            "ffdh",
            validate=False,
            compute_bounds=False,
            stacked=stacked,
        )
        return {"total_height": float(sum(r.height for r in reports))}

    run.__name__ = "batched" if stacked else "independent"
    return run


register_bench(BenchSpec(
    name="batched_solve",
    title="Batched stacked-instance solve: one arena pass vs K dispatches",
    workload=_stacked_workload,
    entries=(
        _call("independent", _stacked_solve(False)),
        _call("batched", _stacked_solve(True)),
    ),
    # Size 16 is shared between full and quick so CI can
    # `--quick --compare` the committed artifact.
    sizes=(16, 64, 256),
    quick_sizes=(8, 16),
    size_name="instances",
    repetitions=5,
    source="engine/stacked.py + kernels/compiled.py (batched_level_pack)",
))


# ----------------------------------------------------------------------
# lower-bound / fractional-optimum probe (shared by E2/E4/A4 tables)
# ----------------------------------------------------------------------

register_bench(BenchSpec(
    name="fractional_lb",
    title="OPT_f probe: fractional optimum via the configuration LP",
    workload=_bursty_release,
    entries=(_call("optimal_fractional_height", _fractional_height),),
    sizes=(10, 20, 40),
    quick_sizes=(8, 10),
    source="benchmarks/bench_online_vs_offline.py, bench_online_policies.py (OPT_f)",
))
