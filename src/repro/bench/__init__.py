"""Benchmark subsystem: declarative specs, measured runs, BENCH artifacts.

The measurement pipeline the ROADMAP's "fast as the hardware allows" goal
needs to be checkable: every benchmark is a registered
:class:`~repro.bench.spec.BenchSpec` (workload generator x timed entries x
size sweep), executed by :func:`~repro.bench.runner.run_bench` with warmup
and repetitions into a schema-validated ``BENCH_<name>.json`` artifact,
and two artifacts diff through
:func:`~repro.bench.compare.compare_artifacts`, which flags regressions.

* :mod:`repro.bench.spec`     — ``BenchSpec``/``BenchEntry`` and the registry;
* :mod:`repro.bench.runner`   — ``run_bench`` (median/p95 wall-time stats);
* :mod:`repro.bench.artifact` — JSON schema, writer/reader/validator;
* :mod:`repro.bench.compare`  — artifact diffing and regression flags;
* :mod:`repro.bench.specs`    — the registered benches (one per
  ``benchmarks/bench_*.py`` script, plus the skyline kernel race).

CLI front-end: ``repro bench [NAME ...|--all] [--quick] [--compare
BASELINE.json]``; the benchmark scripts under ``benchmarks/`` are thin
pytest shims over the same registry.
"""

from .artifact import (
    SCHEMA,
    BenchArtifactError,
    artifact_path,
    artifact_table,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from .compare import ComparisonResult, ComparisonRow, compare_artifacts
from .runner import run_bench, run_bench_named
from .spec import (
    BenchEntry,
    BenchSpec,
    all_benches,
    bench_names,
    bench_table_rows,
    get_bench,
    register_bench,
)

__all__ = [
    "SCHEMA",
    "BenchArtifactError",
    "BenchEntry",
    "BenchSpec",
    "ComparisonResult",
    "ComparisonRow",
    "all_benches",
    "artifact_path",
    "artifact_table",
    "bench_names",
    "bench_table_rows",
    "compare_artifacts",
    "get_bench",
    "load_artifact",
    "register_bench",
    "run_bench",
    "run_bench_named",
    "validate_artifact",
    "write_artifact",
]
