"""Spec registrations for the thirteen shipped algorithms.

Importing this module populates the registry in :mod:`repro.engine.spec`.
Runners keep the dispatch conventions of the old closure table:

* plain packers read ``instance.rects`` and ignore extra constraints;
* precedence algorithms wrap a plain instance in an edgeless DAG;
* release algorithms hard-require a :class:`~repro.core.instance.ReleaseInstance`
  (declared via ``requires="release"`` and enforced by the engine);
* online policies (``online_*``) replay the instance through the
  event-driven simulator in :mod:`repro.sim`, so every policy of
  :mod:`repro.sim.policies` races in portfolios next to the offline
  algorithms.
"""

from __future__ import annotations

from ..core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from ..core.placement import Placement
from .spec import AlgorithmSpec, register

__all__ = ["APTAS_DEFAULT_EPS"]

#: The one true APTAS error-parameter default (CLI and library both read it).
APTAS_DEFAULT_EPS = 0.5


def _plain(packer_name: str):
    def run(instance: StripPackingInstance, **kw) -> Placement:
        from .. import packing

        packer = getattr(packing, packer_name)
        return packer(list(instance.rects), **kw).placement

    return run


def _columnar(packer_name: str):
    """Like :func:`_plain`, but hands the packer the instance's cached
    :class:`~repro.core.arrays.RectArrays` so repeated solves share one
    copy of the columns (the level packers are array-native)."""

    def run(instance: StripPackingInstance, **kw) -> Placement:
        from .. import packing

        packer = getattr(packing, packer_name)
        return packer(instance.arrays(), **kw).placement

    return run


def _as_precedence(instance: StripPackingInstance) -> PrecedenceInstance:
    if isinstance(instance, PrecedenceInstance):
        return instance
    return PrecedenceInstance.without_constraints(list(instance.rects))


def _dc(instance: StripPackingInstance, **kw) -> Placement:
    from ..precedence.dc import dc_pack

    return dc_pack(_as_precedence(instance), **kw).placement


def _shelf_next_fit(instance: StripPackingInstance, **kw) -> Placement:
    from ..precedence.shelf_nextfit import shelf_next_fit

    return shelf_next_fit(_as_precedence(instance), **kw).placement


def _list_schedule(instance: StripPackingInstance, **kw) -> Placement:
    from ..precedence.list_schedule import list_schedule

    return list_schedule(_as_precedence(instance), **kw)


def _aptas(instance: ReleaseInstance, eps: float = APTAS_DEFAULT_EPS, **kw) -> Placement:
    from ..release.aptas import aptas

    return aptas(instance, eps, **kw).placement


def _release_shelf(instance: ReleaseInstance, **kw) -> Placement:
    from ..release.heuristics import release_shelf_pack

    return release_shelf_pack(instance, **kw)


def _release_bl(instance: ReleaseInstance, **kw) -> Placement:
    from ..release.heuristics import release_bottom_left

    return release_bottom_left(instance, **kw)


def _online_policy(policy: str):
    def run(instance: ReleaseInstance, **kw) -> Placement:
        from ..sim import simulate_instance

        return simulate_instance(instance, policy, **kw).placement

    return run


register(AlgorithmSpec(
    name="nfdh",
    variants=("plain",),
    guarantee="2*AREA + hmax",
    runner=_columnar("nfdh"),
    summary="Next Fit Decreasing Height level packing",
))
register(AlgorithmSpec(
    name="ffdh",
    variants=("plain",),
    guarantee="1.7*OPT + hmax (asymptotic)",
    runner=_columnar("ffdh"),
    summary="First Fit Decreasing Height level packing",
))
register(AlgorithmSpec(
    name="bfdh",
    variants=("plain",),
    guarantee="heuristic",
    runner=_columnar("bfdh"),
    summary="Best Fit Decreasing Height level packing",
))
register(AlgorithmSpec(
    name="bottom_left",
    variants=("plain",),
    guarantee="heuristic",
    runner=_plain("bottom_left"),
    flags=frozenset({"anytime"}),
    summary="Bottom-left skyline heuristic",
))
register(AlgorithmSpec(
    name="dc",
    variants=("plain", "precedence"),
    guarantee="(2 + log2(n+1)) * OPT",
    runner=_dc,
    summary="Algorithm 1 (divide & conquer), Theorem 2.3",
))
register(AlgorithmSpec(
    name="shelf_next_fit",
    variants=("plain", "precedence"),
    guarantee="3 * OPT (uniform heights)",
    runner=_shelf_next_fit,
    summary="Algorithm F shelves, Theorem 2.6",
))
register(AlgorithmSpec(
    name="list_schedule",
    variants=("plain", "precedence"),
    guarantee="heuristic",
    runner=_list_schedule,
    flags=frozenset({"anytime"}),
    summary="Greedy earliest-slot list scheduling",
))
register(AlgorithmSpec(
    name="aptas",
    variants=("release",),
    guarantee="(1+eps)*OPT_f + (W+1)(R+1)",
    runner=_aptas,
    default_params={"eps": APTAS_DEFAULT_EPS},
    requires="release",
    summary="Algorithm 2 (asymptotic PTAS), Theorem 3.5",
))
register(AlgorithmSpec(
    name="release_shelf",
    variants=("release",),
    guarantee="heuristic",
    runner=_release_shelf,
    requires="release",
    summary="Release-aware shelf packing",
))
register(AlgorithmSpec(
    name="release_bl",
    variants=("release",),
    guarantee="heuristic",
    runner=_release_bl,
    requires="release",
    flags=frozenset({"anytime"}),
    summary="Release-aware bottom-left",
))
register(AlgorithmSpec(
    name="online_ff",
    variants=("release",),
    guarantee="online policy (no lookahead)",
    runner=_online_policy("first_fit"),
    requires="release",
    flags=frozenset({"online"}),
    summary="Online first fit over release events",
))
register(AlgorithmSpec(
    name="online_best_fit",
    variants=("release",),
    guarantee="online policy (no lookahead)",
    runner=_online_policy("best_fit_column"),
    requires="release",
    flags=frozenset({"online"}),
    summary="Online best-fit column window (least idle)",
))
register(AlgorithmSpec(
    name="online_shelf",
    variants=("release",),
    guarantee="online policy (no lookahead)",
    runner=_online_policy("shelf_online"),
    requires="release",
    flags=frozenset({"online"}),
    summary="Online next-fit shelves over release events",
))
