"""The engine's single-instance entry point: :func:`run`.

``run`` is what :func:`repro.solve` shims onto: resolve the spec (or the
variant default), merge default parameters, time the solver call, compute
the elementary lower bounds, validate, and hand back one
:class:`~repro.engine.report.SolveReport`.

Timing discipline: only the runner call sits inside the timer — bound
computation and validation happen outside it, so benchmark wall-times stay
pure (the convention every existing harness follows).
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from ..core.bounds import (
    area_bound,
    critical_path_bound,
    hmax_bound,
    release_bound,
)
from ..core.errors import InvalidPlacementError
from ..core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from ..core.placement import validate_placement
from ..obs import recorder
from ..obs.trace import current_trace
from .report import SolveReport
from .spec import default_algorithm, get_spec, variant_of

__all__ = ["run", "bound_components"]


def bound_components(instance: StripPackingInstance) -> dict[str, float]:
    """Every elementary lower bound that applies to ``instance``, by name."""
    comps = {"area": area_bound(instance), "hmax": hmax_bound(instance)}
    if isinstance(instance, PrecedenceInstance):
        comps["critical_path"] = critical_path_bound(instance)
    if isinstance(instance, ReleaseInstance):
        comps["release"] = release_bound(instance)
    return comps


def run(
    instance: StripPackingInstance,
    algorithm: str | None = None,
    *,
    params: Mapping[str, Any] | None = None,
    validate: bool = True,
    compute_bounds: bool = True,
    label: str = "",
) -> SolveReport:
    """Solve ``instance`` and return the instrumented :class:`SolveReport`.

    ``params`` overrides the spec's defaults key-by-key.  ``validate=False``
    skips the validity check (``report.valid`` stays ``None``);
    ``compute_bounds=False`` skips lower bounds (``report.ratio`` is then
    ``None``) for hot batch paths that only need heights.

    Solver errors propagate — batch/portfolio callers that want to survive
    them use :func:`repro.engine.batch.portfolio`, which catches per-spec.
    """
    name = algorithm or default_algorithm(instance)
    spec = get_spec(name)
    spec.check_instance(instance)
    merged = spec.resolve_params(params)

    # When a trace is ambient (a traced caller on this thread), every
    # engine phase becomes a span and the report carries the trace id.
    # Observation happens strictly outside the timed region and never
    # alters the solve itself.
    ctx = current_trace()
    spans = recorder() if ctx is not None else None

    t0 = time.perf_counter()
    placement = spec.runner(instance, **merged)
    wall = time.perf_counter() - t0
    if spans is not None:
        spans.record(
            ctx.trace_id,
            "engine.solve",
            time.monotonic() - wall,
            wall,
            tenant=ctx.tenant,
            algorithm=name,
        )

    t1 = time.monotonic()
    bounds = bound_components(instance) if compute_bounds else {}
    # combined_lower_bound(instance) is exactly the max of these components;
    # taking it from them avoids evaluating every bound twice per solve.
    lb = max(bounds.values()) if compute_bounds else None
    if spans is not None and compute_bounds:
        spans.record(
            ctx.trace_id, "engine.bounds", t1, time.monotonic() - t1, tenant=ctx.tenant
        )

    t2 = time.monotonic()
    valid: bool | None = None
    error: str | None = None
    if validate:
        try:
            validate_placement(instance, placement)
            valid = True
        except InvalidPlacementError as exc:
            valid = False
            error = str(exc)
        if spans is not None:
            spans.record(
                ctx.trace_id,
                "engine.validate",
                t2,
                time.monotonic() - t2,
                tenant=ctx.tenant,
            )

    return SolveReport(
        algorithm=name,
        variant=variant_of(instance),
        n=len(instance),
        params=merged,
        placement=placement,
        height=placement.height,
        wall_time=wall,
        lower_bound=lb,
        bounds=bounds,
        valid=valid,
        error=error,
        label=label,
        trace_id=ctx.trace_id if ctx is not None else "",
    )
