"""The instrumented result of one engine run.

A :class:`SolveReport` carries everything a benchmark table, a serving
layer, or a portfolio tie-break needs: the placement itself, wall-clock
time of the solver call (validation and bound computation excluded), the
elementary lower bounds, the achieved/lower-bound ratio, and the outcome
of validation.  Call sites that used to re-derive these per benchmark now
read them off the report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.placement import Placement

__all__ = ["SolveReport"]


@dataclass(frozen=True)
class SolveReport:
    """Outcome of solving one instance with one algorithm.

    ``valid`` is ``True``/``False`` after validation, ``None`` when the
    caller skipped it.  A failed run (portfolio racing catches solver
    errors) has ``placement=None``, ``height=inf`` and ``error`` set, so
    ``min(reports, key=...)`` naturally never picks it.
    """

    algorithm: str
    variant: str
    n: int
    params: Mapping[str, Any] = field(default_factory=dict)
    placement: Placement | None = None
    height: float = math.inf
    wall_time: float = 0.0
    lower_bound: float | None = None
    bounds: Mapping[str, float] = field(default_factory=dict)
    valid: bool | None = None
    error: str | None = None
    label: str = ""
    #: How the placement was obtained: ``"cold"`` (full solve), ``"warm"``
    #: (delta repair of a cached neighbor placement, see
    #: :mod:`repro.engine.warmstart`), or ``"cached"`` (verbatim reuse of a
    #: cached placement for an identical instance).
    provenance: str = "cold"
    #: The trace this solve ran under (``repro.obs``), or ``""`` when no
    #: trace was ambient.  Empty on every service-cached payload by
    #: construction — trace ids ride response headers, never cached bytes.
    trace_id: str = ""

    @property
    def ok(self) -> bool:
        """Ran to completion and (if checked) validated."""
        return self.error is None and self.valid is not False

    @property
    def ratio(self) -> float | None:
        """Achieved height over the combined lower bound (``None`` when the
        bound was not computed, is non-positive, or the run failed)."""
        if self.error is not None or self.lower_bound is None or self.lower_bound <= 0:
            return None
        return self.height / self.lower_bound

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (placement omitted — serialize it separately).

        ``trace_id`` appears only when set: untraced runs keep the exact
        historical document, and the serving layer's cached payloads stay
        byte-identical across requests (its solves run off-context).
        """
        doc = {
            "algorithm": self.algorithm,
            "variant": self.variant,
            "n": self.n,
            "params": dict(self.params),
            "height": self.height,
            "wall_time": self.wall_time,
            "lower_bound": self.lower_bound,
            "bounds": dict(self.bounds),
            "ratio": self.ratio,
            "valid": self.valid,
            "error": self.error,
            "label": self.label,
            "provenance": self.provenance,
        }
        if self.trace_id:
            doc["trace_id"] = self.trace_id
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "error" if self.error else ("unchecked" if self.valid is None else "valid" if self.valid else "INVALID")
        return (
            f"SolveReport({self.algorithm}, n={self.n}, height={self.height:.4g}, "
            f"t={self.wall_time:.4g}s, {status})"
        )
