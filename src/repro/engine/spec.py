"""Declarative algorithm specifications and the spec registry.

Every solver the library ships is described by one :class:`AlgorithmSpec`:
which problem variant(s) it handles, the guarantee the paper (or folklore)
proves for it, its default parameters, and capability flags.  The spec is
the *single source of truth* — the CLI help, the README algorithm table,
default-parameter resolution, and portfolio candidate selection all read
the registry instead of hard-coding names or defaults.

Specs are registered once at import time by :mod:`repro.engine.specs`;
user code normally goes through :func:`repro.engine.run` /
:func:`repro.solve` and never touches a runner directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.errors import InvalidInstanceError
from ..core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from ..core.placement import Placement

__all__ = [
    "VARIANTS",
    "AlgorithmSpec",
    "register",
    "get_spec",
    "all_specs",
    "specs_for_variant",
    "variant_of",
    "default_algorithm",
    "default_params",
    "spec_table_rows",
    "spec_table_markdown",
]

#: The three problem variants of the paper, in presentation order.
VARIANTS = ("plain", "precedence", "release")

Runner = Callable[..., Placement]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One solver, declaratively.

    ``variants`` lists every instance kind the algorithm can *meaningfully*
    solve (portfolio mode races all specs matching the instance's variant);
    ``requires`` names the instance type it cannot run without (``None``
    means any instance is accepted — plain packers simply ignore the extra
    constraints, and validation catches the violations afterwards).
    """

    name: str
    variants: tuple[str, ...]
    guarantee: str
    runner: Runner
    default_params: Mapping[str, float] = field(default_factory=dict)
    flags: frozenset = frozenset()
    requires: str | None = None
    summary: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an AlgorithmSpec needs a name")
        bad = set(self.variants) - set(VARIANTS)
        if bad or not self.variants:
            raise ValueError(
                f"spec {self.name!r}: variants must be a non-empty subset of "
                f"{VARIANTS}, got {self.variants!r}"
            )
        if self.requires is not None and self.requires not in VARIANTS:
            raise ValueError(f"spec {self.name!r}: unknown requires {self.requires!r}")

    def supports(self, variant: str) -> bool:
        """Whether the algorithm is a sensible candidate for ``variant``."""
        return variant in self.variants

    def accepts(self, instance: StripPackingInstance) -> bool:
        """Whether :meth:`check_instance` would pass (hard requirement only)."""
        if self.requires == "release":
            return isinstance(instance, ReleaseInstance)
        if self.requires == "precedence":
            return isinstance(instance, PrecedenceInstance)
        return True

    def check_instance(self, instance: StripPackingInstance) -> None:
        """Raise :class:`InvalidInstanceError` if the hard requirement fails."""
        if not self.accepts(instance):
            raise InvalidInstanceError(
                f"{self.name} requires a {self.requires.capitalize()}Instance"
            )

    def resolve_params(self, overrides: Mapping[str, object] | None = None) -> dict:
        """Spec defaults merged with caller overrides (overrides win)."""
        params = dict(self.default_params)
        if overrides:
            params.update(overrides)
        return params


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_SPECS: dict[str, AlgorithmSpec] = {}


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add ``spec`` to the registry (idempotent re-registration is an error)."""
    if spec.name in _SPECS:
        raise ValueError(f"algorithm {spec.name!r} registered twice")
    _SPECS[spec.name] = spec
    return spec


def get_spec(name: str) -> AlgorithmSpec:
    """Look up a spec by name, raising the dispatcher's canonical error."""
    _load_specs()
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_SPECS))
        raise InvalidInstanceError(
            f"unknown algorithm {name!r}; available: {known}"
        ) from None


def all_specs() -> list[AlgorithmSpec]:
    """Every registered spec, sorted by name."""
    _load_specs()
    return [_SPECS[name] for name in sorted(_SPECS)]


def specs_for_variant(variant: str) -> list[AlgorithmSpec]:
    """Specs that list ``variant`` among their supported variants."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    return [s for s in all_specs() if s.supports(variant)]


def variant_of(instance: StripPackingInstance) -> str:
    """The problem variant an instance belongs to."""
    if isinstance(instance, ReleaseInstance):
        return "release"
    if isinstance(instance, PrecedenceInstance):
        return "precedence"
    return "plain"


def default_algorithm(instance: StripPackingInstance) -> str:
    """Variant-aware default selection (the paper's headline algorithm each).

    * release    -> ``aptas`` (Theorem 3.5);
    * precedence -> ``shelf_next_fit`` when the DAG is non-trivial and all
      heights are equal (Theorem 2.6's absolute 3-approximation applies),
      else ``dc`` (Theorem 2.3);
    * plain      -> ``nfdh``.
    """
    variant = variant_of(instance)
    if variant == "release":
        return "aptas"
    if variant == "precedence":
        if instance.dag.n_edges and instance.uniform_height():
            return "shelf_next_fit"
        return "dc"
    return "nfdh"


def default_params(name: str) -> dict:
    """A copy of the spec's default parameters (the CLI reads ``eps`` here)."""
    return dict(get_spec(name).default_params)


def spec_table_rows() -> list[tuple[str, str, str, str, str]]:
    """(name, variants, guarantee, flags, defaults) rows — the one source
    for ``repro info`` and the README algorithm table."""
    rows = []
    for s in all_specs():
        rows.append(
            (
                s.name,
                "+".join(v for v in VARIANTS if v in s.variants),
                s.guarantee,
                ",".join(sorted(s.flags)) or "-",
                ",".join(f"{k}={v:g}" for k, v in sorted(s.default_params.items())) or "-",
            )
        )
    return rows


def spec_table_markdown() -> str:
    """The algorithm table as GitHub markdown — the generated block in
    README.md and docs/ALGORITHMS.md (``tests/test_docs_sync.py`` fails
    when either file drifts from this rendering)."""
    lines = [
        "| algorithm | variants | guarantee | flags | defaults |",
        "|---|---|---|---|---|",
    ]
    for name, variants, guarantee, flags, defaults in spec_table_rows():
        flags_md = flags.replace("-", "—") if flags == "-" else flags
        defaults_md = defaults.replace("-", "—") if defaults == "-" else defaults
        lines.append(
            f"| `{name}` | {variants} | `{guarantee}` | {flags_md} | {defaults_md} |"
        )
    return "\n".join(lines)


def _load_specs() -> None:
    # Specs live in repro.engine.specs; importing it populates the registry.
    # Deferred to avoid a cycle (specs import algorithm modules which import
    # core, and core.registry shims onto this module).  Always import — the
    # import system's own lock makes this a safe barrier even when worker
    # threads race here while another thread is mid-registration; guarding
    # on `_SPECS` being non-empty would let them see a partial registry.
    from . import specs  # noqa: F401
