"""Batch and portfolio execution on top of the engine runner.

Two serving-layer shapes:

* :func:`solve_many` — a stream of instances through one algorithm (or the
  per-variant default), optionally fanned out over an executor.  Results
  come back in input order regardless of the backend, and every solver in
  the library is deterministic, so serial and parallel runs are
  bit-identical.
* :func:`portfolio` — one instance raced across a set of specs; the
  winner is the minimum-height *valid* placement (candidate order breaks
  ties, so the winner is deterministic regardless of the backend).
  Per-spec failures are captured as error reports instead of aborting the
  race, so one brittle candidate never loses the answer.

Both fan out through the pluggable :class:`Executor` seam:

* ``serial`` — plain in-process mapping (the default);
* ``thread`` — a thread pool; cheap, shares instances read-only, works
  with non-picklable user ids, and buys overlap for the LP-heavy APTAS
  paths;
* ``process`` — a process pool; real CPU parallelism for the pure-Python
  solver loops.  Requires picklable instances/params (the work unit
  functions are module-level for exactly this reason) and is the seam a
  future sharding layer plugs into — a shard is just an executor whose
  workers live elsewhere.

``jobs`` keeps its historical meaning: with no explicit backend,
``jobs=None``/``jobs<=1`` runs serially and ``jobs=N>1`` uses a thread
pool of ``N`` workers, exactly as before the seam existed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.errors import InvalidInstanceError, ReproError
from ..core.instance import StripPackingInstance
from .report import SolveReport
from .runner import run
from .spec import get_spec, specs_for_variant, variant_of

__all__ = [
    "BACKENDS",
    "Executor",
    "resolve_executor",
    "solve_many",
    "portfolio",
    "PortfolioResult",
]

#: The pluggable execution backends.
BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class Executor:
    """An ordered-``map`` execution strategy for embarrassingly parallel
    engine work (batch items, portfolio entrants).

    ``jobs`` is the worker count for the pooled backends (``None`` lets
    the pool pick its default); the serial backend ignores it.

    One-shot use needs no ceremony: :meth:`map` spins an ephemeral pool
    per call.  Long-lived callers (the service micro-batcher draining
    thousands of small batches) call :meth:`open` once to keep a
    persistent pool — pool startup, especially process fork/spawn, would
    otherwise dominate every micro-batch — and :meth:`close` on shutdown.
    """

    backend: str = "serial"
    jobs: int | None = None
    # Mutable pool handle on a frozen value object: the (backend, jobs)
    # identity stays immutable/hashable/comparable while the pool rides
    # along outside equality, like a cache.
    _pool: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise InvalidInstanceError(
                f"unknown backend {self.backend!r}; available: {', '.join(BACKENDS)}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise InvalidInstanceError(f"jobs must be >= 1, got {self.jobs}")

    def _make_pool(self):
        if self.backend == "thread":
            return ThreadPoolExecutor(max_workers=self.jobs)
        return ProcessPoolExecutor(max_workers=self.jobs)

    def open(self) -> "Executor":
        """Start a persistent pool reused by every :meth:`map` (idempotent;
        a no-op for the serial backend).  Returns self for chaining."""
        if self.backend != "serial" and self._pool is None:
            object.__setattr__(self, "_pool", self._make_pool())
        return self

    def close(self) -> None:
        """Shut the persistent pool down (idempotent)."""
        pool = self._pool
        if pool is not None:
            object.__setattr__(self, "_pool", None)
            pool.shutdown(wait=False, cancel_futures=True)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item, results in input order.

        The process backend pickles ``fn`` and each item, so ``fn`` must
        be a module-level callable and items must be picklable.  A pooled
        backend always runs through its pool — even for one item or one
        worker — so an explicit ``backend="process"`` request really
        exercises the pickling path instead of silently degrading to
        in-process execution.  Runs on the persistent pool when
        :meth:`open` was called, on an ephemeral one otherwise.
        """
        items = list(items)
        if not items or self.backend == "serial":
            return [fn(it) for it in items]
        if self._pool is not None:
            return list(self._pool.map(fn, items))
        with self._make_pool() as pool:
            return list(pool.map(fn, items))


def resolve_executor(backend: str | None = None, jobs: int | None = None) -> Executor:
    """Build the executor for a ``(backend, jobs)`` pair.

    ``backend=None`` keeps the historical ``jobs`` semantics: serial for
    ``jobs`` of ``None``/``<=1`` (including the legacy ``0`` meaning
    "serial"), a ``jobs``-wide thread pool otherwise.  With an explicit
    backend, ``jobs`` must be a positive worker count if given.
    """
    if backend is None:
        if jobs is None or jobs <= 1:
            return Executor("serial")
        return Executor("thread", jobs)
    return Executor(backend, jobs)


# ----------------------------------------------------------------------
# module-level work units (picklable for the process backend)
# ----------------------------------------------------------------------

def _solve_one(task: tuple) -> SolveReport:
    instance, algorithm, params, validate, compute_bounds, label, strict = task
    try:
        return run(
            instance,
            algorithm,
            params=params,
            validate=validate,
            compute_bounds=compute_bounds,
            label=label,
        )
    except ReproError as exc:
        if strict:
            raise
        return SolveReport(
            algorithm=algorithm or "default",
            variant=variant_of(instance),
            n=len(instance),
            error=f"{type(exc).__name__}: {exc}",
            label=label,
        )


def _race_one(task: tuple) -> SolveReport:
    instance, name, overrides, compute_bounds = task
    try:
        return run(
            instance,
            name,
            params=overrides,
            validate=True,
            compute_bounds=compute_bounds,
            label=name,
        )
    except ReproError as exc:
        spec = get_spec(name)
        return SolveReport(
            algorithm=name,
            variant=variant_of(instance),
            n=len(instance),
            params=spec.resolve_params(overrides),
            error=f"{type(exc).__name__}: {exc}",
            label=name,
        )


def solve_many(
    instances: Iterable[StripPackingInstance],
    algorithm: str | None = None,
    *,
    params: Mapping[str, Any] | None = None,
    jobs: int | None = None,
    backend: str | None = None,
    validate: bool = True,
    compute_bounds: bool = True,
    labels: Sequence[str] | None = None,
    strict: bool = True,
    executor: Executor | None = None,
    stacked: bool | None = None,
) -> list[SolveReport]:
    """Solve every instance, returning reports in input order.

    ``backend``/``jobs`` select the :class:`Executor` (see
    :func:`resolve_executor`); passing a pre-built ``executor`` (e.g. one
    held open by the service micro-batcher) overrides both and reuses its
    persistent pool.  ``labels`` (parallel to ``instances``)
    tags each report, e.g. with the source file name.  With
    ``strict=False`` a per-instance
    :class:`~repro.core.errors.ReproError` (e.g. forcing a release-only
    algorithm onto a plain instance) becomes an error report instead of
    aborting the whole batch — the mode the CLI serves with.

    ``stacked`` controls the batched stacked-instance fast path
    (:mod:`repro.engine.stacked`): ``None`` (default) auto-engages it
    when eligible — serial executor, explicit level-packer algorithm, no
    parameter overrides, plain instances — ``False`` opts out, ``True``
    requires it (raising :class:`~repro.core.errors.InvalidInstanceError`
    when the batch is not stackable).  Reports from the stacked path are
    bit-identical to the per-instance path except for ``wall_time``.
    """
    items = list(instances)
    if labels is not None and len(labels) != len(items):
        raise ValueError(f"{len(labels)} labels for {len(items)} instances")
    if executor is None:
        executor = resolve_executor(backend, jobs)
    merged = None if params is None else dict(params)
    if stacked is not False and items and executor.backend == "serial":
        from .stacked import batchable, solve_batched

        if batchable(items, algorithm, merged):
            return solve_batched(
                items,
                algorithm,
                validate=validate,
                compute_bounds=compute_bounds,
                labels=labels,
            )
        if stacked:
            raise InvalidInstanceError(
                "stacked=True but the batch is not stackable (needs a serial "
                "executor, algorithm in nfdh/ffdh/bfdh with no parameter "
                "overrides, plain instances, and a non-reference kernel tier)"
            )
    elif stacked:
        raise InvalidInstanceError(
            "stacked=True requires the serial executor and a non-empty batch"
        )
    tasks = [
        (
            inst,
            algorithm,
            merged,
            validate,
            compute_bounds,
            labels[i] if labels is not None else str(i),
            strict,
        )
        for i, inst in enumerate(items)
    ]
    return executor.map(_solve_one, tasks)


@dataclass(frozen=True)
class PortfolioResult:
    """All race entrants plus the winner (``None`` when nothing validated)."""

    reports: tuple[SolveReport, ...]
    best: SolveReport | None

    @property
    def heights(self) -> dict[str, float]:
        """algorithm -> achieved height (failed entrants excluded)."""
        return {r.algorithm: r.height for r in self.reports if r.error is None}


def portfolio(
    instance: StripPackingInstance,
    algorithms: Sequence[str] | None = None,
    *,
    params: Mapping[str, Mapping[str, Any]] | None = None,
    jobs: int | None = None,
    backend: str | None = None,
    compute_bounds: bool = True,
) -> PortfolioResult:
    """Race a set of algorithms on one instance; best valid placement wins.

    ``algorithms`` defaults to every spec that supports the instance's
    variant and accepts the instance.  ``params`` maps algorithm name to
    that entrant's parameter overrides.  Validation is always on — an
    invalid placement must never win a race.
    """
    if algorithms is None:
        variant = variant_of(instance)
        names = [s.name for s in specs_for_variant(variant) if s.accepts(instance)]
    else:
        names = [get_spec(a).name for a in algorithms]
    if not names:
        raise InvalidInstanceError("portfolio has no candidate algorithms")

    executor = resolve_executor(backend, jobs)
    tasks = [
        (instance, name, (params or {}).get(name), compute_bounds) for name in names
    ]
    batch_names: list[str] = []
    if executor.backend == "serial":
        from .stacked import portfolio_batch_names

        batch_names = portfolio_batch_names(instance, names, params)
    if batch_names:
        # Level-packer entrants share one stacked arena pass; the rest
        # race individually.  Reports keep the entrant order.
        from .stacked import solve_batched

        by_name = dict(
            zip(
                batch_names,
                solve_batched(
                    [instance] * len(batch_names),
                    batch_names,
                    validate=True,
                    compute_bounds=compute_bounds,
                    labels=batch_names,
                ),
            )
        )
        rest = executor.map(
            _race_one, [t for t in tasks if t[1] not in by_name]
        )
        it = iter(rest)
        reports = [by_name[n] if n in by_name else next(it) for n in names]
    else:
        reports = executor.map(_race_one, tasks)

    valid = [(i, r) for i, r in enumerate(reports) if r.valid]
    best = min(valid, key=lambda ir: (ir[1].height, ir[0]))[1] if valid else None
    return PortfolioResult(reports=tuple(reports), best=best)
