"""Batch and portfolio execution on top of the engine runner.

Two serving-layer shapes:

* :func:`solve_many` — a stream of instances through one algorithm (or the
  per-variant default), optionally fanned out over a thread pool.  Results
  come back in input order regardless of ``jobs``, and every solver in the
  library is deterministic, so serial and parallel runs are bit-identical.
* :func:`portfolio` — one instance raced across a set of specs; the
  winner is the minimum-height *valid* placement (candidate order breaks
  ties, so the winner is deterministic regardless of ``jobs``).
  Per-spec failures are captured as error reports instead of aborting the
  race, so one brittle candidate never loses the answer.

Threads (not processes) on purpose: the solvers are pure Python with small
numpy kernels, instances are shared read-only, and the pool must work on
non-picklable user ids.  The ``jobs`` knob mainly buys overlap for the
LP-heavy APTAS paths and keeps the API shape ready for a process/async
backend later.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..core.errors import InvalidInstanceError, ReproError
from ..core.instance import StripPackingInstance
from .report import SolveReport
from .runner import run
from .spec import get_spec, specs_for_variant, variant_of

__all__ = ["solve_many", "portfolio", "PortfolioResult"]


def solve_many(
    instances: Iterable[StripPackingInstance],
    algorithm: str | None = None,
    *,
    params: Mapping[str, Any] | None = None,
    jobs: int | None = None,
    validate: bool = True,
    compute_bounds: bool = True,
    labels: Sequence[str] | None = None,
    strict: bool = True,
) -> list[SolveReport]:
    """Solve every instance, returning reports in input order.

    ``jobs=None`` or ``jobs<=1`` runs serially; ``jobs=N`` uses a thread
    pool of ``N`` workers.  ``labels`` (parallel to ``instances``) tags each
    report, e.g. with the source file name.  With ``strict=False`` a
    per-instance :class:`~repro.core.errors.ReproError` (e.g. forcing a
    release-only algorithm onto a plain instance) becomes an error report
    instead of aborting the whole batch — the mode the CLI serves with.
    """
    items = list(instances)
    if labels is not None and len(labels) != len(items):
        raise ValueError(f"{len(labels)} labels for {len(items)} instances")

    def one(idx: int) -> SolveReport:
        label = labels[idx] if labels is not None else str(idx)
        try:
            return run(
                items[idx],
                algorithm,
                params=params,
                validate=validate,
                compute_bounds=compute_bounds,
                label=label,
            )
        except ReproError as exc:
            if strict:
                raise
            return SolveReport(
                algorithm=algorithm or "default",
                variant=variant_of(items[idx]),
                n=len(items[idx]),
                error=f"{type(exc).__name__}: {exc}",
                label=label,
            )

    if jobs is None or jobs <= 1:
        return [one(i) for i in range(len(items))]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(one, range(len(items))))


@dataclass(frozen=True)
class PortfolioResult:
    """All race entrants plus the winner (``None`` when nothing validated)."""

    reports: tuple[SolveReport, ...]
    best: SolveReport | None

    @property
    def heights(self) -> dict[str, float]:
        """algorithm -> achieved height (failed entrants excluded)."""
        return {r.algorithm: r.height for r in self.reports if r.error is None}


def portfolio(
    instance: StripPackingInstance,
    algorithms: Sequence[str] | None = None,
    *,
    params: Mapping[str, Mapping[str, Any]] | None = None,
    jobs: int | None = None,
    compute_bounds: bool = True,
) -> PortfolioResult:
    """Race a set of algorithms on one instance; best valid placement wins.

    ``algorithms`` defaults to every spec that supports the instance's
    variant and accepts the instance.  ``params`` maps algorithm name to
    that entrant's parameter overrides.  Validation is always on — an
    invalid placement must never win a race.
    """
    if algorithms is None:
        variant = variant_of(instance)
        names = [s.name for s in specs_for_variant(variant) if s.accepts(instance)]
    else:
        names = [get_spec(a).name for a in algorithms]
    if not names:
        raise InvalidInstanceError("portfolio has no candidate algorithms")

    def entrant(name: str) -> SolveReport:
        overrides = (params or {}).get(name)
        try:
            return run(
                instance,
                name,
                params=overrides,
                validate=True,
                compute_bounds=compute_bounds,
                label=name,
            )
        except ReproError as exc:
            spec = get_spec(name)
            return SolveReport(
                algorithm=name,
                variant=variant_of(instance),
                n=len(instance),
                params=spec.resolve_params(overrides),
                error=f"{type(exc).__name__}: {exc}",
                label=name,
            )

    if jobs is None or jobs <= 1:
        reports = [entrant(n) for n in names]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            reports = list(pool.map(entrant, names))

    valid = [(i, r) for i, r in enumerate(reports) if r.valid]
    best = min(valid, key=lambda ir: (ir[1].height, ir[0]))[1] if valid else None
    return PortfolioResult(reports=tuple(reports), best=best)
