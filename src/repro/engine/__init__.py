"""Unified solver engine: declarative specs, instrumented runs, batching.

The engine is the architectural seam every scaling feature plugs into:

* :mod:`repro.engine.spec`   — :class:`AlgorithmSpec` and the registry
  (the single source of algorithm metadata and defaults);
* :mod:`repro.engine.runner` — :func:`run`, producing a
  :class:`~repro.engine.report.SolveReport` per solve;
* :mod:`repro.engine.batch`  — :func:`solve_many` streams and
  :func:`portfolio` races.

:func:`repro.solve` remains the one-call convenience API; it is now a thin
shim over :func:`run` that returns just the placement.
"""

from .batch import (
    BACKENDS,
    Executor,
    PortfolioResult,
    portfolio,
    resolve_executor,
    solve_many,
)
from .report import SolveReport
from .runner import bound_components, run
from .warmstart import DEFAULT_DELTA, repair_placement, try_warm, warm_run
from .spec import (
    VARIANTS,
    AlgorithmSpec,
    all_specs,
    default_algorithm,
    default_params,
    get_spec,
    register,
    spec_table_markdown,
    spec_table_rows,
    specs_for_variant,
    variant_of,
)

__all__ = [
    "AlgorithmSpec",
    "SolveReport",
    "PortfolioResult",
    "BACKENDS",
    "Executor",
    "resolve_executor",
    "VARIANTS",
    "run",
    "warm_run",
    "try_warm",
    "repair_placement",
    "DEFAULT_DELTA",
    "solve_many",
    "portfolio",
    "bound_components",
    "register",
    "get_spec",
    "all_specs",
    "specs_for_variant",
    "variant_of",
    "default_algorithm",
    "default_params",
    "spec_table_rows",
    "spec_table_markdown",
]
