"""Batched stacked-instance solving for the level packers.

:func:`repro.engine.batch.solve_many` dispatches K instances as K
independent ``run()`` calls — K sorts, K kernel entries, K rounds of
Python dispatch.  For the level packers (NFDH/FFDH/BFDH) the per-instance
work is a sort plus a linear scan, so at high K the dispatch overhead
rivals the algorithmic work.  This module collapses the batch: stack
every instance's columns into one :class:`~repro.core.arrays.StackedRectArrays`
arena, compute ONE stacked decreasing-height sort
(:func:`~repro.core.arrays.stacked_decreasing_order` — stability makes
each segment equal the per-instance order), and pack all K segments in a
single pass — the ``@njit`` :func:`~repro.kernels.compiled.batched_level_pack`
kernel when the compiled tier is active, a Python loop over one reused
:class:`~repro.geometry.levels.LevelArray` otherwise.

Report discipline: the output of :func:`solve_batched` is
**bit-identical** to K independent :func:`repro.engine.runner.run` calls
— same placements (``tests/test_batched_solve.py`` pins this
placement-for-placement), same bounds (computed per instance), same
validation verdicts.  Only ``wall_time`` differs by nature: it is the
batch pack time divided evenly across the K reports (timings are
measurements, not decisions).

Eligibility (:func:`batchable`): an explicit algorithm in
:data:`BATCHABLE`, no parameter overrides, every instance of the plain
variant, and a non-``reference`` kernel tier (the reference tier exists
to run the executable spec, which the arena deliberately bypasses).
``solve_many(..., stacked=None)`` auto-engages this path on the serial
executor; the service micro-batcher inherits it through the same call.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from .. import kernels as _kernels
from ..core import tol
from ..core.arrays import (
    PlacementBuilder,
    StackedRectArrays,
    stacked_decreasing_order,
)
from ..core.errors import InvalidInstanceError, InvalidPlacementError
from ..core.instance import StripPackingInstance
from ..core.placement import validate_placement
from ..geometry.levels import LevelArray
from .report import SolveReport
from .runner import bound_components
from .spec import get_spec, variant_of

__all__ = ["BATCHABLE", "batchable", "portfolio_batch_names", "solve_batched"]

#: Algorithms the stacked arena can pack (level packers; mode order
#: matches ``repro.kernels.compiled.MODE_NFDH/FFDH/BFDH``).
BATCHABLE = ("nfdh", "ffdh", "bfdh")

_MODE_OF = {"nfdh": 0, "ffdh": 1, "bfdh": 2}


def batchable(
    instances: Sequence[StripPackingInstance],
    algorithm: str | None,
    params,
) -> bool:
    """Whether this exact (instances, algorithm, params) batch may take
    the stacked path without changing any report field but ``wall_time``."""
    if algorithm not in _MODE_OF or params:
        return False
    if _kernels.use_reference():
        return False
    spec = get_spec(algorithm)
    return all(
        variant_of(inst) == "plain" and spec.accepts(inst) for inst in instances
    )


def portfolio_batch_names(
    instance: StripPackingInstance, names: Sequence[str], params
) -> list[str]:
    """The subset of portfolio entrants solvable in one stacked call
    (empty unless at least two qualify — one entrant gains nothing)."""
    if _kernels.use_reference() or variant_of(instance) != "plain":
        return []
    picked = [
        n
        for n in names
        if n in _MODE_OF
        and not (params or {}).get(n)
        and get_spec(n).accepts(instance)
    ]
    return picked if len(picked) >= 2 else []


def _pack_segment(
    mode: int,
    widths: np.ndarray,
    heights: np.ndarray,
    order: np.ndarray,
    lo: int,
    hi: int,
    levels: LevelArray,
    builder: PlacementBuilder,
) -> None:
    """Array-tier segment pack: the exact ``nfdh``/``ffdh``/``bfdh`` loop
    over the shared (reset) arena, rows addressed through the stacked
    ``order`` slice instead of a per-instance sort."""
    levels.reset()
    if hi <= lo:
        return
    if mode == 0:  # nfdh: one open level, closed when the next rect misses
        open_idx = levels.open_level(float(heights[order[lo]]))
        for t in range(lo, hi):
            row = int(order[t])
            w = float(widths[row])
            if not levels.fits_on(open_idx, w):
                open_idx = levels.open_level(float(heights[row]))
            builder.put(row - lo, *levels.place(open_idx, w))
        return
    fit = levels.first_fit if mode == 1 else levels.best_fit
    for t in range(lo, hi):
        row = int(order[t])
        w = float(widths[row])
        idx = fit(w)
        if idx < 0:
            idx = levels.open_level(float(heights[row]))
        builder.put(row - lo, *levels.place(idx, w))


def solve_batched(
    instances: Sequence[StripPackingInstance],
    algorithms: str | Sequence[str],
    *,
    validate: bool = True,
    compute_bounds: bool = True,
    labels: Sequence[str] | None = None,
) -> list[SolveReport]:
    """Solve the whole batch through one stacked arena pass.

    ``algorithms`` is one :data:`BATCHABLE` name for the whole batch or a
    per-instance sequence (the portfolio path passes one name per
    entrant).  Callers gate on :func:`batchable`/:func:`portfolio_batch_names`
    first; this function re-checks and raises
    :class:`~repro.core.errors.InvalidInstanceError` on ineligible input
    rather than silently solving something else.
    """
    items = list(instances)
    K = len(items)
    names = [algorithms] * K if isinstance(algorithms, str) else list(algorithms)
    if len(names) != K:
        raise InvalidInstanceError(f"{len(names)} algorithms for {K} instances")
    if labels is not None and len(labels) != K:
        raise InvalidInstanceError(f"{len(labels)} labels for {K} instances")
    for name in names:
        if name not in _MODE_OF:
            raise InvalidInstanceError(
                f"algorithm {name!r} is not batchable; batchable: "
                + ", ".join(BATCHABLE)
            )
    specs = [get_spec(name) for name in names]
    for inst, spec in zip(items, specs):
        spec.check_instance(inst)
    merged = [spec.resolve_params(None) for spec in specs]

    t0 = time.perf_counter()
    stacked = StackedRectArrays([inst.arrays() for inst in items])
    order = stacked_decreasing_order(stacked)
    offsets = stacked.offsets
    placements = []
    if _kernels.use_compiled():
        from ..kernels.compiled import batched_level_pack

        modes = np.array([_MODE_OF[name] for name in names], dtype=np.int64)
        out_x, out_y, _ = batched_level_pack(
            stacked.width, stacked.height, order, offsets, modes, tol.ATOL
        )
        for k in range(K):
            lo, hi = stacked.segment(k)
            builder = PlacementBuilder(stacked.parts[k])
            for t in range(lo, hi):
                builder.put(int(order[t]) - lo, float(out_x[t]), float(out_y[t]))
            placements.append(builder.build())
    else:
        levels = LevelArray()
        for k in range(K):
            lo, hi = stacked.segment(k)
            builder = PlacementBuilder(stacked.parts[k])
            _pack_segment(
                _MODE_OF[names[k]],
                stacked.width,
                stacked.height,
                order,
                lo,
                hi,
                levels,
                builder,
            )
            placements.append(builder.build())
    wall = (time.perf_counter() - t0) / max(K, 1)

    reports = []
    for k, (inst, spec, placement) in enumerate(zip(items, specs, placements)):
        bounds = bound_components(inst) if compute_bounds else {}
        lb = max(bounds.values()) if compute_bounds else None
        valid: bool | None = None
        error: str | None = None
        if validate:
            try:
                validate_placement(inst, placement)
                valid = True
            except InvalidPlacementError as exc:
                valid = False
                error = str(exc)
        reports.append(
            SolveReport(
                algorithm=spec.name,
                variant=variant_of(inst),
                n=len(inst),
                params=merged[k],
                placement=placement,
                height=placement.height,
                wall_time=wall,
                lower_bound=lb,
                bounds=bounds,
                valid=valid,
                error=error,
                label=labels[k] if labels is not None else str(k),
            )
        )
    return reports
