"""Warm-start delta solving: repair a cached neighbor placement.

The paper's setting is online — instances arrive as small edits of their
predecessors — yet a content-addressed cache only helps when a request is
*byte-identical* to a cached one.  This module covers the gap: given a
cached ``(instance, placement)`` neighbor and a new instance that differs
from it by a rect-level delta (see
:func:`repro.core.serialize.instance_delta`), :func:`repair_placement`
keeps the surviving rectangles exactly where the neighbor placed them,
evicts the rects the delta touches, and re-packs just those with the
existing :func:`repro.packing.ffdh.ffdh` level kernel above the surviving
skyline.

:func:`warm_run` wraps the repair in the engine's reporting discipline and
**guarantees the δ bound unconditionally**: a repair is accepted only when
its height is ≤ ``(1 + delta) ×`` the instance's combined *lower bound*.
Since any cold solve is ≥ that lower bound, an accepted warm placement is
≤ ``(1 + delta) ×`` the cold height without ever running the cold solve —
otherwise the repair is discarded and :func:`repro.engine.runner.run`
answers cold.  Every accepted repair is re-validated against
:func:`repro.core.placement.validate_placement`, so a warm answer is never
less checked than a cold one.

Variant rules (anything outside them falls back to a cold solve):

* **plain** — always repairable;
* **release** — ``K`` must match; delta rects are packed at a base no
  lower than their largest release time, survivors keep positions that
  already satisfied theirs;
* **precedence** — survivor↔survivor edges must be a subset of the
  neighbor's edges (the neighbor placement already satisfies them), and
  edges touching delta rects must point *from* a survivor *to* a delta
  rect (delta rects are packed above every survivor, so such edges hold
  by construction).  Any other edge shape would need a constraint-aware
  re-pack, which is exactly a cold solve.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from ..core.errors import InvalidPlacementError
from ..core.instance import PrecedenceInstance, ReleaseInstance, StripPackingInstance
from ..core.placement import Placement, validate_placement
from ..core.serialize import instance_delta
from ..packing.ffdh import ffdh
from .report import SolveReport
from .runner import bound_components, run
from .spec import default_algorithm, get_spec, variant_of

__all__ = ["DEFAULT_DELTA", "repair_placement", "try_warm", "warm_run"]

#: Default repair-quality gate: accept a warm repair only while its height
#: stays within ``(1 + DEFAULT_DELTA)`` of the instance's combined lower
#: bound.  0.75 admits typical shelf-quality placements (ratio ~1.1–1.6 on
#: the benchmark workloads) while rejecting degenerate repairs that stack
#: a large delta on top of a tall survivor skyline.
DEFAULT_DELTA = 0.75


def _edges_repairable(
    old: StripPackingInstance,
    new: StripPackingInstance,
    survivors: set,
    moved: set,
) -> bool:
    """Whether the new DAG's edges are satisfied by keep-survivors +
    pack-delta-above (see module docstring for the admissible shapes)."""
    if not isinstance(new, PrecedenceInstance):
        return True
    if not isinstance(old, PrecedenceInstance):
        return False
    old_edges = set(old.dag.edges())
    for u, v in new.dag.edges():
        if u in survivors and v in survivors:
            if (u, v) not in old_edges:
                return False
        elif not (u in survivors and v in moved):
            return False
    return True


def repair_placement(
    new_instance: StripPackingInstance,
    neighbor_instance: StripPackingInstance,
    neighbor_placement: Placement,
    *,
    validate: bool = True,
) -> Placement | None:
    """Repair ``neighbor_placement`` into a placement of ``new_instance``.

    Returns ``None`` when the pair is not repairable (incompatible
    variants, inadmissible precedence edges, an incomplete neighbor
    placement, or a repair that fails validation).  The returned placement
    references ``new_instance``'s own rect objects, so it composes with
    every downstream consumer exactly like a solver's output.
    """
    delta = instance_delta(neighbor_instance, new_instance)
    if not delta["compatible"]:
        return None
    survivors = set(delta["unchanged"])
    moved = set(delta["added"]) | set(delta["resized"])
    if not _edges_repairable(neighbor_instance, new_instance, survivors, moved):
        return None

    new_by_id = new_instance.by_id()
    placement = Placement()
    base = 0.0
    for rid in delta["unchanged"]:
        if rid not in neighbor_placement:
            return None  # incomplete neighbor: nothing trustworthy to keep
        anchor = neighbor_placement[rid]
        rect = new_by_id[rid]
        placement.place(rect, anchor.x, anchor.y)
        base = max(base, anchor.y + rect.height)

    delta_rects = [new_by_id[rid] for rid in sorted(moved, key=str)]
    if delta_rects:
        base = max(base, max(r.release for r in delta_rects))
        packed = ffdh(delta_rects, y=base)
        placement.merge(packed.placement)

    if validate:
        try:
            validate_placement(new_instance, placement)
        except InvalidPlacementError:
            return None
    return placement


def try_warm(
    instance: StripPackingInstance,
    algorithm: str | None = None,
    *,
    params: Mapping[str, Any] | None = None,
    neighbor: tuple[StripPackingInstance, Placement],
    delta: float = DEFAULT_DELTA,
    label: str = "",
) -> SolveReport | None:
    """Attempt a warm-start repair from ``neighbor``; never solves cold.

    Returns ``None`` when the repair is refused (incompatible pair,
    failed validation) or exceeds the δ gate — the caller decides how to
    solve cold (directly, or through a serving-layer batcher).  On
    success the report's ``provenance`` is ``"warm"``, or ``"cached"``
    when the delta is empty (the neighbor *is* the instance — verbatim
    placement reuse).
    """
    name = algorithm or default_algorithm(instance)
    spec = get_spec(name)
    spec.check_instance(instance)
    merged = spec.resolve_params(params)

    neighbor_instance, neighbor_placement = neighbor
    t0 = time.perf_counter()
    placement = repair_placement(instance, neighbor_instance, neighbor_placement)
    wall = time.perf_counter() - t0
    if placement is None:
        return None
    bounds = bound_components(instance)
    lb = max(bounds.values())
    if placement.height > (1.0 + delta) * lb:
        return None
    moved = instance_delta(neighbor_instance, instance)
    exact = not (moved["added"] or moved["removed"] or moved["resized"])
    return SolveReport(
        algorithm=name,
        variant=variant_of(instance),
        n=len(instance),
        params=merged,
        placement=placement,
        height=placement.height,
        wall_time=wall,
        lower_bound=lb,
        bounds=bounds,
        valid=True,
        label=label,
        provenance="cached" if exact else "warm",
    )


def warm_run(
    instance: StripPackingInstance,
    algorithm: str | None = None,
    *,
    params: Mapping[str, Any] | None = None,
    neighbor: tuple[StripPackingInstance, Placement] | None = None,
    delta: float = DEFAULT_DELTA,
    label: str = "",
) -> SolveReport:
    """Solve ``instance``, warm-starting from ``neighbor`` when possible.

    ``neighbor`` is a ``(cached_instance, cached_placement)`` pair (for
    example resolved through
    :class:`repro.service.cache.NeighborIndex`).  The report's
    ``provenance`` says what happened: ``"warm"`` (repair accepted by the
    δ gate), ``"cached"`` (the neighbor *is* the instance — verbatim
    reuse), or ``"cold"`` (no neighbor, repair refused, or repair too
    tall — a full :func:`repro.engine.runner.run` answered).
    """
    if neighbor is not None:
        report = try_warm(
            instance,
            algorithm,
            params=params,
            neighbor=neighbor,
            delta=delta,
            label=label,
        )
        if report is not None:
            return report
    return run(instance, algorithm, params=params, label=label)
