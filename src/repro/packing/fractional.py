"""Fractional strip packing without release times (the Kenyon-Rémila
special case the Section 3 machinery builds on).

With a single release class (everything available at time 0) the
configuration LP of Lemma 3.3 degenerates to the classical fractional
strip packing LP of [16]: minimise total configuration height subject to
covering each width's demand.  This module exposes that special case
directly — useful as a certified lower bound for the unconstrained
packers (E11) and as the ``R = 0`` sanity anchor for the APTAS tests —
plus a plain-instance APTAS wrapper (grouping + LP + integralisation with
no release phases).
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import InvalidInstanceError
from ..core.instance import ReleaseInstance, StripPackingInstance
from ..core.placement import Placement
from ..core.rectangle import Rect

__all__ = ["fractional_strip_height", "aptas_plain"]


def _as_release_instance(rects: Sequence[Rect], K: int) -> ReleaseInstance:
    if any(r.release != 0.0 for r in rects):
        raise InvalidInstanceError(
            "fractional_strip_height is the no-release special case; "
            "use repro.release.lp.solve_fractional for release instances"
        )
    return ReleaseInstance([r.replace(release=0.0) for r in rects], K)


def fractional_strip_height(
    rects: Sequence[Rect], K: int, *, max_configs: int = 500_000
) -> float:
    """``OPT_f`` of a plain strip packing instance with widths >= 1/K.

    A certified lower bound on the integral optimum (and on every packer's
    output): the Kenyon-Rémila fractional LP over the instance's distinct
    widths.
    """
    from ..release.lp import solve_fractional

    inst = _as_release_instance(rects, K)
    return solve_fractional(inst, max_configs=max_configs).height


def aptas_plain(
    instance: StripPackingInstance,
    K: int,
    eps: float,
    *,
    max_configs: int = 500_000,
) -> Placement:
    """Algorithm 2 specialised to no release times.

    Accepts any plain instance whose widths are at least ``1/K`` and
    heights at most 1; runs grouping + configuration LP + integralisation
    with a single phase (the Lemma 3.1 step is a no-op at ``r_max = 0``).
    """
    from ..release.aptas import aptas

    inst = _as_release_instance(list(instance.rects), K)
    result = aptas(inst, eps, max_configs=max_configs)
    by_id = instance.by_id()
    placement = Placement()
    for rid, pr in result.placement.items():
        placement.place(by_id[rid], pr.x, pr.y)
    return placement
