"""The subroutine-A contract and shared packer plumbing.

Algorithm 1 (``DC``) is parameterised by an unconstrained strip packer ``A``
with two properties the paper states explicitly:

1. ``A(y, S')`` starts the packing at height ``y`` (i.e. the lowest base of
   the produced placement is exactly ``y``) and returns the vertical extent
   used;
2. the guarantee ``A(y, S') <= 2 * AREA(S') + max_s h_s`` holds for every
   rectangle set ``S'``.

:class:`PackResult` is what every packer in this package returns;
:func:`as_subroutine` adapts a packer to the exact call signature used by
``DC`` and asserts property (1) at runtime.  Property (2) is the subject of
experiment E11 — NFDH satisfies it by its classical analysis, Steinberg's
algorithm by choosing the target height ``2*AREA + hmax``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from ..core import tol
from ..core.placement import Placement
from ..core.rectangle import Rect, max_height, total_area

__all__ = ["PackResult", "Packer", "SubroutineA", "as_subroutine", "subroutine_a_bound"]


@dataclass(frozen=True)
class PackResult:
    """Outcome of an unconstrained packing run.

    ``extent`` is ``max(y_s + h_s) - min(y_s)`` — the paper's ``A(y, S')``
    return value; ``placement`` contains absolute coordinates.
    """

    placement: Placement
    extent: float


class Packer(Protocol):
    """An unconstrained strip packer: rectangles -> placement from ``y``."""

    def __call__(self, rects: Sequence[Rect], y: float = 0.0) -> PackResult: ...


SubroutineA = Packer  # semantic alias used by DC


def subroutine_a_bound(rects: Sequence[Rect]) -> float:
    """The contract bound ``2 * AREA(S') + max h`` for a rectangle set."""
    if not rects:
        return 0.0
    return 2.0 * total_area(rects) + max_height(rects)


def as_subroutine(packer: Packer, *, check_contract: bool = False) -> Packer:
    """Wrap ``packer`` with runtime verification of the subroutine-A calling
    convention (base exactly at ``y``; optionally the height bound).

    ``check_contract=True`` additionally asserts the *guarantee* — useful in
    tests, off by default so heuristics without the proof (e.g. plain
    bottom-left) can still be plugged into DC for measurement.
    """

    def wrapped(rects: Sequence[Rect], y: float = 0.0) -> PackResult:
        result = packer(rects, y)
        if rects:
            base = result.placement.base
            if not tol.eq(base, y, atol=1e-7):
                raise AssertionError(
                    f"subroutine A must start packing exactly at y={y:g}; base is {base:g}"
                )
            if check_contract:
                bound = subroutine_a_bound(rects)
                if tol.gt(result.extent, bound, atol=1e-7):
                    raise AssertionError(
                        f"subroutine A contract violated: extent {result.extent:g} > "
                        f"2*AREA + hmax = {bound:g}"
                    )
        return result

    return wrapped
