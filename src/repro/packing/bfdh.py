"""Best-Fit Decreasing Height (BFDH).

Variant of FFDH that places each rectangle on the open level with the
*least* residual width among those that fit (tightest fit), opening a new
level when none fits.  Empirically denser than FFDH on heterogeneous widths;
no better worst-case guarantee.  Included as a baseline for experiment E11.

The best-fit selection is a masked ``argmin`` over
:class:`~repro.geometry.levels.LevelArray`'s residual column (lowest level
wins ties, exactly like the reference scan's strict-improvement rule); the
original object-based loop is preserved as
:func:`repro.geometry.levels_reference.reference_bfdh`.
"""

from __future__ import annotations

from typing import Sequence

from .. import kernels as _kernels
from ..core.arrays import PlacementBuilder, RectArrays, decreasing_order
from ..core.placement import Placement
from ..core.rectangle import Rect
from ..geometry.levels import LevelArray
from .base import PackResult

__all__ = ["bfdh"]


def bfdh(rects: Sequence[Rect] | RectArrays, y: float = 0.0) -> PackResult:
    """Pack ``rects`` (no constraints) starting at height ``y``."""
    if _kernels.use_reference():
        from ..geometry.levels_reference import reference_bfdh

        return reference_bfdh(RectArrays.coerce(rects).rects, y)
    arrays = RectArrays.coerce(rects)
    if not len(arrays):
        return PackResult(Placement(), 0.0)
    widths, heights = arrays.width, arrays.height
    order = decreasing_order(arrays)
    builder = PlacementBuilder(arrays)
    levels = LevelArray(base=y)
    for row in order:
        w = float(widths[row])
        idx = levels.best_fit(w)
        if idx < 0:
            idx = levels.open_level(float(heights[row]))
        builder.put(int(row), *levels.place(idx, w))
    return PackResult(builder.build(), levels.extent)
