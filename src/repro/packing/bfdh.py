"""Best-Fit Decreasing Height (BFDH).

Variant of FFDH that places each rectangle on the open level with the
*least* residual width among those that fit (tightest fit), opening a new
level when none fits.  Empirically denser than FFDH on heterogeneous widths;
no better worst-case guarantee.  Included as a baseline for experiment E11.
"""

from __future__ import annotations

from typing import Sequence

from ..core.placement import Placement
from ..core.rectangle import Rect
from ..geometry.levels import LevelStack
from .base import PackResult

__all__ = ["bfdh"]


def bfdh(rects: Sequence[Rect], y: float = 0.0) -> PackResult:
    """Pack ``rects`` (no constraints) starting at height ``y``."""
    placement = Placement()
    if not rects:
        return PackResult(placement, 0.0)
    ordered = sorted(rects, key=lambda r: (-r.height, -r.width, str(r.rid)))
    stack = LevelStack(base=y)
    for r in ordered:
        best = None
        best_resid = None
        for level in stack:
            if level.fits(r):
                resid = 1.0 - level.used_width - r.width
                if best_resid is None or resid < best_resid:
                    best, best_resid = level, resid
        if best is None:
            best = stack.open_level(r.height)
        best.add(r, placement)
    return PackResult(placement, stack.extent)
