"""Next-Fit Decreasing Height (NFDH).

The default subroutine ``A`` for Algorithm 1.  Sort rectangles by
non-increasing height; maintain one open level; place each rectangle on the
open level if it fits in the remaining width, otherwise close the level and
open a new one whose height is the current rectangle's height.

Classical guarantee (Coffman-Garey-Johnson-Tarjan 1980)::

    NFDH(S') <= 2 * AREA(S') + h_max(S')

which is exactly the subroutine-A property the paper requires of [22, 24].
Sketch: let the levels have heights ``H_1 >= H_2 >= ...``.  For ``i >= 2``
the rectangles on level ``i`` all have height ``>= H_{i+1}``, and together
with the first rectangle of level ``i+1`` their widths exceed 1, so
``AREA(level i) + AREA(first of i+1) > H_{i+1} * 1 / 2`` pairwise-summed
gives ``sum_{i>=2} H_i <= 2 * AREA``; adding the first level's ``H_1 <=
h_max`` yields the bound.

This is the array-native strategy over
:class:`~repro.geometry.levels.LevelArray`; the original object-based loop
is preserved as :func:`repro.geometry.levels_reference.reference_nfdh` and
the differential suite pins the two placement-for-placement.
"""

from __future__ import annotations

from typing import Sequence

from .. import kernels as _kernels
from ..core.arrays import PlacementBuilder, RectArrays, decreasing_order
from ..core.placement import Placement
from ..core.rectangle import Rect
from ..geometry.levels import LevelArray
from .base import PackResult

__all__ = ["nfdh"]


def nfdh(rects: Sequence[Rect] | RectArrays, y: float = 0.0) -> PackResult:
    """Pack ``rects`` (no constraints) starting at height ``y``.

    Deterministic: ties in height are broken by wider-first, then id, so
    repeated runs produce identical placements.  Accepts a plain rectangle
    sequence or a prebuilt :class:`~repro.core.arrays.RectArrays` (the
    engine passes the instance's cached columns).
    """
    if _kernels.use_reference():
        from ..geometry.levels_reference import reference_nfdh

        return reference_nfdh(RectArrays.coerce(rects).rects, y)
    arrays = RectArrays.coerce(rects)
    if not len(arrays):
        return PackResult(Placement(), 0.0)
    widths, heights = arrays.width, arrays.height
    order = decreasing_order(arrays)
    builder = PlacementBuilder(arrays)
    levels = LevelArray(base=y)
    open_idx = levels.open_level(float(heights[order[0]]))
    for row in order:
        w = float(widths[row])
        if not levels.fits_on(open_idx, w):
            open_idx = levels.open_level(float(heights[row]))
        builder.put(int(row), *levels.place(open_idx, w))
    return PackResult(builder.build(), levels.extent)
