"""Next-Fit Decreasing Height (NFDH).

The default subroutine ``A`` for Algorithm 1.  Sort rectangles by
non-increasing height; maintain one open level; place each rectangle on the
open level if it fits in the remaining width, otherwise close the level and
open a new one whose height is the current rectangle's height.

Classical guarantee (Coffman-Garey-Johnson-Tarjan 1980)::

    NFDH(S') <= 2 * AREA(S') + h_max(S')

which is exactly the subroutine-A property the paper requires of [22, 24].
Sketch: let the levels have heights ``H_1 >= H_2 >= ...``.  For ``i >= 2``
the rectangles on level ``i`` all have height ``>= H_{i+1}``, and together
with the first rectangle of level ``i+1`` their widths exceed 1, so
``AREA(level i) + AREA(first of i+1) > H_{i+1} * 1 / 2`` pairwise-summed
gives ``sum_{i>=2} H_i <= 2 * AREA``; adding the first level's ``H_1 <=
h_max`` yields the bound.
"""

from __future__ import annotations

from typing import Sequence

from ..core.placement import Placement
from ..core.rectangle import Rect
from ..geometry.levels import LevelStack
from .base import PackResult

__all__ = ["nfdh"]


def nfdh(rects: Sequence[Rect], y: float = 0.0) -> PackResult:
    """Pack ``rects`` (no constraints) starting at height ``y``.

    Deterministic: ties in height are broken by wider-first, then id, so
    repeated runs produce identical placements.
    """
    placement = Placement()
    if not rects:
        return PackResult(placement, 0.0)
    ordered = sorted(rects, key=lambda r: (-r.height, -r.width, str(r.rid)))
    stack = LevelStack(base=y)
    level = stack.open_level(ordered[0].height)
    for r in ordered:
        if not level.fits(r):
            level = stack.open_level(r.height)
        level.add(r, placement)
    return PackResult(placement, stack.extent)
