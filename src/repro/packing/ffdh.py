"""First-Fit Decreasing Height (FFDH).

Like NFDH but levels are never closed: each rectangle goes on the *lowest*
already-open level with room, opening a new level only when none fits.
Classical asymptotic guarantee (Coffman-Garey-Johnson-Tarjan 1980)::

    FFDH(S') <= 1.7 * OPT(S') + h_max

FFDH also satisfies the weaker subroutine-A property (its levels are a
subset-refinement of NFDH's usage: every level except the first is more than
half full in width for the rectangles defining subsequent levels), so it can
be plugged into DC; the library keeps NFDH as the default because its
``2*AREA + h_max`` bound is the one proved in the paper's citation chain.

The first-fit scan runs on :class:`~repro.geometry.levels.LevelArray`: one
vectorized candidate mask over the remaining-width column, short-circuited
by ``argmax`` — the per-level Python loop this replaces
(:func:`repro.geometry.levels_reference.reference_ffdh`, the executable
spec) is ~48x slower at 10^5 rectangles (``BENCH_level_packers.json``).
"""

from __future__ import annotations

from typing import Sequence

from .. import kernels as _kernels
from ..core.arrays import PlacementBuilder, RectArrays, decreasing_order
from ..core.placement import Placement
from ..core.rectangle import Rect
from ..geometry.levels import LevelArray
from .base import PackResult

__all__ = ["ffdh"]


def ffdh(rects: Sequence[Rect] | RectArrays, y: float = 0.0) -> PackResult:
    """Pack ``rects`` (no constraints) starting at height ``y``."""
    if _kernels.use_reference():
        from ..geometry.levels_reference import reference_ffdh

        return reference_ffdh(RectArrays.coerce(rects).rects, y)
    arrays = RectArrays.coerce(rects)
    if not len(arrays):
        return PackResult(Placement(), 0.0)
    widths, heights = arrays.width, arrays.height
    order = decreasing_order(arrays)
    builder = PlacementBuilder(arrays)
    levels = LevelArray(base=y)
    for row in order:
        w = float(widths[row])
        idx = levels.first_fit(w)
        if idx < 0:
            idx = levels.open_level(float(heights[row]))
        builder.put(int(row), *levels.place(idx, w))
    return PackResult(builder.build(), levels.extent)
