"""First-Fit Decreasing Height (FFDH).

Like NFDH but levels are never closed: each rectangle goes on the *lowest*
already-open level with room, opening a new level only when none fits.
Classical asymptotic guarantee (Coffman-Garey-Johnson-Tarjan 1980)::

    FFDH(S') <= 1.7 * OPT(S') + h_max

FFDH also satisfies the weaker subroutine-A property (its levels are a
subset-refinement of NFDH's usage: every level except the first is more than
half full in width for the rectangles defining subsequent levels), so it can
be plugged into DC; the library keeps NFDH as the default because its
``2*AREA + h_max`` bound is the one proved in the paper's citation chain.
"""

from __future__ import annotations

from typing import Sequence

from ..core.placement import Placement
from ..core.rectangle import Rect
from ..geometry.levels import LevelStack
from .base import PackResult

__all__ = ["ffdh"]


def ffdh(rects: Sequence[Rect], y: float = 0.0) -> PackResult:
    """Pack ``rects`` (no constraints) starting at height ``y``."""
    placement = Placement()
    if not rects:
        return PackResult(placement, 0.0)
    ordered = sorted(rects, key=lambda r: (-r.height, -r.width, str(r.rid)))
    stack = LevelStack(base=y)
    for r in ordered:
        target = None
        for level in stack:
            if level.fits(r):
                target = level
                break
        if target is None:
            target = stack.open_level(r.height)
        target.add(r, placement)
    return PackResult(placement, stack.extent)
