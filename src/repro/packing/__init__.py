"""Unconstrained strip packing subroutines (the paper's algorithm ``A``)."""

from .base import PackResult, Packer, SubroutineA, as_subroutine, subroutine_a_bound
from .bfdh import bfdh
from .bottom_left import bottom_left, bottom_left_release
from .ffdh import ffdh
from .fractional import aptas_plain, fractional_strip_height
from .nfdh import nfdh

__all__ = [
    "fractional_strip_height",
    "aptas_plain",
    "PackResult",
    "Packer",
    "SubroutineA",
    "as_subroutine",
    "subroutine_a_bound",
    "nfdh",
    "ffdh",
    "bfdh",
    "bottom_left",
    "bottom_left_release",
]
