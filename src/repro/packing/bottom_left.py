"""Skyline bottom-left heuristic.

Place rectangles one at a time (default order: non-increasing height) at the
lowest, leftmost skyline position.  No worst-case guarantee of the
subroutine-A form (Baker-Coffman-Rivest showed decreasing-width BL is
3-approximate; arbitrary orders can be bad), but it is the strongest simple
heuristic in practice and serves as the measured baseline in E11.

Also exposes :func:`bottom_left_release`, the release-time-aware variant
used as a Section 3 baseline: the support height is raised to the
rectangle's release time.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .. import kernels as _kernels
from ..core.placement import Placement
from ..core.rectangle import Rect, arrival_order, decreasing_height_order
from ..geometry.skyline import Skyline
from .base import PackResult

__all__ = ["bottom_left", "bottom_left_release"]


def _default_skyline_cls() -> type:
    """The tier-selected skyline kernel: the executable spec on the
    ``reference`` tier, :class:`~repro.geometry.skyline.Skyline` otherwise
    (which itself dispatches to the compiled sweep when that tier is on)."""
    if _kernels.use_reference():
        from ..geometry.skyline_reference import ReferenceSkyline

        return ReferenceSkyline
    return Skyline


def bottom_left(
    rects: Sequence[Rect],
    y: float = 0.0,
    order: Callable[[Rect], tuple] | None = None,
    skyline_cls: type | None = None,
) -> PackResult:
    """Pack ``rects`` bottom-left; ``order`` overrides the sort key
    (default: non-increasing height, then width, then id).

    ``skyline_cls`` swaps the skyline kernel — the differential tests and
    the ``skyline_bottom_left`` bench pass
    :class:`~repro.geometry.skyline_reference.ReferenceSkyline` here to
    race/compare the optimized kernel against the executable spec.  When
    ``None`` the active kernel tier picks (reference spec on the
    ``reference`` tier, the optimized kernel otherwise).
    """
    placement = Placement()
    if not rects:
        return PackResult(placement, 0.0)
    ordered = sorted(rects, key=order) if order else decreasing_height_order(rects)
    sky = (skyline_cls or _default_skyline_cls())()
    for r in ordered:
        x, support = sky.lowest_position(r.width)
        sky.place(x, r.width, r.height)
        placement.place(r, x, support + y)
    # Shift so the lowest base is exactly y (first rectangle rests at 0).
    return PackResult(placement, placement.extent())


def bottom_left_release(rects: Sequence[Rect], y: float = 0.0) -> PackResult:
    """Release-aware bottom-left: rectangles in release order; each placed at
    the lowest skyline position *at or above its release time*.

    Candidate positions take ``max(support, release)``; the skyline is
    raised to the actual resting height, so later rectangles cannot sneak
    under an elevated one (keeps the packing provably overlap-free with a
    plain skyline — a deliberate conservative choice documented in
    DESIGN.md; the APTAS is the algorithm that fills such gaps).
    """
    placement = Placement()
    if not rects:
        return PackResult(placement, 0.0)
    ordered = sorted(rects, key=arrival_order)
    sky = _default_skyline_cls()()
    for r in ordered:
        best = None
        for x, support in sky.candidate_positions(r.width):
            start = max(support, r.release - y)
            cand = (start, x)
            if best is None or cand < best:
                best = cand
        start, x = best  # type: ignore[misc]
        # Raise the skyline to the top of the rectangle even if it floats
        # above its support (release constraint), to preserve non-overlap.
        sky.place(x, r.width, (start - sky.support_y(x, r.width)) + r.height)
        placement.place(r, x, start + y)
    return PackResult(placement, placement.extent())
