"""Single-sourced package version.

The authoritative version lives in ``pyproject.toml`` (``[project]
version``); everything else derives from it:

* running from a source tree (the ``PYTHONPATH=src`` development mode) —
  the pyproject two directories above this file is parsed directly, so
  the tree is self-consistent without an install;
* running from an installed package — ``importlib.metadata`` reports what
  the installer recorded from that same pyproject;
* neither available (vendored copy, exotic packaging) — a sentinel that
  is obviously not a release.

Before this module existed ``repro.__version__`` was a literal that had
to be bumped in lockstep with the packaging metadata; the pair drifting
apart is exactly the failure ``tests/test_cli.py`` now guards against
(``repro --version`` must match pyproject).
"""

from __future__ import annotations

import re
from pathlib import Path

__all__ = ["__version__", "detect_version"]

#: The distribution name in pyproject's ``[project] name``.
DIST_NAME = "repro-augustine-bi06"

_FALLBACK = "0.0.0+unknown"


def _from_pyproject() -> str | None:
    """The version from the source tree's pyproject.toml, if we are in one."""
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text()
    except OSError:
        return None
    try:
        import tomllib  # Python >= 3.11

        project = tomllib.loads(text).get("project", {})
        if project.get("name") != DIST_NAME:
            return None
        version = project.get("version")
        return str(version) if version else None
    except Exception:
        # No tomllib (Python 3.10) or a transiently malformed file (a
        # merge conflict mid-edit must not break `import repro`): fall
        # back to a line-level scan of the file we ship.
        if not re.search(rf'^name\s*=\s*"{re.escape(DIST_NAME)}"', text, re.M):
            return None
        match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.M)
        return match.group(1) if match else None


def _from_metadata() -> str | None:
    """The version the installer recorded, for installed copies."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version(DIST_NAME)
    except Exception:
        return None


def detect_version() -> str:
    """Resolve the version (source tree first — it wins over a stale install)."""
    return _from_pyproject() or _from_metadata() or _FALLBACK


__version__ = detect_version()
