"""Model of a dynamically reconfigurable FPGA with a linear column layout.

The paper's target (Virtex-II-style devices) reconfigures along one axis
only: a task occupies the device's full height and a *contiguous* range of
columns.  With ``K`` homogeneous columns the device is exactly a strip of
width 1 where admissible widths are multiples of ``1/K`` — the reason the
APTAS's width assumption ``w >= 1/K`` is natural.

:class:`Device` carries the column count plus an optional per-task
reconfiguration latency (the time to rewrite a column range's
configuration before the task can run — an extension knob beyond the
paper's model, 0 by default, documented in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.errors import InvalidInstanceError
from ..core.instance import ReleaseInstance, StripPackingInstance
from ..core.rectangle import Rect

__all__ = ["Device", "quantize_width", "quantize_instance"]


@dataclass(frozen=True)
class Device:
    """A linearly reconfigurable device with ``K`` identical columns."""

    K: int
    reconfig_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.K <= 0:
            raise InvalidInstanceError(f"device needs a positive column count, got {self.K}")
        if self.reconfig_latency < 0.0:
            raise InvalidInstanceError("reconfiguration latency cannot be negative")

    @property
    def column_width(self) -> float:
        """Width of one column in normalised strip units."""
        return 1.0 / self.K

    def columns_for(self, width: float) -> int:
        """Number of columns a normalised width needs (rounded up)."""
        c = math.ceil(width * self.K - 1e-9)
        return max(1, c)

    def x_of_column(self, col: int) -> float:
        """Left edge of 0-based column ``col``."""
        if not 0 <= col < self.K:
            raise InvalidInstanceError(f"column {col} outside device 0..{self.K - 1}")
        return col / self.K

    def column_of_x(self, x: float) -> int:
        """Column index whose left edge is ``x`` (must be on the grid)."""
        c = x * self.K
        ci = round(c)
        if abs(c - ci) > 1e-6:
            raise InvalidInstanceError(f"x={x!r} is not on the 1/{self.K} column grid")
        if not 0 <= ci < self.K:
            raise InvalidInstanceError(f"x={x!r} outside the device")
        return int(ci)


def quantize_width(width: float, K: int) -> float:
    """Round a width up to the column grid (a task cannot occupy a partial
    column, so quantisation is always up)."""
    if not 0.0 < width <= 1.0 + 1e-12:
        raise InvalidInstanceError(f"width must be in (0,1], got {width!r}")
    c = math.ceil(width * K - 1e-9)
    return min(1.0, max(1, c) / K)


def quantize_instance(instance: StripPackingInstance, K: int) -> StripPackingInstance:
    """Round every width up to the ``1/K`` grid, preserving instance type.

    Quantised widths only grow, so any valid placement of the quantised
    instance is valid for the original; heights/releases are untouched.
    """
    new = [r.replace(width=quantize_width(r.width, K)) for r in instance.rects]
    from ..core.instance import PrecedenceInstance  # local to avoid cycle noise

    if isinstance(instance, PrecedenceInstance):
        return PrecedenceInstance(new, instance.dag)
    if isinstance(instance, ReleaseInstance):
        return ReleaseInstance(new, instance.K)
    return StripPackingInstance(new)


def rect_for_task(
    rid, columns: int, duration: float, device: Device, release: float = 0.0
) -> Rect:
    """Build the rectangle for a task needing ``columns`` columns for
    ``duration`` time units."""
    if not 1 <= columns <= device.K:
        raise InvalidInstanceError(
            f"task {rid!r} needs {columns} columns on a {device.K}-column device"
        )
    return Rect(rid=rid, width=columns / device.K, height=duration, release=release)
