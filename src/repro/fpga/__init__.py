"""The motivating substrate: a K-column dynamically reconfigurable device,
schedules over it, and an event-driven execution simulator."""

from .device import Device, quantize_instance, quantize_width
from .latency import dilate_for_reconfiguration
from .schedule import Schedule, ScheduledTask, schedule_from_placement
from .simulator import SimEvent, SimulationReport, simulate
from .tasks import FPGATask, build_precedence_instance, build_release_instance

__all__ = [
    "Device",
    "quantize_width",
    "quantize_instance",
    "dilate_for_reconfiguration",
    "Schedule",
    "ScheduledTask",
    "schedule_from_placement",
    "simulate",
    "SimEvent",
    "SimulationReport",
    "FPGATask",
    "build_precedence_instance",
    "build_release_instance",
]
