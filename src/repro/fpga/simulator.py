"""Event-driven simulator for the reconfigurable device.

Executes a :class:`~repro.fpga.schedule.Schedule` as a discrete-event run:
task-start events claim a column range (after an optional reconfiguration
latency), task-end events free it.  The simulator is the substitute for the
physical Virtex-II device (see DESIGN.md): it verifies the same behaviour
the paper's model abstracts — contiguous, exclusive column occupancy over
time — and reports the execution trace and utilisation statistics the FPGA
experiments chart.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from ..core.errors import InvalidPlacementError
from .schedule import Schedule, ScheduledTask

__all__ = ["SimEvent", "SimulationReport", "simulate"]

Node = Hashable


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One trace entry: a task starting/reconfiguring/finishing."""

    time: float
    kind: str  # 'reconfig' | 'start' | 'end'
    tid: Node
    columns: tuple[int, int]  # [first, last]


@dataclass
class SimulationReport:
    """Outcome of a simulated run."""

    events: list[SimEvent] = field(default_factory=list)
    makespan: float = 0.0
    busy_column_time: float = 0.0
    reconfig_column_time: float = 0.0
    column_busy: dict[int, float] = field(default_factory=dict)

    @property
    def n_tasks(self) -> int:
        return sum(1 for e in self.events if e.kind == "start")

    def utilisation(self, K: int) -> float:
        """Busy column-time over total device column-time."""
        if self.makespan <= 0.0:
            return 0.0
        return self.busy_column_time / (K * self.makespan)


def simulate(schedule: Schedule) -> SimulationReport:
    """Run the schedule through the event loop.

    Each task claims its columns at ``start - reconfig_latency`` (clamped at
    0; the claim models the configuration write) and frees them at ``end``.
    Any double-claim of a column raises — the simulator independently
    re-discovers conflicts rather than trusting ``Schedule.validate``.
    """
    device = schedule.device
    lat = device.reconfig_latency
    report = SimulationReport()
    if len(schedule) == 0:
        return report

    # Event queue: (time, phase, order, +1 claim / -1 free, task).
    # Frees (phase 0) are processed before claims (phase 1) at equal times so
    # back-to-back tasks on the same columns do not raise a false conflict.
    # Times are snapped to a 1e-9 grid so float noise between one task's end
    # and the next task's start cannot reorder free/claim pairs.
    def snap(x: float) -> float:
        return round(x * 1e9) / 1e9

    events: list[tuple[float, int, int, int, ScheduledTask]] = []
    serial = 0
    for t in schedule:
        claim_at = max(0.0, t.start - lat)
        heapq.heappush(events, (snap(claim_at), 1, serial, +1, t))
        serial += 1
        heapq.heappush(events, (snap(t.end), 0, serial, -1, t))
        serial += 1

    owner: dict[int, Node] = {}
    busy = {c: 0.0 for c in range(device.K)}
    makespan = 0.0
    while events:
        time, _, _, kind, t = heapq.heappop(events)
        first, last = t.col, t.col + t.n_cols - 1
        if kind == +1:
            for c in t.columns():
                if c in owner:
                    raise InvalidPlacementError(
                        f"column {c} double-claimed by {t.tid!r} (held by {owner[c]!r}) "
                        f"at t={time:g}"
                    )
                owner[c] = t.tid
            if lat > 0.0:
                report.events.append(SimEvent(time, "reconfig", t.tid, (first, last)))
            report.events.append(SimEvent(t.start, "start", t.tid, (first, last)))
        else:
            for c in t.columns():
                if owner.get(c) != t.tid:
                    raise InvalidPlacementError(
                        f"column {c} freed by {t.tid!r} but owned by {owner.get(c)!r}"
                    )
                del owner[c]
                busy[c] += t.duration
            report.events.append(SimEvent(time, "end", t.tid, (first, last)))
            makespan = max(makespan, time)

    report.makespan = makespan
    report.column_busy = busy
    report.busy_column_time = float(np.sum([t.n_cols * t.duration for t in schedule]))
    report.reconfig_column_time = float(
        np.sum([t.n_cols * min(lat, t.start) for t in schedule])
    ) if lat > 0.0 else 0.0
    report.events.sort(key=lambda e: (e.time, e.kind != "end"))
    return report
