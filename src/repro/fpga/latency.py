"""Reconfiguration-latency-aware scheduling (extension beyond the paper).

The paper's model treats reconfiguration as free; real devices pay a
latency to rewrite a column range before a task starts.  This module makes
a latency-oblivious placement latency-feasible by *dilation*: every task's
start is shifted so that a gap of at least ``lat`` exists between the end
of the previous occupant of any of its columns and its own start.

The transformation processes tasks in non-decreasing start order and
pushes each task up to ``max(previous finish on its columns) + lat``,
preserving relative vertical order, precedence (tops only move up and the
pass reuses the same order the constraints respect) and release times.
Dilation is bounded: the makespan grows by at most ``lat * n`` and, on
schedules with c column-reuse chains, by ``lat * c`` — the quantity the
E12 ablation reports.
"""

from __future__ import annotations

from typing import Hashable

from ..core.placement import PlacedRect, Placement
from ..dag.graph import TaskDAG
from .device import Device

__all__ = ["dilate_for_reconfiguration"]

Node = Hashable


def dilate_for_reconfiguration(
    placement: Placement,
    device: Device,
    dag: TaskDAG | None = None,
) -> Placement:
    """Return a latency-feasible copy of ``placement``.

    Tasks are processed bottom-up; each lands at the smallest ``y`` that is
    (a) at least its original ``y`` (so release times stay satisfied),
    (b) at least ``lat`` above the previous finish time of every column it
    occupies, and (c) — when ``dag`` is given — at or above the shifted top
    of every predecessor.  Predecessors always precede their successors in
    the bottom-up order (their original ``y`` is strictly smaller), so one
    pass suffices.
    """
    lat = device.reconfig_latency
    if lat <= 0.0:
        return Placement({rid: pr for rid, pr in placement.items()})

    K = device.K
    col_free = [0.0] * K  # earliest time each column may be claimed again
    out: dict[Node, PlacedRect] = {}
    order = sorted(placement.items(), key=lambda kv: (kv[1].y, kv[1].x, str(kv[0])))
    for rid, pr in order:
        first = device.column_of_x(pr.x)
        n_cols = round(pr.rect.width * K)
        cols = range(first, first + n_cols)
        earliest = max([pr.y] + [col_free[c] for c in cols])
        if dag is not None:
            for p in dag.predecessors(rid):
                earliest = max(earliest, out[p].y2)
        out[rid] = PlacedRect(pr.rect, pr.x, earliest)
        for c in cols:
            col_free[c] = earliest + pr.rect.height + lat
    return Placement(out)
