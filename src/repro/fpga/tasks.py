"""Task-level API for building FPGA workloads.

:class:`FPGATask` describes a hardware task in device terms (columns,
duration, dependencies, release); :func:`build_precedence_instance` /
:func:`build_release_instance` convert task sets into the normalised strip
instances the algorithms consume.  The JPEG pipeline generator lives in
:mod:`repro.workloads.jpeg` and produces these tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..core.errors import InvalidInstanceError
from ..core.instance import PrecedenceInstance, ReleaseInstance
from ..core.rectangle import Rect
from ..dag.graph import TaskDAG
from .device import Device

__all__ = ["FPGATask", "build_precedence_instance", "build_release_instance"]

Node = Hashable


@dataclass(frozen=True)
class FPGATask:
    """A hardware task: ``columns`` adjacent columns for ``duration`` time.

    ``deps`` lists task ids that must complete before this one starts.
    """

    tid: Node
    columns: int
    duration: float
    deps: tuple[Node, ...] = ()
    release: float = 0.0

    def __post_init__(self) -> None:
        if self.columns <= 0:
            raise InvalidInstanceError(f"task {self.tid!r}: needs >= 1 column")
        if self.duration <= 0.0:
            raise InvalidInstanceError(f"task {self.tid!r}: needs positive duration")
        if self.release < 0.0:
            raise InvalidInstanceError(f"task {self.tid!r}: negative release")


def _rects(tasks: Sequence[FPGATask], device: Device) -> list[Rect]:
    rects = []
    for t in tasks:
        if t.columns > device.K:
            raise InvalidInstanceError(
                f"task {t.tid!r} needs {t.columns} columns on a {device.K}-column device"
            )
        rects.append(
            Rect(rid=t.tid, width=t.columns / device.K, height=t.duration, release=t.release)
        )
    return rects


def build_precedence_instance(
    tasks: Sequence[FPGATask], device: Device
) -> PrecedenceInstance:
    """Tasks + dependencies -> precedence strip instance (Section 2 view)."""
    rects = _rects(tasks, device)
    ids = [t.tid for t in tasks]
    edges = [(d, t.tid) for t in tasks for d in t.deps]
    return PrecedenceInstance(rects, TaskDAG(ids, edges))


def build_release_instance(
    tasks: Sequence[FPGATask], device: Device
) -> ReleaseInstance:
    """Tasks + releases -> release-time strip instance (Section 3 view).

    Dependencies must be empty (the paper treats the two variants
    separately); a task set with deps raises.
    """
    if any(t.deps for t in tasks):
        raise InvalidInstanceError(
            "release instances cannot carry dependencies; use build_precedence_instance"
        )
    return ReleaseInstance(_rects(tasks, device), device.K)
