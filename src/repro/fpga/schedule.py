"""Schedules: the FPGA-side view of a strip packing placement.

A placement in the strip maps 1:1 to a device schedule: ``x`` becomes the
first occupied column, width the column count, ``y`` the start time and
height the duration.  :func:`schedule_from_placement` performs the
conversion (requiring grid-aligned x's) and :meth:`Schedule.validate`
re-checks the scheduling-side constraints independently of the geometric
validator — two views of the same feasibility, as the paper's Section 1
equivalence argues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

from ..core import tol
from ..core.errors import InvalidPlacementError
from ..core.placement import Placement
from ..dag.graph import TaskDAG
from .device import Device

__all__ = ["ScheduledTask", "Schedule", "schedule_from_placement"]

Node = Hashable


@dataclass(frozen=True, slots=True)
class ScheduledTask:
    """One task's slot: columns ``[col, col + n_cols)``, time ``[start, end)``."""

    tid: Node
    col: int
    n_cols: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def columns(self) -> range:
        return range(self.col, self.col + self.n_cols)

    def conflicts(self, other: "ScheduledTask") -> bool:
        """Overlap in both column range and (open) time interval."""
        col_overlap = self.col < other.col + other.n_cols and other.col < self.col + self.n_cols
        time_overlap = tol.lt(self.start, other.end) and tol.lt(other.start, self.end)
        return col_overlap and time_overlap


class Schedule:
    """An ordered collection of scheduled tasks on one device."""

    __slots__ = ("device", "_tasks")

    def __init__(self, device: Device, tasks: Iterable[ScheduledTask] = ()) -> None:
        self.device = device
        self._tasks: list[ScheduledTask] = list(tasks)

    def add(self, task: ScheduledTask) -> None:
        if task.col < 0 or task.col + task.n_cols > self.device.K:
            raise InvalidPlacementError(
                f"task {task.tid!r} occupies columns {task.col}..{task.col + task.n_cols - 1} "
                f"outside the {self.device.K}-column device"
            )
        if task.end <= task.start:
            raise InvalidPlacementError(f"task {task.tid!r} has non-positive duration")
        self._tasks.append(task)

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, tid: Node) -> ScheduledTask:
        for t in self._tasks:
            if t.tid == tid:
                return t
        raise KeyError(tid)

    @property
    def makespan(self) -> float:
        """Completion time of the last task (0 when empty)."""
        return max((t.end for t in self._tasks), default=0.0)

    def validate(
        self,
        dag: TaskDAG | None = None,
        releases: dict[Node, float] | None = None,
    ) -> None:
        """Scheduling-side feasibility: exclusive column use, precedence,
        release times.  Raises :class:`InvalidPlacementError`."""
        tasks = sorted(self._tasks, key=lambda t: t.start)
        active: list[ScheduledTask] = []
        for t in tasks:
            active = [a for a in active if tol.gt(a.end, t.start)]
            for a in active:
                if t.conflicts(a):
                    raise InvalidPlacementError(
                        f"tasks {a.tid!r} and {t.tid!r} share columns concurrently"
                    )
            active.append(t)
        if dag is not None:
            by_id = {t.tid: t for t in self._tasks}
            for u, v in dag.edges():
                if tol.gt(by_id[u].end, by_id[v].start):
                    raise InvalidPlacementError(
                        f"precedence violated on device: {u!r} ends {by_id[u].end:g} "
                        f"after {v!r} starts {by_id[v].start:g}"
                    )
        if releases:
            for t in self._tasks:
                r = releases.get(t.tid, 0.0)
                if tol.lt(t.start, r):
                    raise InvalidPlacementError(
                        f"task {t.tid!r} starts {t.start:g} before release {r:g}"
                    )

    def utilisation(self) -> float:
        """Busy column-time over ``K * makespan`` (0 when empty)."""
        span = self.makespan
        if span <= 0.0:
            return 0.0
        busy = sum(t.n_cols * t.duration for t in self._tasks)
        return busy / (self.device.K * span)


def schedule_from_placement(placement: Placement, device: Device) -> Schedule:
    """Convert a strip placement into a device schedule.

    Every ``x`` must lie on the column grid and every width must be a whole
    number of columns (quantise the instance first if needed).
    """
    from ..core.errors import InvalidInstanceError

    sched = Schedule(device)
    for rid, pr in placement.items():
        try:
            col = device.column_of_x(pr.x)
        except InvalidInstanceError as exc:
            raise InvalidPlacementError(
                f"rect {rid!r}: {exc} — quantise the instance before scheduling"
            ) from exc
        n_cols_f = pr.rect.width * device.K
        n_cols = round(n_cols_f)
        if abs(n_cols_f - n_cols) > 1e-6 or n_cols < 1:
            raise InvalidPlacementError(
                f"rect {rid!r} width {pr.rect.width!r} is not a whole number of columns"
            )
        sched.add(
            ScheduledTask(tid=rid, col=col, n_cols=int(n_cols), start=pr.y, end=pr.y2)
        )
    return sched
