"""Dependency-declaring tasks executed in DAG topological order.

The bench trend comparison (:mod:`repro.obs.trend`) is not one big
function but a handful of small stages — discover artifacts, load them,
group into per-bench time series, detect drift, render the report.  Each
stage is a :class:`Task` that *declares* what it consumes via
:meth:`Task.requires` (the yapim ``Task.requires/depends`` idiom): the
runner wires the declared dependencies into the in-repo
:class:`repro.dag.graph.TaskDAG`, executes the stages in its
deterministic Kahn topological order, and hands every task the merged
``output`` dicts of its requirements as ``self.input``.

A cycle in the declarations is an immediate
:class:`~repro.core.errors.InvalidInstanceError` (straight from
``TaskDAG``), not a hang; an undeclared input is a loud ``KeyError``
inside the task that forgot to declare it.  That makes each stage
independently testable: construct it with a hand-made ``input`` dict and
inspect ``output``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence, Type

from ..dag.graph import TaskDAG

__all__ = ["Task", "PipelineResult", "run_pipeline"]


class Task:
    """One pipeline stage: declare requirements, read input, fill output.

    Subclasses override :meth:`requires` (a list of the Task *classes*
    they consume — or their names) and :meth:`run`.  ``self.input`` holds
    the merged outputs of every requirement plus the pipeline seed;
    ``self.output`` is what this stage contributes downstream.
    """

    @classmethod
    def task_name(cls) -> str:
        return cls.__name__

    @staticmethod
    def requires() -> Sequence["Type[Task] | str"]:
        return ()

    def __init__(self, input: Mapping[str, Any]) -> None:
        self.input: dict[str, Any] = dict(input)
        self.output: dict[str, Any] = {}

    def run(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class PipelineResult:
    """Outputs of a pipeline run, keyed by task name, plus the order used."""

    outputs: Mapping[str, Mapping[str, Any]]
    order: Sequence[str] = field(default_factory=tuple)

    def merged(self) -> dict[str, Any]:
        """All task outputs flattened into one namespace (later wins)."""
        flat: dict[str, Any] = {}
        for name in self.order:
            flat.update(self.outputs[name])
        return flat


def _require_name(req: "Type[Task] | str") -> str:
    return req if isinstance(req, str) else req.task_name()


def run_pipeline(
    tasks: Iterable[Type[Task]], seed: Mapping[str, Any] | None = None
) -> PipelineResult:
    """Execute ``tasks`` in dependency order; return every stage's output.

    ``seed`` is visible in every task's ``self.input`` (under its own
    keys) — the pipeline's external parameters.  Requirements must name
    tasks present in ``tasks``; unknown names and cycles both raise
    :class:`~repro.core.errors.InvalidInstanceError` via ``TaskDAG``.
    """
    classes = {cls.task_name(): cls for cls in tasks}
    dag = TaskDAG(
        classes,
        [
            (_require_name(req), name)
            for name, cls in classes.items()
            for req in cls.requires()
        ],
    )
    outputs: dict[str, dict[str, Any]] = {}
    order = dag.topological_order()
    for name in order:
        cls = classes[name]
        merged: dict[str, Any] = dict(seed or {})
        for req in cls.requires():
            merged.update(outputs[_require_name(req)])
        task = cls(merged)
        task.run()
        outputs[name] = task.output
    return PipelineResult(outputs=outputs, order=tuple(order))
