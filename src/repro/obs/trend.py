"""Bench-history trend gating: ``repro bench trend``.

The ``--compare`` mode answers "is *this* run slower than *that* one?".
Trend gating answers the question CI actually cares about: **has a bench
been drifting?**  It loads every committed ``BENCH_*.json`` (plus an
optional history directory of older runs), orders each bench's artifacts
by their ``created`` timestamp into per-``(entry, size)`` median series,
and flags *sustained* drift — the last ``window`` runs all slower than
the series baseline by more than ``threshold``× and ``min_delta_s``
seconds.  One noisy run does not trip the gate; ``window`` consecutive
ones do.  A bench with a single committed artifact has no history and
can never drift, so the gate passes trivially on a freshly-seeded repo.

The comparison runs as five dependency-declaring
:class:`~repro.obs.pipeline.Task` stages over the in-repo DAG subsystem
(discover → load → series → drift → report); each stage is unit-testable
with a hand-made input dict.  The output is a schema'd document
(:data:`TREND_SCHEMA`, written as ``BENCH_trend.json``) and the list of
drifting series; the CLI exits nonzero iff that list is non-empty.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from ..bench.artifact import BenchArtifactError, load_artifact
from .pipeline import PipelineResult, Task, run_pipeline

__all__ = [
    "TREND_SCHEMA",
    "TREND_FILENAME",
    "DEFAULT_WINDOW",
    "DEFAULT_DRIFT_THRESHOLD",
    "run_trend",
    "validate_trend",
    "trend_table",
]

#: Schema identifier of the ``BENCH_trend.json`` document.
TREND_SCHEMA = "repro-trend/1"

#: The trend document's canonical filename (excluded from discovery).
TREND_FILENAME = "BENCH_trend.json"

#: Number of most-recent runs that must *all* exceed the threshold.
DEFAULT_WINDOW = 3

#: Sustained-drift ratio vs the series baseline.  Tighter than the
#: single-pair compare threshold (1.5) because ``window`` consecutive
#: exceedances already filter noise.
DEFAULT_DRIFT_THRESHOLD = 1.25

#: Absolute slowdown floor (seconds) — same reasoning as compare.
DEFAULT_MIN_DELTA_S = 1e-3


# ----------------------------------------------------------------------
# pipeline stages
# ----------------------------------------------------------------------


class Discover(Task):
    """Find every ``BENCH_*.json`` under the artifact + history dirs."""

    def run(self) -> None:
        paths: list[Path] = []
        for directory in self.input["directories"]:
            directory = Path(directory)
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("BENCH_*.json")):
                if path.name != TREND_FILENAME:
                    paths.append(path)
        self.output["paths"] = paths


class Load(Task):
    """Parse and schema-validate each discovered artifact."""

    @staticmethod
    def requires() -> tuple:
        return (Discover,)

    def run(self) -> None:
        artifacts: list[dict[str, Any]] = []
        errors: list[str] = []
        for path in self.input["paths"]:
            try:
                artifacts.append(load_artifact(path))
            except BenchArtifactError as exc:
                errors.append(str(exc))
        self.output["artifacts"] = artifacts
        self.output["errors"] = errors


class Series(Task):
    """Group artifacts by bench name; order each bench's runs by time."""

    @staticmethod
    def requires() -> tuple:
        return (Load,)

    def run(self) -> None:
        by_bench: dict[str, list[dict[str, Any]]] = {}
        for artifact in self.input["artifacts"]:
            by_bench.setdefault(artifact["name"], []).append(artifact)
        series: dict[str, dict[tuple[str, int], dict[str, list]]] = {}
        for name, runs in sorted(by_bench.items()):
            # ISO-8601 UTC strings sort chronologically as strings.
            runs.sort(key=lambda a: a["created"])
            per_point: dict[tuple[str, int], dict[str, list]] = {}
            for run in runs:
                for pt in run["points"]:
                    key = (pt["label"], int(pt["size"]))
                    entry = per_point.setdefault(
                        key, {"medians_s": [], "created": [], "tiers": []}
                    )
                    entry["medians_s"].append(float(pt["median_s"]))
                    entry["created"].append(run["created"])
                    entry["tiers"].append(run.get("kernel_tier") or "array")
            series[name] = per_point
        self.output["series"] = series
        self.output["run_counts"] = {name: len(runs) for name, runs in by_bench.items()}


class Drift(Task):
    """Flag series whose last ``window`` runs are all above baseline."""

    @staticmethod
    def requires() -> tuple:
        return (Series,)

    def run(self) -> None:
        window = int(self.input["window"])
        threshold = float(self.input["threshold"])
        min_delta_s = float(self.input["min_delta_s"])
        drifts: list[dict[str, Any]] = []
        for bench, per_point in self.input["series"].items():
            for (label, size), entry in per_point.items():
                medians = entry["medians_s"]
                # Need a baseline *plus* a full window of newer runs.
                if len(medians) < window + 1:
                    continue
                baseline = medians[0]
                if baseline <= 0:
                    continue
                tail = medians[-window:]
                if all(
                    m / baseline > threshold and m - baseline > min_delta_s
                    for m in tail
                ):
                    drifts.append(
                        {
                            "bench": bench,
                            "entry": label,
                            "size": size,
                            "baseline_s": baseline,
                            "latest_s": medians[-1],
                            "ratio": medians[-1] / baseline,
                            "window": window,
                        }
                    )
        drifts.sort(key=lambda d: (d["bench"], d["entry"], d["size"]))
        self.output["drifts"] = drifts


class Report(Task):
    """Assemble the schema'd ``BENCH_trend.json`` document."""

    @staticmethod
    def requires() -> tuple:
        return (Load, Series, Drift)

    def run(self) -> None:
        series_doc: dict[str, Any] = {}
        for bench, per_point in self.input["series"].items():
            points = []
            for (label, size), entry in sorted(per_point.items()):
                medians = entry["medians_s"]
                baseline = medians[0]
                points.append(
                    {
                        "entry": label,
                        "size": size,
                        "runs": len(medians),
                        "medians_s": medians,
                        "created": entry["created"],
                        "kernel_tiers": entry["tiers"],
                        "baseline_s": baseline,
                        "latest_s": medians[-1],
                        "ratio": (medians[-1] / baseline) if baseline > 0 else None,
                    }
                )
            series_doc[bench] = {
                "runs": self.input["run_counts"][bench],
                "points": points,
            }
        self.output["document"] = {
            "schema": TREND_SCHEMA,
            "window": int(self.input["window"]),
            "threshold": float(self.input["threshold"]),
            "min_delta_s": float(self.input["min_delta_s"]),
            "artifacts": len(self.input["artifacts"]),
            "load_errors": list(self.input["errors"]),
            "benches": series_doc,
            "drifts": list(self.input["drifts"]),
        }


#: The trend pipeline, in declaration (not execution) order — the DAG
#: runner orders them by their ``requires()`` edges.
TREND_TASKS = (Report, Drift, Series, Load, Discover)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def run_trend(
    directories: Iterable[Path | str],
    *,
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_DRIFT_THRESHOLD,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
    out_dir: Path | str | None = None,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Run the trend pipeline; return ``(document, drifts)``.

    ``directories`` is the committed artifact dir plus any history dirs;
    with ``out_dir`` the document is also written as ``BENCH_trend.json``.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold:g}")
    result: PipelineResult = run_pipeline(
        TREND_TASKS,
        seed={
            "directories": list(directories),
            "window": window,
            "threshold": threshold,
            "min_delta_s": min_delta_s,
        },
    )
    document = result.outputs["Report"]["document"]
    validate_trend(document)
    if out_dir is not None:
        out_path = Path(out_dir) / TREND_FILENAME
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document, list(document["drifts"])


def validate_trend(data: Any) -> None:
    """Raise ``ValueError`` unless ``data`` is a valid trend document."""
    if not isinstance(data, dict):
        raise ValueError(f"trend document must be an object, got {type(data).__name__}")
    if data.get("schema") != TREND_SCHEMA:
        raise ValueError(
            f"unknown schema {data.get('schema')!r} (expected {TREND_SCHEMA!r})"
        )
    for key, typ in (
        ("window", int), ("threshold", (int, float)), ("min_delta_s", (int, float)),
        ("artifacts", int), ("load_errors", list), ("benches", dict), ("drifts", list),
    ):
        if key not in data:
            raise ValueError(f"trend document missing field {key!r}")
        if not isinstance(data[key], typ):
            raise ValueError(f"trend field {key!r} has wrong type")
    for bench, doc in data["benches"].items():
        if not isinstance(doc, dict) or not isinstance(doc.get("points"), list):
            raise ValueError(f"benches[{bench!r}] must have a 'points' list")
        for i, pt in enumerate(doc["points"]):
            for key in ("entry", "size", "runs", "medians_s", "baseline_s", "latest_s"):
                if key not in pt:
                    raise ValueError(f"benches[{bench!r}].points[{i}] missing {key!r}")
    for i, drift in enumerate(data["drifts"]):
        for key in ("bench", "entry", "size", "baseline_s", "latest_s", "ratio"):
            if key not in drift:
                raise ValueError(f"drifts[{i}] missing {key!r}")


def trend_table(document: dict[str, Any]):
    """Render the per-series summary as an ``analysis.report.Table``."""
    from ..analysis.report import Table

    table = Table(
        ["bench", "entry", "size", "runs", "baseline_s", "latest_s", "ratio", "status"],
        title=(
            f"bench trend (window {document['window']}, "
            f"threshold {document['threshold']:g}x)"
        ),
    )
    drifting = {
        (d["bench"], d["entry"], d["size"]) for d in document["drifts"]
    }
    for bench, doc in sorted(document["benches"].items()):
        for pt in doc["points"]:
            key = (bench, pt["entry"], pt["size"])
            table.add_row([
                bench,
                pt["entry"],
                pt["size"],
                pt["runs"],
                pt["baseline_s"],
                pt["latest_s"],
                "-" if pt["ratio"] is None else pt["ratio"],
                "DRIFT" if key in drifting else "ok",
            ])
    return table
